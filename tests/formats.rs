//! File-format integration tests: delimiter sniffing (TSV, semicolon,
//! pipe) and quoted CSV end-to-end through the adaptive raw scan.

use nodb_repro::core::{NoDb, NoDbConfig};
use nodb_repro::prelude::*;
use nodb_repro::rawcsv::tokenizer::TokenizerConfig;

fn tmp(tag: &str, content: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("nodb_fmt_{tag}_{}", std::process::id()));
    std::fs::write(&p, content).unwrap();
    p
}

#[test]
fn tsv_is_sniffed_and_queryable() {
    let p = tmp(
        "tsv",
        "id\tname\tscore\n1\talice\t2.5\n2\tbob\t3.5\n3\tcarol\t1.0\n",
    );
    let mut db = NoDb::new(NoDbConfig::default());
    db.register_csv("t", &p).unwrap();
    let r = db
        .query("SELECT name FROM t WHERE score > 2 ORDER BY id")
        .unwrap();
    assert_eq!(
        r.rows,
        vec![vec![Datum::from("alice")], vec![Datum::from("bob")]]
    );
    // Adaptive rerun over the TSV must agree.
    let r2 = db
        .query("SELECT name FROM t WHERE score > 2 ORDER BY id")
        .unwrap();
    assert_eq!(r, r2);
    std::fs::remove_file(p).unwrap();
}

#[test]
fn semicolon_and_pipe_files_sniffed() {
    for (tag, delim) in [("semi", ';'), ("pipe", '|')] {
        let content = format!("a{delim}b\n1{delim}10\n2{delim}20\n");
        let p = tmp(tag, &content);
        let mut db = NoDb::new(NoDbConfig::default());
        db.register_csv("t", &p).unwrap();
        let r = db.query("SELECT b FROM t WHERE a = 2").unwrap();
        assert_eq!(r.rows, vec![vec![Datum::Int(20)]], "{tag}");
        std::fs::remove_file(p).unwrap();
    }
}

#[test]
fn quoted_csv_with_embedded_delimiters() {
    // Fields containing commas and escaped quotes.
    let p = tmp(
        "quoted",
        "1,\"Smith, John\",100\n2,\"O''Brien, Pat\",200\n3,plain,300\n"
            .replace("''", "\"\"")
            .as_str(),
    );
    let schema = Schema::new(vec![
        ColumnDef::new("id", ColumnType::Int),
        ColumnDef::new("name", ColumnType::Str),
        ColumnDef::new("amount", ColumnType::Int),
    ]);
    let mut db = NoDb::new(NoDbConfig::default());
    db.register_csv_with_options(
        "t",
        &p,
        schema,
        false,
        TokenizerConfig {
            delimiter: b',',
            quote: Some(b'"'),
        },
    )
    .unwrap();

    // The quoted commas must not split fields.
    let r = db.query("SELECT name, amount FROM t ORDER BY id").unwrap();
    assert_eq!(r.len(), 3);
    assert_eq!(r.rows[0][0], Datum::from("Smith, John"));
    assert_eq!(r.rows[0][1], Datum::Int(100));
    assert_eq!(
        r.rows[1][0],
        Datum::from("O\"Brien, Pat"),
        "escaped quote unescaped"
    );
    assert_eq!(r.rows[2][0], Datum::from("plain"));

    // Warm rerun (cache-served) must agree exactly.
    let r2 = db.query("SELECT name, amount FROM t ORDER BY id").unwrap();
    assert_eq!(r, r2);

    // The positional map must have stayed out of the way (quote-unsafe).
    let snap = db.snapshot("t").unwrap();
    assert!(snap.map_chunks.is_empty(), "map bypassed for quoted files");
    assert!(snap.cache_bytes > 0, "cache still active for quoted files");
    std::fs::remove_file(p).unwrap();
}

#[test]
fn quoted_aggregation_and_like() {
    let p = tmp("quoted_agg", "\"a,b\",1\n\"a,b\",2\n\"c\",3\nplain,4\n");
    let schema = Schema::new(vec![
        ColumnDef::new("k", ColumnType::Str),
        ColumnDef::new("v", ColumnType::Int),
    ]);
    let mut db = NoDb::new(NoDbConfig::default());
    db.register_csv_with_options(
        "t",
        &p,
        schema,
        false,
        TokenizerConfig {
            delimiter: b',',
            quote: Some(b'"'),
        },
    )
    .unwrap();
    let r = db
        .query("SELECT k, SUM(v) FROM t GROUP BY k ORDER BY k")
        .unwrap();
    assert_eq!(r.len(), 3);
    assert_eq!(r.rows[0], vec![Datum::from("a,b"), Datum::Int(3)]);
    let l = db
        .query("SELECT COUNT(*) FROM t WHERE k LIKE 'a%'")
        .unwrap();
    assert_eq!(l.scalar(), Some(&Datum::Int(2)));
    std::fs::remove_file(p).unwrap();
}
