//! Microbenchmarks for the tokenizer: full vs selective vs resumable, and
//! the SWAR delimiter scan vs a naive byte loop. These quantify the §3
//! claim that selective tokenizing "significantly reduces the CPU
//! processing costs".

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nodb_rawcsv::tokenizer::{find_byte, TokenizerConfig, Tokens};
use nodb_rawcsv::GeneratorConfig;

fn sample_lines(cols: usize, rows: u64) -> Vec<Vec<u8>> {
    GeneratorConfig::uniform_ints(cols, rows, 42)
        .generate_bytes()
        .split(|&b| b == b'\n')
        .filter(|l| !l.is_empty())
        .map(|l| l.to_vec())
        .collect()
}

fn bench_tokenizing(c: &mut Criterion) {
    let lines = sample_lines(50, 2000);
    let bytes: u64 = lines.iter().map(|l| l.len() as u64 + 1).sum();
    let cfg = TokenizerConfig::default();
    let mut group = c.benchmark_group("tokenizer");
    group.throughput(Throughput::Bytes(bytes));

    group.bench_function("full_50_cols", |b| {
        let mut t = Tokens::new();
        b.iter(|| {
            let mut n = 0usize;
            for l in &lines {
                n += cfg.tokenize_into(black_box(l), &mut t);
            }
            black_box(n)
        })
    });

    group.bench_function("selective_upto_attr5", |b| {
        let mut t = Tokens::new();
        b.iter(|| {
            let mut n = 0usize;
            for l in &lines {
                n += cfg.tokenize_selective(black_box(l), 5, &mut t);
            }
            black_box(n)
        })
    });

    group.bench_function("resumable_from_attr40", |b| {
        // Precompute anchors for attr 40 (what the positional map stores).
        let mut t = Tokens::new();
        let anchors: Vec<usize> = lines
            .iter()
            .map(|l| {
                cfg.tokenize_into(l, &mut t);
                t.get(40).unwrap().start as usize
            })
            .collect();
        b.iter(|| {
            let mut n = 0usize;
            for (l, &a) in lines.iter().zip(&anchors) {
                n += cfg.tokenize_from(black_box(l), 40, a, 45, &mut t);
            }
            black_box(n)
        })
    });
    group.finish();
}

fn bench_find_byte(c: &mut Criterion) {
    let hay: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8 + 1).collect();
    let mut group = c.benchmark_group("find_byte");
    group.throughput(Throughput::Bytes(hay.len() as u64));
    group.bench_function("swar", |b| {
        b.iter(|| black_box(find_byte(black_box(&hay), 0)))
    });
    group.bench_function("naive", |b| {
        b.iter(|| black_box(black_box(&hay[..]).iter().position(|&x| x == 0)))
    });
    group.finish();
}

criterion_group!(benches, bench_tokenizing, bench_find_byte);
criterion_main!(benches);
