//! # nodb-repro
//!
//! Umbrella crate for the Rust reproduction of *NoDB in Action: Adaptive
//! Query Processing on Raw Data* (Alagiannis et al., VLDB 2012).
//!
//! The interesting code lives in the workspace crates; this crate re-exports
//! the user-facing API so examples and downstream users can depend on a
//! single crate:
//!
//! ```no_run
//! use nodb_repro::prelude::*;
//!
//! let mut db = NoDb::new(NoDbConfig::default());
//! db.register_csv("taxi", "rides.csv").unwrap();
//! let result = db.query("SELECT c0, c3 FROM taxi WHERE c1 > 100").unwrap();
//! println!("{result}");
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every figure.

pub use nodb_bench as bench;
pub use nodb_core as core;
pub use nodb_engine as engine;
pub use nodb_posmap as posmap;
pub use nodb_rawcache as rawcache;
pub use nodb_rawcsv as rawcsv;
pub use nodb_snapshot as snapshot;
pub use nodb_sqlparse as sqlparse;
pub use nodb_stats as stats;
pub use nodb_storage as storage;

/// Most commonly used items, re-exported for examples and quickstarts.
pub mod prelude {
    pub use nodb_core::{NoDb, NoDbConfig};
    pub use nodb_engine::result::QueryResult;
    pub use nodb_rawcsv::{
        ColumnDef, ColumnType, Datum, GeneratorConfig, Schema, ValueDistribution,
    };
}
