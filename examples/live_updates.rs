//! Live updates (§4.2 Updates): rows are appended to the raw file — and the
//! whole file later replaced — *outside* the system, as if edited by hand.
//! NoDB detects both on the next query, reusing prefix state for appends
//! and dropping everything for replacement.
//!
//! ```text
//! cargo run --release --example live_updates
//! ```

use nodb_bench::systems::{Contestant, RawContestant};
use nodb_bench::workload::{scratch_dir, Dataset};
use nodb_rawcsv::GeneratorConfig;

fn main() {
    let dir = scratch_dir("updates_example");
    let rows = 40_000u64;
    let data = Dataset::standard(&dir, 5, rows, 0x11);
    let mut sys = RawContestant::pm_c();
    sys.init(&data.path, &data.schema()).expect("register");

    // COUNT(c0) touches a real attribute, so the cache/map panels show the
    // adaptive state being kept (append) or dropped (replace).
    let sql = "SELECT COUNT(c0) FROM t";
    let show = |sys: &mut RawContestant, label: &str| {
        let (r, d) = sys.run(sql).expect("query");
        let snap = sys.db.snapshot("t").unwrap();
        println!(
            "{label:28} count={:<8} latency={:>8.2}ms  cache={}B map={}B",
            r.scalar().unwrap(),
            d.as_secs_f64() * 1e3,
            snap.cache_bytes,
            snap.map_bytes,
        );
    };

    show(&mut sys, "initial query");
    show(&mut sys, "warm query (cached)");

    println!("\n>>> appending 20% more rows to the file (outside the system)");
    data.gen.append_rows(&data.path, rows / 5).expect("append");
    show(&mut sys, "after append");
    show(&mut sys, "warm after append");

    println!("\n>>> replacing the file entirely (outside the system)");
    GeneratorConfig::uniform_ints(5, rows / 10, 0x99)
        .generate_file(&data.path)
        .expect("replace");
    show(&mut sys, "after replacement");
    println!(
        "\nAppend kept the prefix cache/map valid (only the tail was re-learned);\n\
         replacement invalidated everything — no manual refresh in either case."
    );
    std::fs::remove_dir_all(dir).ok();
}
