//! Source-mutation safety (ISSUE 10): the backing file is not ours — an
//! external writer may append, truncate, rewrite or atomically replace it
//! at any moment, including mid-scan. These tests pin the contract at the
//! facade level:
//!
//! * between queries, any invalidating change quarantines the adaptive
//!   state and the next query answers cold against the live file;
//! * mid-scan, the epoch guard raises `SourceChanged` instead of merging
//!   poisoned partials, and the facade self-heals with a bounded cold
//!   rescan (`source_change_retries`), surfaced in `QueryReport`;
//! * a trailing torn row (no newline yet) is fenced off until terminated;
//! * the chaos matrix: a mutator thread races an 8-thread query storm
//!   through every mutation kind, and every single answer is either from
//!   one consistent epoch or a clean `SourceChanged` error — never a
//!   mixed-epoch row set.
//!
//! The whole file rides the `NODB_TEST_FAULTS` chaos CI job automatically:
//! the env seed overlays transient I/O faults under every scan here, so
//! epoch handling is exercised with and without flaky I/O beneath it.

use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use nodb_repro::core::{NoDb, QueryCtx};
use nodb_repro::engine::EngineError;
use nodb_repro::prelude::*;

fn scratch(tag: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("nodb_srcmut_{tag}_{}", std::process::id()));
    p
}

/// A config whose cold scan of a few-MB file reliably takes hundreds of
/// milliseconds (same recipe as the resilience suite: tiny blocks, a fault
/// every refill, retry backoff), so a file mutation landed ~40ms in is
/// deterministically *mid-scan*.
fn slow_chaos_cfg() -> NoDbConfig {
    NoDbConfig {
        scan_threads: 2,
        steal_slices_per_thread: 16,
        io_block_size: 4096,
        io_readahead_blocks: 0,
        cold_precount: false,
        io_fault_seed: 0xE70C,
        io_fault_one_in: 1,
        io_retry_attempts: 2,
        io_retry_backoff_ms: 4,
        ..NoDbConfig::pm_c()
    }
}

fn gen_table(tag: &str, rows: u64) -> (std::path::PathBuf, GeneratorConfig) {
    let gen = GeneratorConfig::uniform_ints(5, rows, 0xE70);
    let path = scratch(tag);
    gen.generate_file(&path).unwrap();
    (path, gen)
}

/// Reference answer from a fresh, fault-free instance over the file's
/// *current* content.
fn oracle(path: &std::path::Path, schema: Schema, sql: &str) -> QueryResult {
    let mut db = NoDb::new(NoDbConfig::pm_c());
    db.register_csv_with_schema("t", path, schema, false)
        .unwrap();
    db.query(sql).unwrap()
}

/// Truncate `path` to the largest newline boundary at or below `target`.
fn truncate_at_line(path: &std::path::Path, target: usize) -> u64 {
    let content = std::fs::read(path).unwrap();
    let cut = content[..target]
        .iter()
        .rposition(|&b| b == b'\n')
        .map(|i| i + 1)
        .unwrap();
    let f = std::fs::OpenOptions::new().write(true).open(path).unwrap();
    f.set_len(cut as u64).unwrap();
    f.sync_all().unwrap();
    cut as u64
}

/// An invalidating change *between* queries: reconciled silently at the
/// planning probe (no `SourceChanged`, no retry), the adaptive state is
/// quarantined, and the next answer is cold-correct against the live file.
#[test]
fn between_query_rewrite_quarantines_and_recovers() {
    let (path, gen) = gen_table("between", 3_000);
    let sql = "SELECT COUNT(*), SUM(c1) FROM t";
    let mut db = NoDb::new(NoDbConfig {
        scan_threads: 2,
        ..NoDbConfig::pm_c()
    });
    db.register_csv_with_schema("t", &path, gen.schema(), false)
        .unwrap();

    let (r1, rep1) = db.query_reported(sql, &QueryCtx::unbounded()).unwrap();
    assert_eq!(r1, oracle(&path, gen.schema(), sql));
    assert_eq!(rep1.source_changed, 0);
    let warm = db.snapshot("t").unwrap();
    assert!(warm.map_bytes + warm.cache_bytes > 0, "first query warmed");

    // Rewrite wholesale: different row count, same schema.
    let gen2 = GeneratorConfig::uniform_ints(5, 1_700, 0xBEEF);
    gen2.generate_file(&path).unwrap();

    let (r2, rep2) = db.query_reported(sql, &QueryCtx::unbounded()).unwrap();
    assert_eq!(r2, oracle(&path, gen.schema(), sql), "cold-correct answer");
    assert_eq!(
        rep2.source_changed, 0,
        "planning-time reconciliation is not a mid-scan self-heal"
    );

    let (source_changes, rows) = db.admin().epoch_report();
    assert_eq!(source_changes, 0);
    assert_eq!(rows.len(), 1);
    let (name, generation, epoch) = &rows[0];
    assert_eq!(name, "t");
    assert!(*generation >= 1, "quarantine bumped the generation");
    assert_eq!(
        epoch.meta.len,
        std::fs::metadata(&path).unwrap().len(),
        "epoch re-keyed to the live file"
    );
    assert_eq!(epoch.trusted_len, epoch.meta.len, "no torn tail");
    std::fs::remove_file(path).ok();
}

/// Truncation landing mid-scan: the guard raises `SourceChanged`, the
/// facade quarantines and retries cold, and the *same call* returns the
/// right answer for the truncated file with the self-heal counted in its
/// report and in the instance-wide epoch report.
#[test]
fn mid_scan_truncation_self_heals_within_one_call() {
    let (path, gen) = gen_table("heal", 60_000);
    let sql = "SELECT COUNT(*), SUM(c2) FROM t";
    let mut db = NoDb::new(slow_chaos_cfg());
    db.register_csv_with_schema("t", &path, gen.schema(), false)
        .unwrap();
    let db = Arc::new(db);

    let full = std::fs::metadata(&path).unwrap().len() as usize;
    let mutator = {
        let path = path.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(40));
            truncate_at_line(&path, full / 2)
        })
    };
    let (result, report) = db.query_reported(sql, &QueryCtx::unbounded()).unwrap();
    mutator.join().unwrap();

    assert!(
        report.source_changed >= 1,
        "the truncation was detected mid-scan and healed: {report:?}"
    );
    assert_eq!(
        result,
        oracle(&path, gen.schema(), sql),
        "answer reflects the truncated file, no pre-truncation rows leaked"
    );
    let (source_changes, _) = db.admin().epoch_report();
    assert!(source_changes >= 1, "instance-wide counter recorded");

    // The table stays healthy and fully re-learns the new epoch.
    let again = db.query(sql).unwrap();
    assert_eq!(again, oracle(&path, gen.schema(), sql));
    std::fs::remove_file(path).ok();
}

/// With `source_change_retries = 0` the same mid-scan truncation surfaces
/// as a clean `SourceChanged` error — no partial install, and the next
/// query (post-quarantine) answers cold-correct.
#[test]
fn retries_exhausted_surface_source_changed() {
    let (path, gen) = gen_table("exhaust", 60_000);
    let sql = "SELECT SUM(c0) FROM t";
    let mut db = NoDb::new(NoDbConfig {
        source_change_retries: 0,
        ..slow_chaos_cfg()
    });
    db.register_csv_with_schema("t", &path, gen.schema(), false)
        .unwrap();

    let full = std::fs::metadata(&path).unwrap().len() as usize;
    let mutator = {
        let path = path.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(40));
            truncate_at_line(&path, full / 2)
        })
    };
    let err = db.query(sql).unwrap_err();
    mutator.join().unwrap();
    assert!(
        matches!(err, EngineError::SourceChanged { .. }),
        "expected SourceChanged, got {err:?}"
    );

    // The failed attempt still quarantined: the rerun answers correctly.
    let rerun = db.query(sql).unwrap();
    assert_eq!(rerun, oracle(&path, gen.schema(), sql));
    std::fs::remove_file(path).ok();
}

/// The torn-row fence end-to-end: a final line with no trailing newline is
/// invisible (a writer is mid-append), and becomes visible — correctly
/// parsed — once its newline lands.
#[test]
fn torn_trailing_row_is_fenced_until_terminated() {
    let path = scratch("torn");
    std::fs::write(&path, "1,10\n2,20\n3,3").unwrap();
    let schema = Schema::new(vec![
        ColumnDef::new("a", ColumnType::Int),
        ColumnDef::new("b", ColumnType::Int),
    ]);
    let mut db = NoDb::new(NoDbConfig {
        scan_threads: 2,
        ..NoDbConfig::pm_c()
    });
    db.register_csv_with_schema("t", &path, schema, false)
        .unwrap();

    let r = db.query("SELECT COUNT(*), SUM(b) FROM t").unwrap();
    assert_eq!(
        r.rows[0],
        vec![Datum::Int(2), Datum::Int(30)],
        "the torn `3,3` tail is fenced off, not parsed as a short row"
    );
    let (_, rows) = db.admin().epoch_report();
    assert!(
        rows[0].2.trusted_len < rows[0].2.meta.len,
        "epoch records the torn tail"
    );

    // The writer finishes the row (append: prefix state is kept).
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .unwrap();
    f.write_all(b"0\n4,40\n").unwrap();
    f.sync_all().unwrap();

    let r = db.query("SELECT COUNT(*), SUM(b) FROM t").unwrap();
    assert_eq!(
        r.rows[0],
        vec![Datum::Int(4), Datum::Int(100)],
        "completed row 3,30 and the new row both visible"
    );
    std::fs::remove_file(path).ok();
}

/// ISSUE 10 satellite: admin budget setters must reach every *live* table
/// (shrinking evicts immediately) and newly registered tables must adopt
/// the updated budgets.
#[test]
fn budget_setters_propagate_to_live_and_future_tables() {
    let (p1, gen) = gen_table("budget1", 4_000);
    let p2 = scratch("budget2");
    gen.generate_file(&p2).unwrap();
    let mut db = NoDb::new(NoDbConfig {
        scan_threads: 2,
        ..NoDbConfig::pm_c()
    });
    db.register_csv_with_schema("t", &p1, gen.schema(), false)
        .unwrap();
    db.query("SELECT SUM(c0), SUM(c1) FROM t").unwrap();
    {
        let h = db.table_handle("t").unwrap();
        let t = h.read();
        assert!(
            t.cache().bytes_used() > 2_000,
            "table warmed past the target"
        );
        assert!(t.map().bytes_used() > 1_000);
    }

    db.admin().set_cache_budget(2_000);
    db.admin().set_map_budget(1_000);
    {
        let h = db.table_handle("t").unwrap();
        let t = h.read();
        assert_eq!(t.cache().policy().budget_bytes, 2_000, "live cache budget");
        assert_eq!(t.map().policy().budget_bytes, 1_000, "live map budget");
        assert!(
            t.cache().bytes_used() <= 2_000,
            "shrink evicted immediately"
        );
        assert!(t.map().bytes_used() <= 1_000, "shrink evicted immediately");
    }

    // A table registered *after* the setters adopts the new budgets.
    db.register_csv_with_schema("t2", &p2, gen.schema(), false)
        .unwrap();
    {
        let h = db.table_handle("t2").unwrap();
        let t = h.read();
        assert_eq!(t.cache().policy().budget_bytes, 2_000);
        assert_eq!(t.map().policy().budget_bytes, 1_000);
    }

    // Queries still answer correctly under the tightened budgets.
    let r = db.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.scalar(), Some(&Datum::Int(4_000)));
    std::fs::remove_file(p1).ok();
    std::fs::remove_file(p2).ok();
}

// ---------------------------------------------------------------------------
// The mutation matrix: every mutation kind racing a query storm.
// ---------------------------------------------------------------------------

/// The mutator's ground truth: the file's logical content as lines, plus
/// the epoch id every current row carries in `c0`.
struct MutatorState {
    path: std::path::PathBuf,
    lines: Vec<String>,
    epoch: u64,
    seq: u64,
}

impl MutatorState {
    fn row(&mut self) -> String {
        self.seq += 1;
        format!("{},{},{}", self.epoch, self.seq, self.seq * 7 % 1_000)
    }

    fn bytes(&self) -> Vec<u8> {
        let mut out = String::new();
        for l in &self.lines {
            out.push_str(l);
            out.push('\n');
        }
        out.into_bytes()
    }

    /// Append `n` complete rows (same epoch, old bytes untouched).
    fn append(&mut self, n: usize) {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&self.path)
            .unwrap();
        for _ in 0..n {
            let l = self.row();
            f.write_all(l.as_bytes()).unwrap();
            f.write_all(b"\n").unwrap();
            self.lines.push(l);
        }
    }

    /// A torn append: half a row without its newline, a pause (queries race
    /// against the torn state), then the rest. The fence must hide the row
    /// until the newline lands.
    fn torn_append(&mut self) {
        let l = self.row();
        let split = l.len() / 2;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&self.path)
            .unwrap();
        f.write_all(&l.as_bytes()[..split]).unwrap();
        f.sync_all().ok();
        std::thread::sleep(Duration::from_millis(5));
        f.write_all(&l.as_bytes()[split..]).unwrap();
        f.write_all(b"\n").unwrap();
        self.lines.push(l);
    }

    /// Truncate back to `keep` rows (a newline boundary by construction).
    fn truncate(&mut self, keep: usize) {
        self.lines.truncate(keep);
        let len = self.bytes().len() as u64;
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(&self.path)
            .unwrap();
        f.set_len(len).unwrap();
    }

    /// In-place rewrite (truncate-to-zero + write): a new epoch, with a
    /// window where queries see an empty or partially written file.
    fn rewrite_in_place(&mut self, rows: usize) {
        self.epoch += 1;
        self.lines.clear();
        for _ in 0..rows {
            let l = self.row();
            self.lines.push(l);
        }
        std::fs::write(&self.path, self.bytes()).unwrap();
    }

    /// Atomic replace: write the new epoch to a sibling temp file and
    /// rename it over the original (the delete+recreate kind — the file is
    /// never missing, which is what a sane external writer does).
    fn replace_via_rename(&mut self, rows: usize) {
        self.epoch += 1;
        self.lines.clear();
        for _ in 0..rows {
            let l = self.row();
            self.lines.push(l);
        }
        let tmp = self.path.with_extension("tmp");
        std::fs::write(&tmp, self.bytes()).unwrap();
        std::fs::rename(&tmp, &self.path).unwrap();
    }
}

/// The acceptance matrix: append / torn append / truncate / in-place
/// rewrite / atomic replace, each interleaved with an 8-thread query storm.
/// Every query must either answer from ONE epoch (`MIN(c0) == MAX(c0)` —
/// a mixed-epoch merge would straddle two ids) or fail cleanly with
/// `SourceChanged`; no other error is acceptable. After the mutator
/// quiesces, the storm's table must converge to a fresh-cold oracle.
#[test]
fn mutation_matrix_never_serves_mixed_epoch_rows() {
    let path = scratch("matrix");
    let schema = Schema::new(vec![
        ColumnDef::new("epoch", ColumnType::Int),
        ColumnDef::new("seq", ColumnType::Int),
        ColumnDef::new("val", ColumnType::Int),
    ]);
    let mut state = MutatorState {
        path: path.clone(),
        lines: Vec::new(),
        epoch: 0,
        seq: 0,
    };
    state.rewrite_in_place(5_000);

    let mut db = NoDb::new(NoDbConfig {
        scan_threads: 2,
        steal_slices_per_thread: 8,
        io_block_size: 4096,
        source_change_retries: 2,
        ..NoDbConfig::pm_c()
    });
    db.register_csv_with_schema("t", &path, schema.clone(), false)
        .unwrap();
    let db = Arc::new(db);
    let done = Arc::new(AtomicBool::new(false));
    let clean_failures = Arc::new(AtomicU64::new(0));
    let sql = "SELECT MIN(epoch), MAX(epoch), COUNT(*) FROM t";

    let storm: Vec<_> = (0..8)
        .map(|worker| {
            let db = Arc::clone(&db);
            let done = Arc::clone(&done);
            let clean_failures = Arc::clone(&clean_failures);
            std::thread::spawn(move || {
                let mut served = 0u64;
                while !done.load(Ordering::Relaxed) {
                    match db.query(sql) {
                        Ok(r) => {
                            let row = &r.rows[0];
                            assert_eq!(
                                row[0], row[1],
                                "worker {worker}: mixed-epoch answer {row:?}"
                            );
                            if row[2] == Datum::Int(0) {
                                // Caught the empty window of an in-place
                                // rewrite; MIN/MAX are NULL and equal.
                                assert_eq!(row[0], Datum::Null);
                            }
                            served += 1;
                        }
                        Err(EngineError::SourceChanged { .. }) => {
                            // Retries exhausted under rapid mutation: the
                            // one failure the contract allows.
                            clean_failures.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("worker {worker}: dirty failure {e:?}"),
                    }
                }
                served
            })
        })
        .collect();

    // The matrix, twice over, with real pauses so queries land in every
    // window (steady state, torn tail, truncated, empty, fresh epoch).
    for round in 0..2 {
        state.append(300);
        std::thread::sleep(Duration::from_millis(15));
        state.torn_append();
        std::thread::sleep(Duration::from_millis(15));
        state.truncate(2_000 + round * 500);
        std::thread::sleep(Duration::from_millis(15));
        state.rewrite_in_place(3_000);
        std::thread::sleep(Duration::from_millis(15));
        state.replace_via_rename(4_000);
        std::thread::sleep(Duration::from_millis(15));
    }
    done.store(true, Ordering::Relaxed);
    let served: u64 = storm.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(
        served > 0,
        "the storm answered queries while racing mutations"
    );

    // Quiesced: the raced instance must converge to a fresh-cold oracle on
    // the final file — same answer, and the final epoch id.
    let converged = db.query(sql).unwrap();
    assert_eq!(converged, oracle(&path, schema, sql));
    assert_eq!(converged.rows[0][0], Datum::Int(state.epoch as i64));
    assert_eq!(
        converged.rows[0][2],
        Datum::Int(state.lines.len() as i64),
        "row count matches the mutator's ground truth"
    );
    std::fs::remove_file(path).ok();
}
