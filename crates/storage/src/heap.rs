//! Heap files: a sequence of slotted pages on disk, read through a buffer
//! pool with LRU replacement.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use parking_lot::Mutex;

use crate::error::{StorageError, StorageResult};
use crate::page::Page;

/// I/O counters for the buffer pool.
#[derive(Debug, Default, Clone, Copy)]
pub struct PoolStats {
    /// Page reads served from the pool.
    pub hits: u64,
    /// Page reads that went to disk.
    pub misses: u64,
    /// Bytes read from disk.
    pub bytes_read: u64,
}

/// A fixed-capacity page cache over one heap file.
struct BufferPool {
    frames: Vec<(u64, Page, u64)>, // (page_no, page, last_used)
    capacity: usize,
    tick: u64,
    stats: PoolStats,
}

impl BufferPool {
    fn new(capacity: usize) -> Self {
        BufferPool {
            frames: Vec::new(),
            capacity: capacity.max(1),
            tick: 0,
            stats: PoolStats::default(),
        }
    }

    fn get(&mut self, page_no: u64) -> Option<&Page> {
        self.tick += 1;
        let tick = self.tick;
        match self.frames.iter_mut().find(|(no, _, _)| *no == page_no) {
            Some((_, _, used)) => {
                *used = tick;
                self.stats.hits += 1;
                // Re-borrow immutably.
                self.frames
                    .iter()
                    .find(|(no, _, _)| *no == page_no)
                    .map(|(_, p, _)| p)
            }
            None => None,
        }
    }

    fn insert(&mut self, page_no: u64, page: Page) -> &Page {
        if self.frames.len() >= self.capacity {
            let victim = self
                .frames
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, _, used))| *used)
                .map(|(i, _)| i)
                .expect("non-empty pool");
            self.frames.swap_remove(victim);
        }
        self.tick += 1;
        self.frames.push((page_no, page, self.tick));
        &self.frames.last().expect("just pushed").1
    }
}

/// An append-only heap file of slotted pages.
///
/// Writing happens once, during load; queries then read pages through the
/// pool. The file handle is shared behind a mutex so scan sources can clone
/// cheaply.
pub struct HeapFile {
    path: PathBuf,
    page_size: usize,
    npages: u64,
    nrows: u64,
    inner: Mutex<HeapInner>,
}

struct HeapInner {
    file: File,
    pool: BufferPool,
}

impl HeapFile {
    /// Create (truncate) a heap file for writing.
    pub fn create(
        path: impl AsRef<Path>,
        page_size: usize,
        pool_pages: usize,
    ) -> StorageResult<HeapWriter> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)
            .map_err(|e| StorageError::io(format!("create {}", path.display()), e))?;
        Ok(HeapWriter {
            path,
            page_size,
            pool_pages,
            file,
            current: Page::new(page_size),
            npages: 0,
            nrows: 0,
            bytes_written: 0,
        })
    }

    /// Open an existing heap file for reading.
    pub fn open(
        path: impl AsRef<Path>,
        page_size: usize,
        npages: u64,
        nrows: u64,
        pool_pages: usize,
    ) -> StorageResult<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::open(&path)
            .map_err(|e| StorageError::io(format!("open {}", path.display()), e))?;
        Ok(HeapFile {
            path,
            page_size,
            npages,
            nrows,
            inner: Mutex::new(HeapInner {
                file,
                pool: BufferPool::new(pool_pages),
            }),
        })
    }

    /// Total pages.
    pub fn npages(&self) -> u64 {
        self.npages
    }

    /// Total rows.
    pub fn nrows(&self) -> u64 {
        self.nrows
    }

    /// Read page `page_no` (through the pool), handing it to `f`.
    pub fn with_page<T>(&self, page_no: u64, f: impl FnOnce(&Page) -> T) -> StorageResult<T> {
        // Poison-audit: `parking_lot::Mutex::lock` (the shim) recovers from
        // poisoning itself and returns the guard directly — there is no
        // `.unwrap()` here to route through `lock_recover`, and a panicking
        // reader cannot brick the pool for later queries.
        let mut inner = self.inner.lock();
        if inner.pool.get(page_no).is_some() {
            // Second lookup borrows the frame for the closure.
            let page = inner
                .pool
                .frames
                .iter()
                .find(|(no, _, _)| *no == page_no)
                .map(|(_, p, _)| p)
                .expect("present");
            return Ok(f(page));
        }
        // Miss: read from disk.
        let mut buf = vec![0u8; self.page_size];
        inner
            .file
            .seek(SeekFrom::Start(page_no * self.page_size as u64))
            .map_err(|e| StorageError::io(format!("seek {}", self.path.display()), e))?;
        inner
            .file
            .read_exact(&mut buf)
            .map_err(|e| StorageError::io(format!("read page {page_no}"), e))?;
        inner.pool.stats.misses += 1;
        inner.pool.stats.bytes_read += self.page_size as u64;
        let page = Page::from_bytes(buf);
        let page_ref = inner.pool.insert(page_no, page);
        Ok(f(page_ref))
    }

    /// Pool statistics so far.
    pub fn pool_stats(&self) -> PoolStats {
        self.inner.lock().pool.stats
    }
}

/// Writer used during load.
pub struct HeapWriter {
    path: PathBuf,
    page_size: usize,
    pool_pages: usize,
    file: File,
    current: Page,
    npages: u64,
    nrows: u64,
    bytes_written: u64,
}

impl HeapWriter {
    /// Append one encoded tuple.
    pub fn append(&mut self, tuple: &[u8]) -> StorageResult<()> {
        if self.current.insert(tuple).is_none() {
            self.flush_page()?;
            if self.current.insert(tuple).is_none() {
                return Err(StorageError::TupleTooLarge {
                    size: tuple.len(),
                    page_size: self.page_size,
                });
            }
        }
        self.nrows += 1;
        Ok(())
    }

    fn flush_page(&mut self) -> StorageResult<()> {
        let page = std::mem::replace(&mut self.current, Page::new(self.page_size));
        self.file
            .write_all(page.bytes())
            .map_err(|e| StorageError::io(format!("write {}", self.path.display()), e))?;
        self.bytes_written += page.bytes().len() as u64;
        self.npages += 1;
        Ok(())
    }

    /// Finish writing and reopen for reading. Returns the heap and the
    /// number of bytes written (load-cost accounting).
    pub fn finish(mut self) -> StorageResult<(HeapFile, u64)> {
        if self.current.nslots() > 0 {
            self.flush_page()?;
        }
        self.file
            .flush()
            .map_err(|e| StorageError::io(format!("flush {}", self.path.display()), e))?;
        let bytes = self.bytes_written;
        let heap = HeapFile::open(
            &self.path,
            self.page_size,
            self.npages,
            self.nrows,
            self.pool_pages,
        )?;
        Ok((heap, bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("nodb_heap_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn write_then_scan_all_pages() {
        let path = tmp("scan");
        let mut w = HeapFile::create(&path, 4096, 4).unwrap();
        for i in 0..1000u32 {
            w.append(format!("tuple-{i:05}").as_bytes()).unwrap();
        }
        let (heap, bytes) = w.finish().unwrap();
        assert!(bytes > 0);
        assert_eq!(heap.nrows(), 1000);
        let mut seen = 0;
        for pg in 0..heap.npages() {
            heap.with_page(pg, |p| seen += p.nslots()).unwrap();
        }
        assert_eq!(seen, 1000);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn pool_caches_hot_pages() {
        let path = tmp("pool");
        let mut w = HeapFile::create(&path, 4096, 2).unwrap();
        for i in 0..500u32 {
            w.append(&i.to_le_bytes()).unwrap();
        }
        let (heap, _) = w.finish().unwrap();
        heap.with_page(0, |_| ()).unwrap();
        heap.with_page(0, |_| ()).unwrap();
        let s = heap.pool_stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn oversized_tuple_rejected() {
        let path = tmp("big");
        let mut w = HeapFile::create(&path, 128, 2).unwrap();
        let huge = vec![0u8; 4096];
        assert!(matches!(
            w.append(&huge),
            Err(StorageError::TupleTooLarge { .. })
        ));
        std::fs::remove_file(path).ok();
    }
}
