//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API (the
//! build environment has no registry access). Poisoning is deliberately
//! swallowed: a panicking holder does not make the data unreachable, which
//! matches parking_lot semantics.

use std::sync::{self, PoisonError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
