//! Snapshot corruption matrix (ISSUE 9): every way a sidecar can rot —
//! truncation, bit flips, stale fingerprints, version skew, bad magic,
//! trailing garbage — must degrade the table to *cold*, never to a wrong
//! answer. Each case asserts three things: the restore was rejected (or
//! skipped), the telemetry says so, and every query afterwards is
//! byte-identical to a never-snapshotted cold instance.
//!
//! The chaos CI job re-runs this whole matrix under `NODB_TEST_FAULTS`
//! (seeded transient I/O faults on every block read, including the
//! sidecar restore path), so corruption handling is exercised with and
//! without flaky I/O underneath it.

use nodb_repro::core::{NoDb, NoDbConfig};
use nodb_repro::prelude::*;
use nodb_repro::snapshot;

mod common;
use common::assert_same_state;

const COLS: usize = 4;
const SQL: &str = "SELECT c1, c3 FROM t WHERE c0 < 700000000";

fn scratch(tag: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("nodb_snapcorrupt_{tag}_{}", std::process::id()));
    p
}

fn mk_db(path: &std::path::Path, schema: Schema, persistence: bool) -> NoDb {
    let mut db = NoDb::new(NoDbConfig {
        scan_threads: 2,
        snapshot_persistence: persistence,
        ..NoDbConfig::default()
    });
    db.register_csv_with_schema("t", path, schema, false)
        .unwrap();
    db
}

/// Generate data, warm a table, write its sidecar, and return the paths.
fn warmed_sidecar(tag: &str) -> (std::path::PathBuf, std::path::PathBuf, GeneratorConfig) {
    let gen = GeneratorConfig::uniform_ints(COLS, 500, 0xC0FF);
    let path = scratch(tag);
    gen.generate_file(&path).unwrap();
    let warm = mk_db(&path, gen.schema(), true);
    warm.query(SQL).unwrap();
    for (table, r) in warm.admin().snapshot_now() {
        r.unwrap_or_else(|e| panic!("snapshot_now({table}): {e}"));
    }
    let side = snapshot::sidecar_path(&path);
    assert!(side.exists());
    (path, side, gen)
}

/// Open the table against the (possibly corrupted) sidecar and assert it
/// behaves exactly like a cold instance: restore rejected, results
/// byte-identical, adaptive end-state identical.
fn assert_degrades_to_cold(case: &str, path: &std::path::Path, gen: &GeneratorConfig) {
    let cold = mk_db(path, gen.schema(), false);
    let want = cold.query(SQL).unwrap().to_string();
    let want_count = cold.query("SELECT COUNT(*) FROM t").unwrap().to_string();

    let db = mk_db(path, gen.schema(), true);
    let stats = db.admin().snapshot_stats();
    assert_eq!(stats.restores, 0, "{case}: nothing restored ({stats:?})");
    assert_eq!(
        stats.restores_rejected, 1,
        "{case}: rejection counted ({stats:?})"
    );
    assert_eq!(
        db.query(SQL).unwrap().to_string(),
        want,
        "{case}: corrupted sidecar changed an answer"
    );
    assert_eq!(
        db.query("SELECT COUNT(*) FROM t").unwrap().to_string(),
        want_count,
        "{case}: corrupted sidecar changed COUNT(*)"
    );
    assert_same_state(case, &db, &cold, COLS);
}

fn cleanup(path: &std::path::Path) {
    std::fs::remove_file(snapshot::sidecar_path(path)).ok();
    std::fs::remove_file(path).ok();
}

/// Truncation at many cut points: header, mid-section, last byte.
#[test]
fn truncation_degrades_to_cold() {
    let (path, side, gen) = warmed_sidecar("trunc");
    let full = std::fs::read(&side).unwrap();
    let cuts = [4, 12, 20, full.len() / 2, full.len() - 1];
    for cut in cuts {
        std::fs::write(&side, &full[..cut]).unwrap();
        assert_degrades_to_cold(&format!("truncate@{cut}"), &path, &gen);
    }
    cleanup(&path);
}

/// Single-bit flips across the file: header fingerprint bytes, section
/// framing, payload bytes deep inside each section.
#[test]
fn bit_flips_degrade_to_cold() {
    let (path, side, gen) = warmed_sidecar("flip");
    let full = std::fs::read(&side).unwrap();
    let n = full.len();
    // Magic, version, header payload, early/middle/late payload bytes.
    let offsets = [0, 9, 17, 40, n / 4, n / 2, (3 * n) / 4, n - 2];
    for off in offsets {
        let mut evil = full.clone();
        evil[off] ^= 0x10;
        std::fs::write(&side, &evil).unwrap();
        assert_degrades_to_cold(&format!("bitflip@{off}"), &path, &gen);
    }
    cleanup(&path);
}

/// Version skew: a sidecar from "the future" is refused outright — no
/// attempt to parse a layout this build does not know.
#[test]
fn future_version_degrades_to_cold() {
    let (path, side, gen) = warmed_sidecar("version");
    let mut bytes = std::fs::read(&side).unwrap();
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    std::fs::write(&side, &bytes).unwrap();
    assert_degrades_to_cold("future-version", &path, &gen);
    cleanup(&path);
}

/// Stale fingerprint: the sidecar is internally pristine but the data file
/// it describes was replaced. The fingerprint check must win.
#[test]
fn stale_fingerprint_degrades_to_cold() {
    let (path, _side, _gen) = warmed_sidecar("stale");
    // Replace the data file wholesale (different seed + row count). The
    // sidecar on disk is untouched and self-consistent — only stale.
    let new = GeneratorConfig::uniform_ints(COLS, 480, 0xDEAD);
    new.generate_file(&path).unwrap();
    assert_degrades_to_cold("stale-fingerprint", &path, &new);
    cleanup(&path);
}

/// A foreign file wearing the sidecar's name.
#[test]
fn bad_magic_and_garbage_degrade_to_cold() {
    let (path, side, gen) = warmed_sidecar("garbage");
    for (case, bytes) in [
        (
            "not-a-sidecar",
            b"these are not the bytes you are looking for".to_vec(),
        ),
        ("empty", Vec::new()),
        ("magic-only", snapshot::MAGIC.to_vec()),
    ] {
        std::fs::write(&side, &bytes).unwrap();
        assert_degrades_to_cold(case, &path, &gen);
    }
    // Trailing garbage after a valid image must also be refused: re-warm
    // to get a valid sidecar, then append bytes.
    let warm = mk_db(&path, gen.schema(), true);
    warm.query(SQL).unwrap();
    for (table, r) in warm.admin().snapshot_now() {
        r.unwrap_or_else(|e| panic!("snapshot_now({table}): {e}"));
    }
    drop(warm);
    let mut bytes = std::fs::read(&side).unwrap();
    bytes.extend_from_slice(&[0xAB; 16]);
    std::fs::write(&side, &bytes).unwrap();
    assert_degrades_to_cold("trailing-garbage", &path, &gen);
    cleanup(&path);
}

/// After degrading to cold, the table re-warms normally and the *next*
/// snapshot overwrites the corrupt sidecar with a good one: corruption is
/// an event, not a permanent haunting.
#[test]
fn corruption_recovery_rewrites_a_good_sidecar() {
    let (path, side, gen) = warmed_sidecar("recover");
    let mut bytes = std::fs::read(&side).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&side, &bytes).unwrap();

    let db = mk_db(&path, gen.schema(), true);
    assert_eq!(db.admin().snapshot_stats().restores_rejected, 1);
    let want = db.query(SQL).unwrap().to_string();
    // Write-behind (persistence is on) replaced the corrupt sidecar.
    assert!(db.admin().snapshot_stats().saves >= 1);
    drop(db);

    let reborn = mk_db(&path, gen.schema(), true);
    let stats = reborn.admin().snapshot_stats();
    assert_eq!(stats.restores, 1, "healed sidecar restores: {stats:?}");
    assert_eq!(reborn.query(SQL).unwrap().to_string(), want);
    cleanup(&path);
}
