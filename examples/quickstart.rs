//! Quickstart: point NoDB at a raw CSV file and query it immediately —
//! no loading step, no DDL (schema is inferred from a sample).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use nodb_repro::prelude::*;

fn main() {
    // 1. Get some raw data. In real life this file already exists; here we
    //    synthesize a 50k-row, 8-attribute CSV with the workload generator.
    let dir = std::env::temp_dir().join(format!("nodb_quickstart_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let csv = dir.join("events.csv");
    let gen = GeneratorConfig::uniform_ints(8, 50_000, 2024);
    gen.generate_file(&csv).expect("generate data");
    println!("raw file: {} ({} rows)", csv.display(), 50_000);

    // 2. Register and query — data-to-query time is one `stat` call.
    let mut db = NoDb::new(NoDbConfig::default());
    let t0 = std::time::Instant::now();
    db.register_csv_with_schema("events", &csv, gen.schema(), false)
        .expect("register");
    println!("registered in {:?} (no data touched)\n", t0.elapsed());

    // 3. First query: the file is tokenized selectively, and the positional
    //    map, cache and statistics are populated as side effects.
    let sql = "SELECT c1, c5 FROM events WHERE c2 < 250000000 ORDER BY c1 LIMIT 5";
    let r = db.query(sql).expect("query 1");
    println!("{sql}\n{r}\n");
    let rep = db.admin().last_report().unwrap().clone();
    println!(
        "q1 latency {:?}  [{}]",
        rep.total,
        rep.breakdown.panel_row()
    );

    // 4. Same query again: served from the adaptive structures.
    let r2 = db.query(sql).expect("query 2");
    assert_eq!(r, r2);
    let rep2 = db.admin().last_report().unwrap();
    println!(
        "q2 latency {:?}  fully_cached={} (speedup {:.1}x)\n",
        rep2.total,
        rep2.fully_cached,
        rep.total.as_secs_f64() / rep2.total.as_secs_f64()
    );

    // 5. The Figure 2 monitoring panel.
    println!("{}", db.snapshot("events").unwrap().panel());

    std::fs::remove_dir_all(dir).ok();
}
