//! Per-table statistics registry and the estimator the optimizer consults.

use std::collections::HashMap;

use nodb_rawcsv::Datum;

use crate::attr::{AttrStats, AttrStatsState};
use crate::estimate::{default_selectivity, PredicateSketch, SelectivityEstimator};

/// All statistics known for one raw file, keyed by attribute index.
///
/// Populated on the fly by the scan operator; attributes no query has
/// touched have no entry — exactly the paper's "statistics only on requested
/// attributes".
#[derive(Debug, Default)]
pub struct TableStats {
    attrs: HashMap<usize, AttrStats>,
    /// Exact row count once any full scan has completed; before that, the
    /// max rows_seen across attributes serves as a lower bound.
    row_count: Option<u64>,
    /// Per-attribute observation frontier: rows `[0, frontier)` have already
    /// been fed into the accumulator (under the sampling stride). Scans skip
    /// rows below the frontier, so re-scans — and, crucially, concurrent
    /// scans whose side effects are merged one after another — observe every
    /// `(attr, row)` pair at most once. Kept separate from [`AttrStats`] so
    /// an advanced frontier alone never makes an attribute "covered".
    observed: HashMap<usize, u64>,
    /// Sampling stride used by the scan: every `sample_every`-th row of a
    /// scan feeds `observe`. 1 = every row.
    pub sample_every: u64,
}

impl TableStats {
    /// Empty registry with the given sampling stride.
    pub fn new(sample_every: u64) -> Self {
        TableStats {
            attrs: HashMap::new(),
            row_count: None,
            observed: HashMap::new(),
            sample_every: sample_every.max(1),
        }
    }

    /// Accumulator for `attr`, created on first touch.
    pub fn attr_mut(&mut self, attr: usize) -> &mut AttrStats {
        self.attrs
            .entry(attr)
            .or_insert_with(|| AttrStats::new(attr))
    }

    /// Whether the scan should feed `row` (a 0-based data-row index) into
    /// the accumulators under the sampling stride.
    ///
    /// This is the single source of truth for both the sequential scan and
    /// the parallel scan's merge phase. The parallel scan deliberately
    /// *replays* buffered observations in global row order instead of
    /// merging per-partition accumulators: the reservoir sample is a
    /// sequential-stream algorithm whose state depends on arrival order, so
    /// order-preserving replay is what keeps `scan_threads = N` statistics
    /// byte-identical to `scan_threads = 1`.
    #[inline]
    pub fn should_sample(&self, row: u64) -> bool {
        row.is_multiple_of(self.sample_every)
    }

    /// Accumulator for `attr`, if any query has touched it.
    pub fn attr(&self, attr: usize) -> Option<&AttrStats> {
        self.attrs.get(&attr)
    }

    /// First row of `attr` not yet fed into the accumulators (0 when the
    /// attribute has never been observed). Scans observe only rows at or
    /// beyond this frontier.
    pub fn observed_upto(&self, attr: usize) -> u64 {
        self.observed.get(&attr).copied().unwrap_or(0)
    }

    /// Advance the observation frontier of `attr` to `upto` (monotone; a
    /// smaller value is ignored). Called when a scan that covered rows
    /// `[0, upto)` finishes — including the merge phase of a parallel or
    /// concurrent scan, which makes repeated merges of the same rows no-ops.
    pub fn advance_observed(&mut self, attr: usize, upto: u64) {
        let e = self.observed.entry(attr).or_insert(0);
        *e = (*e).max(upto);
    }

    /// Attributes with statistics, sorted.
    pub fn covered_attrs(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.attrs.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Record the exact row count after a complete scan.
    pub fn set_row_count(&mut self, n: u64) {
        self.row_count = Some(n);
    }

    /// Exact row count if known.
    pub fn known_row_count(&self) -> Option<u64> {
        self.row_count
    }

    /// Reset everything (file replaced).
    pub fn clear(&mut self) {
        self.attrs.clear();
        self.observed.clear();
        self.row_count = None;
    }

    /// File grew: the exact count is stale but per-attribute accumulators
    /// stay valid as a sample of the prefix.
    pub fn note_appended(&mut self) {
        self.row_count = None;
    }

    /// Epoch quarantine: the backing file was truncated or rewritten, so
    /// every accumulator observed rows of a dead file epoch. Alias of
    /// [`Self::clear`] under the name the source-epoch layer uses.
    pub fn quarantine(&mut self) {
        self.clear();
    }

    /// Export the full registry state for snapshotting: every accumulator,
    /// the observation frontiers, and the exact row count when known.
    pub fn export_state(&self) -> TableStatsState {
        let mut attrs: Vec<AttrStatsState> =
            self.attrs.values().map(AttrStats::export_state).collect();
        attrs.sort_by_key(|a| a.attr);
        let mut observed: Vec<(usize, u64)> = self.observed.iter().map(|(&a, &f)| (a, f)).collect();
        observed.sort_unstable();
        TableStatsState {
            attrs,
            observed,
            row_count: self.row_count,
            sample_every: self.sample_every,
        }
    }

    /// Rebuild a registry from [`Self::export_state`]. Returns `None` when
    /// any accumulator fails validation or an accumulator's key disagrees
    /// with its recorded attribute — restored sidecars are untrusted input.
    pub fn from_state(state: TableStatsState) -> Option<Self> {
        let mut attrs = HashMap::new();
        for s in state.attrs {
            let attr = s.attr;
            let restored = AttrStats::from_state(s)?;
            if attrs.insert(attr, restored).is_some() {
                return None; // duplicate attribute entry
            }
        }
        Some(TableStats {
            attrs,
            row_count: state.row_count,
            observed: state.observed.into_iter().collect(),
            sample_every: state.sample_every.max(1),
        })
    }

    /// Selectivity with interior mutability over histogram rebuilds: this
    /// takes `&mut self` because histograms are built lazily from the
    /// reservoir. The optimizer holds the registry mutably during planning.
    pub fn selectivity_mut(&mut self, attr: usize, sketch: &PredicateSketch) -> f64 {
        let Some(stats) = self.attrs.get_mut(&attr) else {
            return default_selectivity(sketch);
        };
        if stats.rows_seen() == 0 {
            return default_selectivity(sketch);
        }
        let null_frac = stats.null_fraction();
        let nonnull = 1.0 - null_frac;
        let ndv = stats.ndv();
        match sketch {
            PredicateSketch::Eq(_) => (nonnull / ndv).clamp(0.0, 1.0),
            PredicateSketch::NotEq(_) => (nonnull * (1.0 - 1.0 / ndv)).clamp(0.0, 1.0),
            PredicateSketch::Lt(v) | PredicateSketch::Le(v) => match stats.histogram() {
                Some(h) => (nonnull * h.fraction_le(v)).clamp(0.0, 1.0),
                None => default_selectivity(sketch),
            },
            PredicateSketch::Gt(v) | PredicateSketch::Ge(v) => match stats.histogram() {
                Some(h) => (nonnull * (1.0 - h.fraction_le(v))).clamp(0.0, 1.0),
                None => default_selectivity(sketch),
            },
            PredicateSketch::Between(lo, hi) => match stats.histogram() {
                Some(h) => (nonnull * h.fraction_between(lo, hi)).clamp(0.0, 1.0),
                None => default_selectivity(sketch),
            },
            PredicateSketch::InList(n) => ((nonnull / ndv) * *n as f64).clamp(0.0, 1.0),
            PredicateSketch::IsNull => null_frac,
            PredicateSketch::IsNotNull => nonnull,
            PredicateSketch::StrPrefix(prefix) => {
                // Fraction of the sample matching the prefix.
                prefix_fraction(stats, prefix).unwrap_or_else(|| default_selectivity(sketch))
            }
            PredicateSketch::Opaque => default_selectivity(sketch),
        }
    }
}

/// Serializable snapshot of a [`TableStats`] registry.
#[derive(Debug, Clone)]
pub struct TableStatsState {
    /// Per-attribute accumulator states, sorted by attribute.
    pub attrs: Vec<AttrStatsState>,
    /// `(attr, frontier)` observation frontiers, sorted by attribute.
    pub observed: Vec<(usize, u64)>,
    /// Exact row count when a full scan has completed.
    pub row_count: Option<u64>,
    /// Sampling stride in force when the snapshot was taken.
    pub sample_every: u64,
}

/// Estimate prefix-match selectivity by scanning the reservoir sample.
fn prefix_fraction(stats: &mut AttrStats, prefix: &str) -> Option<f64> {
    // The reservoir lives behind the accumulator; expose through histogram's
    // underlying sample by re-deriving from min/max is wrong, so instead we
    // rely on a dedicated sample walk.
    let sample = stats.sample();
    if sample.is_empty() {
        return None;
    }
    let hits = sample
        .iter()
        .filter(|d| matches!(d, Datum::Str(s) if s.starts_with(prefix)))
        .count();
    Some(hits as f64 / sample.len() as f64)
}

/// Immutable estimator snapshot facade over `TableStats`.
///
/// The engine's optimizer takes a `&mut TableStats` during planning (see
/// [`TableStats::selectivity_mut`]); this wrapper adapts it to the shared
/// [`SelectivityEstimator`] trait via a `RefCell`, keeping the trait object
/// usable where mutation is awkward.
pub struct StatsEstimator<'a> {
    inner: std::cell::RefCell<&'a mut TableStats>,
}

impl<'a> StatsEstimator<'a> {
    /// Wrap a mutable registry.
    pub fn new(stats: &'a mut TableStats) -> Self {
        StatsEstimator {
            inner: std::cell::RefCell::new(stats),
        }
    }
}

impl SelectivityEstimator for StatsEstimator<'_> {
    fn row_count(&self) -> Option<u64> {
        self.inner.borrow().known_row_count()
    }

    fn selectivity(&self, attr: usize, sketch: &PredicateSketch) -> f64 {
        self.inner.borrow_mut().selectivity_mut(attr, sketch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn observed(n: i64) -> TableStats {
        let mut t = TableStats::new(1);
        let a = t.attr_mut(0);
        for i in 0..n {
            a.observe(&Datum::Int(i));
        }
        t.set_row_count(n as u64);
        t
    }

    #[test]
    fn untouched_attr_uses_defaults() {
        let mut t = TableStats::new(1);
        let s = t.selectivity_mut(5, &PredicateSketch::Eq(Datum::Int(1)));
        assert_eq!(s, crate::estimate::defaults::EQ);
    }

    #[test]
    fn eq_uses_ndv() {
        let mut t = observed(1000);
        let s = t.selectivity_mut(0, &PredicateSketch::Eq(Datum::Int(5)));
        assert!((s - 0.001).abs() < 0.0015, "eq sel = {s}");
    }

    #[test]
    fn range_uses_histogram() {
        let mut t = observed(1000);
        let s = t.selectivity_mut(0, &PredicateSketch::Lt(Datum::Int(250)));
        assert!((s - 0.25).abs() < 0.08, "lt sel = {s}");
        let g = t.selectivity_mut(0, &PredicateSketch::Gt(Datum::Int(250)));
        assert!((g - 0.75).abs() < 0.08, "gt sel = {g}");
    }

    #[test]
    fn between_estimates_interval() {
        let mut t = observed(1000);
        let s = t.selectivity_mut(
            0,
            &PredicateSketch::Between(Datum::Int(100), Datum::Int(300)),
        );
        assert!((s - 0.2).abs() < 0.08, "between sel = {s}");
    }

    #[test]
    fn null_fraction_drives_is_null() {
        let mut t = TableStats::new(1);
        let a = t.attr_mut(0);
        for i in 0..100 {
            if i % 4 == 0 {
                a.observe(&Datum::Null);
            } else {
                a.observe(&Datum::Int(i));
            }
        }
        let s = t.selectivity_mut(0, &PredicateSketch::IsNull);
        assert!((s - 0.25).abs() < 1e-9);
    }

    #[test]
    fn observation_frontier_is_monotone_and_cleared() {
        let mut t = TableStats::new(1);
        assert_eq!(t.observed_upto(2), 0);
        t.advance_observed(2, 100);
        t.advance_observed(2, 50); // smaller is ignored
        assert_eq!(t.observed_upto(2), 100);
        // Frontier alone does not create coverage.
        assert!(t.covered_attrs().is_empty());
        t.clear();
        assert_eq!(t.observed_upto(2), 0);
    }

    #[test]
    fn covered_attrs_lists_touched_only() {
        let mut t = TableStats::new(1);
        t.attr_mut(3).observe(&Datum::Int(1));
        t.attr_mut(1).observe(&Datum::Int(1));
        assert_eq!(t.covered_attrs(), vec![1, 3]);
    }

    #[test]
    fn estimator_facade_answers() {
        let mut t = observed(100);
        let e = StatsEstimator::new(&mut t);
        assert_eq!(e.row_count(), Some(100));
        let s = e.selectivity(0, &PredicateSketch::Lt(Datum::Int(50)));
        assert!(s > 0.3 && s < 0.7);
    }

    #[test]
    fn table_state_round_trip_preserves_everything() {
        let mut t = TableStats::new(2);
        for i in 0..500 {
            t.attr_mut(0).observe(&Datum::Int(i));
            if i % 3 == 0 {
                t.attr_mut(4).observe(&Datum::from("abc"));
            }
        }
        t.advance_observed(0, 500);
        t.advance_observed(4, 500);
        t.set_row_count(500);

        let mut r = TableStats::from_state(t.export_state()).expect("consistent");
        assert_eq!(r.covered_attrs(), t.covered_attrs());
        assert_eq!(r.known_row_count(), t.known_row_count());
        assert_eq!(r.sample_every, t.sample_every);
        for &a in &t.covered_attrs() {
            assert_eq!(r.observed_upto(a), t.observed_upto(a));
            let (ta, ra) = (t.attr(a).unwrap(), r.attr(a).unwrap());
            assert_eq!(ta.rows_seen(), ra.rows_seen());
            assert_eq!(ta.sample(), ra.sample());
        }
        // Selectivity estimates (which rebuild histograms lazily) agree.
        let sk = PredicateSketch::Lt(Datum::Int(100));
        assert_eq!(t.selectivity_mut(0, &sk), r.selectivity_mut(0, &sk));
    }

    #[test]
    fn table_from_state_rejects_duplicates() {
        let mut t = TableStats::new(1);
        t.attr_mut(0).observe(&Datum::Int(1));
        let mut s = t.export_state();
        let dup = s.attrs[0].clone();
        s.attrs.push(dup);
        assert!(TableStats::from_state(s).is_none());
    }

    #[test]
    fn prefix_selectivity_from_sample() {
        let mut t = TableStats::new(1);
        let a = t.attr_mut(0);
        for s in ["apple", "apricot", "banana", "avocado"] {
            a.observe(&Datum::from(s));
        }
        let s = t.selectivity_mut(0, &PredicateSketch::StrPrefix("ap".into()));
        assert!((s - 0.5).abs() < 1e-9, "prefix sel = {s}");
    }
}
