//! Selectivity-estimation vocabulary shared between the statistics store and
//! the query optimizer.
//!
//! The engine describes each conjunct as a [`PredicateSketch`] — just enough
//! structure for cardinality math, independent of expression-tree details —
//! and any [`SelectivityEstimator`] answers with a fraction in `[0, 1]`.

use nodb_rawcsv::Datum;

/// Magic selectivities used when no statistics exist (the classic
/// System-R-era defaults, which are also what a freshly-started PostgresRaw
/// falls back to before its scan operator has observed anything).
pub mod defaults {
    /// Equality without statistics.
    pub const EQ: f64 = 0.005;
    /// Inequality / range without statistics.
    pub const RANGE: f64 = 1.0 / 3.0;
    /// BETWEEN without statistics.
    pub const BETWEEN: f64 = 0.11;
    /// IS NULL without statistics.
    pub const IS_NULL: f64 = 0.01;
    /// String prefix match without statistics.
    pub const PREFIX: f64 = 0.05;
}

/// Shape of one predicate over a single attribute.
#[derive(Debug, Clone, PartialEq)]
pub enum PredicateSketch {
    /// `attr = v`
    Eq(Datum),
    /// `attr <> v`
    NotEq(Datum),
    /// `attr < v`
    Lt(Datum),
    /// `attr <= v`
    Le(Datum),
    /// `attr > v`
    Gt(Datum),
    /// `attr >= v`
    Ge(Datum),
    /// `attr BETWEEN lo AND hi`
    Between(Datum, Datum),
    /// `attr IN (v1, ...)`
    InList(usize),
    /// `attr IS NULL`
    IsNull,
    /// `attr IS NOT NULL`
    IsNotNull,
    /// `attr LIKE 'prefix%'`
    StrPrefix(String),
    /// Anything the sketcher could not classify.
    Opaque,
}

/// A source of cardinality estimates for one table.
pub trait SelectivityEstimator {
    /// Estimated total row count, if known.
    fn row_count(&self) -> Option<u64>;

    /// Estimated fraction of rows satisfying `sketch` on `attr`.
    fn selectivity(&self, attr: usize, sketch: &PredicateSketch) -> f64;
}

/// Estimator with no information at all: every answer is a textbook default.
/// Used by the engine when a table has no statistics registered — and by the
/// FIG3/KNOBS ablations that disable on-the-fly statistics.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoStats;

impl SelectivityEstimator for NoStats {
    fn row_count(&self) -> Option<u64> {
        None
    }

    fn selectivity(&self, _attr: usize, sketch: &PredicateSketch) -> f64 {
        default_selectivity(sketch)
    }
}

/// The no-information default for each sketch shape.
pub fn default_selectivity(sketch: &PredicateSketch) -> f64 {
    match sketch {
        PredicateSketch::Eq(_) => defaults::EQ,
        PredicateSketch::NotEq(_) => 1.0 - defaults::EQ,
        PredicateSketch::Lt(_)
        | PredicateSketch::Le(_)
        | PredicateSketch::Gt(_)
        | PredicateSketch::Ge(_) => defaults::RANGE,
        PredicateSketch::Between(_, _) => defaults::BETWEEN,
        PredicateSketch::InList(n) => (defaults::EQ * *n as f64).min(1.0),
        PredicateSketch::IsNull => defaults::IS_NULL,
        PredicateSketch::IsNotNull => 1.0 - defaults::IS_NULL,
        PredicateSketch::StrPrefix(_) => defaults::PREFIX,
        PredicateSketch::Opaque => defaults::RANGE,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_stats_returns_defaults() {
        let e = NoStats;
        assert_eq!(
            e.selectivity(0, &PredicateSketch::Eq(Datum::Int(1))),
            defaults::EQ
        );
        assert_eq!(e.row_count(), None);
    }

    #[test]
    fn in_list_scales_with_arity() {
        let s3 = default_selectivity(&PredicateSketch::InList(3));
        let s1 = default_selectivity(&PredicateSketch::InList(1));
        assert!(s3 > s1);
        assert!(default_selectivity(&PredicateSketch::InList(10_000)) <= 1.0);
    }

    #[test]
    fn complements_sum_to_one() {
        let eq = default_selectivity(&PredicateSketch::Eq(Datum::Int(1)));
        let ne = default_selectivity(&PredicateSketch::NotEq(Datum::Int(1)));
        assert!((eq + ne - 1.0).abs() < 1e-9);
    }
}
