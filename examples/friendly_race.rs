//! The §4.3 "friendly race": PostgresRaw vs conventional load-then-query
//! systems on the same raw file and the same query sequence, scored by
//! *data-to-query time* — the clock starts before anyone has loaded
//! anything.
//!
//! ```text
//! cargo run --release --example friendly_race [-- rows]
//! ```

use nodb_bench::systems::race_lineup;
use nodb_bench::workload::{race_queries, scratch_dir, Dataset};

fn main() {
    let rows: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    let dir = scratch_dir("race_example");
    println!("generating {rows}-row, 10-attribute raw file ...");
    let data = Dataset::standard(&dir, 10, rows, 0xCAFE);
    let schema = data.schema();
    let queries = race_queries("t", 10);

    println!("\nSTARTING SHOT — every system begins from the raw file.\n");
    for mut sys in race_lineup() {
        let init = sys.init(&data.path, &schema).expect("init");
        let mut cum = init;
        let mut first = None;
        for q in &queries {
            let (_, d) = sys.run(q).expect("query");
            cum += d;
            first.get_or_insert(cum);
        }
        println!(
            "{:32} init {:>9.3}s   first answer at {:>9.3}s   all {} queries done at {:>9.3}s",
            sys.name(),
            init.as_secs_f64(),
            first.unwrap().as_secs_f64(),
            queries.len(),
            cum.as_secs_f64()
        );
    }
    println!(
        "\nPostgresRaw starts answering immediately; conventional systems are still loading.\n\
         (Run with a larger row count to widen the gap: cargo run --release --example friendly_race -- 500000)"
    );
    std::fs::remove_dir_all(dir).ok();
}
