//! Multi-client throughput benchmark for the concurrent table registry.
//!
//! One shared `NoDb` instance, one pre-warmed table, and `clients` ∈
//! {1, 2, 4, 8} threads each issuing the same read-mostly query over and
//! over. Before PR 2 the facade took `&mut self`, so this workload could
//! not even be expressed; now warm queries stream under the table's read
//! lock and the curve shows how far concurrent clients scale before the
//! lock and the memory bus push back. A second, cold-ish variant alternates
//! attribute pairs so some queries re-scan the file under the read lock
//! while others are served from cache — the mixed mode the registry's
//! staged merge was built for.
//!
//! Every run rewrites `BENCH_concurrent_queries.json` at the workspace root
//! via [`nodb_bench::report::BenchRecord`] with a `clients` column, so the
//! multi-client trajectory is tracked across PRs. Row count is overridable
//! through `NODB_BENCH_ROWS` for quick local runs.

use std::cell::RefCell;
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use nodb_bench::report::{update_bench_json, BenchRecord};
use nodb_bench::workload::scratch_dir;
use nodb_core::{NoDb, NoDbConfig};
use nodb_rawcsv::{GeneratorConfig, Schema};

const COLS: usize = 8;
/// Queries issued per client per iteration.
const QUERIES_PER_CLIENT: usize = 8;

fn rows() -> u64 {
    std::env::var("NODB_BENCH_ROWS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000)
}

fn shared_db(path: &PathBuf, schema: &Schema) -> Arc<NoDb> {
    let cfg = NoDbConfig {
        detailed_timing: false,
        detect_updates: false,
        ..NoDbConfig::default()
    };
    let mut db = NoDb::new(cfg);
    db.register_csv_with_schema("t", path, schema.clone(), false)
        .unwrap();
    Arc::new(db)
}

/// Issue `QUERIES_PER_CLIENT` queries from each of `clients` threads
/// against one shared instance; returns total rows returned (sanity) and
/// every individual query latency (the tail-percentile columns).
fn hammer(db: &Arc<NoDb>, clients: usize, sql: &str) -> (usize, Vec<Duration>) {
    std::thread::scope(|s| {
        (0..clients)
            .map(|_| {
                let db = Arc::clone(db);
                s.spawn(move || {
                    let mut total = 0usize;
                    let mut lat = Vec::with_capacity(QUERIES_PER_CLIENT);
                    for _ in 0..QUERIES_PER_CLIENT {
                        let t = Instant::now();
                        total += db.query(sql).unwrap().len();
                        lat.push(t.elapsed());
                    }
                    (total, lat)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .fold((0, Vec::new()), |(total, mut all), (t, lat)| {
                all.extend(lat);
                (total + t, all)
            })
    })
}

fn bench_concurrent_queries(c: &mut Criterion) {
    let rows = rows();
    let dir = scratch_dir("bench_concurrent_queries");
    let gen = GeneratorConfig::uniform_ints(COLS, rows, 0xC11E);
    let mut path = dir.clone();
    path.push("data.csv");
    gen.generate_file(&path).expect("generate dataset");
    let schema = gen.schema();
    let warm_sql = "SELECT c1, c5 FROM t WHERE c3 > 500000000";

    // Reference answer (and warm-up correctness pin).
    let expect = {
        let db = shared_db(&path, &schema);
        db.query(warm_sql).unwrap().len()
    };

    let mut group = c.benchmark_group(format!("concurrent_queries_{rows}_rows"));
    group.sample_size(4);
    let samples: RefCell<Vec<BenchRecord>> = RefCell::new(Vec::new());
    for clients in [1usize, 2, 4, 8] {
        // Warm shared cache: every query streams under the read lock.
        let durations = RefCell::new(Vec::new());
        let latencies = RefCell::new(Vec::new());
        group.bench_function(format!("warm_clients_{clients}"), |b| {
            b.iter_batched(
                || {
                    let db = shared_db(&path, &schema);
                    assert_eq!(db.query(warm_sql).unwrap().len(), expect);
                    db
                },
                |db| {
                    let t = Instant::now();
                    let (total, lat) = hammer(&db, clients, warm_sql);
                    durations.borrow_mut().push(t.elapsed());
                    latencies.borrow_mut().extend(lat);
                    assert_eq!(total, expect * clients * QUERIES_PER_CLIENT);
                    black_box(total)
                },
                BatchSize::LargeInput,
            )
        });
        samples.borrow_mut().push(
            BenchRecord::from_samples_clients(
                "warm_shared_cache",
                NoDbConfig::default().effective_scan_threads(),
                clients,
                rows,
                &durations.borrow(),
            )
            .with_percentiles(&latencies.borrow()),
        );

        // Mixed: clients rotate attribute pairs, so scans that grow the
        // map/cache interleave with pure cache reads on the same table.
        let durations = RefCell::new(Vec::new());
        let latencies = RefCell::new(Vec::new());
        group.bench_function(format!("mixed_clients_{clients}"), |b| {
            b.iter_batched(
                || shared_db(&path, &schema),
                |db| {
                    let t = Instant::now();
                    let (total, lat) = std::thread::scope(|s| {
                        (0..clients)
                            .map(|k| {
                                let db = Arc::clone(&db);
                                s.spawn(move || {
                                    let mut total = 0usize;
                                    let mut lat = Vec::with_capacity(QUERIES_PER_CLIENT);
                                    for q in 0..QUERIES_PER_CLIENT {
                                        let a = (k + q) % (COLS - 1);
                                        let sql = format!(
                                            "SELECT c{a}, c{} FROM t WHERE c3 > 500000000",
                                            a + 1
                                        );
                                        let t = Instant::now();
                                        total += db.query(&sql).unwrap().len();
                                        lat.push(t.elapsed());
                                    }
                                    (total, lat)
                                })
                            })
                            .collect::<Vec<_>>()
                            .into_iter()
                            .map(|h| h.join().unwrap())
                            .fold((0usize, Vec::new()), |(total, mut all), (t, lat)| {
                                all.extend(lat);
                                (total + t, all)
                            })
                    });
                    durations.borrow_mut().push(t.elapsed());
                    latencies.borrow_mut().extend(lat);
                    assert_eq!(total, expect * clients * QUERIES_PER_CLIENT);
                    black_box(total)
                },
                BatchSize::LargeInput,
            )
        });
        samples.borrow_mut().push(
            BenchRecord::from_samples_clients(
                "mixed_shared_scans",
                NoDbConfig::default().effective_scan_threads(),
                clients,
                rows,
                &durations.borrow(),
            )
            .with_percentiles(&latencies.borrow()),
        );
    }
    group.finish();

    let records = samples.into_inner();
    let mut out = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    out.pop(); // crates/
    out.pop(); // workspace root
    out.push("BENCH_concurrent_queries.json");
    update_bench_json(&out, &records).expect("write BENCH_concurrent_queries.json");
    for name in ["warm_shared_cache", "mixed_shared_scans"] {
        let base = records
            .iter()
            .find(|r| r.name == name && r.clients == 1)
            .map(|r| r.mean_ms);
        for r in records.iter().filter(|r| r.name == name) {
            // Throughput scaling: 1-client wall time × clients / N-client
            // wall time (1.0 = no contention penalty at all).
            let scale = base
                .map(|b| b * r.clients as f64 / r.mean_ms)
                .unwrap_or(0.0);
            println!(
                "{name:<20} clients={:<2} mean {:>9.2} ms  min {:>9.2} ms  p50/p95/p99 {:>7.2}/{:>7.2}/{:>7.2} ms  throughput x{scale:>5.2}",
                r.clients, r.mean_ms, r.min_ms, r.p50_ms, r.p95_ms, r.p99_ms
            );
        }
    }
    println!("wrote {}", out.display());

    std::fs::remove_dir_all(dir).ok();
}

criterion_group!(benches, bench_concurrent_queries);
criterion_main!(benches);
