//! Cross-system experiments: the friendly race (RACE), update handling
//! (UPDATES) and the component/budget ablation (KNOBS).

use std::time::Duration;

use nodb_core::NoDbConfig;
use nodb_rawcsv::Datum;

use crate::report::{ms, secs, Table};
use crate::systems::{race_lineup, Contestant, RawContestant};
use crate::workload::{race_queries, scratch_dir, sp_query, Dataset, Scale};

use super::ExperimentReport;

/// RACE — §4.3: every contestant gets the same raw file and the same query
/// sequence; conventional systems must load (and may index) first. The
/// metric is *data-to-query time*: when does each system deliver the answer
/// to query k, counted from the starting shot.
pub fn race(scale: Scale) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "race",
        "Friendly race: data-to-query time, PostgresRaw vs conventional DBMS",
    );
    let dir = scratch_dir("race");
    let data = Dataset::standard(&dir, 10, scale.rows(), 0xACE);
    let schema = data.schema();
    let queries = race_queries("t", 10);

    let mut t = Table::new(
        "RACE — cumulative time to answer query k (seconds since start)",
        &["system", "init_s", "q1", "q3", "q5", "q10", "total_s"],
    );
    let mut first_answer = Vec::new();
    let mut reference: Option<Vec<nodb_engine::QueryResult>> = None;
    for mut sys in race_lineup() {
        let init = sys.init(&data.path, &schema).unwrap();
        let mut cum = init;
        let mut marks = Vec::new();
        let mut results = Vec::new();
        for q in &queries {
            let (r, d) = sys.run(q).unwrap();
            cum += d;
            marks.push(cum);
            results.push(r);
        }
        match &reference {
            None => reference = Some(results),
            Some(refr) => {
                for (i, (a, b)) in refr.iter().zip(&results).enumerate() {
                    assert_eq!(a, b, "{} disagrees on query {}", sys.name(), i);
                }
            }
        }
        first_answer.push((sys.name(), marks[0]));
        t.row(vec![
            sys.name(),
            secs(init),
            secs(marks[0]),
            secs(marks[2]),
            secs(marks[4]),
            secs(marks[9]),
            secs(*marks.last().unwrap()),
        ]);
    }
    report.tables.push(t);

    let raw_first = first_answer
        .iter()
        .find(|(n, _)| n.contains("PM+C"))
        .map(|(_, d)| *d)
        .unwrap_or_default();
    let best_loaded = first_answer
        .iter()
        .filter(|(n, _)| {
            !n.contains("PostgresRaw") && !n.contains("Baseline") && !n.contains("External")
        })
        .map(|(_, d)| *d)
        .min()
        .unwrap_or_default();
    report.notes.push(format!(
        "PostgresRaw answers its first query in {:.3}s while the fastest conventional system \
         needs {:.3}s just to become usable — the data-to-query gap the paper demonstrates",
        raw_first.as_secs_f64(),
        best_loaded.as_secs_f64()
    ));
    report.notes.push(
        "per-query latency of loaded systems is lower after init; NoDB wins data-to-query time, \
         conventional systems amortize over very long workloads — the paper's stated trade-off"
            .into(),
    );
    std::fs::remove_dir_all(dir).ok();
    report
}

/// UPDATES — §4.2: append to and then replace the raw file *behind the
/// system's back*; the next query must see the new data, reusing prefix
/// state for appends and dropping everything for replacement.
pub fn updates(scale: Scale) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "updates",
        "Update detection: appends reuse prefix state, replacement invalidates",
    );
    let dir = scratch_dir("updates");
    let rows = scale.rows() / 2;
    let data = Dataset::standard(&dir, 5, rows, 0x0bda);
    let schema = data.schema();
    let mut sys = RawContestant::pm_c();
    sys.init(&data.path, &schema).unwrap();

    let count_sql = "SELECT COUNT(*) FROM t";
    let mut t = Table::new(
        "UPDATES — event timeline",
        &[
            "event",
            "count(*)",
            "latency_ms",
            "cache_bytes_before_query",
            "correct",
        ],
    );
    let mut record = |sys: &mut RawContestant, event: &str, expect: i64| {
        let before = sys.db.snapshot("t").unwrap().cache_bytes;
        let (r, d) = sys.run(count_sql).unwrap();
        let got = r.scalar().cloned().unwrap();
        t.row(vec![
            event.into(),
            got.to_string(),
            ms(d),
            format!("{before}"),
            format!("{}", got == Datum::Int(expect)),
        ]);
        assert_eq!(got, Datum::Int(expect), "{event}");
    };

    record(&mut sys, "initial query", rows as i64);
    record(&mut sys, "warm query", rows as i64);

    // Append 20% more rows.
    let extra = rows / 5;
    data.gen.append_rows(&data.path, extra).unwrap();
    record(&mut sys, "after append (+20%)", (rows + extra) as i64);
    record(&mut sys, "warm after append", (rows + extra) as i64);

    // Replace the file entirely.
    let gen2 = nodb_rawcsv::GeneratorConfig::uniform_ints(5, rows / 10, 0xDEAD);
    gen2.generate_file(&data.path).unwrap();
    record(&mut sys, "after replacement", (rows / 10) as i64);
    report.tables.push(t);

    report.notes.push(
        "appends are detected by the head-fingerprint probe; prefix cache/map state stays valid \
         and only the tail is re-learned; replacement drops all auxiliary structures — both \
         without any user action, as in the demo's text-editor scenario"
            .into(),
    );
    std::fs::remove_dir_all(dir).ok();
    report
}

/// KNOBS — the demo's component toggles and storage-budget sliders:
/// {Baseline, PM, C, PM+C} × map/cache budget sweep, plus the
/// selective-tokenizing and force-full-parse ablations.
pub fn knobs(scale: Scale) -> ExperimentReport {
    let mut report =
        ExperimentReport::new("knobs", "Component toggles and budget sweep (ablation)");
    let dir = scratch_dir("knobs");
    let rows = scale.rows() / 2;
    let cols = 10usize;
    let data = Dataset::standard(&dir, cols, rows, 0x0b5);
    let schema = data.schema();

    // A fixed 8-query workload over a few attributes.
    let queries: Vec<String> = (0..8)
        .map(|i| sp_query("t", &[2 + (i % 3), 6], 4, 0.3 + 0.05 * i as f64))
        .collect();
    let run_total = |cfg: NoDbConfig| -> Duration {
        let mut sys = RawContestant::new(cfg);
        sys.init(&data.path, &schema).unwrap();
        let mut total = Duration::ZERO;
        for q in &queries {
            let (_, d) = sys.run(q).unwrap();
            total += d;
        }
        total
    };

    // (a) component toggles.
    let mut t1 = Table::new(
        "KNOBS(a) — component toggles, total workload time",
        &["configuration", "total_ms"],
    );
    let mut toggles = Vec::new();
    for cfg in [
        NoDbConfig::baseline(),
        NoDbConfig {
            selective_tokenizing: true,
            ..NoDbConfig::baseline()
        },
        NoDbConfig::pm_only(),
        NoDbConfig::cache_only(),
        NoDbConfig::pm_c(),
        NoDbConfig {
            cache_force_full_parse: true,
            ..NoDbConfig::pm_c()
        },
    ] {
        let label = if cfg.cache_force_full_parse {
            "PM+C (force-full-parse ablation)".to_string()
        } else {
            cfg.label().to_string()
        };
        let total = run_total(cfg);
        toggles.push((label.clone(), total));
        t1.row(vec![label, ms(total)]);
    }
    report.tables.push(t1);

    // (b) budget sweep for PM+C: fractions of the "everything fits" budget.
    let full_cache = (rows as usize) * 9 * cols;
    let full_map = (rows as usize) * 2 * cols;
    let mut t2 = Table::new(
        "KNOBS(b) — budget sweep (PM+C), total workload time",
        &["budget_%", "cache_budget_B", "map_budget_B", "total_ms"],
    );
    for pct in [1usize, 10, 50, 100] {
        let cfg = NoDbConfig {
            cache_budget_bytes: full_cache * pct / 100,
            map_budget_bytes: full_map * pct / 100,
            ..NoDbConfig::pm_c()
        };
        let total = run_total(cfg);
        t2.row(vec![
            format!("{pct}"),
            format!("{}", cfg.cache_budget_bytes),
            format!("{}", cfg.map_budget_bytes),
            ms(total),
        ]);
    }
    report.tables.push(t2);

    let base = toggles[0].1.as_secs_f64();
    let pmc = toggles[4].1.as_secs_f64();
    report.notes.push(format!(
        "PM+C completes the workload in {:.0}% of Baseline's time; each component helps \
         individually and they compose",
        pmc / base * 100.0
    ));
    report.notes.push(
        "larger budgets monotonically help until everything fits — the demo's storage sliders"
            .into(),
    );
    std::fs::remove_dir_all(dir).ok();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn race_produces_lineup_and_agreement() {
        let r = race(Scale::Small);
        assert_eq!(r.tables[0].len(), 5);
    }

    #[test]
    fn updates_timeline_is_correct() {
        let r = updates(Scale::Small);
        assert_eq!(r.tables[0].len(), 5);
    }

    #[test]
    fn knobs_grids_complete() {
        let r = knobs(Scale::Small);
        assert_eq!(r.tables[0].len(), 6);
        assert_eq!(r.tables[1].len(), 4);
    }
}
