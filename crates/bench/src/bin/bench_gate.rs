//! CI perf-regression gate over the `BENCH_*.json` trajectory files.
//!
//! Compares every fresh `BENCH_*.json` in `--fresh-dir` against the file of
//! the same name in `--baseline-dir`, record by record at equal
//! name/threads/clients/rows, and exits non-zero when any mean latency
//! regressed by more than `--threshold-pct` (default 25%). Fresh records
//! with no equal-key baseline are reported but never fail the gate (a new
//! bench has no history yet); a *malformed* baseline or fresh file does
//! fail it — a gate that silently compares nothing is worse than none.
//!
//! Typical CI wiring (see `.github/workflows/ci.yml`):
//!
//! ```text
//! cp BENCH_*.json ci-baselines/          # checked-in baselines
//! cargo bench ...                        # rewrites BENCH_*.json in place
//! cargo run --release -p nodb-bench --bin bench_gate -- \
//!     --baseline-dir ci-baselines --fresh-dir . --report bench_gate_report.txt
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use nodb_bench::report::{gate_bench_records, parse_bench_json, GateReport};

struct Args {
    baseline_dir: PathBuf,
    fresh_dir: PathBuf,
    threshold: f64,
    report: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        baseline_dir: PathBuf::from("ci-baselines"),
        fresh_dir: PathBuf::from("."),
        threshold: 0.25,
        report: PathBuf::from("bench_gate_report.txt"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("missing value for {flag}"));
        match flag.as_str() {
            "--baseline-dir" => args.baseline_dir = PathBuf::from(value(&flag)?),
            "--fresh-dir" => args.fresh_dir = PathBuf::from(value(&flag)?),
            "--report" => args.report = PathBuf::from(value(&flag)?),
            "--threshold-pct" => {
                args.threshold = value(&flag)?
                    .parse::<f64>()
                    .map_err(|e| format!("bad --threshold-pct: {e}"))?
                    / 100.0
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

/// The `BENCH_*.json` files present in a directory, sorted by name.
fn bench_files(dir: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    out.sort();
    out
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::from(2);
        }
    };

    let mut report_text = String::new();
    let mut totals = GateReport::default();
    let fresh_files = bench_files(&args.fresh_dir);
    if fresh_files.is_empty() {
        eprintln!(
            "bench_gate: no BENCH_*.json under {} — nothing to gate",
            args.fresh_dir.display()
        );
        return ExitCode::from(2);
    }

    for fresh_path in &fresh_files {
        let name = fresh_path.file_name().unwrap_or_default().to_string_lossy();
        let base_path = args.baseline_dir.join(name.as_ref());
        report_text.push_str(&format!("== {name} ==\n"));
        if !base_path.exists() {
            report_text.push_str("  no baseline file (new bench): skipped\n");
            continue;
        }
        let read_records = |p: &Path| {
            std::fs::read_to_string(p)
                .ok()
                .and_then(|body| parse_bench_json(&body))
        };
        let (Some(base), Some(fresh)) = (read_records(&base_path), read_records(fresh_path)) else {
            eprintln!("bench_gate: malformed records in {name} (baseline or fresh)");
            return ExitCode::from(2);
        };
        let gate = gate_bench_records(&base, &fresh, args.threshold);
        for line in &gate.lines {
            report_text.push_str("  ");
            report_text.push_str(&line.text);
            report_text.push('\n');
        }
        if gate.skipped > 0 {
            report_text.push_str(&format!(
                "  ({} fresh record(s) without an equal-rows/threads baseline)\n",
                gate.skipped
            ));
        }
        totals.compared += gate.compared;
        totals.skipped += gate.skipped;
        totals.regressions += gate.regressions;
    }

    let verdict = format!(
        "gate: {} compared, {} skipped, {} regression(s) at threshold {:.0}%\n",
        totals.compared,
        totals.skipped,
        totals.regressions,
        args.threshold * 100.0
    );
    report_text.push_str(&verdict);
    print!("{report_text}");
    if let Err(e) = std::fs::write(&args.report, &report_text) {
        eprintln!("bench_gate: cannot write {}: {e}", args.report.display());
        return ExitCode::from(2);
    }

    if totals.regressions > 0 {
        eprintln!("bench_gate: FAILED — throughput regression beyond threshold");
        return ExitCode::FAILURE;
    }
    if totals.compared == 0 {
        eprintln!("bench_gate: warning — no comparable records (first run on these baselines?)");
    }
    ExitCode::SUCCESS
}
