//! Query planning: name resolution, predicate pushdown, selectivity-ordered
//! conjuncts, projection pruning, aggregate lowering.
//!
//! The output is deliberately split at the paper's architectural seam:
//! a [`ScanRequest`] describing everything the storage layer must do
//! (attributes + pushed predicate — i.e. selective tokenizing, parsing and
//! tuple formation), and a [`Pipeline`] of conventional operators that run
//! unchanged above *any* scan source.

use nodb_rawcsv::Schema;
use nodb_sqlparse::ast::{AggFunc, Expr, OrderKey, SelectItem, SelectStmt};
use nodb_stats::SelectivityEstimator;

use crate::error::{EngineError, EngineResult};
use crate::expr::{resolve_expr, RExpr};
use crate::sketch::{join_conjuncts, sketch_conjunct, split_conjuncts};
use crate::source::ScanRequest;

/// One aggregate call, resolved over scan-output positions.
#[derive(Debug, Clone, PartialEq)]
pub struct AggCall {
    /// The function.
    pub func: AggFunc,
    /// Argument (`None` = `COUNT(*)`).
    pub arg: Option<RExpr>,
    /// DISTINCT modifier.
    pub distinct: bool,
}

/// Where each output column of an aggregate comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggOutput {
    /// `group_exprs[i]`.
    Group(usize),
    /// `aggs[i]`.
    Agg(usize),
}

/// Aggregation specification.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// Group-key expressions over scan positions (empty = one global group).
    pub group_exprs: Vec<RExpr>,
    /// Aggregate calls.
    pub aggs: Vec<AggCall>,
    /// Output column sources, in SELECT-list order.
    pub output: Vec<AggOutput>,
}

/// Operators above the scan.
#[derive(Debug, Clone)]
pub struct Pipeline {
    /// Projection expressions over scan positions (unused when `aggregate`
    /// is present).
    pub projections: Vec<RExpr>,
    /// Output column names, in order.
    pub column_names: Vec<String>,
    /// Aggregation, if any.
    pub aggregate: Option<AggSpec>,
    /// Sort keys as (output column position, ascending).
    pub order_by: Vec<(usize, bool)>,
    /// Row limit.
    pub limit: Option<u64>,
    /// Number of trailing projection columns that exist only as sort keys
    /// (`ORDER BY` on unselected columns); dropped after sorting.
    pub hidden_sort_columns: usize,
    /// When every projection (including hidden sort columns) is a bare
    /// column reference, the scan positions they read, in output order —
    /// the executor then copies batch storage directly instead of
    /// dispatching through expression evaluation (late materialization of
    /// typed batches). `None` whenever any projection computes.
    pub simple_projection: Option<Vec<usize>>,
}

/// A fully planned single-table query.
#[derive(Debug, Clone)]
pub struct PlannedQuery {
    /// What the storage layer must produce.
    pub scan: ScanRequest,
    /// What the engine does above it.
    pub pipeline: Pipeline,
    /// Estimated selectivity of the pushed predicate (1.0 when none) —
    /// recorded for EXPLAIN output and experiment logging.
    pub estimated_selectivity: f64,
}

impl PlannedQuery {
    /// Human-readable plan description (an EXPLAIN-lite).
    pub fn explain(&self) -> String {
        let mut s = String::new();
        if let Some(n) = self.pipeline.limit {
            s.push_str(&format!("Limit {n}\n"));
        }
        if !self.pipeline.order_by.is_empty() {
            let keys: Vec<String> = self
                .pipeline
                .order_by
                .iter()
                .map(|(c, asc)| {
                    let name = self
                        .pipeline
                        .column_names
                        .get(*c)
                        .map(String::as_str)
                        .unwrap_or("<hidden>");
                    format!("{} {}", name, if *asc { "ASC" } else { "DESC" })
                })
                .collect();
            s.push_str(&format!("Sort [{}]\n", keys.join(", ")));
        }
        if let Some(agg) = &self.pipeline.aggregate {
            s.push_str(&format!(
                "HashAggregate groups={} aggs={}\n",
                agg.group_exprs.len(),
                agg.aggs.len()
            ));
        } else {
            s.push_str(&format!(
                "Project [{}]\n",
                self.pipeline.column_names.join(", ")
            ));
        }
        s.push_str(&format!(
            "Scan attrs={:?} pushed_predicate={} est_selectivity={:.4}",
            self.scan.attrs,
            self.scan.predicate.is_some(),
            self.estimated_selectivity,
        ));
        s
    }
}

/// Plan a parsed SELECT against a table schema, consulting `estimator` to
/// order the pushed conjuncts (cheapest-most-selective first).
pub fn plan_select(
    stmt: &SelectStmt,
    schema: &Schema,
    estimator: &dyn SelectivityEstimator,
) -> EngineResult<PlannedQuery> {
    // 1. Expand the SELECT list.
    let items = expand_items(stmt, schema)?;

    // 2. Collect every referenced column name across all clauses.
    let mut names: Vec<String> = Vec::new();
    for (expr, _) in &items {
        expr.referenced_columns(&mut names);
    }
    if let Some(f) = &stmt.filter {
        f.referenced_columns(&mut names);
    }
    for g in &stmt.group_by {
        g.referenced_columns(&mut names);
    }
    for k in &stmt.order_by {
        // `ORDER BY alias` references an output column, not a file attribute.
        if let Expr::Column(n) = &k.expr {
            if items.iter().any(|(_, iname)| iname == n) {
                continue;
            }
        }
        k.expr.referenced_columns(&mut names);
    }

    // 3. Resolve names to file attributes; build the pruned attribute set.
    let mut attrs: Vec<usize> = Vec::new();
    for n in &names {
        let idx = schema
            .index_of(n)
            .ok_or_else(|| EngineError::Planning(format!("unknown column {n:?}")))?;
        if !attrs.contains(&idx) {
            attrs.push(idx);
        }
    }
    attrs.sort_unstable();
    let pos_of = |file_attr: usize| -> usize {
        attrs
            .binary_search(&file_attr)
            .expect("attr collected above")
    };
    let resolve = |name: &str| -> Option<usize> { schema.index_of(name).map(pos_of) };

    // 4. Pushed predicate: resolve, split, order by selectivity, rejoin.
    let mut estimated_selectivity = 1.0f64;
    let predicate = match &stmt.filter {
        Some(f) => {
            if f.contains_aggregate() {
                return Err(EngineError::Planning(
                    "aggregates are not allowed in WHERE".into(),
                ));
            }
            let resolved = resolve_expr(f, &resolve)?;
            let mut conjuncts = Vec::new();
            split_conjuncts(&resolved, &mut conjuncts);
            let mut priced: Vec<(f64, RExpr)> = conjuncts
                .into_iter()
                .map(|c| {
                    let sel = match sketch_conjunct(&c) {
                        Some((pos, sketch)) => estimator.selectivity(attrs[pos], &sketch),
                        None => nodb_stats::estimate::defaults::RANGE,
                    };
                    (sel, c)
                })
                .collect();
            // Stable sort keeps the written order among equal estimates.
            priced.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            estimated_selectivity = priced
                .iter()
                .map(|(s, _)| s)
                .product::<f64>()
                .clamp(0.0, 1.0);
            let ordered: Vec<RExpr> = priced.into_iter().map(|(_, c)| c).collect();
            join_conjuncts(&ordered)
        }
        None => None,
    };

    // 5. Aggregate vs plain projection.
    let has_agg = stmt.group_by.is_empty() && items.iter().any(|(e, _)| e.contains_aggregate())
        || !stmt.group_by.is_empty();

    let (mut pipeline_projections, column_names, aggregate) = if has_agg {
        plan_aggregate(stmt, &items, &resolve)?
    } else {
        let mut projections = Vec::with_capacity(items.len());
        let mut names = Vec::with_capacity(items.len());
        for (expr, name) in &items {
            projections.push(resolve_expr(expr, &resolve)?);
            names.push(name.clone());
        }
        (projections, names, None)
    };

    // 6. ORDER BY keys reference output columns (by alias/name or by
    //    structural equality with a projected expression); for plain
    //    projections, keys over unselected columns become hidden trailing
    //    sort columns.
    let mut hidden_sort_columns = 0usize;
    let order_by = resolve_order_by(
        &stmt.order_by,
        &items,
        &column_names,
        &mut pipeline_projections,
        aggregate.as_ref(),
        &resolve,
        &mut hidden_sort_columns,
    )?;

    // 7. Materialization flags: predicate-only positions need not be formed
    //    into tuples (selective tuple formation).
    let mut materialize = vec![false; attrs.len()];
    let mut mark = |e: &RExpr| {
        let mut cols = Vec::new();
        e.columns(&mut cols);
        for c in cols {
            materialize[c] = true;
        }
    };
    for p in &pipeline_projections {
        mark(p);
    }
    if let Some(agg) = &aggregate {
        for g in &agg.group_exprs {
            mark(g);
        }
        for a in &agg.aggs {
            if let Some(arg) = &a.arg {
                mark(arg);
            }
        }
    }

    // 8. All-column projections qualify for the executor's direct-copy path.
    let simple_projection: Option<Vec<usize>> = if aggregate.is_none() {
        pipeline_projections
            .iter()
            .map(|p| match p {
                RExpr::Col(c) => Some(*c),
                _ => None,
            })
            .collect()
    } else {
        None
    };

    Ok(PlannedQuery {
        scan: ScanRequest {
            attrs,
            predicate,
            materialize,
        },
        pipeline: Pipeline {
            projections: pipeline_projections,
            column_names,
            aggregate,
            order_by,
            limit: stmt.limit,
            hidden_sort_columns,
            simple_projection,
        },
        estimated_selectivity,
    })
}

/// Expand `*` and attach output names.
fn expand_items(stmt: &SelectStmt, schema: &Schema) -> EngineResult<Vec<(Expr, String)>> {
    let mut out = Vec::new();
    for item in &stmt.items {
        match item {
            SelectItem::Wildcard => {
                for (_, col) in schema.iter() {
                    out.push((Expr::Column(col.name.clone()), col.name.clone()));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = alias.clone().unwrap_or_else(|| display_expr(expr));
                out.push((expr.clone(), name));
            }
        }
    }
    if out.is_empty() {
        return Err(EngineError::Planning("empty SELECT list".into()));
    }
    Ok(out)
}

/// Lower an aggregate query.
fn plan_aggregate(
    stmt: &SelectStmt,
    items: &[(Expr, String)],
    resolve: &impl Fn(&str) -> Option<usize>,
) -> EngineResult<(Vec<RExpr>, Vec<String>, Option<AggSpec>)> {
    // Resolve group keys.
    let mut group_exprs = Vec::with_capacity(stmt.group_by.len());
    for g in &stmt.group_by {
        if g.contains_aggregate() {
            return Err(EngineError::Planning(
                "aggregates not allowed in GROUP BY".into(),
            ));
        }
        group_exprs.push(resolve_expr(g, resolve)?);
    }

    let mut aggs: Vec<AggCall> = Vec::new();
    let mut output = Vec::with_capacity(items.len());
    let mut names = Vec::with_capacity(items.len());

    for (expr, name) in items {
        names.push(name.clone());
        match expr {
            Expr::Agg {
                func,
                arg,
                distinct,
            } => {
                if *distinct && *func != AggFunc::Count {
                    return Err(EngineError::Planning(
                        "DISTINCT is only supported with COUNT".into(),
                    ));
                }
                let arg = match arg {
                    Some(a) => {
                        if a.contains_aggregate() {
                            return Err(EngineError::Planning("nested aggregates".into()));
                        }
                        Some(resolve_expr(a, resolve)?)
                    }
                    None => None,
                };
                aggs.push(AggCall {
                    func: *func,
                    arg,
                    distinct: *distinct,
                });
                output.push(AggOutput::Agg(aggs.len() - 1));
            }
            plain => {
                if plain.contains_aggregate() {
                    return Err(EngineError::Planning(
                        "expressions over aggregates are not supported; select the aggregate directly".into(),
                    ));
                }
                let resolved = resolve_expr(plain, resolve)?;
                // Must match a group key.
                let pos = group_exprs
                    .iter()
                    .position(|g| *g == resolved)
                    .ok_or_else(|| {
                        EngineError::Planning(format!(
                            "column {name:?} must appear in GROUP BY or an aggregate"
                        ))
                    })?;
                output.push(AggOutput::Group(pos));
            }
        }
    }

    Ok((
        Vec::new(),
        names,
        Some(AggSpec {
            group_exprs,
            aggs,
            output,
        }),
    ))
}

/// Resolve ORDER BY keys to output column positions. For non-aggregate
/// queries, keys over unselected expressions are appended as hidden
/// projections (dropped again after the sort).
#[allow(clippy::too_many_arguments)]
fn resolve_order_by(
    keys: &[OrderKey],
    items: &[(Expr, String)],
    column_names: &[String],
    projections: &mut Vec<RExpr>,
    aggregate: Option<&AggSpec>,
    resolve: &impl Fn(&str) -> Option<usize>,
    hidden: &mut usize,
) -> EngineResult<Vec<(usize, bool)>> {
    let mut out = Vec::with_capacity(keys.len());
    for key in keys {
        // By output name / alias first.
        if let Expr::Column(name) = &key.expr {
            if let Some(pos) = column_names.iter().position(|c| c == name) {
                out.push((pos, key.ascending));
                continue;
            }
        }
        // By structural equality with a selected expression.
        let matched = items.iter().position(|(e, _)| e == &key.expr).or_else(|| {
            // Or with a resolved projection (non-aggregate case only).
            if aggregate.is_none() {
                resolve_expr(&key.expr, resolve)
                    .ok()
                    .and_then(|r| projections.iter().position(|p| *p == r))
            } else {
                None
            }
        });
        if let Some(pos) = matched {
            out.push((pos, key.ascending));
            continue;
        }
        if aggregate.is_none() {
            // Hidden sort column: evaluate but never output.
            let resolved = resolve_expr(&key.expr, resolve)?;
            projections.push(resolved);
            *hidden += 1;
            out.push((projections.len() - 1, key.ascending));
            continue;
        }
        return Err(EngineError::Planning(
            "ORDER BY must reference a selected column or group key".into(),
        ));
    }
    Ok(out)
}

/// Render an expression for use as a default column name.
pub fn display_expr(e: &Expr) -> String {
    match e {
        Expr::Column(n) => n.clone(),
        Expr::Literal(l) => l.to_string(),
        Expr::Binary { op, left, right } => {
            format!(
                "{} {} {}",
                display_expr(left),
                op.symbol(),
                display_expr(right)
            )
        }
        Expr::Neg(e) => format!("-{}", display_expr(e)),
        Expr::Not(e) => format!("NOT {}", display_expr(e)),
        Expr::Between {
            expr,
            lo,
            hi,
            negated,
        } => format!(
            "{} {}BETWEEN {} AND {}",
            display_expr(expr),
            if *negated { "NOT " } else { "" },
            display_expr(lo),
            display_expr(hi)
        ),
        Expr::InList {
            expr,
            list,
            negated,
        } => format!(
            "{} {}IN ({})",
            display_expr(expr),
            if *negated { "NOT " } else { "" },
            list.iter().map(display_expr).collect::<Vec<_>>().join(", ")
        ),
        Expr::Like {
            expr,
            pattern,
            negated,
        } => format!(
            "{} {}LIKE '{}'",
            display_expr(expr),
            if *negated { "NOT " } else { "" },
            pattern
        ),
        Expr::IsNull { expr, negated } => format!(
            "{} IS {}NULL",
            display_expr(expr),
            if *negated { "NOT " } else { "" }
        ),
        Expr::Agg {
            func,
            arg,
            distinct,
        } => format!(
            "{}({}{})",
            func.name().to_lowercase(),
            if *distinct { "DISTINCT " } else { "" },
            arg.as_ref()
                .map(|a| display_expr(a))
                .unwrap_or_else(|| "*".into())
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodb_rawcsv::{ColumnDef, ColumnType};
    use nodb_sqlparse::parse_select;
    use nodb_stats::estimate::NoStats;

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::new("a", ColumnType::Int),
            ColumnDef::new("b", ColumnType::Int),
            ColumnDef::new("c", ColumnType::Str),
            ColumnDef::new("d", ColumnType::Float),
        ])
    }

    fn plan(sql: &str) -> PlannedQuery {
        plan_select(&parse_select(sql).unwrap(), &schema(), &NoStats).unwrap()
    }

    #[test]
    fn projection_pruning_collects_all_clauses() {
        let p = plan("SELECT a FROM t WHERE d > 0.5 ORDER BY a");
        assert_eq!(p.scan.attrs, vec![0, 3]);
        // d is predicate-only → not materialized; a is.
        assert_eq!(p.scan.materialize, vec![true, false]);
    }

    #[test]
    fn wildcard_expands_schema_order() {
        let p = plan("SELECT * FROM t");
        assert_eq!(p.scan.attrs, vec![0, 1, 2, 3]);
        assert_eq!(p.pipeline.column_names, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn predicate_is_pushed_not_kept() {
        let p = plan("SELECT a FROM t WHERE b = 1 AND a < 5");
        assert!(p.scan.predicate.is_some());
        assert!(p.estimated_selectivity < 0.1);
    }

    #[test]
    fn aggregate_lowering() {
        let p = plan("SELECT a, COUNT(*), SUM(b) FROM t GROUP BY a");
        let agg = p.pipeline.aggregate.unwrap();
        assert_eq!(agg.group_exprs.len(), 1);
        assert_eq!(agg.aggs.len(), 2);
        assert_eq!(
            agg.output,
            vec![AggOutput::Group(0), AggOutput::Agg(0), AggOutput::Agg(1)]
        );
    }

    #[test]
    fn global_aggregate_without_group() {
        let p = plan("SELECT COUNT(*), AVG(d) FROM t");
        let agg = p.pipeline.aggregate.unwrap();
        assert!(agg.group_exprs.is_empty());
        assert_eq!(agg.aggs.len(), 2);
    }

    #[test]
    fn non_grouped_column_rejected() {
        let r = plan_select(
            &parse_select("SELECT a, b, COUNT(*) FROM t GROUP BY a").unwrap(),
            &schema(),
            &NoStats,
        );
        assert!(r.is_err());
    }

    #[test]
    fn order_by_alias_and_position() {
        let p = plan("SELECT a AS x, b FROM t ORDER BY x DESC, b");
        assert_eq!(p.pipeline.order_by, vec![(0, false), (1, true)]);
    }

    #[test]
    fn order_by_unselected_column_becomes_hidden() {
        let p = plan("SELECT a FROM t ORDER BY b DESC");
        assert_eq!(p.pipeline.hidden_sort_columns, 1);
        assert_eq!(p.pipeline.projections.len(), 2);
        assert_eq!(p.pipeline.column_names, vec!["a"]);
        assert_eq!(p.pipeline.order_by, vec![(1, false)]);
        // But aggregates still reject unsortable keys.
        let r = plan_select(
            &parse_select("SELECT COUNT(*) FROM t GROUP BY a ORDER BY b").unwrap(),
            &schema(),
            &NoStats,
        );
        assert!(r.is_err());
    }

    #[test]
    fn unknown_column_rejected() {
        let r = plan_select(
            &parse_select("SELECT nope FROM t").unwrap(),
            &schema(),
            &NoStats,
        );
        assert!(matches!(r, Err(EngineError::Planning(_))));
    }

    #[test]
    fn where_aggregate_rejected() {
        let r = plan_select(
            &parse_select("SELECT a FROM t WHERE COUNT(*) > 1").unwrap(),
            &schema(),
            &NoStats,
        );
        assert!(r.is_err());
    }

    #[test]
    fn explain_mentions_scan() {
        let p = plan("SELECT a FROM t WHERE b > 2 ORDER BY a LIMIT 3");
        let text = p.explain();
        assert!(text.contains("Scan"));
        assert!(text.contains("Limit 3"));
        assert!(text.contains("Sort"));
    }

    #[test]
    fn conjunct_ordering_puts_selective_first() {
        // With NoStats, Eq (0.005) sorts before a range (1/3).
        let p = plan("SELECT a FROM t WHERE b > 2 AND a = 1");
        let pred = p.scan.predicate.unwrap();
        let mut parts = Vec::new();
        crate::sketch::split_conjuncts(&pred, &mut parts);
        assert!(matches!(
            &parts[0],
            RExpr::Binary {
                op: nodb_sqlparse::ast::BinOp::Eq,
                ..
            }
        ));
    }
}
