//! Cold-scan scaling benchmark for the parallel partitioned raw scan.
//!
//! Measures the same cold query — no positional map, no cache, no
//! statistics, selective tokenizing on — over a generated 1M-row file at
//! `scan_threads` ∈ {1, 2, 4, 8}. This is the ISSUE's acceptance
//! measurement: on multi-core CI hardware 4 threads must be ≥ 2× faster
//! than 1 (on a single-core box the curve is flat — the partitioned path
//! still runs, it just has nowhere to scale).
//!
//! Besides the criterion output, every run rewrites
//! `BENCH_parallel_scan.json` at the workspace root via
//! [`nodb_bench::report::BenchRecord`], so the scaling trajectory is
//! tracked across PRs. Row count is overridable through
//! `NODB_BENCH_ROWS` for quick local runs.

use std::cell::RefCell;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use nodb_bench::report::{update_bench_json, BenchRecord};
use nodb_bench::workload::scratch_dir;
use nodb_core::{NoDb, NoDbConfig};
use nodb_rawcsv::{GeneratorConfig, Schema};

const COLS: usize = 8;

fn rows() -> u64 {
    std::env::var("NODB_BENCH_ROWS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000)
}

/// Cold configuration: pure scan, nothing adaptive, no per-row timing.
fn cold_config(scan_threads: usize) -> NoDbConfig {
    NoDbConfig {
        enable_positional_map: false,
        enable_cache: false,
        enable_stats: false,
        selective_tokenizing: true,
        detailed_timing: false,
        detect_updates: false,
        scan_threads,
        ..NoDbConfig::default()
    }
}

fn fresh_db(path: &PathBuf, schema: &Schema, threads: usize) -> NoDb {
    let mut db = NoDb::new(cold_config(threads));
    db.register_csv_with_schema("t", path, schema.clone(), false)
        .unwrap();
    db
}

fn bench_parallel_scan(c: &mut Criterion) {
    let rows = rows();
    let dir = scratch_dir("bench_parallel_scan");
    let gen = GeneratorConfig::uniform_ints(COLS, rows, 0x9A54);
    let mut path = dir.clone();
    path.push("data.csv");
    gen.generate_file(&path).expect("generate dataset");
    let schema = gen.schema();
    let sql = "SELECT c1, c5 FROM t WHERE c3 > 500000000";

    // Reference row count: every thread count must return the same answer.
    let expect = fresh_db(&path, &schema, 1).query(sql).unwrap().len();

    let mut group = c.benchmark_group(format!("parallel_scan_{rows}_rows"));
    group.sample_size(4);
    let samples: RefCell<Vec<BenchRecord>> = RefCell::new(Vec::new());
    for threads in [1usize, 2, 4, 8] {
        let durations = RefCell::new(Vec::new());
        group.bench_function(format!("cold_threads_{threads}"), |b| {
            b.iter_batched(
                || fresh_db(&path, &schema, threads),
                |db| {
                    let t = Instant::now();
                    let r = db.query(sql).unwrap();
                    durations.borrow_mut().push(t.elapsed());
                    assert_eq!(r.len(), expect, "threads={threads} changed the answer");
                    black_box(r.len())
                },
                BatchSize::LargeInput,
            )
        });
        samples.borrow_mut().push(BenchRecord::from_samples(
            "cold_scan",
            threads,
            rows,
            &durations.borrow(),
        ));
    }
    group.finish();

    let records = samples.into_inner();
    let mut out = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    out.pop(); // crates/
    out.pop(); // workspace root
    out.push("BENCH_parallel_scan.json");
    update_bench_json(&out, &records).expect("write BENCH_parallel_scan.json");
    let base = records
        .iter()
        .find(|r| r.scan_threads == 1)
        .map(|r| r.mean_ms);
    for r in &records {
        let speedup = base.map(|b| b / r.mean_ms).unwrap_or(0.0);
        println!(
            "scan_threads={:<2} mean {:>9.2} ms  min {:>9.2} ms  speedup {speedup:>5.2}x",
            r.scan_threads, r.mean_ms, r.min_ms
        );
    }
    println!("wrote {}", out.display());

    std::fs::remove_dir_all(dir).ok();
}

criterion_group!(benches, bench_parallel_scan);
criterion_main!(benches);
