//! Wire protocol: length-prefixed UTF-8 frames.
//!
//! Every message — request or response — is one *frame*: a 4-byte
//! big-endian payload length followed by that many bytes of UTF-8 text.
//! Requests are a single frame holding one command line; responses are
//! exactly **two** frames: a status line (`OK …` / `ERR …`) and a body
//! (possibly empty). The full command table lives in the crate README.
//!
//! Frames are capped at [`MAX_FRAME`] bytes in both directions so a
//! corrupt or hostile length prefix cannot make either side allocate
//! unboundedly.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Largest accepted frame payload (16 MiB): big enough for any realistic
/// result rendering, small enough that a bad length prefix fails fast.
pub const MAX_FRAME: usize = 16 << 20;

/// How long a server-side read waits before re-checking the shutdown flag.
pub const READ_POLL: Duration = Duration::from_millis(20);

/// Write one frame: 4-byte big-endian length, then the payload.
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame length exceeds u32"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload.as_bytes())?;
    w.flush()
}

/// Read one frame, blocking until it arrives. `Ok(None)` means the peer
/// closed the connection cleanly (EOF before any header byte).
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<String>> {
    let mut header = [0u8; 4];
    match read_exact_or_eof(r, &mut header)? {
        ReadOutcome::Eof => return Ok(None),
        ReadOutcome::Full => {}
    }
    let len = u32::from_be_bytes(header);
    let len = usize::try_from(len)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame length exceeds usize"))?;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let text = String::from_utf8(payload)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))?;
    Ok(Some(text))
}

/// Read one frame from a stream whose read timeout is set to [`READ_POLL`],
/// re-checking `shutdown` between timeouts while the connection is idle.
/// `Ok(None)` means the peer closed cleanly *or* the server is shutting
/// down and no request is in flight. A shutdown arriving mid-frame aborts
/// the read with an error (the partial frame cannot be resumed).
pub fn read_frame_shutdown_aware(
    stream: &mut TcpStream,
    shutdown: &AtomicBool,
) -> io::Result<Option<String>> {
    let mut header = [0u8; 4];
    let mut filled = 0usize;
    while filled < header.len() {
        if shutdown.load(Ordering::Relaxed) && filled == 0 {
            return Ok(None);
        }
        match stream.read(&mut header[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(None)
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed mid-header",
                    ))
                };
            }
            Ok(n) => filled += n,
            Err(e) if is_timeout(&e) => {
                if shutdown.load(Ordering::Relaxed) && filled > 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::Interrupted,
                        "server shutdown mid-frame",
                    ));
                }
            }
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(header);
    let len = usize::try_from(len)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame length exceeds usize"))?;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len];
    let mut got = 0usize;
    while got < len {
        match stream.read(&mut payload[got..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-payload",
                ));
            }
            Ok(n) => got += n,
            Err(e) if is_timeout(&e) => {
                if shutdown.load(Ordering::Relaxed) {
                    return Err(io::Error::new(
                        io::ErrorKind::Interrupted,
                        "server shutdown mid-frame",
                    ));
                }
            }
            Err(e) => return Err(e),
        }
    }
    let text = String::from_utf8(payload)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))?;
    Ok(Some(text))
}

/// `WouldBlock` / `TimedOut` — the two kinds a read timeout surfaces as,
/// platform-dependently.
pub fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

enum ReadOutcome {
    Full,
    Eof,
}

/// `read_exact` that distinguishes clean EOF-before-any-byte from a
/// mid-buffer EOF (which is an error).
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> io::Result<ReadOutcome> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(ReadOutcome::Eof)
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed mid-frame",
                    ))
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(ReadOutcome::Full)
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `QUERY <sql>` — run one SQL statement.
    Query(String),
    /// `TABLES` — list registered tables.
    Tables,
    /// `SCHEMA <table>` — render a table's schema.
    Schema(String),
    /// `PANEL <table>` — the Figure-2 monitoring panel.
    Panel(String),
    /// `REPORT` — the Fig-3 breakdown of this connection's last query.
    Report,
    /// `STATS` — server / admission / prepared-statement counters.
    Stats,
    /// `SNAPSHOT` — persist every table's adaptive state to its sidecar
    /// now (crash-safe; see the `nodb-snapshot` crate).
    Snapshot,
    /// `SNAPSHOT?` — snapshot persistence counters (saves, failures,
    /// restores, rejected restores).
    SnapshotStats,
    /// `EPOCH?` — source-epoch report: the instance-wide count of
    /// quarantine-and-cold-rescan events, plus one line per table with the
    /// epoch (generation, length, torn-row fence) it is currently keyed to.
    EpochStats,
    /// `PING` — liveness check.
    Ping,
    /// `QUIT` — close the connection.
    Quit,
}

impl Command {
    /// Parse one request line. `Err` carries the message for an `ERR`
    /// status frame.
    pub fn parse(line: &str) -> Result<Command, String> {
        let trimmed = line.trim();
        let (verb, rest) = match trimmed.split_once(char::is_whitespace) {
            Some((v, r)) => (v, r.trim()),
            None => (trimmed, ""),
        };
        match verb.to_ascii_uppercase().as_str() {
            "QUERY" if !rest.is_empty() => Ok(Command::Query(rest.to_string())),
            "QUERY" => Err("QUERY needs a SQL statement".to_string()),
            "TABLES" => Ok(Command::Tables),
            "SCHEMA" if !rest.is_empty() => Ok(Command::Schema(rest.to_string())),
            "SCHEMA" => Err("SCHEMA needs a table name".to_string()),
            "PANEL" if !rest.is_empty() => Ok(Command::Panel(rest.to_string())),
            "PANEL" => Err("PANEL needs a table name".to_string()),
            "REPORT" => Ok(Command::Report),
            "STATS" => Ok(Command::Stats),
            "SNAPSHOT" => Ok(Command::Snapshot),
            "SNAPSHOT?" => Ok(Command::SnapshotStats),
            "EPOCH?" => Ok(Command::EpochStats),
            "PING" => Ok(Command::Ping),
            "QUIT" => Ok(Command::Quit),
            other => Err(format!("unknown command {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "QUERY SELECT 1").unwrap();
        write_frame(&mut buf, "").unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(
            read_frame(&mut r).unwrap().as_deref(),
            Some("QUERY SELECT 1")
        );
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(""));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        let mut r = io::Cursor::new(buf);
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn mid_frame_eof_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "hello").unwrap();
        buf.truncate(6); // header + 2 payload bytes
        let mut r = io::Cursor::new(buf);
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn commands_parse() {
        assert_eq!(
            Command::parse("QUERY SELECT c0 FROM t"),
            Ok(Command::Query("SELECT c0 FROM t".to_string()))
        );
        assert_eq!(Command::parse("tables"), Ok(Command::Tables));
        assert_eq!(Command::parse("  PING  "), Ok(Command::Ping));
        assert_eq!(
            Command::parse("SCHEMA events"),
            Ok(Command::Schema("events".to_string()))
        );
        assert!(Command::parse("QUERY").is_err());
        assert!(Command::parse("BOGUS x").is_err());
        assert_eq!(Command::parse("SNAPSHOT"), Ok(Command::Snapshot));
        assert_eq!(Command::parse("snapshot?"), Ok(Command::SnapshotStats));
        assert_eq!(Command::parse(" SNAPSHOT? "), Ok(Command::SnapshotStats));
        assert_eq!(Command::parse("epoch?"), Ok(Command::EpochStats));
        assert_eq!(Command::parse(" EPOCH? "), Ok(Command::EpochStats));
    }
}
