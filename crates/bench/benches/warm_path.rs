//! Warm-path vectorization benchmark — ISSUE 5's acceptance measurement.
//!
//! Once the cache fully covers the requested attributes, the paper's claim
//! is that in-situ queries should run like a loaded column store — so the
//! warm path must not pay a per-cell `Datum` boxing and row-at-a-time
//! interpretation tax. This bench measures warm (fully-cached) queries in
//! two modes at equal thread counts:
//!
//! * `vectorized` — `NoDbConfig::vectorized_exec = true`: typed cache
//!   segments exported straight into the engine, columnar predicate kernels
//!   producing selection vectors, columnar aggregate kernels.
//! * `rowwise` — the ablation: the pre-ISSUE row-at-a-time warm path,
//!   byte-for-byte.
//!
//! Three query shapes: a filter+projection (`warm_filter`), a
//! filter+aggregate (`warm_agg` — the acceptance query: vectorized must be
//! ≥ 1.3× faster than rowwise), and a hash group-by (`warm_group`). Records
//! land in `BENCH_warm_path.json` with the `mode` ablation column (merged
//! by configuration key, so CI's reduced row count coexists with full-size
//! local runs) and feed the CI perf gate. `NODB_BENCH_ROWS` overrides the
//! row count.

use std::cell::RefCell;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use nodb_bench::report::{update_bench_json, BenchRecord};
use nodb_bench::workload::scratch_dir;
use nodb_core::{NoDb, NoDbConfig};
use nodb_rawcsv::{GeneratorConfig, Schema};

const COLS: usize = 8;

fn rows() -> u64 {
    std::env::var("NODB_BENCH_ROWS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000)
}

fn config(threads: usize, vectorized: bool) -> NoDbConfig {
    NoDbConfig {
        scan_threads: threads,
        vectorized_exec: vectorized,
        detect_updates: false,
        ..NoDbConfig::default()
    }
}

/// A db whose cache fully covers every attribute the query touches: run the
/// query twice so the second-and-later executions are pure warm path.
fn warmed_db(path: &PathBuf, schema: &Schema, cfg: NoDbConfig, sql: &str) -> NoDb {
    let mut db = NoDb::new(cfg);
    db.register_csv_with_schema("t", path, schema.clone(), false)
        .unwrap();
    db.query(sql).unwrap();
    let r = db.query(sql).unwrap();
    assert!(
        db.admin().last_report().unwrap().fully_cached,
        "warm query must be served from the cache"
    );
    black_box(r.len());
    db
}

fn bench_warm_path(c: &mut Criterion) {
    let rows = rows();
    let dir = scratch_dir("bench_warm_path");
    let gen = GeneratorConfig::uniform_ints(COLS, rows, 0x3A57);
    let mut path = dir.clone();
    path.push("data.csv");
    gen.generate_file(&path).expect("generate dataset");
    let schema = gen.schema();

    // (bench name, SQL): ~30% selective filter+projection, the acceptance
    // filter+aggregate, and a 7-group hash aggregation.
    let queries: [(&str, String); 3] = [
        (
            "warm_filter",
            "SELECT c1, c5 FROM t WHERE c5 < 300000000".into(),
        ),
        (
            "warm_agg",
            "SELECT COUNT(*), SUM(c1), MIN(c5), MAX(c5), AVG(c1) FROM t \
             WHERE c5 < 500000000"
                .into(),
        ),
        (
            "warm_group",
            "SELECT c1 % 7, COUNT(*), SUM(c5) FROM t GROUP BY c1 % 7 ORDER BY c1 % 7".into(),
        ),
    ];

    let mut group = c.benchmark_group(format!("warm_path_{rows}_rows"));
    group.sample_size(6);
    let samples: RefCell<Vec<BenchRecord>> = RefCell::new(Vec::new());
    for threads in [1usize, 4] {
        for (name, sql) in &queries {
            // Answers must agree across modes before anything is timed.
            let expect = warmed_db(&path, &schema, config(threads, true), sql)
                .query(sql)
                .unwrap();
            for (mode, vectorized) in [("vectorized", true), ("rowwise", false)] {
                let db = warmed_db(&path, &schema, config(threads, vectorized), sql);
                let durations = RefCell::new(Vec::new());
                group.bench_function(format!("{name}_{mode}_threads_{threads}"), |b| {
                    b.iter(|| {
                        let t = Instant::now();
                        let r = db.query(sql).unwrap();
                        durations.borrow_mut().push(t.elapsed());
                        assert_eq!(r, expect, "{name} {mode} changed the answer");
                        black_box(r.len())
                    })
                });
                samples.borrow_mut().push(
                    BenchRecord::from_samples(*name, threads, rows, &durations.borrow())
                        .with_mode(mode),
                );
            }
        }
    }
    group.finish();

    let records = samples.into_inner();
    let mut out = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    out.pop(); // crates/
    out.pop(); // workspace root
    out.push("BENCH_warm_path.json");
    update_bench_json(&out, &records).expect("write BENCH_warm_path.json");
    for threads in [1usize, 4] {
        for (name, _) in &queries {
            let at = |mode: &str| {
                records
                    .iter()
                    .find(|r| r.name == *name && r.scan_threads == threads && r.mode == mode)
                    .map(|r| r.mean_ms)
                    .unwrap_or(f64::NAN)
            };
            let (vec_ms, row_ms) = (at("vectorized"), at("rowwise"));
            println!(
                "threads={threads:<2} {name:<12} vectorized {vec_ms:>9.3} ms  \
                 rowwise {row_ms:>9.3} ms  (speedup {:.2}x)",
                row_ms / vec_ms
            );
        }
    }
    println!("wrote {}", out.display());

    std::fs::remove_dir_all(dir).ok();
}

criterion_group!(benches, bench_warm_path);
criterion_main!(benches);
