//! Bounded admission control: one global scan-thread budget shared by every
//! concurrent query on a [`crate::NoDb`] instance.
//!
//! Before this module, each query fanned out `NoDbConfig::scan_threads`
//! workers of its own, so N concurrent clients ran `N × scan_threads`
//! threads — fine for a handful of in-process callers, catastrophic for a
//! serving layer fronting many connections. A [`ScanBudget`] replaces that
//! per-query fan-out with a semaphore-governed pool: a query *requests* its
//! configured thread count but is *granted* at most what the budget has
//! free (always at least one), and the grant is returned when the query
//! finishes. Total scan threads in flight therefore never exceed the
//! budget's capacity, no matter how many clients are connected.
//!
//! Admission is also **bounded**: at most `max_queue` queries may wait for
//! permits at once. A query arriving past that bound fails fast with
//! [`EngineError::Overloaded`] instead of piling onto an unbounded queue —
//! the serving layer's back-pressure signal. Waiters poll cooperatively
//! (short sleeps between attempts) and honor their [`QueryCtx`]: a
//! cancelled or deadline-expired query stops waiting immediately, so a
//! client disconnect releases its queue slot.
//!
//! Telemetry ([`BudgetTelemetry`]) records the high-water marks the
//! acceptance tests assert on: peak permits in flight (never above
//! capacity), peak queue depth, admitted/rejected totals.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use nodb_engine::{EngineError, EngineResult};
use parking_lot::Mutex;

use crate::ctx::QueryCtx;

/// How long a waiter sleeps between permit polls. Admission latency is
/// bounded by one scan finishing (milliseconds to seconds), so a
/// millisecond poll adds nothing measurable while keeping waiters
/// responsive to cancellation.
const WAIT_POLL: Duration = Duration::from_millis(1);

/// Mutable semaphore state behind the budget's lock.
#[derive(Debug)]
struct BudgetState {
    /// Permits currently free.
    available: usize,
    /// Queries currently waiting for a permit.
    waiting: usize,
}

/// A shared scan-thread budget: a counting semaphore with a bounded wait
/// queue and high-water-mark telemetry.
///
/// Install one on a `NoDb` via [`crate::api::admin::Admin::
/// install_scan_budget`]; every subsequent query acquires its scan threads
/// here instead of spawning `scan_threads` workers unconditionally.
#[derive(Debug)]
pub struct ScanBudget {
    capacity: usize,
    max_queue: usize,
    state: Mutex<BudgetState>,
    peak_in_flight: AtomicUsize,
    peak_waiting: AtomicUsize,
    admitted: AtomicU64,
    rejected: AtomicU64,
}

/// Snapshot of a budget's counters (the serving layer's telemetry panel).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetTelemetry {
    /// Configured permit capacity.
    pub capacity: usize,
    /// Configured wait-queue bound.
    pub max_queue: usize,
    /// Permits handed out right now.
    pub in_flight: usize,
    /// Queries waiting right now.
    pub waiting: usize,
    /// Highest number of permits ever simultaneously out. The acceptance
    /// invariant: this never exceeds `capacity`.
    pub peak_in_flight: usize,
    /// Deepest the wait queue ever got.
    pub peak_waiting: usize,
    /// Queries granted permits so far.
    pub admitted: u64,
    /// Queries bounced with [`EngineError::Overloaded`] so far.
    pub rejected: u64,
}

impl ScanBudget {
    /// Budget of `capacity` scan threads with a default wait-queue bound of
    /// `4 × capacity` queued queries.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        ScanBudget::with_queue(capacity, capacity * 4)
    }

    /// Budget with an explicit wait-queue bound (`0` = reject whenever no
    /// permit is immediately free).
    pub fn with_queue(capacity: usize, max_queue: usize) -> Self {
        let capacity = capacity.max(1);
        ScanBudget {
            capacity,
            max_queue,
            state: Mutex::new(BudgetState {
                available: capacity,
                waiting: 0,
            }),
            peak_in_flight: AtomicUsize::new(0),
            peak_waiting: AtomicUsize::new(0),
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// Permit capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Acquire up to `want` permits (at least one), blocking while the
    /// budget is exhausted. Fails with [`EngineError::Overloaded`] when the
    /// wait queue is full, or with the context's stop error if the query is
    /// cancelled / deadline-expired while waiting.
    pub fn acquire(self: &Arc<Self>, want: usize, ctx: &QueryCtx) -> EngineResult<ScanGrant> {
        let want = want.max(1);
        // Fast path: permits free right now.
        if let Some(grant) = self.try_take(want) {
            return Ok(grant);
        }
        // Slow path: join the bounded wait queue.
        {
            let mut s = self.state.lock();
            // Re-check under the lock: a permit may have been released
            // between the fast path and here.
            if s.available > 0 {
                let got = want.min(s.available);
                s.available -= got;
                drop(s);
                return Ok(self.granted(got));
            }
            if s.waiting >= self.max_queue {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(EngineError::Overloaded { waiting: s.waiting });
            }
            s.waiting += 1;
            let now_waiting = s.waiting;
            drop(s);
            fetch_max(&self.peak_waiting, now_waiting);
        }
        // Poll loop: cheap, cancellation-aware, no condvar (the workspace's
        // parking_lot stand-in has no Condvar, and admission waits are
        // bounded by a scan finishing — milliseconds at minimum).
        loop {
            if let Err(stop) = ctx.check() {
                self.state.lock().waiting -= 1;
                return Err(stop);
            }
            {
                let mut s = self.state.lock();
                if s.available > 0 {
                    let got = want.min(s.available);
                    s.available -= got;
                    s.waiting -= 1;
                    drop(s);
                    return Ok(self.granted(got));
                }
            }
            std::thread::sleep(WAIT_POLL);
        }
    }

    /// Non-blocking acquire attempt.
    fn try_take(self: &Arc<Self>, want: usize) -> Option<ScanGrant> {
        let mut s = self.state.lock();
        if s.available == 0 {
            return None;
        }
        let got = want.min(s.available);
        s.available -= got;
        drop(s);
        Some(self.granted(got))
    }

    /// Bookkeeping for a successful grant of `got` permits.
    fn granted(self: &Arc<Self>, got: usize) -> ScanGrant {
        self.admitted.fetch_add(1, Ordering::Relaxed);
        let in_flight = self.capacity - self.state.lock().available;
        fetch_max(&self.peak_in_flight, in_flight);
        ScanGrant {
            budget: Arc::clone(self),
            permits: got,
        }
    }

    /// Current counters.
    pub fn telemetry(&self) -> BudgetTelemetry {
        let s = self.state.lock();
        BudgetTelemetry {
            capacity: self.capacity,
            max_queue: self.max_queue,
            in_flight: self.capacity - s.available,
            waiting: s.waiting,
            peak_in_flight: self.peak_in_flight.load(Ordering::Relaxed),
            peak_waiting: self.peak_waiting.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }
}

/// Monotonic max update for a telemetry high-water mark.
fn fetch_max(slot: &AtomicUsize, value: usize) {
    let mut cur = slot.load(Ordering::Relaxed);
    while value > cur {
        match slot.compare_exchange_weak(cur, value, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(seen) => cur = seen,
        }
    }
}

/// Permits held by one admitted query; returned to the budget on drop (also
/// on error/panic unwind paths, so a failed query never leaks threads).
#[derive(Debug)]
pub struct ScanGrant {
    budget: Arc<ScanBudget>,
    permits: usize,
}

impl ScanGrant {
    /// How many scan threads this query was granted (≥ 1, ≤ requested).
    pub fn permits(&self) -> usize {
        self.permits
    }
}

impl Drop for ScanGrant {
    fn drop(&mut self) {
        let mut s = self.budget.state.lock();
        s.available = (s.available + self.permits).min(self.budget.capacity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_at_most_available_and_at_least_one() {
        let b = Arc::new(ScanBudget::new(4));
        let ctx = QueryCtx::unbounded();
        let g1 = b.acquire(3, &ctx).unwrap();
        assert_eq!(g1.permits(), 3);
        let g2 = b.acquire(8, &ctx).unwrap();
        assert_eq!(g2.permits(), 1, "clamped to what is free");
        let t = b.telemetry();
        assert_eq!(t.in_flight, 4);
        assert_eq!(t.peak_in_flight, 4);
        drop(g1);
        drop(g2);
        assert_eq!(b.telemetry().in_flight, 0);
        assert_eq!(b.telemetry().admitted, 2);
    }

    #[test]
    fn waiters_block_until_release_and_peak_never_exceeds_capacity() {
        let b = Arc::new(ScanBudget::new(2));
        let ctx = QueryCtx::unbounded();
        let g = b.acquire(2, &ctx).unwrap();
        let b2 = Arc::clone(&b);
        let waiter = std::thread::spawn(move || {
            let ctx = QueryCtx::unbounded();
            let g = b2.acquire(2, &ctx).unwrap();
            g.permits()
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(b.telemetry().waiting, 1, "waiter queued");
        drop(g);
        assert_eq!(waiter.join().unwrap(), 2);
        let t = b.telemetry();
        assert!(t.peak_in_flight <= t.capacity);
        assert_eq!(t.peak_waiting, 1);
    }

    #[test]
    fn full_queue_rejects_with_overloaded() {
        let b = Arc::new(ScanBudget::with_queue(1, 0));
        let ctx = QueryCtx::unbounded();
        let g = b.acquire(1, &ctx).unwrap();
        let err = b.acquire(1, &ctx).unwrap_err();
        assert!(matches!(err, EngineError::Overloaded { .. }), "{err:?}");
        assert_eq!(b.telemetry().rejected, 1);
        drop(g);
        assert!(b.acquire(1, &ctx).is_ok(), "permits usable after rejection");
    }

    #[test]
    fn cancelled_waiter_leaves_the_queue() {
        let b = Arc::new(ScanBudget::new(1));
        let ctx = QueryCtx::unbounded();
        let g = b.acquire(1, &ctx).unwrap();
        let waiter_ctx = QueryCtx::unbounded();
        let token = waiter_ctx.cancel_token();
        let b2 = Arc::clone(&b);
        let waiter = std::thread::spawn(move || b2.acquire(1, &waiter_ctx));
        std::thread::sleep(Duration::from_millis(10));
        token.cancel();
        let err = waiter.join().unwrap().unwrap_err();
        assert!(matches!(err, EngineError::Cancelled), "{err:?}");
        assert_eq!(b.telemetry().waiting, 0, "queue slot released");
        drop(g);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let b = Arc::new(ScanBudget::new(0));
        assert_eq!(b.capacity(), 1);
        let ctx = QueryCtx::unbounded();
        assert_eq!(b.acquire(5, &ctx).unwrap().permits(), 1);
    }
}
