//! Delimiter scanning: full, *selective* and *resumable* tokenizing.
//!
//! This module implements the three access disciplines the paper describes:
//!
//! * **Full tokenizing** — locate every field of a tuple
//!   ([`TokenizerConfig::tokenize_into`]). This is what the naive external
//!   files baseline does on every query.
//! * **Selective tokenizing** (§3) — abort the scan of a tuple as soon as the
//!   last attribute a query needs has been located
//!   ([`TokenizerConfig::tokenize_selective`]). CSV rows are laid out
//!   left-to-right, so a query touching attributes `{2, 5}` never pays for
//!   delimiters after field 5.
//! * **Resumable tokenizing** — start from a *positional-map anchor*
//!   (`attribute k starts at byte b`) instead of the beginning of the line
//!   ([`TokenizerConfig::tokenize_from`]). This is how the adaptive
//!   positional map converts its stored positions into skipped CPU work.
//!
//! The delimiter scan uses a branch-light SWAR (SIMD-within-a-register) loop
//! over 8-byte words; quoted fields take a byte-at-a-time state machine.

/// Byte range of one field within a line (end-exclusive).
///
/// Offsets are `u32` relative to the start of the line: CSV tuples are far
/// below 4 GiB, and the narrower type halves the positional-map footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldSpan {
    /// Offset of the first byte of the field within the line.
    pub start: u32,
    /// Offset one past the last byte of the field.
    pub end: u32,
}

impl FieldSpan {
    /// Build a span from line-relative byte positions. This is the one place
    /// the usize→u32 narrowing happens: offsets fit `u32` by construction
    /// because spans are relative to their line's start and a line never
    /// exceeds the scan block size (`NoDbConfig` clamps it to ≤ 256 MiB).
    #[inline]
    pub(crate) fn at(start: usize, end: usize) -> FieldSpan {
        debug_assert!(start <= end && end <= u32::MAX as usize); // lint: cast-ok widening
        let start = start as u32; // lint: cast-ok line-relative, bounded per doc above
        let end = end as u32; // lint: cast-ok line-relative, bounded per doc above
        FieldSpan { start, end }
    }

    /// Slice the field's bytes out of its line.
    #[inline]
    pub fn of<'a>(&self, line: &'a [u8]) -> &'a [u8] {
        // lint: cast-ok u32 offsets widen into usize
        &line[self.start as usize..self.end as usize]
    }

    /// Field width in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize // lint: cast-ok u32 widens into usize
    }

    /// True for zero-width (empty) fields.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Reusable output buffer for tokenizing one tuple.
///
/// `spans[i]` describes field `first_field + i`. Reusing one `Tokens` across
/// all tuples of a scan keeps the hot loop allocation-free (workhorse
/// collection pattern).
#[derive(Debug, Default, Clone)]
pub struct Tokens {
    spans: Vec<FieldSpan>,
    first_field: usize,
    /// True when the scan reached the end of the line, i.e. `spans` covers
    /// every field from `first_field` to the last field of the tuple.
    complete: bool,
}

impl Tokens {
    /// New empty buffer.
    pub fn new() -> Self {
        Tokens::default()
    }

    /// Spans collected by the last tokenize call.
    #[inline]
    pub fn spans(&self) -> &[FieldSpan] {
        &self.spans
    }

    /// Index of the field described by `spans()[0]`.
    #[inline]
    pub fn first_field(&self) -> usize {
        self.first_field
    }

    /// Number of fields located.
    #[inline]
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when no fields were located.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Whether the last call consumed the entire line.
    #[inline]
    pub fn reached_end_of_line(&self) -> bool {
        self.complete
    }

    /// Span for absolute field index `field`, if it was located.
    #[inline]
    pub fn get(&self, field: usize) -> Option<FieldSpan> {
        field
            .checked_sub(self.first_field)
            .and_then(|i| self.spans.get(i))
            .copied()
    }

    fn reset(&mut self, first_field: usize) {
        self.spans.clear();
        self.first_field = first_field;
        self.complete = false;
    }

    /// Crate-internal hooks for the fused block scan
    /// ([`crate::reader::BlockScanner::next_line_tokenized`]), which fills a
    /// `Tokens` while discovering the line boundary in the same byte pass.
    pub(crate) fn begin_line(&mut self) {
        self.reset(0);
    }

    #[inline]
    pub(crate) fn push_span(&mut self, start: u32, end: u32) {
        self.spans.push(FieldSpan { start, end });
    }

    #[inline]
    pub(crate) fn mark_complete(&mut self) {
        self.complete = true;
    }
}

/// Tokenizer settings for one raw file.
#[derive(Debug, Clone, Copy)]
pub struct TokenizerConfig {
    /// Field delimiter, e.g. `b','`.
    pub delimiter: u8,
    /// Quote character enabling the RFC-4180-style slow path, or `None` for
    /// the plain fast path (the paper's synthetic workloads are unquoted).
    pub quote: Option<u8>,
}

impl Default for TokenizerConfig {
    fn default() -> Self {
        TokenizerConfig {
            delimiter: b',',
            quote: None,
        }
    }
}

impl TokenizerConfig {
    /// Plain CSV with the given delimiter and no quoting.
    pub fn plain(delimiter: u8) -> Self {
        TokenizerConfig {
            delimiter,
            quote: None,
        }
    }

    /// Tokenize every field of `line` into `out`.
    ///
    /// Returns the number of fields found. A line always has at least one
    /// field (the empty line has one empty field), matching CSV semantics.
    pub fn tokenize_into(&self, line: &[u8], out: &mut Tokens) -> usize {
        self.tokenize_selective(line, usize::MAX, out)
    }

    /// *Selective tokenizing*: locate fields `0..=upto_field`, aborting the
    /// tuple as soon as `upto_field` has been delimited. Returns the number
    /// of fields found (which is `< upto_field + 1` for short rows).
    pub fn tokenize_selective(&self, line: &[u8], upto_field: usize, out: &mut Tokens) -> usize {
        out.reset(0);
        self.scan(line, 0, upto_field, out);
        out.spans.len()
    }

    /// *Resumable tokenizing*: field `anchor_field` is known (from the
    /// positional map) to start at byte `anchor_off` of `line`; locate
    /// fields `anchor_field..=upto_field` without touching the prefix.
    ///
    /// Returns the number of fields found from the anchor onward.
    pub fn tokenize_from(
        &self,
        line: &[u8],
        anchor_field: usize,
        anchor_off: usize,
        upto_field: usize,
        out: &mut Tokens,
    ) -> usize {
        debug_assert!(anchor_field <= upto_field);
        debug_assert!(anchor_off <= line.len());
        out.reset(anchor_field);
        self.scan(line, anchor_off, upto_field - anchor_field, out);
        out.spans.len()
    }

    /// Core loop: starting at byte `from`, append spans for up to
    /// `relative_upto + 1` fields to `out`.
    fn scan(&self, line: &[u8], from: usize, relative_upto: usize, out: &mut Tokens) {
        match self.quote {
            None => self.scan_plain(line, from, relative_upto, out),
            Some(q) => self.scan_quoted(line, from, relative_upto, q, out),
        }
    }

    #[inline]
    fn scan_plain(&self, line: &[u8], from: usize, relative_upto: usize, out: &mut Tokens) {
        let mut start = from;
        let mut field = 0usize;
        loop {
            match find_byte(&line[start..], self.delimiter) {
                Some(rel) => {
                    let end = start + rel;
                    out.spans.push(FieldSpan::at(start, end));
                    if field == relative_upto {
                        return;
                    }
                    field += 1;
                    start = end + 1;
                }
                None => {
                    out.spans.push(FieldSpan::at(start, line.len()));
                    out.complete = true;
                    return;
                }
            }
        }
    }

    /// Quote-aware state machine. A field beginning with the quote byte runs
    /// to the matching unescaped quote; doubled quotes inside are literal.
    /// Spans of quoted fields exclude the surrounding quotes but keep any
    /// doubling (the parser unescapes when materializing strings).
    fn scan_quoted(&self, line: &[u8], from: usize, relative_upto: usize, q: u8, out: &mut Tokens) {
        let mut i = from;
        let mut field = 0usize;
        loop {
            if i < line.len() && line[i] == q {
                // Quoted field: scan to the closing quote.
                let content_start = i + 1;
                let mut j = content_start;
                loop {
                    match find_byte(&line[j..], q) {
                        Some(rel) => {
                            let at = j + rel;
                            if at + 1 < line.len() && line[at + 1] == q {
                                j = at + 2; // escaped quote, keep scanning
                            } else {
                                out.spans.push(FieldSpan::at(content_start, at));
                                i = at + 1;
                                break;
                            }
                        }
                        None => {
                            // Unterminated quote: treat rest of line as field.
                            out.spans.push(FieldSpan::at(content_start, line.len()));
                            out.complete = true;
                            return;
                        }
                    }
                }
                if field == relative_upto {
                    return;
                }
                if i >= line.len() {
                    out.complete = true;
                    return;
                }
                // Skip the delimiter after the closing quote.
                debug_assert_eq!(line[i], self.delimiter);
                i += 1;
                field += 1;
            } else {
                match find_byte(&line[i..], self.delimiter) {
                    Some(rel) => {
                        let end = i + rel;
                        out.spans.push(FieldSpan::at(i, end));
                        if field == relative_upto {
                            return;
                        }
                        field += 1;
                        i = end + 1;
                    }
                    None => {
                        out.spans.push(FieldSpan::at(i, line.len()));
                        out.complete = true;
                        return;
                    }
                }
            }
        }
    }
}

/// Find the first occurrence of `needle` in `hay` using an 8-byte SWAR loop.
///
/// Equivalent to `hay.iter().position(|&b| b == needle)` but roughly 4-6x
/// faster on long runs, which dominates tokenizing cost on wide tuples.
#[inline]
pub fn find_byte(hay: &[u8], needle: u8) -> Option<usize> {
    const LO: u64 = 0x0101_0101_0101_0101;
    const HI: u64 = 0x8080_8080_8080_8080;
    let pat = LO.wrapping_mul(needle as u64);
    let mut i = 0usize;
    let n = hay.len();
    while i + 8 <= n {
        // Unaligned little-endian load of 8 bytes.
        let w = u64::from_le_bytes(hay[i..i + 8].try_into().expect("8-byte chunk"));
        let x = w ^ pat;
        let hit = x.wrapping_sub(LO) & !x & HI;
        if hit != 0 {
            // lint: cast-ok trailing_zeros()>>3 is at most 7
            return Some(i + (hit.trailing_zeros() >> 3) as usize);
        }
        i += 8;
    }
    hay[i..].iter().position(|&b| b == needle).map(|p| p + i)
}

/// Find the first occurrence of *either* needle in `hay` with one SWAR pass.
///
/// Returns the index and the matched byte. This is the fused-scan primitive:
/// a raw-file scanner that needs "next delimiter or end of line" would
/// otherwise traverse every tuple prefix twice (once locating `\n`, once
/// locating delimiters). Matching both needles per 8-byte word costs one
/// extra XOR/SUB/AND triple — far cheaper than a second pass over hot bytes.
/// Callers that need a single needle should keep using [`find_byte`].
#[inline]
pub fn find_byte2(hay: &[u8], needle_a: u8, needle_b: u8) -> Option<(usize, u8)> {
    const LO: u64 = 0x0101_0101_0101_0101;
    const HI: u64 = 0x8080_8080_8080_8080;
    let pat_a = LO.wrapping_mul(needle_a as u64);
    let pat_b = LO.wrapping_mul(needle_b as u64);
    let mut i = 0usize;
    let n = hay.len();
    while i + 8 <= n {
        let w = u64::from_le_bytes(hay[i..i + 8].try_into().expect("8-byte chunk"));
        let xa = w ^ pat_a;
        let xb = w ^ pat_b;
        let hit = (xa.wrapping_sub(LO) & !xa & HI) | (xb.wrapping_sub(LO) & !xb & HI);
        if hit != 0 {
            // lint: cast-ok trailing_zeros()>>3 is at most 7
            let at = i + (hit.trailing_zeros() >> 3) as usize;
            return Some((at, hay[at]));
        }
        i += 8;
    }
    hay[i..]
        .iter()
        .position(|&b| b == needle_a || b == needle_b)
        .map(|p| (p + i, hay[p + i]))
}

/// Count every occurrence of `needle` in `hay` with an 8-byte SWAR loop.
///
/// This is the pre-count primitive of the two-phase cold scan: counting the
/// newlines of a partition establishes its row count (and therefore every
/// worker's global row base) without tokenizing or copying a single line.
/// Per 8-byte word the match mask is reduced with `count_ones`, so the pass
/// is pure load/XOR/SUB/AND/POPCNT — no branches on the hot path.
#[inline]
pub fn count_byte(hay: &[u8], needle: u8) -> usize {
    // `find_byte`'s zero-detect mask is only exact below its lowest hit
    // (subtraction borrows can smear into higher bytes), so counting uses
    // the carry-free variant: per byte, `(x & 0x7f) + 0x7f` overflows into
    // the high bit unless the low 7 bits are zero, and `| x` folds in the
    // byte's own high bit — the complement's high bits then mark exactly
    // the zero bytes, with no carries crossing byte lanes.
    const LO: u64 = 0x0101_0101_0101_0101;
    const SEVENF: u64 = 0x7f7f_7f7f_7f7f_7f7f;
    let pat = LO.wrapping_mul(needle as u64);
    let mut i = 0usize;
    let mut count = 0usize;
    let n = hay.len();
    while i + 8 <= n {
        let w = u64::from_le_bytes(hay[i..i + 8].try_into().expect("8-byte chunk"));
        let x = w ^ pat;
        let hit = !(((x & SEVENF) + SEVENF) | x | SEVENF);
        count += hit.count_ones() as usize; // lint: cast-ok u32 widens into usize
        i += 8;
    }
    count + hay[i..].iter().filter(|&&b| b == needle).count()
}

/// Locate the end of the current line (`\n`) starting at `from`.
/// Returns the index of the newline byte, or `None` if the buffer ends first.
#[inline]
pub fn find_newline(buf: &[u8], from: usize) -> Option<usize> {
    find_byte(&buf[from..], b'\n').map(|p| p + from)
}

/// Strip a trailing `\r` (CRLF input) from a line slice.
#[inline]
pub fn trim_cr(line: &[u8]) -> &[u8] {
    match line.last() {
        Some(b'\r') => &line[..line.len() - 1],
        _ => line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spans_of(cfg: &TokenizerConfig, line: &[u8]) -> Vec<(u32, u32)> {
        let mut t = Tokens::new();
        cfg.tokenize_into(line, &mut t);
        t.spans().iter().map(|s| (s.start, s.end)).collect()
    }

    #[test]
    fn find_byte_matches_naive_scan() {
        let data = b"abcdefghijklmnop,qrstuvwxyz";
        assert_eq!(find_byte(data, b','), Some(16));
        assert_eq!(find_byte(data, b'!'), None);
        assert_eq!(find_byte(b"", b','), None);
        assert_eq!(find_byte(b",", b','), Some(0));
    }

    #[test]
    fn find_byte_short_tail() {
        // Hits in the < 8-byte scalar tail.
        assert_eq!(find_byte(b"abcdefgh,xy", b','), Some(8));
        assert_eq!(find_byte(b"abc,", b','), Some(3));
    }

    #[test]
    fn find_byte2_matches_naive_scan() {
        let data = b"abcdefghij\nklmno,pq";
        assert_eq!(find_byte2(data, b',', b'\n'), Some((10, b'\n')));
        assert_eq!(find_byte2(data, b',', b'!'), Some((16, b',')));
        assert_eq!(find_byte2(data, b'!', b'?'), None);
        assert_eq!(find_byte2(b"", b',', b'\n'), None);
        // Hits in the scalar tail.
        assert_eq!(find_byte2(b"abcdefgh\nx", b',', b'\n'), Some((8, b'\n')));
        // Same byte twice degenerates to find_byte.
        assert_eq!(find_byte2(b"ab,cd", b',', b','), Some((2, b',')));
    }

    #[test]
    fn count_byte_matches_naive_count() {
        assert_eq!(count_byte(b"", b'\n'), 0);
        assert_eq!(count_byte(b"\n", b'\n'), 1);
        assert_eq!(count_byte(b"a,b\nc,d\ne", b'\n'), 2);
        // Pseudo-random soup at several offsets so both the SWAR body and
        // the scalar tail are exercised.
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        let mut bytes = Vec::new();
        for _ in 0..4099 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            bytes.push((x % 5) as u8 + b'\n');
        }
        for start in [0usize, 1, 3, 7, 8, 15] {
            let hay = &bytes[start..];
            let naive = hay.iter().filter(|&&b| b == b'\n').count();
            assert_eq!(count_byte(hay, b'\n'), naive, "start = {start}");
        }
    }

    #[test]
    fn find_byte2_agrees_with_two_single_scans() {
        // Pseudo-random soup: the fused scan must always report the earlier
        // of the two single-needle hits.
        let mut x = 0x1234_5678_9abc_def0u64;
        let mut bytes = Vec::new();
        for _ in 0..4096 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            bytes.push((x % 7) as u8 + b'a');
        }
        for start in [0usize, 1, 5, 13] {
            let hay = &bytes[start..];
            let a = find_byte(hay, b'b');
            let c = find_byte(hay, b'e');
            let expect = match (a, c) {
                (Some(i), Some(j)) if i <= j => Some((i, b'b')),
                (Some(_), Some(j)) => Some((j, b'e')),
                (Some(i), None) => Some((i, b'b')),
                (None, Some(j)) => Some((j, b'e')),
                (None, None) => None,
            };
            assert_eq!(find_byte2(hay, b'b', b'e'), expect);
        }
    }

    #[test]
    fn tokenize_full_line() {
        let cfg = TokenizerConfig::default();
        assert_eq!(spans_of(&cfg, b"1,22,333"), vec![(0, 1), (2, 4), (5, 8)]);
    }

    #[test]
    fn tokenize_empty_fields() {
        let cfg = TokenizerConfig::default();
        assert_eq!(spans_of(&cfg, b",a,"), vec![(0, 0), (1, 2), (3, 3)]);
        assert_eq!(spans_of(&cfg, b""), vec![(0, 0)]);
    }

    #[test]
    fn selective_tokenize_stops_early() {
        let cfg = TokenizerConfig::default();
        let mut t = Tokens::new();
        let n = cfg.tokenize_selective(b"a,b,c,d,e", 1, &mut t);
        assert_eq!(n, 2);
        assert_eq!(t.get(1).unwrap().of(b"a,b,c,d,e"), b"b");
        assert!(!t.reached_end_of_line());
    }

    #[test]
    fn selective_past_end_marks_complete() {
        let cfg = TokenizerConfig::default();
        let mut t = Tokens::new();
        let n = cfg.tokenize_selective(b"a,b", 10, &mut t);
        assert_eq!(n, 2);
        assert!(t.reached_end_of_line());
    }

    #[test]
    fn resumable_tokenize_from_anchor() {
        let cfg = TokenizerConfig::default();
        let line = b"alpha,beta,gamma,delta";
        // Anchor: field 2 ("gamma") starts at byte 11.
        let mut t = Tokens::new();
        let n = cfg.tokenize_from(line, 2, 11, 3, &mut t);
        assert_eq!(n, 2);
        assert_eq!(t.first_field(), 2);
        assert_eq!(t.get(2).unwrap().of(line), b"gamma");
        assert_eq!(t.get(3).unwrap().of(line), b"delta");
        assert_eq!(t.get(1), None);
    }

    #[test]
    fn quoted_fields() {
        let cfg = TokenizerConfig {
            delimiter: b',',
            quote: Some(b'"'),
        };
        let line = br#""a,b",c,"d""e""#;
        let s = spans_of(&cfg, line);
        assert_eq!(s.len(), 3);
        assert_eq!(&line[s[0].0 as usize..s[0].1 as usize], b"a,b");
        assert_eq!(&line[s[1].0 as usize..s[1].1 as usize], b"c");
        assert_eq!(&line[s[2].0 as usize..s[2].1 as usize], br#"d""e"#);
    }

    #[test]
    fn quoted_unterminated_takes_rest() {
        let cfg = TokenizerConfig {
            delimiter: b',',
            quote: Some(b'"'),
        };
        let line = br#"x,"unterminated"#;
        let s = spans_of(&cfg, line);
        assert_eq!(s.len(), 2);
        assert_eq!(&line[s[1].0 as usize..s[1].1 as usize], b"unterminated");
    }

    #[test]
    fn trim_cr_strips_only_trailing() {
        assert_eq!(trim_cr(b"abc\r"), b"abc");
        assert_eq!(trim_cr(b"abc"), b"abc");
        assert_eq!(trim_cr(b"a\rb"), b"a\rb");
    }

    #[test]
    fn tokens_reuse_resets_state() {
        let cfg = TokenizerConfig::default();
        let mut t = Tokens::new();
        cfg.tokenize_into(b"a,b,c", &mut t);
        assert_eq!(t.len(), 3);
        cfg.tokenize_selective(b"x,y", 0, &mut t);
        assert_eq!(t.len(), 1);
        assert_eq!(t.first_field(), 0);
    }
}
