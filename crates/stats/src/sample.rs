//! Reservoir sampling (Vitter's Algorithm R).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use nodb_rawcsv::Datum;

/// Fixed-capacity uniform sample over a stream of datums.
///
/// Deterministic: seeded at construction, so the same scan order yields the
/// same sample — experiments stay reproducible.
#[derive(Debug)]
pub struct Reservoir {
    sample: Vec<Datum>,
    capacity: usize,
    seen: u64,
    rng: StdRng,
}

impl Reservoir {
    /// Reservoir of `capacity` elements, seeded with `seed`.
    pub fn new(capacity: usize, seed: u64) -> Self {
        Reservoir {
            sample: Vec::with_capacity(capacity.min(1024)),
            capacity: capacity.max(1),
            seen: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Offer one (non-null) value to the reservoir.
    pub fn offer(&mut self, d: &Datum) {
        self.seen += 1;
        if self.sample.len() < self.capacity {
            self.sample.push(d.clone());
            return;
        }
        let j = self.rng.random_range(0..self.seen);
        if (j as usize) < self.capacity {
            self.sample[j as usize] = d.clone();
        }
    }

    /// Values offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The current sample (unordered).
    pub fn sample(&self) -> &[Datum] {
        &self.sample
    }

    /// Number of sampled values currently held.
    pub fn len(&self) -> usize {
        self.sample.len()
    }

    /// True when nothing has been sampled.
    pub fn is_empty(&self) -> bool {
        self.sample.is_empty()
    }

    /// Reset (file replaced).
    pub fn clear(&mut self) {
        self.sample.clear();
        self.seen = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_to_capacity_then_samples() {
        let mut r = Reservoir::new(10, 1);
        for i in 0..100 {
            r.offer(&Datum::Int(i));
        }
        assert_eq!(r.len(), 10);
        assert_eq!(r.seen(), 100);
    }

    #[test]
    fn short_streams_keep_everything() {
        let mut r = Reservoir::new(100, 1);
        for i in 0..5 {
            r.offer(&Datum::Int(i));
        }
        assert_eq!(r.len(), 5);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut r = Reservoir::new(8, seed);
            for i in 0..1000 {
                r.offer(&Datum::Int(i));
            }
            r.sample().to_vec()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn sample_is_roughly_uniform() {
        // Mean of a uniform sample over 0..10000 should be near 5000.
        let mut r = Reservoir::new(200, 3);
        for i in 0..10_000 {
            r.offer(&Datum::Int(i));
        }
        let mean: f64 = r.sample().iter().filter_map(Datum::as_float).sum::<f64>() / r.len() as f64;
        assert!((mean - 5000.0).abs() < 1500.0, "mean = {mean}");
    }

    #[test]
    fn clear_resets() {
        let mut r = Reservoir::new(4, 1);
        r.offer(&Datum::Int(1));
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.seen(), 0);
    }
}
