//! The five workspace invariants `nodb-lint` enforces, as token-level rules
//! over [`crate::lexer`] output. Each rule documents the invariant, why it
//! exists, and the escape hatch (waiver comment or ratchet entry).

use crate::lexer::{lex, Comment, Lexed, Tok, TokKind};

/// Which rule produced a finding. The string forms are stable: fixtures,
/// waiver comments, and CI grep on them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleId {
    /// `.lock()/.read()/.write()` chained into `unwrap`-family calls must
    /// route through `lock_recover` (PR 6's poison-tolerance contract).
    PoisonLock,
    /// Scan/batch loops in `lint:cancellable` modules must poll the query
    /// context or drive an interrupt-flagged `BlockSource`.
    Cancellation,
    /// `unwrap()/expect()/panic!` in library code, held down by a per-file
    /// ratchet that may only decrease.
    NoUnwrap,
    /// Narrowing `as` casts on offset/row arithmetic need `try_into` or an
    /// explicit waiver.
    TruncatingCast,
    /// Every `unsafe` needs a `// SAFETY:` comment justifying it.
    UnsafeAudit,
}

impl RuleId {
    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::PoisonLock => "poison-lock",
            RuleId::Cancellation => "cancellation",
            RuleId::NoUnwrap => "no-unwrap",
            RuleId::TruncatingCast => "truncating-cast",
            RuleId::UnsafeAudit => "unsafe-audit",
        }
    }
}

/// One finding: a rule violation at a line of a file.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: RuleId,
    pub path: String,
    pub line: u32,
    pub message: String,
}

impl Finding {
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.path,
            self.line,
            self.rule.as_str(),
            self.message
        )
    }
}

/// Per-file lint knobs, set by the driver in [`crate`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FileOptions {
    /// Workspace mode scopes [`RuleId::TruncatingCast`] to the offset/row
    /// arithmetic crates (posmap/rawcsv/rawcache); explicit-path mode lints
    /// every file it is given.
    pub casts_in_scope: bool,
    /// With a loaded ratchet the driver aggregates unwrap sites per file
    /// itself; without one each site is reported individually.
    pub report_unwrap_sites: bool,
}

/// Everything the rules know about one file.
pub struct SourceFile {
    pub path: String,
    lexed: Lexed,
    /// 1-based inclusive line ranges covered by `#[cfg(test)]` / `#[test]` /
    /// `#[bench]` items — library-code rules skip findings inside them.
    excluded: Vec<(u32, u32)>,
    /// A `#![doc = "…"]` attribute near the top mentions `lint:cancellable`
    /// (string contents are dropped by the lexer, so this is captured from
    /// the raw source at parse time).
    doc_attr_marker: bool,
}

impl SourceFile {
    pub fn parse(path: &str, src: &str) -> SourceFile {
        let lexed = lex(src);
        let excluded = test_excluded_ranges(&lexed.toks);
        let doc_attr_marker = src.lines().take(200).any(|l| {
            let t = l.trim_start();
            t.starts_with("#![doc") && t.contains("lint:cancellable")
        });
        SourceFile {
            path: path.to_string(),
            lexed,
            excluded,
            doc_attr_marker,
        }
    }

    fn toks(&self) -> &[Tok] {
        &self.lexed.toks
    }

    fn comments(&self) -> &[Comment] {
        &self.lexed.comments
    }

    fn in_test_code(&self, line: u32) -> bool {
        self.excluded.iter().any(|&(s, e)| line >= s && line <= e)
    }

    /// A waiver comment (`// lint: <key> <reason>`) on `line` or the line
    /// directly above it. Waivers live in comments, never in code, so string
    /// literals mentioning the key (this crate's own source) cannot waive.
    fn waived(&self, key: &str, line: u32) -> bool {
        self.comment_contains(key, line.saturating_sub(1), line)
    }

    fn comment_contains(&self, needle: &str, from_line: u32, to_line: u32) -> bool {
        let tag = format!("lint: {needle}");
        self.comments()
            .iter()
            .any(|c| c.line >= from_line && c.line <= to_line && c.text.contains(&tag))
    }

    /// Is this module annotated as cancellation-mandatory? Matches the
    /// `#![doc = " lint:cancellable …"]` form (a string literal inside the
    /// first inner attributes) or a `//! … lint:cancellable` doc line.
    fn cancellable(&self) -> bool {
        const MARKER: &str = "lint:cancellable";
        self.doc_attr_marker
            || self
                .comments()
                .iter()
                .any(|c| c.inner && c.text.contains(MARKER))
    }
}

/// Run every rule over one file.
pub fn lint_file(file: &SourceFile, opts: FileOptions) -> Vec<Finding> {
    let mut out = Vec::new();
    rule_poison_lock(file, &mut out);
    rule_cancellation(file, &mut out);
    if opts.report_unwrap_sites {
        rule_no_unwrap_sites(file, &mut out);
    }
    if opts.casts_in_scope {
        rule_truncating_cast(file, &mut out);
    }
    rule_unsafe_audit(file, &mut out);
    out
}

// ---------------------------------------------------------------------------
// Rule 1: poison-lock
// ---------------------------------------------------------------------------

/// `.lock().unwrap()`, `.read().expect(…)`, `.write().unwrap_or_else(…)` in
/// library code: all of these either panic on a poisoned lock (turning one
/// contained worker panic into a cascade) or hand-roll the recovery that
/// `lock_recover` centralizes. The zero-argument call distinguishes lock
/// acquisition from `io::Read::read(&mut buf)`-style calls.
/// Waive with `// lint: lock-ok <reason>` (e.g. inside `lock_recover` itself).
fn rule_poison_lock(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = file.toks();
    for i in 0..toks.len().saturating_sub(5) {
        let w = &toks[i..i + 6];
        let is_acquire = w[0].text == "."
            && w[0].kind == TokKind::Punct
            && matches!(w[1].text.as_str(), "lock" | "read" | "write")
            && w[2].text == "("
            && w[3].text == ")"
            && w[4].text == "."
            && matches!(w[5].text.as_str(), "unwrap" | "expect" | "unwrap_or_else");
        if !is_acquire {
            continue;
        }
        let line = w[1].line;
        if file.in_test_code(line) || file.waived("lock-ok", line) {
            continue;
        }
        out.push(Finding {
            rule: RuleId::PoisonLock,
            path: file.path.clone(),
            line,
            message: format!(
                "`.{}().{}` panics or hand-rolls recovery on a poisoned lock; \
                 route through `lock_recover` (or waive: `// lint: lock-ok <reason>`)",
                w[1].text, w[5].text
            ),
        });
    }
}

// ---------------------------------------------------------------------------
// Rule 2: cancellation
// ---------------------------------------------------------------------------

/// Method/function names whose presence makes a loop a *scan loop*: it
/// advances through rows, batches, or I/O blocks and can therefore run for
/// an unbounded stretch of a large file.
const ADVANCE: &[&str] = &[
    "next_line",
    "next_line_tokenized",
    "next_batch",
    "refill",
    "recv",
    "try_recv",
];

/// Names that prove the loop honors PR 6's cancellation contract: either an
/// explicit `QueryCtx` poll (`check`/`check_io`), or it drives an interrupt
/// flag (`set_interrupt`/`stop_flag`/…). `refill` appears here *and* in
/// [`ADVANCE`] on purpose: every `BlockSource::refill` implementation polls
/// the installed interrupt flag, so a loop advancing via `refill` is
/// cancellable by construction.
const POLL: &[&str] = &[
    "check",
    "check_io",
    "set_interrupt",
    "stop_flag",
    "interrupt",
    "interrupted",
    "interrupted_error",
    "cancel",
    "cancelled",
    "is_cancelled",
    "refill",
];

/// In modules annotated `lint:cancellable`, every scan/batch loop must
/// contain a cancellation poll; a stuck or hour-long query must stop within
/// `CHECK_STRIDE` rows of its deadline no matter which loop it is in.
/// Waive with `// lint: cancel-ok <reason>` inside the loop or on the loop
/// header line.
fn rule_cancellation(file: &SourceFile, out: &mut Vec<Finding>) {
    if !file.cancellable() {
        return;
    }
    let toks = file.toks();
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        let is_loop_kw = t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "loop" | "while" | "for")
            && loop_starts_here(toks, i);
        if !is_loop_kw || file.in_test_code(t.line) {
            i += 1;
            continue;
        }
        let Some((body_start, body_end)) = loop_body(toks, i) else {
            i += 1;
            continue;
        };
        // Header included: `while let Some(l) = scanner.next_line() { … }`
        // advances in the condition, not the body.
        let body = &toks[i..=body_end];
        let has = |names: &[&str]| {
            body.iter()
                .any(|b| b.kind == TokKind::Ident && names.contains(&b.text.as_str()))
        };
        if has(ADVANCE) && !has(POLL) {
            let body_lines = (toks[body_start].line, toks[body_end].line);
            let waived = file.waived("cancel-ok", t.line)
                || file.comment_contains("cancel-ok", body_lines.0, body_lines.1);
            if !waived {
                out.push(Finding {
                    rule: RuleId::Cancellation,
                    path: file.path.clone(),
                    line: t.line,
                    message: "scan loop in a `lint:cancellable` module advances rows/blocks \
                              without a cancellation poll (`ctx.check()`, an interrupt-flagged \
                              `refill`, …); add one or waive: `// lint: cancel-ok <reason>`"
                        .to_string(),
                });
            }
        }
        i += 1;
    }
}

/// Is the `loop`/`while`/`for` ident at `i` actually a loop header?
/// Filters out `impl Trait for Type` and `for<'a>` bounds: a real `for` loop
/// has an `in` before its body brace.
fn loop_starts_here(toks: &[Tok], i: usize) -> bool {
    if toks[i].text != "for" {
        return true;
    }
    if toks.get(i + 1).is_some_and(|t| t.text == "<") {
        return false; // for<'a> higher-ranked bound
    }
    let mut depth = 0i32;
    for t in &toks[i + 1..] {
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth == 0 => return false, // body reached without `in`
            "in" if depth == 0 && t.kind == TokKind::Ident => return true,
            ";" if depth == 0 => return false,
            _ => {}
        }
    }
    false
}

/// Token range (inclusive) of the loop body braces' contents: finds the
/// first `{` at paren/bracket depth 0 after the keyword, then brace-matches.
fn loop_body(toks: &[Tok], kw: usize) -> Option<(usize, usize)> {
    let mut depth = 0i32;
    let mut j = kw + 1;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth == 0 => break,
            ";" if depth == 0 => return None,
            _ => {}
        }
        j += 1;
    }
    if j >= toks.len() {
        return None;
    }
    let open = j;
    let mut braces = 0i32;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "{" => braces += 1,
            "}" => {
                braces -= 1;
                if braces == 0 {
                    return Some((open, j));
                }
            }
            _ => {}
        }
        j += 1;
    }
    Some((open, toks.len() - 1))
}

// ---------------------------------------------------------------------------
// Rule 3: no-unwrap (site counting; the ratchet lives in crate::ratchet)
// ---------------------------------------------------------------------------

/// Count `unwrap()/expect(/panic!` sites in library (non-test) code. A
/// panicking scan worker bricks its whole query (contained only by the
/// `catch_unwind` in `worker.rs`) — new code should thread `Result`s.
pub fn count_unwrap_sites(file: &SourceFile) -> (usize, Vec<u32>) {
    let toks = file.toks();
    let mut lines = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let hit = match t.text.as_str() {
            "unwrap" | "expect" => {
                i > 0 && toks[i - 1].text == "." && toks.get(i + 1).is_some_and(|n| n.text == "(")
            }
            "panic" => toks.get(i + 1).is_some_and(|n| n.text == "!"),
            _ => false,
        };
        if hit && !file.in_test_code(t.line) {
            lines.push(t.line);
        }
    }
    (lines.len(), lines)
}

fn rule_no_unwrap_sites(file: &SourceFile, out: &mut Vec<Finding>) {
    let (_, lines) = count_unwrap_sites(file);
    for line in lines {
        out.push(Finding {
            rule: RuleId::NoUnwrap,
            path: file.path.clone(),
            line,
            message: "unwrap()/expect()/panic! in library code can panic a scan worker; \
                      return a Result (ratcheted in workspace mode via lint-ratchet.toml)"
                .to_string(),
        });
    }
}

// ---------------------------------------------------------------------------
// Rule 4: truncating-cast
// ---------------------------------------------------------------------------

/// `as usize`/`as u32`/`as u16`/`as u8` on offset/row arithmetic silently
/// truncates on narrower targets (u64 file offsets → 32-bit usize) or wide
/// values (byte offsets → u32 spans). Use `try_into` where the value is not
/// provably bounded, or document the bound:
/// `// lint: cast-ok <why the value fits>`. (`as u64` from usize is widening
/// on every supported target, so the u64 direction is not flagged.)
fn rule_truncating_cast(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = file.toks();
    for i in 0..toks.len().saturating_sub(1) {
        let t = &toks[i];
        if t.kind != TokKind::Ident || t.text != "as" {
            continue;
        }
        let target = &toks[i + 1];
        if target.kind != TokKind::Ident
            || !matches!(target.text.as_str(), "usize" | "u32" | "u16" | "u8")
        {
            continue;
        }
        if file.in_test_code(t.line) || file.waived("cast-ok", t.line) {
            continue;
        }
        out.push(Finding {
            rule: RuleId::TruncatingCast,
            path: file.path.clone(),
            line: t.line,
            message: format!(
                "narrowing `as {}` on offset/row arithmetic; use `try_into` or document \
                 the bound: `// lint: cast-ok <reason>`",
                target.text
            ),
        });
    }
}

// ---------------------------------------------------------------------------
// Rule 5: unsafe-audit
// ---------------------------------------------------------------------------

/// How many lines above an `unsafe` token a `// SAFETY:` comment may sit and
/// still count as documenting it.
const SAFETY_WINDOW: u32 = 5;

/// Every `unsafe` block/fn/impl needs a `// SAFETY:` comment within the
/// preceding [`SAFETY_WINDOW`] lines stating the invariant that makes it
/// sound. No waiver — the SAFETY comment *is* the waiver.
fn rule_unsafe_audit(file: &SourceFile, out: &mut Vec<Finding>) {
    for t in file.toks() {
        if t.kind != TokKind::Ident || t.text != "unsafe" {
            continue;
        }
        if file.in_test_code(t.line) {
            continue;
        }
        let documented = file.comments().iter().any(|c| {
            c.line >= t.line.saturating_sub(SAFETY_WINDOW)
                && c.line <= t.line
                && c.text.contains("SAFETY")
        });
        if !documented {
            out.push(Finding {
                rule: RuleId::UnsafeAudit,
                path: file.path.clone(),
                line: t.line,
                message: "`unsafe` without a `// SAFETY:` comment in the preceding lines; \
                          state the invariant that makes this sound"
                    .to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Test-code exclusion
// ---------------------------------------------------------------------------

/// Line ranges covered by `#[cfg(test)]` / `#[test]` / `#[bench]` items.
/// Attribute shape: `#` `[` … `]`, test-ish if the first path ident is
/// `test`/`bench` or it is a `cfg(…)` mentioning `test`; the item body is
/// the brace-matched block after any further attributes (or through `;` for
/// bodyless items).
fn test_excluded_ranges(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].text == "#" && toks.get(i + 1).is_some_and(|t| t.text == "[")) {
            i += 1;
            continue;
        }
        let Some((attr_end, testish)) = attr_span(toks, i) else {
            i += 1;
            continue;
        };
        if !testish {
            i = attr_end + 1;
            continue;
        }
        let start_line = toks[i].line;
        // Skip any further attributes on the same item.
        let mut j = attr_end + 1;
        while toks.get(j).is_some_and(|t| t.text == "#")
            && toks.get(j + 1).is_some_and(|t| t.text == "[")
        {
            match attr_span(toks, j) {
                Some((e, _)) => j = e + 1,
                None => break,
            }
        }
        // Find the item body: first `{` at depth 0 (brace-match it), or a
        // `;` at depth 0 for bodyless items.
        let mut depth = 0i32;
        let mut end_line = start_line;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                ";" if depth == 0 => {
                    end_line = toks[j].line;
                    break;
                }
                "{" if depth == 0 => {
                    let mut braces = 0i32;
                    while j < toks.len() {
                        match toks[j].text.as_str() {
                            "{" => braces += 1,
                            "}" => {
                                braces -= 1;
                                if braces == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    end_line = toks.get(j).map_or(start_line, |t| t.line);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        out.push((start_line, end_line));
        i = j + 1;
    }
    out
}

/// `(index of closing `]`, is-test-attribute)` for the attribute starting at
/// `#` token `i`.
fn attr_span(toks: &[Tok], i: usize) -> Option<(usize, bool)> {
    let mut j = i + 1; // at '['
    let mut depth = 0i32;
    let mut first_ident: Option<&str> = None;
    let mut mentions_test = false;
    while j < toks.len() {
        let t = &toks[j];
        match t.text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    let testish = match first_ident {
                        Some("test") | Some("bench") => true,
                        Some("cfg") => mentions_test,
                        _ => false,
                    };
                    return Some((j, testish));
                }
            }
            _ => {
                if t.kind == TokKind::Ident {
                    if first_ident.is_none() {
                        first_ident = Some(&t.text);
                    }
                    if t.text == "test" {
                        mentions_test = true;
                    }
                }
            }
        }
        j += 1;
    }
    None
}
