//! `nodb-lint` — the workspace invariant checker.
//!
//! The repo carries cross-cutting invariants that `rustc` and `clippy`
//! cannot see: poison-tolerant locking (`lock_recover`, PR 6), cooperative
//! cancellation in every scan loop (`QueryCtx`, PR 6), byte-identical merge
//! state (PRs 1–3), bounded-offset arithmetic in the positional map and
//! tokenizer, and audited `unsafe`. This crate enforces them as five
//! token-level rules (see [`rules`] for the catalog and `README.md` for the
//! waiver syntax), built on a hand-rolled lexer ([`lexer`]) so the checker
//! itself stays dependency-free and offline-buildable.
//!
//! Two entry points:
//! - [`lint_workspace`]: walk every `src/` tree, aggregate `no-unwrap`
//!   counts against the checked-in ratchet (`lint-ratchet.toml`) — what CI
//!   runs via `cargo run -p nodb-lint -- --workspace`;
//! - [`lint_paths`]: lint explicit files, reporting every `no-unwrap` site
//!   individually and applying every rule regardless of crate — what the
//!   fixture tests use.

pub mod lexer;
pub mod ratchet;
pub mod rules;
pub mod walk;

use std::collections::BTreeMap;
use std::path::Path;

pub use rules::{Finding, RuleId};

/// The crates whose offset/row arithmetic is subject to
/// [`RuleId::TruncatingCast`] in workspace mode: file offsets (u64),
/// positional-map spans (u16/u32), cache row indices (u32), and the
/// snapshot sidecar's length-prefixed section decoding all live here, and
/// each narrowing cast is one bad length away from silent truncation.
const CAST_SCOPED_CRATES: &[&str] = &[
    "crates/posmap/",
    "crates/rawcsv/",
    "crates/rawcache/",
    "crates/snapshot/",
    // The source-epoch fingerprint: head/tail window sizes and the
    // torn-row fence are u64 byte offsets narrowed for buffer allocation.
    "crates/core/src/epoch.rs",
];

/// Result of a workspace lint run.
pub struct WorkspaceReport {
    pub findings: Vec<Finding>,
    /// Measured `no-unwrap` sites per file (library code only) — what
    /// `--write-ratchet` serializes.
    pub unwrap_counts: BTreeMap<String, usize>,
    pub files_scanned: usize,
}

/// Lint every library file under `root` against `ratchet`.
pub fn lint_workspace(root: &Path, ratchet: &ratchet::Ratchet) -> std::io::Result<WorkspaceReport> {
    let files = walk::workspace_files(root)?;
    let mut findings = Vec::new();
    let mut unwrap_counts = BTreeMap::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(path)?;
        let file = rules::SourceFile::parse(&rel, &src);
        let opts = rules::FileOptions {
            casts_in_scope: CAST_SCOPED_CRATES.iter().any(|c| rel.starts_with(c)),
            report_unwrap_sites: false,
        };
        findings.extend(rules::lint_file(&file, opts));
        let (count, _) = rules::count_unwrap_sites(&file);
        if count > 0 {
            unwrap_counts.insert(rel, count);
        }
    }
    findings.extend(ratchet::check(&unwrap_counts, ratchet));
    sort_findings(&mut findings);
    Ok(WorkspaceReport {
        findings,
        unwrap_counts,
        files_scanned: files.len(),
    })
}

/// Lint explicit files: every rule applies (no crate scoping), and each
/// `no-unwrap` site is its own finding with a real line number.
pub fn lint_paths(paths: &[&Path]) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for path in paths {
        let rel = path.to_string_lossy().replace('\\', "/");
        let src = std::fs::read_to_string(path)?;
        let file = rules::SourceFile::parse(&rel, &src);
        let opts = rules::FileOptions {
            casts_in_scope: true,
            report_unwrap_sites: true,
        };
        findings.extend(rules::lint_file(&file, opts));
    }
    sort_findings(&mut findings);
    Ok(findings)
}

fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule.as_str()).cmp(&(b.path.as_str(), b.line, b.rule.as_str()))
    });
}
