//! Binary row serialization for the conventional row stores.
//!
//! Layout per tuple: for each attribute, a 1-byte tag followed by the
//! payload (8-byte LE integers/floats, 1-byte bools, u32-length-prefixed
//! strings). The format supports *skipping* unneeded attributes without
//! decoding them — the row-store analogue of selective parsing, which keeps
//! the loaded-vs-raw comparison honest.

use nodb_rawcsv::Datum;

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_STR: u8 = 3;
const TAG_BOOL_FALSE: u8 = 4;
const TAG_BOOL_TRUE: u8 = 5;

/// Serialize one row, appending to `out`. Returns the encoded length.
pub fn encode_row(row: &[Datum], out: &mut Vec<u8>) -> usize {
    let start = out.len();
    for d in row {
        match d {
            Datum::Null => out.push(TAG_NULL),
            Datum::Int(v) => {
                out.push(TAG_INT);
                out.extend_from_slice(&v.to_le_bytes());
            }
            Datum::Float(v) => {
                out.push(TAG_FLOAT);
                out.extend_from_slice(&v.to_le_bytes());
            }
            Datum::Str(s) => {
                out.push(TAG_STR);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Datum::Bool(false) => out.push(TAG_BOOL_FALSE),
            Datum::Bool(true) => out.push(TAG_BOOL_TRUE),
        }
    }
    out.len() - start
}

/// Cursor over an encoded tuple.
pub struct TupleReader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> TupleReader<'a> {
    /// Reader over one encoded tuple.
    pub fn new(buf: &'a [u8]) -> Self {
        TupleReader { buf, at: 0 }
    }

    /// Decode the next attribute.
    pub fn next_value(&mut self) -> Option<Datum> {
        let tag = *self.buf.get(self.at)?;
        self.at += 1;
        Some(match tag {
            TAG_NULL => Datum::Null,
            TAG_INT => {
                let v = i64::from_le_bytes(self.take(8)?.try_into().ok()?);
                Datum::Int(v)
            }
            TAG_FLOAT => {
                let v = f64::from_le_bytes(self.take(8)?.try_into().ok()?);
                Datum::Float(v)
            }
            TAG_STR => {
                let len = u32::from_le_bytes(self.take(4)?.try_into().ok()?) as usize;
                let bytes = self.take(len)?;
                Datum::Str(String::from_utf8_lossy(bytes).into())
            }
            TAG_BOOL_FALSE => Datum::Bool(false),
            TAG_BOOL_TRUE => Datum::Bool(true),
            _ => return None,
        })
    }

    /// Skip the next attribute without materializing it.
    pub fn skip_value(&mut self) -> Option<()> {
        let tag = *self.buf.get(self.at)?;
        self.at += 1;
        match tag {
            TAG_NULL | TAG_BOOL_FALSE | TAG_BOOL_TRUE => {}
            TAG_INT | TAG_FLOAT => {
                self.take(8)?;
            }
            TAG_STR => {
                let len = u32::from_le_bytes(self.take(4)?.try_into().ok()?) as usize;
                self.take(len)?;
            }
            _ => return None,
        }
        Some(())
    }

    /// Decode exactly the attributes in `wanted` (ascending positions within
    /// the tuple), skipping the rest. Missing trailing attributes are NULL.
    pub fn project(&mut self, wanted: &[usize], nattrs: usize, out: &mut Vec<Datum>) {
        let mut w = 0;
        for attr in 0..nattrs {
            if w < wanted.len() && wanted[w] == attr {
                out.push(self.next_value().unwrap_or(Datum::Null));
                w += 1;
                if w == wanted.len() {
                    return; // row-store selective decode: stop early
                }
            } else if self.skip_value().is_none() {
                break;
            }
        }
        while w < wanted.len() {
            out.push(Datum::Null);
            w += 1;
        }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let s = self.buf.get(self.at..self.at + n)?;
        self.at += n;
        Some(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_row() -> Vec<Datum> {
        vec![
            Datum::Int(42),
            Datum::Null,
            Datum::from("hello"),
            Datum::Float(2.5),
            Datum::Bool(true),
        ]
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut buf = Vec::new();
        encode_row(&sample_row(), &mut buf);
        let mut r = TupleReader::new(&buf);
        for expect in sample_row() {
            assert_eq!(r.next_value().unwrap(), expect);
        }
        assert!(r.next_value().is_none());
    }

    #[test]
    fn skip_then_read() {
        let mut buf = Vec::new();
        encode_row(&sample_row(), &mut buf);
        let mut r = TupleReader::new(&buf);
        r.skip_value().unwrap();
        r.skip_value().unwrap();
        assert_eq!(r.next_value().unwrap(), Datum::from("hello"));
    }

    #[test]
    fn project_selected_attrs() {
        let mut buf = Vec::new();
        encode_row(&sample_row(), &mut buf);
        let mut r = TupleReader::new(&buf);
        let mut out = Vec::new();
        r.project(&[0, 3], 5, &mut out);
        assert_eq!(out, vec![Datum::Int(42), Datum::Float(2.5)]);
    }

    #[test]
    fn project_past_end_pads_null() {
        let mut buf = Vec::new();
        encode_row(&[Datum::Int(1)], &mut buf);
        let mut r = TupleReader::new(&buf);
        let mut out = Vec::new();
        r.project(&[0, 2], 3, &mut out);
        assert_eq!(out, vec![Datum::Int(1), Datum::Null]);
    }
}
