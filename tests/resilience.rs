//! Facade-level resilience tests (ISSUE 6): deadlines, cooperative
//! cancellation, partial-state reuse after an aborted scan, and the
//! malformed-row quarantine surfaced through [`QueryReport`].
//!
//! The slow scans here are made *reliably* slow by the deterministic fault
//! injector (`io_fault_seed` + aggressive `io_fault_one_in`): every second
//! block refill injects a transient `EIO`, a short read or latency, and each
//! `EIO` costs one retry-backoff sleep. That turns a few-MB cold scan into
//! hundreds of milliseconds of wall clock without huge files — enough for a
//! mid-scan deadline or cancel to land deterministically.

use std::sync::Arc;
use std::time::{Duration, Instant};

use nodb_repro::core::{CancelToken, ParseErrorPolicy, QueryCtx};
use nodb_repro::engine::EngineError;
use nodb_repro::prelude::*;
use nodb_server::{NoDbClient, Server, ServerConfig};

fn scratch(tag: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("nodb_resil_{tag}_{}", std::process::id()));
    p
}

/// A config whose cold scan of a few-MB file reliably takes hundreds of
/// milliseconds: tiny blocks (many refills), faults on every other refill,
/// backoff on each transient error. `cold_precount` is off so the counting
/// pass (which polls only the cancel flag, not the deadline) never front-runs
/// the deadline; many small steal slices let partial partitions complete
/// early, so an aborted scan still banks a warm prefix.
fn slow_chaos_cfg(timeout_ms: u64) -> NoDbConfig {
    NoDbConfig {
        scan_threads: 2,
        steal_slices_per_thread: 16,
        io_block_size: 4096,
        io_readahead_blocks: 0,
        cold_precount: false,
        io_fault_seed: 0xD15C,
        io_fault_one_in: 1,
        io_retry_attempts: 2,
        io_retry_backoff_ms: 4,
        query_timeout_ms: timeout_ms,
        ..NoDbConfig::pm_c()
    }
}

fn gen_table(tag: &str, rows: u64) -> (std::path::PathBuf, GeneratorConfig) {
    let gen = GeneratorConfig::uniform_ints(5, rows, 0xE51);
    let path = scratch(tag);
    gen.generate_file(&path).unwrap();
    (path, gen)
}

/// Reference answer from a fresh, fault-free, unbounded instance.
fn reference_answer(path: &std::path::Path, gen: &GeneratorConfig, sql: &str) -> QueryResult {
    let mut db = NoDb::new(NoDbConfig::pm_c());
    db.register_csv_with_schema("t", path, gen.schema(), false)
        .unwrap();
    db.query(sql).unwrap()
}

/// Acceptance criterion: a query whose `query_timeout_ms` expires mid-scan
/// fails with `DeadlineExceeded` within 2× the timeout, the partial frontier
/// it banked leaves the table strictly warmer than a fresh one, and an
/// unbounded re-run on the *same* table succeeds with the right answer.
#[test]
fn deadline_trips_within_bound_and_banks_partial_state() {
    let (path, gen) = gen_table("deadline", 60_000);
    let sql = "SELECT COUNT(*), SUM(c1) FROM t WHERE c2 < 800000000";
    let timeout_ms = 60u64;

    let mut db = NoDb::new(slow_chaos_cfg(timeout_ms));
    db.register_csv_with_schema("t", &path, gen.schema(), false)
        .unwrap();

    // A fresh table has banked nothing yet.
    let fresh = db.snapshot("t").unwrap();
    assert_eq!(fresh.map_bytes + fresh.cache_bytes, 0, "fresh frontier");

    let start = Instant::now();
    let err = db.query(sql).unwrap_err();
    let elapsed = start.elapsed();
    assert!(
        matches!(err, EngineError::DeadlineExceeded),
        "expected DeadlineExceeded, got {err:?}"
    );
    assert!(
        elapsed < Duration::from_millis(2 * timeout_ms),
        "deadline honored within 2x: took {elapsed:?} for a {timeout_ms}ms budget"
    );

    // The aborted scan still merged its completed prefix: strictly warmer
    // than the fresh table, per "queries as advisors" applied to failures.
    let after = db.snapshot("t").unwrap();
    assert!(
        after.map_bytes + after.cache_bytes > 0,
        "partial frontier banked (map={} cache={})",
        after.map_bytes,
        after.cache_bytes
    );

    // Same table, unbounded context: completes and answers correctly.
    let rerun = db.query_with_ctx(sql, &QueryCtx::unbounded()).unwrap();
    assert_eq!(rerun, reference_answer(&path, &gen, sql));
    std::fs::remove_file(path).ok();
}

/// A token cancelled from another thread mid-scan aborts the query with
/// `Cancelled`; the registry and table remain fully usable afterwards.
#[test]
fn cancel_token_aborts_mid_scan() {
    let (path, gen) = gen_table("cancel", 60_000);
    let sql = "SELECT SUM(c0) FROM t";

    let mut db = NoDb::new(slow_chaos_cfg(0));
    db.register_csv_with_schema("t", &path, gen.schema(), false)
        .unwrap();

    let ctx = QueryCtx::unbounded();
    let token: CancelToken = ctx.cancel_token();
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(25));
        token.cancel();
    });
    let err = db.query_with_ctx(sql, &ctx).unwrap_err();
    canceller.join().unwrap();
    assert!(
        matches!(err, EngineError::Cancelled),
        "expected Cancelled, got {err:?}"
    );

    // Table and registry still healthy: the same query completes unbounded.
    assert!(db.snapshot("t").is_some());
    let rerun = db.query(sql).unwrap();
    assert_eq!(rerun, reference_answer(&path, &gen, sql));
    std::fs::remove_file(path).ok();
}

/// A token cancelled *before* the query starts fails fast without touching
/// the table, and the instance keeps serving queries.
#[test]
fn pre_cancelled_query_fails_fast() {
    let (path, gen) = gen_table("precancel", 500);
    let mut db = NoDb::new(NoDbConfig::pm_c());
    db.register_csv_with_schema("t", &path, gen.schema(), false)
        .unwrap();

    let ctx = QueryCtx::unbounded();
    ctx.cancel_token().cancel();
    let err = db.query_with_ctx("SELECT c0 FROM t", &ctx).unwrap_err();
    assert!(matches!(err, EngineError::Cancelled));
    let fresh = db.snapshot("t").unwrap();
    assert_eq!(fresh.map_bytes + fresh.cache_bytes, 0, "nothing scanned");

    let ok = db.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(ok.scalar(), Some(&Datum::Int(500)));
    std::fs::remove_file(path).ok();
}

/// A TCP client that vanishes mid-query: the server's disconnect watchdog
/// must trip the query's [`CancelToken`] (counted in `disconnect_cancels`),
/// and the table must keep answering other connections correctly — the
/// aborted scan's partial frontier merges, nothing wedges.
#[test]
fn client_disconnect_mid_query_cancels_and_table_survives() {
    let (path, gen) = gen_table("disconnect", 60_000);
    let sql = "SELECT SUM(c0) FROM t";

    // The chaos config makes the cold scan reliably slow (hundreds of ms),
    // so the disconnect lands mid-scan. No server-side deadline: only the
    // watchdog can stop this query.
    let mut db = NoDb::new(slow_chaos_cfg(0));
    db.register_csv_with_schema("t", &path, gen.schema(), false)
        .unwrap();
    let server = Server::start(
        Arc::new(db),
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            scan_budget: 4,
            admission_queue: 16,
            prepared_statements: 8,
            query_timeout_ms: 0,
        },
    )
    .unwrap();

    // Fire the query and hang up: send the request frame, give the scan a
    // moment to start, then drop the socket without reading any response.
    let mut doomed = NoDbClient::connect(server.local_addr()).unwrap();
    doomed.send_only(&format!("QUERY {sql}")).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    drop(doomed);

    // The watchdog sees EOF within one poll tick and cancels the query.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.stats().disconnect_cancels == 0 {
        assert!(
            Instant::now() < deadline,
            "watchdog never cancelled the orphaned query: {:?}",
            server.stats()
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // The table is unharmed: a fresh connection gets the right answer.
    let mut client = NoDbClient::connect(server.local_addr()).unwrap();
    let resp = client.query(sql).unwrap();
    assert!(resp.is_ok(), "{}", resp.status);
    assert_eq!(resp.body, reference_answer(&path, &gen, sql).to_string());
    client.quit().unwrap();

    let stats = server.shutdown();
    assert!(stats.disconnect_cancels >= 1);
    assert!(
        stats.queries_err >= 1,
        "the cancelled query surfaced as an error: {stats:?}"
    );
    assert_eq!(
        stats.queries_ok, 1,
        "only the second client's query succeeded"
    );
    std::fs::remove_file(path).ok();
}

/// The permissive parse-error policy quarantines malformed rows and surfaces
/// the tally + capped samples in [`QueryReport`]; strict (the default)
/// aborts the query instead.
#[test]
fn quarantine_surfaces_in_query_report() {
    let path = scratch("quar");
    std::fs::write(&path, "1,10\n2,oops\n3,30\nbad,40\n5,50\n").unwrap();
    let schema = Schema::new(vec![
        ColumnDef::new("a", ColumnType::Int),
        ColumnDef::new("b", ColumnType::Int),
    ]);

    // Strict aborts on the first malformed cell.
    let mut strict = NoDb::new(NoDbConfig {
        scan_threads: 1,
        ..NoDbConfig::pm_c()
    });
    strict
        .register_csv_with_schema("t", &path, schema.clone(), false)
        .unwrap();
    assert!(strict.query("SELECT a, b FROM t").is_err());

    // Permissive answers with NULL tombstones and reports the quarantine.
    let mut db = NoDb::new(NoDbConfig {
        scan_threads: 1,
        parse_errors: ParseErrorPolicy::Permissive,
        ..NoDbConfig::pm_c()
    });
    db.register_csv_with_schema("t", &path, schema, false)
        .unwrap();
    let r = db.query("SELECT a, b FROM t").unwrap();
    assert_eq!(r.rows.len(), 5, "every row kept");
    assert_eq!(r.rows[1][1], Datum::Null, "bad cell tombstoned");
    assert_eq!(r.rows[3][0], Datum::Null, "bad cell tombstoned");

    let rep = db.admin().last_report().unwrap();
    assert_eq!(rep.rows_quarantined, 2);
    let sampled: Vec<(u64, usize)> = rep
        .quarantine_samples
        .iter()
        .map(|s| (s.row, s.attr))
        .collect();
    assert_eq!(sampled, vec![(1, 1), (3, 0)]);

    // Warm rerun: cached tombstones, nothing newly quarantined.
    let r2 = db.query("SELECT a, b FROM t").unwrap();
    assert_eq!(r, r2);
    let rep2 = db.admin().last_report().unwrap();
    assert_eq!(
        rep2.rows_quarantined, 0,
        "cached path re-quarantines nothing"
    );
    std::fs::remove_file(path).ok();
}
