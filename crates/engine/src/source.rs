//! The pluggable scan boundary.
//!
//! The paper's whole architecture hangs on one observation: only the *scan
//! operator* needs to change for in-situ processing; everything above it is
//! a stock query engine. [`ScanSource`] is that boundary. The planner
//! produces a [`ScanRequest`] (which attributes, which pushed predicate);
//! each storage backend — PostgresRaw-style raw scan, naive external-files
//! scan, loaded row/column stores — answers with batches.

use nodb_rawcsv::Datum;

use crate::batch::Batch;
use crate::error::EngineResult;
use crate::expr::RExpr;

/// What the planner asks of a scan.
#[derive(Debug, Clone)]
pub struct ScanRequest {
    /// File attribute indices the scan must read, ascending. The scan's
    /// output batches have one column per entry, in this order.
    pub attrs: Vec<usize>,
    /// Predicate over *positions into `attrs`* to evaluate before
    /// materializing a tuple (selective tuple formation). Rows failing it
    /// are never formed.
    pub predicate: Option<RExpr>,
    /// `materialize[i]` is false when `attrs[i]` is consumed only by the
    /// predicate: the source may emit NULL for that column instead of
    /// materializing the value (the engine never reads it).
    pub materialize: Vec<bool>,
}

impl ScanRequest {
    /// Request reading `attrs` with no predicate.
    pub fn project(attrs: Vec<usize>) -> Self {
        let materialize = vec![true; attrs.len()];
        ScanRequest {
            attrs,
            predicate: None,
            materialize,
        }
    }

    /// Highest attribute index touched (drives selective tokenizing: the
    /// tokenizer may abort each tuple after this attribute).
    pub fn max_attr(&self) -> Option<usize> {
        self.attrs.iter().max().copied()
    }
}

/// A stream of batches satisfying a [`ScanRequest`].
pub trait ScanSource {
    /// Produce the next batch, or `None` when exhausted.
    fn next_batch(&mut self) -> EngineResult<Option<Batch>>;

    /// Rows this source still expects to yield, when it knows (staged
    /// batches count exactly; streaming scans report the known row count of
    /// their file — an upper bound under a pushed predicate). The executor
    /// uses it to pre-size result vectors instead of growth-doubling.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// A [`ScanSource`] over batches that were produced before execution began.
///
/// This is the seam the concurrent raw scan uses: a scan that runs under a
/// table's *shared* lock stages its output batches and releases every lock
/// before the engine pipeline starts, so aggregation and sorting never hold
/// table locks. Construction from a pre-drained scan also means the source
/// itself borrows nothing — it is `'static` and trivially `Send`.
pub struct QueueSource {
    batches: std::collections::VecDeque<Batch>,
    remaining: usize,
}

impl QueueSource {
    /// Source over already-materialized batches, yielded in order.
    pub fn new(batches: std::collections::VecDeque<Batch>) -> Self {
        let remaining = batches.iter().map(Batch::rows).sum();
        QueueSource { batches, remaining }
    }
}

impl ScanSource for QueueSource {
    fn next_batch(&mut self) -> EngineResult<Option<Batch>> {
        let b = self.batches.pop_front();
        if let Some(b) = &b {
            self.remaining -= b.rows();
        }
        Ok(b)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

/// In-memory scan source over materialized rows — the reference
/// implementation used by engine unit tests and by loaded column stores
/// that pre-filter.
pub struct MemSource {
    rows: std::vec::IntoIter<Vec<Datum>>,
    ncols: usize,
    batch_size: usize,
}

impl MemSource {
    /// Source over `rows`, each of `ncols` values.
    pub fn new(rows: Vec<Vec<Datum>>, ncols: usize) -> Self {
        MemSource {
            rows: rows.into_iter(),
            ncols,
            batch_size: crate::batch::BATCH_SIZE,
        }
    }

    /// Override the batch size (tests).
    pub fn with_batch_size(mut self, n: usize) -> Self {
        self.batch_size = n.max(1);
        self
    }

    /// Apply a [`ScanRequest`] to full-width rows: project `attrs`, evaluate
    /// the predicate. A convenience for tests and simple backends.
    pub fn from_table(table: &[Vec<Datum>], req: &ScanRequest) -> Self {
        let mut out = Vec::new();
        for row in table {
            let projected: Vec<Datum> = req
                .attrs
                .iter()
                .map(|&a| row.get(a).cloned().unwrap_or(Datum::Null))
                .collect();
            if let Some(pred) = &req.predicate {
                if !pred.eval_filter(&crate::batch::SliceRow(&projected)) {
                    continue;
                }
            }
            out.push(projected);
        }
        MemSource::new(out, req.attrs.len())
    }
}

impl ScanSource for MemSource {
    fn next_batch(&mut self) -> EngineResult<Option<Batch>> {
        let mut batch = Batch::with_columns(self.ncols);
        for row in self.rows.by_ref().take(self.batch_size) {
            batch.push_row(&row);
        }
        Ok(if batch.is_empty() { None } else { Some(batch) })
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.rows.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodb_sqlparse::ast::BinOp;

    fn table() -> Vec<Vec<Datum>> {
        (0..10i64)
            .map(|i| vec![Datum::Int(i), Datum::Int(i * 10), Datum::Int(i % 3)])
            .collect()
    }

    #[test]
    fn mem_source_batches() {
        let req = ScanRequest::project(vec![0, 2]);
        let mut s = MemSource::from_table(&table(), &req).with_batch_size(4);
        let b1 = s.next_batch().unwrap().unwrap();
        assert_eq!(b1.rows(), 4);
        assert_eq!(b1.ncols(), 2);
        let b2 = s.next_batch().unwrap().unwrap();
        assert_eq!(b2.rows(), 4);
        let b3 = s.next_batch().unwrap().unwrap();
        assert_eq!(b3.rows(), 2);
        assert!(s.next_batch().unwrap().is_none());
    }

    #[test]
    fn pushed_predicate_filters_in_source() {
        let req = ScanRequest {
            attrs: vec![0, 1],
            predicate: Some(RExpr::Binary {
                op: BinOp::Gt,
                left: Box::new(RExpr::Col(1)),
                right: Box::new(RExpr::Const(Datum::Int(50))),
            }),
            materialize: vec![true, true],
        };
        let mut s = MemSource::from_table(&table(), &req);
        assert_eq!(s.size_hint(), Some(4));
        let b = s.next_batch().unwrap().unwrap();
        assert_eq!(b.rows(), 4); // rows 6..9 have c1 > 50
        assert_eq!(b.value(0, 0), Datum::Int(6));
    }

    #[test]
    fn queue_source_drains_in_order() {
        let mut a = Batch::with_columns(1);
        a.push_row(&[Datum::Int(1)]);
        let mut b = Batch::with_columns(1);
        b.push_row(&[Datum::Int(2)]);
        let mut q = std::collections::VecDeque::new();
        q.push_back(a);
        q.push_back(b);
        let mut s = QueueSource::new(q);
        assert_eq!(s.size_hint(), Some(2));
        assert_eq!(s.next_batch().unwrap().unwrap().value(0, 0), Datum::Int(1));
        assert_eq!(s.size_hint(), Some(1));
        assert_eq!(s.next_batch().unwrap().unwrap().value(0, 0), Datum::Int(2));
        assert!(s.next_batch().unwrap().is_none());
    }

    #[test]
    fn max_attr_reports_selective_tokenize_bound() {
        let req = ScanRequest::project(vec![2, 7, 4]);
        assert_eq!(req.max_attr(), Some(7));
    }
}
