//! Runtime value representation shared by the whole stack.
//!
//! A [`Datum`] is a single parsed value. The engine works over columnar
//! batches of datums; the cache stores typed columns that expand back into
//! datums on read. `Datum` deliberately keeps strings as `Box<str>` (two
//! words) rather than `String` (three words) to keep the enum at 16 bytes
//! plus discriminant — a hot type, per the perf-book guidance on type sizes.

use std::cmp::Ordering;
use std::fmt;

use crate::schema::ColumnType;

/// A single runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Datum {
    /// SQL NULL / missing value (empty CSV field).
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Owned string.
    Str(Box<str>),
    /// Boolean.
    Bool(bool),
}

impl Datum {
    /// The column type this datum naturally belongs to, or `None` for NULL.
    pub fn column_type(&self) -> Option<ColumnType> {
        match self {
            Datum::Null => None,
            Datum::Int(_) => Some(ColumnType::Int),
            Datum::Float(_) => Some(ColumnType::Float),
            Datum::Str(_) => Some(ColumnType::Str),
            Datum::Bool(_) => Some(ColumnType::Bool),
        }
    }

    /// True when the datum is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Datum::Null)
    }

    /// Integer value if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Datum::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Float value; integers coerce losslessly.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Datum::Float(v) => Some(*v),
            Datum::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// String slice if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Datum::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean value if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Datum::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Approximate heap + inline footprint in bytes, used for cache budget
    /// accounting.
    pub fn footprint(&self) -> usize {
        let inline = std::mem::size_of::<Datum>();
        match self {
            Datum::Str(s) => inline + s.len(),
            _ => inline,
        }
    }

    /// SQL-style three-valued comparison. Returns `None` when either side is
    /// NULL or the types are incomparable. Int/Float compare numerically.
    pub fn sql_cmp(&self, other: &Datum) -> Option<Ordering> {
        match (self, other) {
            (Datum::Null, _) | (_, Datum::Null) => None,
            (Datum::Int(a), Datum::Int(b)) => Some(a.cmp(b)),
            (Datum::Float(a), Datum::Float(b)) => a.partial_cmp(b),
            (Datum::Int(a), Datum::Float(b)) => (*a as f64).partial_cmp(b),
            (Datum::Float(a), Datum::Int(b)) => a.partial_cmp(&(*b as f64)),
            (Datum::Str(a), Datum::Str(b)) => Some(a.cmp(b)),
            (Datum::Bool(a), Datum::Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Total ordering used for ORDER BY and index keys: NULLs sort first,
    /// then by type class, then by value (floats use `total_cmp`).
    pub fn total_cmp(&self, other: &Datum) -> Ordering {
        fn class(d: &Datum) -> u8 {
            match d {
                Datum::Null => 0,
                Datum::Bool(_) => 1,
                Datum::Int(_) | Datum::Float(_) => 2,
                Datum::Str(_) => 3,
            }
        }
        match (self, other) {
            (Datum::Null, Datum::Null) => Ordering::Equal,
            (Datum::Int(a), Datum::Int(b)) => a.cmp(b),
            (Datum::Float(a), Datum::Float(b)) => a.total_cmp(b),
            (Datum::Int(a), Datum::Float(b)) => (*a as f64).total_cmp(b),
            (Datum::Float(a), Datum::Int(b)) => a.total_cmp(&(*b as f64)),
            (Datum::Str(a), Datum::Str(b)) => a.cmp(b),
            (Datum::Bool(a), Datum::Bool(b)) => a.cmp(b),
            (a, b) => class(a).cmp(&class(b)),
        }
    }
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Null => f.write_str("NULL"),
            Datum::Int(v) => write!(f, "{v}"),
            Datum::Float(v) => write!(f, "{v}"),
            Datum::Str(s) => write!(f, "{s}"),
            Datum::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Datum {
    fn from(v: i64) -> Self {
        Datum::Int(v)
    }
}
impl From<f64> for Datum {
    fn from(v: f64) -> Self {
        Datum::Float(v)
    }
}
impl From<&str> for Datum {
    fn from(v: &str) -> Self {
        Datum::Str(v.into())
    }
}
impl From<String> for Datum {
    fn from(v: String) -> Self {
        Datum::Str(v.into_boxed_str())
    }
}
impl From<bool> for Datum {
    fn from(v: bool) -> Self {
        Datum::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_cmp_numeric_coercion() {
        assert_eq!(
            Datum::Int(2).sql_cmp(&Datum::Float(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Datum::Float(3.0).sql_cmp(&Datum::Int(3)),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn sql_cmp_null_is_unknown() {
        assert_eq!(Datum::Null.sql_cmp(&Datum::Int(1)), None);
        assert_eq!(Datum::Int(1).sql_cmp(&Datum::Null), None);
    }

    #[test]
    fn sql_cmp_type_mismatch_is_unknown() {
        assert_eq!(Datum::Int(1).sql_cmp(&Datum::Str("1".into())), None);
    }

    #[test]
    fn total_cmp_sorts_nulls_first() {
        let mut v = [Datum::Int(3), Datum::Null, Datum::Int(1)];
        v.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(v[0], Datum::Null);
        assert_eq!(v[1], Datum::Int(1));
    }

    #[test]
    fn footprint_counts_string_payload() {
        let base = Datum::Int(1).footprint();
        let s = Datum::Str("hello".into()).footprint();
        assert_eq!(s, base + 5);
    }

    #[test]
    fn display_round_trip() {
        assert_eq!(Datum::Int(-5).to_string(), "-5");
        assert_eq!(Datum::Null.to_string(), "NULL");
        assert_eq!(Datum::Bool(true).to_string(), "true");
    }

    #[test]
    fn datum_is_small() {
        // Hot type: keep it within 24 bytes on 64-bit.
        assert!(std::mem::size_of::<Datum>() <= 24);
    }
}
