//! Unified wrappers over every system in the comparison — the "contestants"
//! of the friendly race, and the PM/C variants of the breakdown panels.

use std::path::Path;
use std::time::{Duration, Instant};

use nodb_core::{NoDb, NoDbConfig};
use nodb_engine::{EngineResult, QueryResult};
use nodb_rawcsv::Schema;
use nodb_storage::{ConventionalDb, DbProfile};

/// One contestant: some system that can (optionally) initialize and then
/// answer queries.
pub trait Contestant {
    /// Display name.
    fn name(&self) -> String;

    /// Perform all initialization (loading, indexing). NoDB systems return
    /// immediately — that's the whole point.
    fn init(&mut self, csv: &Path, schema: &Schema) -> EngineResult<Duration>;

    /// Run one query, returning the result and its latency.
    fn run(&mut self, sql: &str) -> EngineResult<(QueryResult, Duration)>;
}

/// A PostgresRaw-style in-situ contestant (any [`NoDbConfig`] variant).
pub struct RawContestant {
    /// The underlying system (exposed for panel snapshots).
    pub db: NoDb,
    label: String,
}

impl RawContestant {
    /// Contestant with the given configuration.
    pub fn new(config: NoDbConfig) -> Self {
        RawContestant {
            label: config.label().to_string(),
            db: NoDb::new(config),
        }
    }

    /// The paper's PostgresRaw PM+C.
    pub fn pm_c() -> Self {
        Self::new(NoDbConfig::pm_c())
    }

    /// The paper's Baseline (naive external files).
    pub fn baseline() -> Self {
        Self::new(NoDbConfig::baseline())
    }
}

impl Contestant for RawContestant {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn init(&mut self, csv: &Path, schema: &Schema) -> EngineResult<Duration> {
        let t = Instant::now();
        self.db
            .register_csv_with_schema("t", csv, schema.clone(), false)?;
        Ok(t.elapsed())
    }

    fn run(&mut self, sql: &str) -> EngineResult<(QueryResult, Duration)> {
        let t = Instant::now();
        let r = self.db.query(sql)?;
        Ok((r, t.elapsed()))
    }
}

/// A conventional load-then-query contestant.
pub struct LoadedContestant {
    /// The underlying DBMS (exposed for inspection).
    pub db: ConventionalDb,
    profile: DbProfile,
    index_attrs: Vec<usize>,
    _dir: std::path::PathBuf,
}

impl LoadedContestant {
    /// Contestant with the given profile; `index_attrs` models the
    /// contestant's tuning choices ("free to … build additional auxiliary
    /// data structures such as indices", §4.3).
    pub fn new(profile: DbProfile, index_attrs: Vec<usize>) -> Self {
        let dir = crate::workload::scratch_dir(&format!("dbms_{profile:?}"));
        LoadedContestant {
            db: ConventionalDb::new(profile, &dir),
            profile,
            index_attrs,
            _dir: dir,
        }
    }
}

impl Contestant for LoadedContestant {
    fn name(&self) -> String {
        if self.index_attrs.is_empty() {
            self.profile.name().to_string()
        } else {
            format!("{} (+{} idx)", self.profile.name(), self.index_attrs.len())
        }
    }

    fn init(&mut self, csv: &Path, schema: &Schema) -> EngineResult<Duration> {
        let report = self
            .db
            .load_csv("t", csv, schema.clone(), false, &self.index_attrs)
            .map_err(nodb_engine::EngineError::from)?;
        Ok(report.total_time())
    }

    fn run(&mut self, sql: &str) -> EngineResult<(QueryResult, Duration)> {
        let t = Instant::now();
        let r = self.db.query(sql)?;
        Ok((r, t.elapsed()))
    }
}

/// The full lineup for the friendly race.
pub fn race_lineup() -> Vec<Box<dyn Contestant>> {
    vec![
        Box::new(RawContestant::pm_c()),
        Box::new(RawContestant::baseline()),
        Box::new(LoadedContestant::new(DbProfile::PostgresLike, vec![])),
        Box::new(LoadedContestant::new(DbProfile::MySqlLike, vec![])),
        Box::new(LoadedContestant::new(DbProfile::DbmsXLike, vec![])),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{scratch_dir, Dataset};

    #[test]
    fn all_contestants_agree_on_results() {
        let dir = scratch_dir("systems_test");
        let d = Dataset::standard(&dir, 5, 2000, 3);
        let schema = d.schema();
        let sql = "SELECT COUNT(*), SUM(c2) FROM t WHERE c1 < 400000000";
        let mut answers = Vec::new();
        for mut c in race_lineup() {
            c.init(&d.path, &schema).unwrap();
            let (r, _) = c.run(sql).unwrap();
            answers.push((c.name(), r));
        }
        let (ref_name, reference) = &answers[0];
        for (name, r) in &answers[1..] {
            assert_eq!(r, reference, "{name} disagrees with {ref_name}");
        }
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn raw_contestant_inits_instantly_loaded_does_not() {
        let dir = scratch_dir("init_test");
        let d = Dataset::standard(&dir, 5, 5000, 4);
        let schema = d.schema();
        let mut raw = RawContestant::pm_c();
        let raw_init = raw.init(&d.path, &schema).unwrap();
        let mut pg = LoadedContestant::new(DbProfile::PostgresLike, vec![]);
        let pg_init = pg.init(&d.path, &schema).unwrap();
        assert!(
            pg_init > raw_init,
            "loading ({pg_init:?}) must dominate registration ({raw_init:?})"
        );
        std::fs::remove_dir_all(dir).unwrap();
    }
}
