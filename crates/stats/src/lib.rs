//! # nodb-stats — on-the-fly statistics (paper §3.3)
//!
//! Conventional optimizers build statistics *after load*; PostgresRaw
//! "extends the scan operator to create statistics on-the-fly", only on
//! requested attributes, incrementally augmented as queries touch more of
//! the file. This crate provides:
//!
//! * [`sample::Reservoir`] — Algorithm-R reservoir sampling, the "sample of
//!   the data" handed to the statistics routines;
//! * [`ndv::DistinctCounter`] — linear-counting distinct-value estimation;
//! * [`histogram::EquiDepthHistogram`] — equi-depth histograms built from
//!   the reservoir, used for range selectivity;
//! * [`attr::AttrStats`] — per-attribute accumulator (min/max, null count,
//!   NDV, reservoir) fed by the scan;
//! * [`table::TableStats`] — the per-file registry the optimizer consults,
//!   with the [`estimate::SelectivityEstimator`] trait and the
//!   [`estimate::PredicateSketch`] vocabulary shared with the engine.
//!
//! Everything here is deterministic given the scan order (the reservoir RNG
//! is seeded from the attribute index), so experiments are reproducible.

pub mod attr;
pub mod estimate;
pub mod histogram;
pub mod ndv;
pub mod sample;
pub mod table;

pub use attr::{AttrStats, AttrStatsState};
pub use estimate::{PredicateSketch, SelectivityEstimator};
pub use histogram::EquiDepthHistogram;
pub use ndv::DistinctCounter;
pub use sample::{Reservoir, ReservoirState};
pub use table::{TableStats, TableStatsState};
