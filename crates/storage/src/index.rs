//! B-tree secondary indexes for the loaded stores.
//!
//! Built at load time (part of the "initialization" cost the friendly race
//! measures), mapping key values to row ids. Range scans return row ids in
//! row order so heap fetches stay sequential-ish.

use std::collections::BTreeMap;
use std::ops::Bound;

use nodb_rawcsv::Datum;

/// Total-ordered wrapper making [`Datum`] usable as a B-tree key.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexKey(pub Datum);

impl Eq for IndexKey {}

impl PartialOrd for IndexKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IndexKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A single-attribute B-tree index.
#[derive(Debug, Default)]
pub struct BTreeIndex {
    map: BTreeMap<IndexKey, Vec<u64>>,
    entries: u64,
}

impl BTreeIndex {
    /// Empty index.
    pub fn new() -> Self {
        BTreeIndex::default()
    }

    /// Insert one `(key, row_id)` pair. NULL keys are not indexed
    /// (matching SQL index semantics for lookups).
    pub fn insert(&mut self, key: &Datum, row_id: u64) {
        if key.is_null() {
            return;
        }
        self.map
            .entry(IndexKey(key.clone()))
            .or_default()
            .push(row_id);
        self.entries += 1;
    }

    /// Number of indexed entries.
    pub fn len(&self) -> u64 {
        self.entries
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Row ids with `key = v`, in insertion (row) order.
    pub fn lookup_eq(&self, v: &Datum) -> Vec<u64> {
        self.map
            .get(&IndexKey(v.clone()))
            .cloned()
            .unwrap_or_default()
    }

    /// Row ids in the given bounds, sorted ascending.
    pub fn lookup_range(&self, lo: Bound<&Datum>, hi: Bound<&Datum>) -> Vec<u64> {
        let lo = map_bound(lo);
        let hi = map_bound(hi);
        let mut out: Vec<u64> = self
            .map
            .range((lo, hi))
            .flat_map(|(_, ids)| ids.iter().copied())
            .collect();
        out.sort_unstable();
        out
    }
}

fn map_bound(b: Bound<&Datum>) -> Bound<IndexKey> {
    match b {
        Bound::Included(d) => Bound::Included(IndexKey(d.clone())),
        Bound::Excluded(d) => Bound::Excluded(IndexKey(d.clone())),
        Bound::Unbounded => Bound::Unbounded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build() -> BTreeIndex {
        let mut ix = BTreeIndex::new();
        for (row, v) in [5i64, 3, 8, 3, 1].iter().enumerate() {
            ix.insert(&Datum::Int(*v), row as u64);
        }
        ix
    }

    #[test]
    fn eq_lookup_finds_duplicates() {
        let ix = build();
        assert_eq!(ix.lookup_eq(&Datum::Int(3)), vec![1, 3]);
        assert_eq!(ix.lookup_eq(&Datum::Int(99)), Vec::<u64>::new());
    }

    #[test]
    fn range_lookup_sorted_row_order() {
        let ix = build();
        let ids = ix.lookup_range(
            Bound::Included(&Datum::Int(3)),
            Bound::Included(&Datum::Int(5)),
        );
        assert_eq!(ids, vec![0, 1, 3]);
        let all = ix.lookup_range(Bound::Unbounded, Bound::Unbounded);
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn nulls_not_indexed() {
        let mut ix = BTreeIndex::new();
        ix.insert(&Datum::Null, 0);
        assert!(ix.is_empty());
    }
}
