//! Seeded violations for `unsafe-audit`: the blocks on lines 7 and 16 carry
//! no safety justification comment (one more than five lines up does not
//! count); one finding each.

fn undocumented(ptr: *const u8) -> u8 {
    // This comment talks about something else entirely.
    unsafe { *ptr }
}

// SAFETY: this comment is too far from the unsafe block below to count —
// six lines of unrelated code sit in between.
fn stale_comment(ptr: *const u8, n: usize) -> u8 {
    let mut acc = 0u8;
    let mut i = 0;
    while i < n {
        acc = acc.wrapping_add(unsafe { *ptr.add(i) });
        i += 1;
    }
    acc
}
