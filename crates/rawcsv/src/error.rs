//! Error type for the raw CSV substrate.

use std::fmt;

/// Errors produced while reading, tokenizing or parsing raw CSV data.
#[derive(Debug)]
pub enum RawCsvError {
    /// Underlying I/O failure, annotated with the operation that failed.
    Io {
        /// Human-readable operation description (e.g. `"open <path>"`).
        context: String,
        /// The OS-level error.
        source: std::io::Error,
    },
    /// A row had fewer fields than the requested attribute index.
    MissingField {
        /// Zero-based row number in the file.
        row: u64,
        /// Zero-based attribute index that was requested.
        attr: usize,
        /// Number of fields actually present.
        present: usize,
    },
    /// A field could not be parsed as the declared column type.
    ParseField {
        /// Zero-based row number in the file.
        row: u64,
        /// Zero-based attribute index.
        attr: usize,
        /// Declared type name.
        ty: &'static str,
        /// The offending raw text (lossily decoded, truncated).
        text: String,
    },
    /// The file is malformed in a way the tokenizer cannot recover from
    /// (e.g. an unterminated quoted field at end of file).
    Malformed {
        /// Byte offset at which the problem was detected.
        offset: u64,
        /// Description of the problem.
        reason: String,
    },
    /// Schema inference failed (e.g. empty file).
    Infer(String),
}

impl fmt::Display for RawCsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RawCsvError::Io { context, source } => {
                write!(f, "I/O error during {context}: {source}")
            }
            RawCsvError::MissingField { row, attr, present } => write!(
                f,
                "row {row} has {present} fields but attribute {attr} was requested"
            ),
            RawCsvError::ParseField {
                row,
                attr,
                ty,
                text,
            } => write!(
                f,
                "row {row}, attribute {attr}: cannot parse {text:?} as {ty}"
            ),
            RawCsvError::Malformed { offset, reason } => {
                write!(f, "malformed CSV at byte {offset}: {reason}")
            }
            RawCsvError::Infer(msg) => write!(f, "schema inference failed: {msg}"),
        }
    }
}

impl std::error::Error for RawCsvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RawCsvError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl RawCsvError {
    /// Wrap an [`std::io::Error`] with a context string.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        RawCsvError::Io {
            context: context.into(),
            source,
        }
    }
}
