//! Cache microbenchmarks: serving a column from the binary cache vs
//! re-tokenizing + re-parsing it from raw bytes (§3.2's payoff), and the
//! statistics-collection overhead (§3.3's cost, the "NoDB" slice of Fig 3).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use nodb_rawcache::{CachePolicy, RawCache};
use nodb_rawcsv::tokenizer::{TokenizerConfig, Tokens};
use nodb_rawcsv::{parser, ColumnType, Datum, GeneratorConfig};
use nodb_stats::TableStats;

fn lines(cols: usize, rows: u64) -> Vec<Vec<u8>> {
    GeneratorConfig::uniform_ints(cols, rows, 9)
        .generate_bytes()
        .split(|&b| b == b'\n')
        .filter(|l| !l.is_empty())
        .map(|l| l.to_vec())
        .collect()
}

fn bench_hit_vs_reparse(c: &mut Criterion) {
    let data = lines(10, 5000);
    let cfg = TokenizerConfig::default();
    let attr = 7usize;

    // Warm the cache once.
    let mut cache = RawCache::new(CachePolicy::default());
    let tick = cache.begin_query(&[attr]);
    let mut t = Tokens::new();
    for (row, l) in data.iter().enumerate() {
        cfg.tokenize_selective(l, attr, &mut t);
        let d = parser::parse_field(
            t.get(attr).unwrap().of(l),
            ColumnType::Int,
            row as u64,
            attr,
        )
        .unwrap();
        cache.append(attr, ColumnType::Int, &d, tick);
    }

    let mut group = c.benchmark_group("cache");
    group.bench_function("hit_5000_rows", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for row in 0..data.len() {
                if let Some(Datum::Int(v)) = cache.peek(attr, row) {
                    acc = acc.wrapping_add(v);
                }
            }
            black_box(acc)
        })
    });

    group.bench_function("reparse_5000_rows", |b| {
        let mut t = Tokens::new();
        b.iter(|| {
            let mut acc = 0i64;
            for (row, l) in data.iter().enumerate() {
                cfg.tokenize_selective(l, attr, &mut t);
                let d = parser::parse_field(
                    t.get(attr).unwrap().of(l),
                    ColumnType::Int,
                    row as u64,
                    attr,
                )
                .unwrap();
                if let Datum::Int(v) = d {
                    acc = acc.wrapping_add(v);
                }
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_stats_overhead(c: &mut Criterion) {
    let values: Vec<Datum> = (0..5000i64).map(|i| Datum::Int(i * 37)).collect();
    let mut group = c.benchmark_group("stats_collection");
    for stride in [1u64, 20] {
        group.bench_function(format!("observe_every_{stride}"), |b| {
            b.iter(|| {
                let mut stats = TableStats::new(stride);
                let a = stats.attr_mut(0);
                for (i, v) in values.iter().enumerate() {
                    if (i as u64).is_multiple_of(stride) {
                        a.observe(v);
                    }
                }
                black_box(stats.attr(0).map(|s| s.rows_seen()))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hit_vs_reparse, bench_stats_overhead);
criterion_main!(benches);
