//! Reservoir sampling (Vitter's Algorithm R).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use nodb_rawcsv::Datum;

/// Fixed-capacity uniform sample over a stream of datums.
///
/// Deterministic: seeded at construction, so the same scan order yields the
/// same sample — experiments stay reproducible.
#[derive(Debug)]
pub struct Reservoir {
    sample: Vec<Datum>,
    capacity: usize,
    seen: u64,
    rng: StdRng,
}

impl Reservoir {
    /// Reservoir of `capacity` elements, seeded with `seed`.
    pub fn new(capacity: usize, seed: u64) -> Self {
        Reservoir {
            sample: Vec::with_capacity(capacity.min(1024)),
            capacity: capacity.max(1),
            seen: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Offer one (non-null) value to the reservoir.
    pub fn offer(&mut self, d: &Datum) {
        self.seen += 1;
        if self.sample.len() < self.capacity {
            self.sample.push(d.clone());
            return;
        }
        let j = self.rng.random_range(0..self.seen);
        if (j as usize) < self.capacity {
            self.sample[j as usize] = d.clone();
        }
    }

    /// Values offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The current sample (unordered).
    pub fn sample(&self) -> &[Datum] {
        &self.sample
    }

    /// Number of sampled values currently held.
    pub fn len(&self) -> usize {
        self.sample.len()
    }

    /// True when nothing has been sampled.
    pub fn is_empty(&self) -> bool {
        self.sample.is_empty()
    }

    /// Reset (file replaced).
    pub fn clear(&mut self) {
        self.sample.clear();
        self.seen = 0;
    }

    /// Export the full state — sample, capacity, stream position *and* RNG
    /// state — so a restored reservoir continues the exact replacement
    /// stream a restart interrupted (byte-identical samples either way).
    pub fn export_state(&self) -> ReservoirState {
        ReservoirState {
            sample: self.sample.clone(),
            capacity: self.capacity,
            seen: self.seen,
            rng: self.rng.to_state(),
        }
    }

    /// Rebuild a reservoir from [`Self::export_state`]. Returns `None` when
    /// the state is inconsistent (more samples than capacity, or more
    /// samples than values seen) — restored sidecars are untrusted input.
    pub fn from_state(state: ReservoirState) -> Option<Self> {
        if state.capacity == 0
            || state.sample.len() > state.capacity
            || (state.sample.len() as u64) > state.seen
        {
            return None;
        }
        Some(Reservoir {
            sample: state.sample,
            capacity: state.capacity,
            seen: state.seen,
            rng: StdRng::from_state(state.rng),
        })
    }
}

/// Serializable snapshot of a [`Reservoir`]'s full state.
#[derive(Debug, Clone)]
pub struct ReservoirState {
    /// The held sample, in slot order.
    pub sample: Vec<Datum>,
    /// Reservoir capacity.
    pub capacity: usize,
    /// Values offered so far.
    pub seen: u64,
    /// Raw xoshiro256++ state mid-stream.
    pub rng: [u64; 4],
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_to_capacity_then_samples() {
        let mut r = Reservoir::new(10, 1);
        for i in 0..100 {
            r.offer(&Datum::Int(i));
        }
        assert_eq!(r.len(), 10);
        assert_eq!(r.seen(), 100);
    }

    #[test]
    fn short_streams_keep_everything() {
        let mut r = Reservoir::new(100, 1);
        for i in 0..5 {
            r.offer(&Datum::Int(i));
        }
        assert_eq!(r.len(), 5);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut r = Reservoir::new(8, seed);
            for i in 0..1000 {
                r.offer(&Datum::Int(i));
            }
            r.sample().to_vec()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn sample_is_roughly_uniform() {
        // Mean of a uniform sample over 0..10000 should be near 5000.
        let mut r = Reservoir::new(200, 3);
        for i in 0..10_000 {
            r.offer(&Datum::Int(i));
        }
        let mean: f64 = r.sample().iter().filter_map(Datum::as_float).sum::<f64>() / r.len() as f64;
        assert!((mean - 5000.0).abs() < 1500.0, "mean = {mean}");
    }

    #[test]
    fn clear_resets() {
        let mut r = Reservoir::new(4, 1);
        r.offer(&Datum::Int(1));
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.seen(), 0);
    }

    #[test]
    fn state_round_trip_continues_stream_identically() {
        let mut a = Reservoir::new(8, 7);
        for i in 0..500 {
            a.offer(&Datum::Int(i));
        }
        let mut b = Reservoir::from_state(a.export_state()).expect("consistent state");
        assert_eq!(a.sample(), b.sample());
        assert_eq!(a.seen(), b.seen());
        // The replacement stream after the checkpoint must match exactly.
        for i in 500..2000 {
            a.offer(&Datum::Int(i));
            b.offer(&Datum::Int(i));
        }
        assert_eq!(a.sample(), b.sample());
    }

    #[test]
    fn from_state_rejects_inconsistent_shapes() {
        let r = Reservoir::new(4, 1);
        let mut s = r.export_state();
        s.sample = vec![Datum::Int(1); 8]; // more than capacity
        assert!(Reservoir::from_state(s).is_none());
        let mut s2 = Reservoir::new(4, 1).export_state();
        s2.sample = vec![Datum::Int(1)];
        s2.seen = 0; // samples without offers
        assert!(Reservoir::from_state(s2).is_none());
        let mut s3 = Reservoir::new(4, 1).export_state();
        s3.capacity = 0;
        assert!(Reservoir::from_state(s3).is_none());
    }
}
