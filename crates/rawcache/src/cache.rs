//! The cache proper: per-attribute columns, byte budget, LRU eviction.

use std::collections::HashMap;

use nodb_rawcsv::{ColumnType, Datum};

use crate::column::TypedColumn;

/// Cache policy knobs ("the size of the cache is a parameter that can be
/// tuned depending on the resources", §3.2).
#[derive(Debug, Clone, Copy)]
pub struct CachePolicy {
    /// Byte budget for all cached columns together.
    pub budget_bytes: usize,
}

impl Default for CachePolicy {
    fn default() -> Self {
        CachePolicy {
            budget_bytes: 1 << 30,
        } // 1 GiB: effectively unbounded on demo data
    }
}

impl CachePolicy {
    /// Policy with an explicit budget.
    pub fn with_budget(budget_bytes: usize) -> Self {
        CachePolicy { budget_bytes }
    }
}

/// Lifetime counters and gauges for the monitoring panel (Fig 2).
#[derive(Debug, Default, Clone)]
pub struct CacheMetrics {
    /// Row-level cache hits (values served without touching the raw file).
    pub hits: u64,
    /// Row-level misses (value had to be parsed from raw bytes).
    pub misses: u64,
    /// Columns evicted by LRU pressure.
    pub evictions: u64,
    /// Appends refused because the budget was exhausted and every resident
    /// column was in use by the current query.
    pub admission_stalls: u64,
}

impl CacheMetrics {
    /// Hit ratio in `[0, 1]`; 0 when nothing was accessed.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One resident cached column plus bookkeeping.
#[derive(Debug)]
struct Entry {
    col: TypedColumn,
    last_used: u64,
    /// Column refuses further growth (budget exhausted while it was the only
    /// admissible victim). Cleared when pressure relaxes (eviction of
    /// another column or budget increase).
    frozen: bool,
}

/// The adaptive binary cache for one raw file.
///
/// Rows are addressed with the same row ids the positional map uses, so a
/// single scan can serve attribute A from the cache and attribute B from the
/// raw file position by position.
#[derive(Debug)]
pub struct RawCache {
    entries: HashMap<usize, Entry>,
    policy: CachePolicy,
    bytes_used: usize,
    tick: u64,
    metrics: CacheMetrics,
}

impl RawCache {
    /// Empty cache under the given policy.
    pub fn new(policy: CachePolicy) -> Self {
        RawCache {
            entries: HashMap::new(),
            policy,
            bytes_used: 0,
            tick: 0,
            metrics: CacheMetrics::default(),
        }
    }

    /// Policy in force.
    pub fn policy(&self) -> &CachePolicy {
        &self.policy
    }

    /// Change the budget at runtime (demo knob). Shrinking evicts at the
    /// next admission check; growing unfreezes stalled columns.
    pub fn set_budget(&mut self, budget_bytes: usize) {
        self.policy.budget_bytes = budget_bytes;
        if budget_bytes > self.bytes_used {
            for e in self.entries.values_mut() {
                e.frozen = false;
            }
        } else {
            self.evict_to_fit(0, u64::MAX);
        }
    }

    /// Bytes held by cached columns.
    pub fn bytes_used(&self) -> usize {
        self.bytes_used
    }

    /// Utilization in `[0, 1]` of the budget — the Fig 2 gauge.
    pub fn utilization(&self) -> f64 {
        if self.policy.budget_bytes == 0 {
            return 0.0;
        }
        self.bytes_used as f64 / self.policy.budget_bytes as f64
    }

    /// Lifetime counters.
    pub fn metrics(&self) -> &CacheMetrics {
        &self.metrics
    }

    /// Attributes currently resident, with their coverage (rows cached).
    pub fn resident(&self) -> Vec<(usize, usize)> {
        let mut v: Vec<(usize, usize)> = self
            .entries
            .iter()
            .map(|(&a, e)| (a, e.col.len()))
            .collect();
        v.sort_unstable();
        v
    }

    /// Rows of `attr` served directly from the cache (prefix coverage);
    /// 0 when the attribute is not resident.
    pub fn coverage(&self, attr: usize) -> usize {
        self.entries.get(&attr).map(|e| e.col.len()).unwrap_or(0)
    }

    /// Coverage snapshot for a whole attribute set, in request order.
    ///
    /// This is the admission frontier of a scan's deferred cache merge:
    /// the parallel/concurrent scan buffers one value per row per attribute
    /// and replays the sequential admission loop from *this* frontier, so
    /// rows another interleaved query already admitted are never appended
    /// twice.
    pub fn coverage_of(&self, attrs: &[usize]) -> Vec<usize> {
        attrs.iter().map(|&a| self.coverage(a)).collect()
    }

    /// Cached rows of `attr` within the row range `[lo, hi)` — the coverage
    /// probe a two-phase cold-scan partition runs once its global row range
    /// is known. Coverage is a prefix, so this is the prefix clamped to the
    /// range.
    pub fn covered_in_range(&self, attr: usize, lo: usize, hi: usize) -> usize {
        self.coverage(attr).min(hi).saturating_sub(lo.min(hi))
    }

    /// True when every row of `[lo, hi)` is cached for *every* attribute in
    /// `attrs` — the partition-grained probe that lets a worker serve its
    /// whole slice from the cache without opening the raw file.
    pub fn covers_range(&self, attrs: &[usize], lo: usize, hi: usize) -> bool {
        attrs
            .iter()
            .all(|&a| self.covered_in_range(a, lo, hi) == hi.saturating_sub(lo.min(hi)))
    }

    /// Direct read-only handle to a resident column.
    ///
    /// Partition workers resolve the columns they will read *once* per
    /// partition and then index rows straight through the handle — the
    /// per-row `HashMap` probe [`Self::peek`] pays is hoisted out of the
    /// hot loop.
    pub fn column(&self, attr: usize) -> Option<&TypedColumn> {
        self.entries.get(&attr).map(|e| &e.col)
    }

    /// Begin a query touching `attrs`: bumps the LRU clock of the resident
    /// columns among them and returns the clock value, which the scan passes
    /// back to [`Self::append`] so the current query's columns are protected
    /// from eviction.
    pub fn begin_query(&mut self, attrs: &[usize]) -> u64 {
        self.tick += 1;
        for a in attrs {
            if let Some(e) = self.entries.get_mut(a) {
                e.last_used = self.tick;
            }
        }
        self.tick
    }

    /// Read `attr` at `row` if cached. Counts a hit or miss.
    #[inline]
    pub fn get(&mut self, attr: usize, row: usize) -> Option<Datum> {
        match self.entries.get(&attr).and_then(|e| e.col.datum(row)) {
            Some(d) => {
                self.metrics.hits += 1;
                Some(d)
            }
            None => {
                self.metrics.misses += 1;
                None
            }
        }
    }

    /// Read without counting (planning probes).
    pub fn peek(&self, attr: usize, row: usize) -> Option<Datum> {
        self.entries.get(&attr).and_then(|e| e.col.datum(row))
    }

    /// Fold externally tallied read counts into the hit/miss metrics.
    ///
    /// Parallel scan workers read through [`Self::peek`] (they hold the
    /// cache by shared reference), so the per-row accounting [`Self::get`]
    /// would have done happens on the worker and is merged here — keeping
    /// the hit ratio identical to a sequential scan.
    pub fn record_reads(&mut self, hits: u64, misses: u64) {
        self.metrics.hits += hits;
        self.metrics.misses += misses;
    }

    /// Append the value of `attr` at the next uncached row. `query_tick` is
    /// the value from [`Self::begin_query`]; columns touched at that tick are
    /// never evicted to make room (they belong to the running query).
    ///
    /// Returns `false` when the value was not admitted (budget exhausted and
    /// nothing evictable) — the scan simply continues without caching,
    /// matching the paper's "cache as a side effect, never as an obligation".
    pub fn append(&mut self, attr: usize, ty: ColumnType, d: &Datum, query_tick: u64) -> bool {
        // Fast budget estimate before mutating: size of the incoming datum.
        let incoming = match d {
            Datum::Str(s) => 16 + s.len(),
            _ => 8,
        };
        if !self.entries.contains_key(&attr) {
            if !self.make_room(incoming + 64, query_tick) {
                self.metrics.admission_stalls += 1;
                return false;
            }
            self.entries.insert(
                attr,
                Entry {
                    col: TypedColumn::new(ty),
                    last_used: query_tick,
                    frozen: false,
                },
            );
        }
        let frozen = self.entries.get(&attr).map(|e| e.frozen).unwrap_or(false);
        if frozen {
            self.metrics.admission_stalls += 1;
            return false;
        }
        if self.bytes_used + incoming > self.policy.budget_bytes
            && !self.make_room(incoming, query_tick)
        {
            // Could not evict anything: freeze this column for the rest of
            // the query to avoid re-checking per row.
            if let Some(e) = self.entries.get_mut(&attr) {
                e.frozen = true;
            }
            self.metrics.admission_stalls += 1;
            return false;
        }
        let e = self.entries.get_mut(&attr).expect("just ensured");
        let before = e.col.footprint();
        e.col.push(d);
        e.last_used = query_tick;
        let after = e.col.footprint();
        self.bytes_used += after - before;
        true
    }

    /// Install a whole restored column for `attr` — the snapshot restore
    /// path, which rebuilds columns wholesale instead of replaying
    /// [`Self::append`] per row. The column's footprint is charged against
    /// the budget with normal LRU room-making; returns `false` (column
    /// dropped) when it cannot fit, when it is empty, or when `attr` is
    /// already resident (a live column is never clobbered by a restore).
    pub fn install_restored(&mut self, attr: usize, col: TypedColumn) -> bool {
        if col.is_empty() || self.entries.contains_key(&attr) {
            return false;
        }
        let fp = col.footprint();
        if fp > self.policy.budget_bytes || !self.make_room(fp, u64::MAX) {
            return false;
        }
        self.tick += 1;
        self.entries.insert(
            attr,
            Entry {
                col,
                last_used: self.tick,
                frozen: false,
            },
        );
        self.bytes_used += fp;
        true
    }

    /// Evict LRU columns (never ones touched at `protect_tick`) until
    /// `incoming` more bytes fit. Returns whether they now fit.
    fn make_room(&mut self, incoming: usize, protect_tick: u64) -> bool {
        while self.bytes_used + incoming > self.policy.budget_bytes {
            let victim = self
                .entries
                .iter()
                .filter(|(_, e)| e.last_used != protect_tick)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&a, _)| a);
            match victim {
                Some(a) => {
                    let e = self.entries.remove(&a).expect("victim resident");
                    self.bytes_used -= e.col.footprint();
                    self.metrics.evictions += 1;
                }
                None => return false,
            }
        }
        true
    }

    /// Unconditional eviction helper for [`Self::set_budget`].
    fn evict_to_fit(&mut self, incoming: usize, _ignore: u64) {
        while self.bytes_used + incoming > self.policy.budget_bytes && !self.entries.is_empty() {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&a, _)| a)
                .expect("non-empty");
            let e = self.entries.remove(&victim).expect("victim resident");
            self.bytes_used -= e.col.footprint();
            self.metrics.evictions += 1;
        }
    }

    /// Drop everything (file replaced).
    pub fn invalidate(&mut self) {
        self.entries.clear();
        self.bytes_used = 0;
    }

    /// Epoch quarantine: the backing file was truncated or rewritten, so
    /// cached values were parsed from bytes of a dead file epoch. Alias of
    /// [`Self::invalidate`] under the name the source-epoch layer uses.
    pub fn quarantine(&mut self) {
        self.invalidate();
    }

    /// Drop a single attribute (used by tests and the demo's component
    /// toggles).
    pub fn evict_attr(&mut self, attr: usize) {
        if let Some(e) = self.entries.remove(&attr) {
            self.bytes_used -= e.col.footprint();
            self.metrics.evictions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(cache: &mut RawCache, attr: usize, n: usize) -> u64 {
        let tick = cache.begin_query(&[attr]);
        for i in 0..n {
            assert!(cache.append(attr, ColumnType::Int, &Datum::Int(i as i64), tick));
        }
        tick
    }

    #[test]
    fn range_coverage_probes() {
        let mut c = RawCache::new(CachePolicy::default());
        fill(&mut c, 0, 10);
        fill(&mut c, 1, 4);
        // Prefix clamped to the range.
        assert_eq!(c.covered_in_range(0, 0, 10), 10);
        assert_eq!(c.covered_in_range(0, 4, 20), 6);
        assert_eq!(c.covered_in_range(1, 2, 8), 2);
        assert_eq!(c.covered_in_range(1, 6, 8), 0);
        assert_eq!(c.covered_in_range(9, 0, 5), 0, "absent attr");
        assert_eq!(c.covered_in_range(0, 5, 5), 0, "empty range");
        assert_eq!(c.covered_in_range(0, 7, 3), 0, "inverted range");
        // Whole-partition probe: all attrs, every row.
        assert!(c.covers_range(&[0], 2, 10));
        assert!(!c.covers_range(&[0], 2, 11));
        assert!(c.covers_range(&[0, 1], 0, 4));
        assert!(!c.covers_range(&[0, 1], 0, 5));
        assert!(c.covers_range(&[0, 1], 4, 4), "empty range always covered");
        // Column handle mirrors peek.
        let col = c.column(1).expect("resident");
        assert_eq!(col.len(), 4);
        assert_eq!(col.datum(3), c.peek(1, 3));
        assert!(c.column(7).is_none());
    }

    #[test]
    fn append_then_hit() {
        let mut c = RawCache::new(CachePolicy::default());
        fill(&mut c, 2, 10);
        assert_eq!(c.coverage(2), 10);
        assert_eq!(c.get(2, 3), Some(Datum::Int(3)));
        assert_eq!(c.metrics().hits, 1);
        assert_eq!(c.get(2, 99), None);
        assert_eq!(c.metrics().misses, 1);
    }

    #[test]
    fn partial_coverage_is_prefix() {
        let mut c = RawCache::new(CachePolicy::default());
        fill(&mut c, 0, 5);
        assert_eq!(c.peek(0, 4), Some(Datum::Int(4)));
        assert_eq!(c.peek(0, 5), None);
    }

    #[test]
    fn lru_eviction_prefers_cold_columns() {
        // Budget for roughly one 1000-row int column.
        let mut c = RawCache::new(CachePolicy::with_budget(12_000));
        fill(&mut c, 0, 1000);
        // Attr 1 arrives: attr 0 is cold (different tick) and gets evicted.
        let t1 = c.begin_query(&[1]);
        for i in 0..1000 {
            c.append(1, ColumnType::Int, &Datum::Int(i), t1);
        }
        assert_eq!(c.coverage(0), 0, "cold column evicted");
        assert!(c.coverage(1) > 0);
        assert!(c.metrics().evictions >= 1);
    }

    #[test]
    fn current_query_columns_protected() {
        let mut c = RawCache::new(CachePolicy::with_budget(4_000));
        let tick = c.begin_query(&[0, 1]);
        // Interleave two columns in one query until the budget stalls.
        let mut admitted = 0;
        for i in 0..1000 {
            if c.append(0, ColumnType::Int, &Datum::Int(i), tick) {
                admitted += 1;
            }
            if c.append(1, ColumnType::Int, &Datum::Int(i), tick) {
                admitted += 1;
            }
        }
        // Neither column evicted the other (both at the protected tick):
        // growth stalls instead.
        assert!(c.metrics().evictions == 0);
        assert!(c.metrics().admission_stalls > 0);
        assert!(admitted > 0);
        assert!(c.bytes_used() <= c.policy().budget_bytes + 64);
    }

    #[test]
    fn set_budget_shrink_evicts() {
        let mut c = RawCache::new(CachePolicy::default());
        fill(&mut c, 0, 100);
        fill(&mut c, 1, 100);
        c.set_budget(0);
        assert_eq!(c.bytes_used(), 0);
        assert_eq!(c.resident().len(), 0);
    }

    #[test]
    fn invalidate_clears() {
        let mut c = RawCache::new(CachePolicy::default());
        fill(&mut c, 0, 10);
        c.invalidate();
        assert_eq!(c.coverage(0), 0);
        assert_eq!(c.bytes_used(), 0);
    }

    #[test]
    fn utilization_and_hit_ratio_gauges() {
        let mut c = RawCache::new(CachePolicy::with_budget(100_000));
        fill(&mut c, 0, 100);
        assert!(c.utilization() > 0.0);
        let _ = c.get(0, 0);
        let _ = c.get(0, 1_000_000);
        assert!((c.metrics().hit_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn resident_lists_coverage() {
        let mut c = RawCache::new(CachePolicy::default());
        fill(&mut c, 3, 4);
        fill(&mut c, 1, 2);
        assert_eq!(c.resident(), vec![(1, 2), (3, 4)]);
    }

    #[test]
    fn install_restored_charges_budget_and_respects_residents() {
        let mut c = RawCache::new(CachePolicy::with_budget(10_000));
        let mut col = crate::column::TypedColumn::new(ColumnType::Int);
        for i in 0..100 {
            col.push(&Datum::Int(i));
        }
        let fp = col.footprint();
        assert!(c.install_restored(3, col));
        assert_eq!(c.coverage(3), 100);
        assert_eq!(c.bytes_used(), fp);
        assert_eq!(c.peek(3, 42), Some(Datum::Int(42)));

        // A live column is never clobbered by a restore.
        let mut other = crate::column::TypedColumn::new(ColumnType::Int);
        other.push(&Datum::Int(-1));
        assert!(!c.install_restored(3, other));
        assert_eq!(c.peek(3, 0), Some(Datum::Int(0)));

        // Empty columns are refused.
        assert!(!c.install_restored(4, crate::column::TypedColumn::new(ColumnType::Int)));

        // Over-budget columns are refused without evicting what fits.
        let mut c2 = RawCache::new(CachePolicy::with_budget(64));
        let mut big = crate::column::TypedColumn::new(ColumnType::Int);
        for i in 0..100 {
            big.push(&Datum::Int(i));
        }
        assert!(!c2.install_restored(0, big));
        assert_eq!(c2.bytes_used(), 0);
    }

    #[test]
    fn string_budget_counts_payload() {
        let mut c = RawCache::new(CachePolicy::with_budget(1 << 20));
        let tick = c.begin_query(&[0]);
        c.append(0, ColumnType::Str, &Datum::Str("abcdefgh".into()), tick);
        assert!(c.bytes_used() >= 8);
    }
}
