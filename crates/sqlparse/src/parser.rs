//! Recursive-descent parser.

use crate::ast::{AggFunc, BinOp, Expr, Literal, OrderKey, SelectItem, SelectStmt};
use crate::error::ParseError;
use crate::lexer::{lex, Keyword, Sym, Token, TokenKind};

/// Parse one SELECT statement (an optional trailing `;` is accepted).
pub fn parse_select(query: &str) -> Result<SelectStmt, ParseError> {
    let tokens = lex(query)?;
    let mut p = Parser { tokens, at: 0 };
    let stmt = p.select_stmt()?;
    p.eat_sym(Sym::Semicolon);
    p.expect_eof()?;
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    at: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.at].kind
    }

    fn pos(&self) -> usize {
        self.tokens[self.at].pos
    }

    fn advance(&mut self) -> TokenKind {
        let k = self.tokens[self.at].kind.clone();
        if self.at + 1 < self.tokens.len() {
            self.at += 1;
        }
        k
    }

    fn eat_kw(&mut self, kw: Keyword) -> bool {
        if *self.peek() == TokenKind::Keyword(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn eat_sym(&mut self, s: Sym) -> bool {
        if *self.peek() == TokenKind::Sym(s) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: Keyword, what: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(ParseError::new(self.pos(), format!("expected {what}")))
        }
    }

    fn expect_sym(&mut self, s: Sym, what: &str) -> Result<(), ParseError> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(ParseError::new(self.pos(), format!("expected {what}")))
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        if *self.peek() == TokenKind::Eof {
            Ok(())
        } else {
            Err(ParseError::new(self.pos(), "unexpected trailing input"))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.advance();
                Ok(name)
            }
            _ => Err(ParseError::new(self.pos(), format!("expected {what}"))),
        }
    }

    fn select_stmt(&mut self) -> Result<SelectStmt, ParseError> {
        self.expect_kw(Keyword::Select, "SELECT")?;
        let items = self.select_list()?;
        self.expect_kw(Keyword::From, "FROM")?;
        let table = self.ident("table name")?;
        let filter = if self.eat_kw(Keyword::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw(Keyword::Group) {
            self.expect_kw(Keyword::By, "BY after GROUP")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw(Keyword::Order) {
            self.expect_kw(Keyword::By, "BY after ORDER")?;
            loop {
                let expr = self.expr()?;
                let ascending = if self.eat_kw(Keyword::Desc) {
                    false
                } else {
                    self.eat_kw(Keyword::Asc);
                    true
                };
                order_by.push(OrderKey { expr, ascending });
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw(Keyword::Limit) {
            match self.advance() {
                TokenKind::Int(n) if n >= 0 => Some(n as u64),
                _ => {
                    return Err(ParseError::new(
                        self.tokens[self.at - 1].pos,
                        "LIMIT expects a non-negative integer",
                    ))
                }
            }
        } else {
            None
        };
        Ok(SelectStmt {
            items,
            table,
            filter,
            group_by,
            order_by,
            limit,
        })
    }

    fn select_list(&mut self) -> Result<Vec<SelectItem>, ParseError> {
        let mut items = Vec::new();
        loop {
            if self.eat_sym(Sym::Star) {
                items.push(SelectItem::Wildcard);
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_kw(Keyword::As) {
                    Some(self.ident("alias after AS")?)
                } else if let TokenKind::Ident(name) = self.peek().clone() {
                    // Bare alias (`SELECT c0 total FROM …`).
                    self.advance();
                    Some(name)
                } else {
                    None
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_sym(Sym::Comma) {
                break;
            }
        }
        Ok(items)
    }

    /// expr := and_expr (OR and_expr)*
    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.and_expr()?;
        while self.eat_kw(Keyword::Or) {
            let right = self.and_expr()?;
            left = Expr::Binary {
                op: BinOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    /// and_expr := not_expr (AND not_expr)*
    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.not_expr()?;
        while self.eat_kw(Keyword::And) {
            let right = self.not_expr()?;
            left = Expr::Binary {
                op: BinOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat_kw(Keyword::Not) {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.comparison()
        }
    }

    /// comparison := additive [cmp additive | BETWEEN | IN | LIKE | IS NULL]
    fn comparison(&mut self) -> Result<Expr, ParseError> {
        let left = self.additive()?;
        // `NOT BETWEEN / NOT IN / NOT LIKE` postfix form.
        let negated = if *self.peek() == TokenKind::Keyword(Keyword::Not) {
            // Only treat as postfix NOT when followed by BETWEEN/IN/LIKE.
            match self.tokens.get(self.at + 1).map(|t| &t.kind) {
                Some(TokenKind::Keyword(Keyword::Between))
                | Some(TokenKind::Keyword(Keyword::In))
                | Some(TokenKind::Keyword(Keyword::Like)) => {
                    self.advance();
                    true
                }
                _ => false,
            }
        } else {
            false
        };

        if self.eat_kw(Keyword::Between) {
            let lo = self.additive()?;
            self.expect_kw(Keyword::And, "AND in BETWEEN")?;
            let hi = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                lo: Box::new(lo),
                hi: Box::new(hi),
                negated,
            });
        }
        if self.eat_kw(Keyword::In) {
            self.expect_sym(Sym::LParen, "'(' after IN")?;
            let mut list = Vec::new();
            loop {
                list.push(self.additive()?);
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
            self.expect_sym(Sym::RParen, "')' closing IN list")?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_kw(Keyword::Like) {
            match self.advance() {
                TokenKind::Str(pattern) => {
                    return Ok(Expr::Like {
                        expr: Box::new(left),
                        pattern,
                        negated,
                    })
                }
                _ => {
                    return Err(ParseError::new(
                        self.tokens[self.at - 1].pos,
                        "LIKE expects a string pattern",
                    ))
                }
            }
        }
        if negated {
            return Err(ParseError::new(
                self.pos(),
                "expected BETWEEN, IN or LIKE after NOT",
            ));
        }
        if self.eat_kw(Keyword::Is) {
            let negated = self.eat_kw(Keyword::Not);
            self.expect_kw(Keyword::Null, "NULL after IS")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }

        let op = match self.peek() {
            TokenKind::Sym(Sym::Eq) => Some(BinOp::Eq),
            TokenKind::Sym(Sym::NotEq) => Some(BinOp::NotEq),
            TokenKind::Sym(Sym::Lt) => Some(BinOp::Lt),
            TokenKind::Sym(Sym::Le) => Some(BinOp::Le),
            TokenKind::Sym(Sym::Gt) => Some(BinOp::Gt),
            TokenKind::Sym(Sym::Ge) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let right = self.additive()?;
            return Ok(Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            });
        }
        Ok(left)
    }

    /// additive := multiplicative ((+|-) multiplicative)*
    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Sym(Sym::Plus) => BinOp::Add,
                TokenKind::Sym(Sym::Minus) => BinOp::Sub,
                _ => break,
            };
            self.advance();
            let right = self.multiplicative()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    /// multiplicative := unary ((*|/|%) unary)*
    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Sym(Sym::Star) => BinOp::Mul,
                TokenKind::Sym(Sym::Slash) => BinOp::Div,
                TokenKind::Sym(Sym::Percent) => BinOp::Mod,
                _ => break,
            };
            self.advance();
            let right = self.unary()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_sym(Sym::Minus) {
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let pos = self.pos();
        match self.advance() {
            TokenKind::Int(v) => Ok(Expr::Literal(Literal::Int(v))),
            TokenKind::Float(v) => Ok(Expr::Literal(Literal::Float(v))),
            TokenKind::Str(s) => Ok(Expr::Literal(Literal::Str(s))),
            TokenKind::Keyword(Keyword::True) => Ok(Expr::Literal(Literal::Bool(true))),
            TokenKind::Keyword(Keyword::False) => Ok(Expr::Literal(Literal::Bool(false))),
            TokenKind::Keyword(Keyword::Null) => Ok(Expr::Literal(Literal::Null)),
            TokenKind::Ident(name) => Ok(Expr::Column(name)),
            TokenKind::Sym(Sym::LParen) => {
                let e = self.expr()?;
                self.expect_sym(Sym::RParen, "')'")?;
                Ok(e)
            }
            TokenKind::Keyword(k)
                if matches!(
                    k,
                    Keyword::Count | Keyword::Sum | Keyword::Avg | Keyword::Min | Keyword::Max
                ) =>
            {
                let func = match k {
                    Keyword::Count => AggFunc::Count,
                    Keyword::Sum => AggFunc::Sum,
                    Keyword::Avg => AggFunc::Avg,
                    Keyword::Min => AggFunc::Min,
                    Keyword::Max => AggFunc::Max,
                    _ => unreachable!(),
                };
                self.expect_sym(Sym::LParen, "'(' after aggregate")?;
                let distinct = self.eat_kw(Keyword::Distinct);
                if self.eat_sym(Sym::Star) {
                    if func != AggFunc::Count {
                        return Err(ParseError::new(pos, "only COUNT accepts '*'"));
                    }
                    self.expect_sym(Sym::RParen, "')'")?;
                    return Ok(Expr::Agg {
                        func,
                        arg: None,
                        distinct,
                    });
                }
                let arg = self.expr()?;
                self.expect_sym(Sym::RParen, "')'")?;
                Ok(Expr::Agg {
                    func,
                    arg: Some(Box::new(arg)),
                    distinct,
                })
            }
            other => Err(ParseError::new(pos, format!("unexpected token {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_projection() {
        let s = parse_select("SELECT c0, c3 FROM t").unwrap();
        assert_eq!(s.table, "t");
        assert_eq!(s.items.len(), 2);
        assert!(s.filter.is_none());
    }

    #[test]
    fn wildcard_and_limit() {
        let s = parse_select("SELECT * FROM data LIMIT 10;").unwrap();
        assert_eq!(s.items, vec![SelectItem::Wildcard]);
        assert_eq!(s.limit, Some(10));
    }

    #[test]
    fn where_precedence_and_or() {
        let s = parse_select("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3").unwrap();
        // OR binds looser than AND.
        match s.filter.unwrap() {
            Expr::Binary {
                op: BinOp::Or,
                right,
                ..
            } => match *right {
                Expr::Binary { op: BinOp::And, .. } => {}
                other => panic!("AND should nest under OR, got {other:?}"),
            },
            other => panic!("expected OR at top, got {other:?}"),
        }
    }

    #[test]
    fn between_in_like_isnull() {
        let s = parse_select(
            "SELECT a FROM t WHERE a BETWEEN 1 AND 5 AND b IN (1,2) AND c LIKE 'x%' AND d IS NOT NULL",
        )
        .unwrap();
        let mut count = 0;
        fn walk(e: &Expr, count: &mut usize) {
            match e {
                Expr::Between { .. }
                | Expr::InList { .. }
                | Expr::Like { .. }
                | Expr::IsNull { .. } => *count += 1,
                Expr::Binary { left, right, .. } => {
                    walk(left, count);
                    walk(right, count);
                }
                _ => {}
            }
        }
        walk(&s.filter.unwrap(), &mut count);
        assert_eq!(count, 4);
    }

    #[test]
    fn not_between_postfix() {
        let s = parse_select("SELECT a FROM t WHERE a NOT BETWEEN 1 AND 5").unwrap();
        match s.filter.unwrap() {
            Expr::Between { negated, .. } => assert!(negated),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn aggregates_and_group_by() {
        let s = parse_select(
            "SELECT c0, COUNT(*), SUM(c1), AVG(c2) FROM t GROUP BY c0 ORDER BY c0 DESC LIMIT 5",
        )
        .unwrap();
        assert_eq!(s.items.len(), 4);
        assert_eq!(s.group_by.len(), 1);
        assert!(!s.order_by[0].ascending);
        match &s.items[1] {
            SelectItem::Expr {
                expr:
                    Expr::Agg {
                        func: AggFunc::Count,
                        arg: None,
                        ..
                    },
                ..
            } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn count_distinct() {
        let s = parse_select("SELECT COUNT(DISTINCT c1) FROM t").unwrap();
        match &s.items[0] {
            SelectItem::Expr {
                expr: Expr::Agg { distinct: true, .. },
                ..
            } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn arithmetic_precedence() {
        let s = parse_select("SELECT a + b * 2 FROM t").unwrap();
        match &s.items[0] {
            SelectItem::Expr {
                expr:
                    Expr::Binary {
                        op: BinOp::Add,
                        right,
                        ..
                    },
                ..
            } => {
                assert!(matches!(**right, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn aliases() {
        let s = parse_select("SELECT c0 AS id, c1 total FROM t").unwrap();
        match &s.items[0] {
            SelectItem::Expr { alias: Some(a), .. } => assert_eq!(a, "id"),
            other => panic!("{other:?}"),
        }
        match &s.items[1] {
            SelectItem::Expr { alias: Some(a), .. } => assert_eq!(a, "total"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors_have_positions() {
        let e = parse_select("SELECT FROM t").unwrap_err();
        assert!(e.position > 0);
        assert!(parse_select("SELECT a FROM").is_err());
        assert!(parse_select("SELECT a FROM t WHERE").is_err());
        assert!(parse_select("SELECT a FROM t extra garbage !").is_err());
    }

    #[test]
    fn sum_star_rejected() {
        assert!(parse_select("SELECT SUM(*) FROM t").is_err());
    }

    #[test]
    fn negative_literals() {
        let s = parse_select("SELECT a FROM t WHERE a > -5").unwrap();
        match s.filter.unwrap() {
            Expr::Binary { right, .. } => assert!(matches!(*right, Expr::Neg(_))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parenthesized_boolean_grouping() {
        let s = parse_select("SELECT a FROM t WHERE (a = 1 OR b = 2) AND c = 3").unwrap();
        match s.filter.unwrap() {
            Expr::Binary {
                op: BinOp::And,
                left,
                ..
            } => {
                assert!(matches!(*left, Expr::Binary { op: BinOp::Or, .. }));
            }
            other => panic!("{other:?}"),
        }
    }
}
