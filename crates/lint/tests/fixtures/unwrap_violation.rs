//! Seeded violations for `no-unwrap`: exactly four sites in library code —
//! lines 6, 11, 17 and 22. The test-module sites must not count.

fn parse(s: &str) -> u64 {
    // Site 1: unwrap.
    s.parse().unwrap()
}

fn open(path: &str) -> std::fs::File {
    // Site 2: expect.
    std::fs::File::open(path).expect("open")
}

fn validate(n: u64) {
    if n == 0 {
        // Site 3: panic!.
        panic!("zero rows");
    }
}

fn first(v: &[u64]) -> u64 {
    *v.first().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_do_not_count() {
        assert_eq!(parse("7"), 7);
        let v: Vec<u64> = vec![1];
        v.first().unwrap();
        Some(1).expect("fine");
        if false {
            panic!("also fine");
        }
    }
}
