//! Cross-system integration tests: every storage path (adaptive raw scan in
//! all four variants, loaded row/column stores, index scans) must produce
//! identical answers for the same SQL over the same raw file.

use nodb_repro::bench::systems::{race_lineup, Contestant, RawContestant};
use nodb_repro::bench::workload::{scratch_dir, Dataset};
use nodb_repro::core::NoDbConfig;
use nodb_repro::prelude::*;
use nodb_repro::storage::{ConventionalDb, DbProfile};

fn queries() -> Vec<&'static str> {
    vec![
        "SELECT c0 FROM t WHERE c1 < 300000000",
        "SELECT c3, c1 FROM t WHERE c0 > 500000000 AND c2 < 800000000 ORDER BY c3 LIMIT 50",
        "SELECT COUNT(*) FROM t",
        "SELECT COUNT(*), SUM(c1), MIN(c0), MAX(c4) FROM t WHERE c2 BETWEEN 100000000 AND 900000000",
        "SELECT AVG(c2) FROM t WHERE c3 IN (1, 2, 3) OR c3 > 999000000",
        "SELECT c4, COUNT(*) FROM t WHERE c0 < 700000000 GROUP BY c4 ORDER BY c4 LIMIT 20",
        "SELECT c0 + c1 AS s FROM t WHERE c0 % 2 = 0 ORDER BY s DESC LIMIT 10",
        "SELECT * FROM t WHERE c0 < 5000000",
        "SELECT c2 FROM t WHERE NOT (c1 > 100000000) ORDER BY c2",
        "SELECT COUNT(*) FROM t WHERE c0 <> c1",
    ]
}

#[test]
fn all_systems_agree_on_all_queries() {
    let dir = scratch_dir("it_agree");
    let data = Dataset::standard(&dir, 5, 3_000, 0xA11);
    let schema = data.schema();
    let mut contestants = race_lineup();
    for c in contestants.iter_mut() {
        c.init(&data.path, &schema).unwrap();
    }
    for sql in queries() {
        let mut reference: Option<(String, QueryResult)> = None;
        for c in contestants.iter_mut() {
            let (r, _) = c
                .run(sql)
                .unwrap_or_else(|e| panic!("{} failed on {sql}: {e}", c.name()));
            match &reference {
                None => reference = Some((c.name(), r)),
                Some((ref_name, expect)) => {
                    assert_eq!(&r, expect, "{} vs {ref_name} on {sql}", c.name());
                }
            }
        }
    }
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn adaptive_reruns_stay_consistent() {
    // Run the same query list three times on one adaptive instance: answers
    // must never change as the map/cache/statistics evolve underneath.
    let dir = scratch_dir("it_rerun");
    let data = Dataset::standard(&dir, 5, 2_000, 0xB22);
    let mut sys = RawContestant::pm_c();
    sys.init(&data.path, &data.schema()).unwrap();
    let mut first_pass: Vec<QueryResult> = Vec::new();
    for pass in 0..3 {
        for (i, sql) in queries().into_iter().enumerate() {
            let (r, _) = sys.run(sql).unwrap();
            if pass == 0 {
                first_pass.push(r);
            } else {
                assert_eq!(r, first_pass[i], "pass {pass}, query {sql}");
            }
        }
    }
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn tight_budgets_never_affect_correctness() {
    let dir = scratch_dir("it_budget");
    let data = Dataset::standard(&dir, 6, 2_000, 0xC33);
    let schema = data.schema();

    let mut reference = RawContestant::baseline();
    reference.init(&data.path, &schema).unwrap();

    for (map_b, cache_b) in [
        (0usize, 0usize),
        (500, 500),
        (4_000, 4_000),
        (1 << 20, 1 << 20),
    ] {
        let cfg = NoDbConfig {
            map_budget_bytes: map_b,
            cache_budget_bytes: cache_b,
            ..NoDbConfig::pm_c()
        };
        let mut sys = RawContestant::new(cfg);
        sys.init(&data.path, &schema).unwrap();
        for sql in queries() {
            let (expect, _) = reference.run(sql).unwrap();
            let (a, _) = sys.run(sql).unwrap();
            let (b, _) = sys.run(sql).unwrap(); // warm rerun under pressure
            assert_eq!(a, expect, "budgets ({map_b},{cache_b}) cold on {sql}");
            assert_eq!(b, expect, "budgets ({map_b},{cache_b}) warm on {sql}");
        }
    }
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn loaded_index_choice_is_transparent() {
    let dir = scratch_dir("it_index");
    let data = Dataset::standard(&dir, 5, 2_000, 0xD44);
    let schema = data.schema();
    let sub = dir.join("pg_idx");
    std::fs::create_dir_all(&sub).unwrap();
    let mut indexed = ConventionalDb::new(DbProfile::PostgresLike, &sub);
    indexed
        .load_csv("t", &data.path, schema.clone(), false, &[0, 2])
        .unwrap();
    let sub2 = dir.join("pg_plain");
    std::fs::create_dir_all(&sub2).unwrap();
    let mut plain = ConventionalDb::new(DbProfile::PostgresLike, &sub2);
    plain.load_csv("t", &data.path, schema, false, &[]).unwrap();
    for sql in queries() {
        assert_eq!(
            indexed.query(sql).unwrap(),
            plain.query(sql).unwrap(),
            "index scan differs on {sql}"
        );
    }
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn mixed_type_file_with_header_round_trips() {
    let dir = scratch_dir("it_mixed");
    let path = dir.join("people.csv");
    let mut content = String::from("id,name,score,active\n");
    for i in 0..500 {
        content.push_str(&format!(
            "{i},person_{:03},{}.{:02},{}\n",
            i % 50,
            i % 90,
            i % 100,
            i % 3 == 0
        ));
    }
    std::fs::write(&path, content).unwrap();

    let mut db = NoDb::new(NoDbConfig::default());
    db.register_csv("people", &path).unwrap(); // schema inference
    let r = db
        .query("SELECT COUNT(*) FROM people WHERE active = true")
        .unwrap();
    assert_eq!(r.scalar(), Some(&Datum::Int(167)));

    let r2 = db
        .query("SELECT name FROM people WHERE name LIKE 'person_00%' AND id < 10 ORDER BY id")
        .unwrap();
    assert_eq!(r2.len(), 10);

    let r3 = db.query("SELECT COUNT(DISTINCT name) FROM people").unwrap();
    assert_eq!(r3.scalar(), Some(&Datum::Int(50)));
    std::fs::remove_dir_all(dir).unwrap();
}
