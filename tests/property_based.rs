//! Property-based tests over the core invariants:
//!
//! 1. *Adaptive transparency* — for any dataset and any query, PostgresRaw
//!    (PM+C, any budgets) returns exactly what the stateless baseline
//!    returns, cold and warm.
//! 2. *Tokenizer equivalence* — selective/resumable tokenizing agrees with
//!    full tokenizing on arbitrary byte soup.
//! 3. *Cache round-trip* — any sequence of typed values read back from the
//!    cache equals what was appended.
//! 4. *Histogram sanity* — `fraction_le` is monotone and bounded.

use proptest::prelude::*;

use nodb_repro::core::{NoDb, NoDbConfig};
use nodb_repro::prelude::*;
use nodb_repro::rawcache::{CachePolicy, RawCache};
use nodb_repro::rawcsv::tokenizer::{Tokens, TokenizerConfig};
use nodb_repro::stats::EquiDepthHistogram;

fn scratch(tag: &str, n: u64) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("nodb_prop_{tag}_{n}_{}", std::process::id()));
    p
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn adaptive_equals_baseline(
        seed in 0u64..1_000,
        cols in 2usize..8,
        rows in 1u64..400,
        proj in 0usize..8,
        pred in 0usize..8,
        cut in 0i64..1_000_000_000,
        map_budget in prop::sample::select(vec![0usize, 1_000, 1 << 22]),
        cache_budget in prop::sample::select(vec![0usize, 1_000, 1 << 22]),
    ) {
        let proj = proj % cols;
        let pred = pred % cols;
        let gen = GeneratorConfig::uniform_ints(cols, rows, seed);
        let path = scratch("adapt", seed * 1_000 + rows);
        gen.generate_file(&path).unwrap();
        let sql = format!("SELECT c{proj} FROM t WHERE c{pred} < {cut}");

        let mut base = NoDb::new(NoDbConfig::baseline());
        base.register_csv_with_schema("t", &path, gen.schema(), false).unwrap();
        let expect = base.query(&sql).unwrap();

        let cfg = NoDbConfig { map_budget_bytes: map_budget, cache_budget_bytes: cache_budget, ..NoDbConfig::pm_c() };
        let mut sys = NoDb::new(cfg);
        sys.register_csv_with_schema("t", &path, gen.schema(), false).unwrap();
        let cold = sys.query(&sql).unwrap();
        let warm = sys.query(&sql).unwrap();
        prop_assert_eq!(&cold, &expect);
        prop_assert_eq!(&warm, &expect);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn selective_tokenizing_agrees_with_full(
        line in prop::collection::vec(
            prop_oneof![Just(b','), Just(b'a'), Just(b'1'), Just(b'x'), Just(b'.')], 0..200),
        upto in 0usize..30,
    ) {
        let cfg = TokenizerConfig::default();
        let mut full = Tokens::new();
        let mut sel = Tokens::new();
        cfg.tokenize_into(&line, &mut full);
        let n = cfg.tokenize_selective(&line, upto, &mut sel);
        prop_assert_eq!(n, full.len().min(upto + 1));
        for f in 0..n {
            prop_assert_eq!(sel.get(f), full.get(f), "field {}", f);
        }
    }

    #[test]
    fn resumable_tokenizing_agrees_with_full(
        line in prop::collection::vec(
            prop_oneof![Just(b','), Just(b'q'), Just(b'7')], 1..150),
        anchor in 0usize..10,
        extra in 0usize..10,
    ) {
        let cfg = TokenizerConfig::default();
        let mut full = Tokens::new();
        cfg.tokenize_into(&line, &mut full);
        prop_assume!(anchor < full.len());
        let upto = anchor + extra;
        let anchor_off = full.get(anchor).unwrap().start as usize;
        let mut res = Tokens::new();
        cfg.tokenize_from(&line, anchor, anchor_off, upto, &mut res);
        for f in anchor..=upto.min(full.len() - 1) {
            prop_assert_eq!(res.get(f), full.get(f), "field {}", f);
        }
    }

    #[test]
    fn cache_round_trips_arbitrary_values(
        vals in prop::collection::vec(
            prop_oneof![
                Just(Datum::Null),
                any::<i64>().prop_map(Datum::Int),
                "[a-z]{0,12}".prop_map(Datum::from),
            ], 0..300),
    ) {
        // Split by type class into two attrs (cache columns are typed).
        let mut cache = RawCache::new(CachePolicy::default());
        let tick = cache.begin_query(&[0, 1]);
        let mut ints = Vec::new();
        let mut strs = Vec::new();
        for v in &vals {
            match v {
                Datum::Str(_) => {
                    prop_assert!(cache.append(1, ColumnType::Str, v, tick));
                    strs.push(v.clone());
                }
                other => {
                    prop_assert!(cache.append(0, ColumnType::Int, other, tick));
                    ints.push(other.clone());
                }
            }
        }
        for (i, v) in ints.iter().enumerate() {
            prop_assert_eq!(cache.peek(0, i), Some(v.clone()));
        }
        for (i, v) in strs.iter().enumerate() {
            prop_assert_eq!(cache.peek(1, i), Some(v.clone()));
        }
    }

    #[test]
    fn histogram_fraction_le_is_monotone(
        sample in prop::collection::vec(-1_000i64..1_000, 1..400),
        probes in prop::collection::vec(-1_200i64..1_200, 2..20),
        buckets in 1usize..40,
    ) {
        let datums: Vec<Datum> = sample.iter().map(|&v| Datum::Int(v)).collect();
        let h = EquiDepthHistogram::build(&datums, buckets).unwrap();
        let mut sorted = probes.clone();
        sorted.sort_unstable();
        let mut prev = 0.0f64;
        for v in sorted {
            let f = h.fraction_le(&Datum::Int(v));
            prop_assert!((0.0..=1.0).contains(&f), "f = {}", f);
            prop_assert!(f + 1e-9 >= prev, "monotonicity: {} then {}", prev, f);
            prev = f;
        }
        let max = sample.iter().max().unwrap();
        prop_assert!((h.fraction_le(&Datum::Int(*max)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn parse_int_matches_std(v in any::<i64>()) {
        let text = v.to_string();
        prop_assert_eq!(
            nodb_repro::rawcsv::parser::parse_int(text.as_bytes()),
            Some(v)
        );
    }

    #[test]
    fn generated_files_always_queryable(
        cols in 1usize..6,
        rows in 0u64..200,
        seed in 0u64..500,
    ) {
        let gen = GeneratorConfig::uniform_ints(cols, rows, seed);
        let path = scratch("gen", seed * 7 + rows);
        gen.generate_file(&path).unwrap();
        let mut db = NoDb::new(NoDbConfig::default());
        db.register_csv_with_schema("t", &path, gen.schema(), false).unwrap();
        let r = db.query("SELECT COUNT(*) FROM t").unwrap();
        prop_assert_eq!(r.scalar(), Some(&Datum::Int(rows as i64)));
        std::fs::remove_file(path).ok();
    }
}
