//! Adaptive-behaviour experiments: response-time sequences (SEQ), workload
//! epochs (ADAPT) and dataset sensitivity (DATASET).

use nodb_core::NoDbConfig;

use crate::report::{ms, Table};
use crate::systems::{Contestant, RawContestant};
use crate::workload::{epoch_workload, scratch_dir, sp_query, Dataset, Scale};

use super::ExperimentReport;

/// SEQ — the demo's headline visual: "as more queries are processed,
/// response times improve due to the adaptive properties of PostgresRaw".
/// The same SP query runs 10 times on each variant.
pub fn seq(scale: Scale) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "seq",
        "Per-query latency of a repeated query sequence (adaptive speedup)",
    );
    let dir = scratch_dir("seq");
    let data = Dataset::standard(&dir, 10, scale.rows(), 0x5E9);
    let schema = data.schema();
    let sql = sp_query("t", &[1, 6], 3, 0.4);

    let variants = [
        NoDbConfig::baseline(),
        NoDbConfig::pm_only(),
        NoDbConfig::cache_only(),
        NoDbConfig::pm_c(),
    ];
    let mut t = Table::new(
        "SEQ — latency (ms) of query i",
        &["system", "q1", "q2", "q3", "q5", "q10", "q10/q1"],
    );
    let mut speedups = Vec::new();
    for cfg in variants {
        let mut sys = RawContestant::new(cfg);
        sys.init(&data.path, &schema).unwrap();
        let mut lat = Vec::new();
        for _ in 0..10 {
            let (_, d) = sys.run(&sql).unwrap();
            lat.push(d);
        }
        let ratio = lat[9].as_secs_f64() / lat[0].as_secs_f64();
        speedups.push((sys.name(), ratio));
        t.row(vec![
            sys.name(),
            ms(lat[0]),
            ms(lat[1]),
            ms(lat[2]),
            ms(lat[4]),
            ms(lat[9]),
            format!("{ratio:.2}"),
        ]);
    }
    report.tables.push(t);
    let pmc = speedups.last().unwrap().1;
    let base = speedups.first().unwrap().1;
    report.notes.push(format!(
        "PM+C converges to {:.0}% of its first-query latency while Baseline stays flat ({:.0}%)",
        pmc * 100.0,
        base * 100.0
    ));
    std::fs::remove_dir_all(dir).ok();
    report
}

/// ADAPT — §4.2 Query Adaptation: epochs of SP queries over sliding
/// attribute windows under tight budgets, showing LRU turnover in the map
/// and cache as the workload drifts.
pub fn adapt(scale: Scale) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "adapt",
        "Query adaptation across workload epochs (LRU turnover under tight budgets)",
    );
    let dir = scratch_dir("adapt");
    let cols = 30usize;
    let rows = scale.rows() / 2;
    let data = Dataset::standard(&dir, cols, rows, 0xADA7);
    let schema = data.schema();
    let wl = epoch_workload("t", cols, 4, 8, 8, 0xADA8);

    // Budgets fit roughly 1.5 epochs' worth of attributes.
    let mut cfg = NoDbConfig::pm_c();
    cfg.cache_budget_bytes = (rows as usize) * 9 * 12;
    cfg.map_budget_bytes = (rows as usize) * 2 * 12;
    let mut sys = RawContestant::new(cfg);
    sys.init(&data.path, &schema).unwrap();

    let mut t = Table::new(
        "ADAPT — per-epoch behaviour",
        &[
            "epoch",
            "window",
            "first_q_ms",
            "last_q_ms",
            "map_evict",
            "cache_evict",
            "cached_attrs",
        ],
    );
    let mut prev_map_evict = 0;
    let mut prev_cache_evict = 0;
    let mut epoch_rows = Vec::new();
    for (e, queries) in wl.epochs.iter().enumerate() {
        let mut lats = Vec::new();
        for q in queries {
            let (_, d) = sys.run(q).unwrap();
            lats.push(d);
        }
        let snap = sys.db.snapshot("t").unwrap();
        let map_e = snap.map_evictions - prev_map_evict;
        let cache_e = snap.cache_evictions - prev_cache_evict;
        prev_map_evict = snap.map_evictions;
        prev_cache_evict = snap.cache_evictions;
        let resident: Vec<String> = snap
            .cache_resident
            .iter()
            .map(|(a, _)| format!("c{a}"))
            .collect();
        epoch_rows.push((lats[0], *lats.last().unwrap(), cache_e));
        t.row(vec![
            format!("{e}"),
            format!("c{}..c{}", wl.windows[e].0, wl.windows[e].1),
            ms(lats[0]),
            ms(*lats.last().unwrap()),
            format!("{map_e}"),
            format!("{cache_e}"),
            resident.join(","),
        ]);
    }
    report.tables.push(t);
    let late_evictions: u64 = epoch_rows.iter().skip(1).map(|(_, _, e)| e).sum();
    report.notes.push(format!(
        "within each epoch latency drops (adaptation); epoch shifts evict stale attributes \
         (evictions after epoch 0: {late_evictions}) — old information \"is no longer relevant \
         and will be evicted\", as §4.2 describes"
    ));
    std::fs::remove_dir_all(dir).ok();
    report
}

/// DATASET — §4.2: "tuples with fewer attributes or smaller attributes
/// limit the effectiveness of the positional map". Sweeps attribute count
/// (int data) and attribute width (string data) and reports cold vs warm
/// latency of a query touching a *late* attribute.
pub fn dataset(scale: Scale) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "dataset",
        "Sensitivity to attribute count and attribute width",
    );
    let dir = scratch_dir("dataset");
    let rows = scale.rows() / 4;

    // (a) attribute-count sweep, constant total attribute count queried.
    let mut t1 = Table::new(
        "DATASET(a) — attribute count sweep (uniform ints)",
        &["cols", "cold_ms", "warm_ms", "warm/cold"],
    );
    let mut ratios = Vec::new();
    for cols in [5usize, 20, 50] {
        let data = Dataset::standard(&dir, cols, rows, 0xDA7A + cols as u64);
        let schema = data.schema();
        let mut sys = RawContestant::new(NoDbConfig::pm_only());
        sys.init(&data.path, &schema).unwrap();
        let sql = sp_query("t", &[cols - 1], cols - 2, 0.5);
        let (_, cold) = sys.run(&sql).unwrap();
        let (_, warm) = sys.run(&sql).unwrap();
        let ratio = warm.as_secs_f64() / cold.as_secs_f64();
        ratios.push((cols, ratio));
        t1.row(vec![
            format!("{cols}"),
            ms(cold),
            ms(warm),
            format!("{ratio:.2}"),
        ]);
    }
    report.tables.push(t1);

    // (b) attribute-width sweep on 10 string columns.
    let mut t2 = Table::new(
        "DATASET(b) — attribute width sweep (10 string columns)",
        &["width", "cold_ms", "warm_ms", "warm/cold"],
    );
    for width in [4usize, 16, 64] {
        let data = Dataset::strings(&dir, 10, width, rows, 0xD1 + width as u64);
        let schema = data.schema();
        let mut sys = RawContestant::new(NoDbConfig::pm_only());
        sys.init(&data.path, &schema).unwrap();
        let sql = "SELECT c9 FROM t WHERE c8 LIKE 'a%'".to_string();
        let (_, cold) = sys.run(&sql).unwrap();
        let (_, warm) = sys.run(&sql).unwrap();
        t2.row(vec![
            format!("{width}"),
            ms(cold),
            ms(warm),
            format!("{:.2}", warm.as_secs_f64() / cold.as_secs_f64()),
        ]);
    }
    report.tables.push(t2);

    report.notes.push(format!(
        "the map's relative benefit grows with attribute count: warm/cold at 5 cols = {:.2}, at 50 cols = {:.2} \
         (more tokenizing skipped per jump) — matching §4.2's claim that few/small attributes limit the map",
        ratios.first().unwrap().1,
        ratios.last().unwrap().1
    ));
    std::fs::remove_dir_all(dir).ok();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_shows_adaptive_speedup() {
        let r = seq(Scale::Small);
        assert_eq!(r.tables[0].len(), 4);
    }

    #[test]
    fn adapt_runs_all_epochs() {
        let r = adapt(Scale::Small);
        assert_eq!(r.tables[0].len(), 4);
    }

    #[test]
    fn dataset_sweeps_complete() {
        let r = dataset(Scale::Small);
        assert_eq!(r.tables.len(), 2);
        assert_eq!(r.tables[0].len(), 3);
        assert_eq!(r.tables[1].len(), 3);
    }
}
