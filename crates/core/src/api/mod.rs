//! The public API, split by audience.
//!
//! * [`client`] — what applications and server connections hold:
//!   [`NoDb`] (register / query / snapshot / schema).
//! * [`admin`] — what operators and harnesses hold: [`Admin`] (budgets,
//!   update probes, admission control, prepared statements, reports),
//!   minted per-call via [`NoDb::admin`].
//! * [`prepared`] — the prepared-statement cache behind
//!   `Admin::enable_prepared_statements`.
//!
//! The split exists so a network request handler works against a surface
//! with no operational foot-guns on it, while everything that mutates
//! budgets or global behavior is one deliberate hop away. Pre-split method
//! paths on `NoDb` remain as `#[deprecated]` forwarding aliases.

pub mod admin;
pub mod client;
pub mod prepared;

pub use admin::Admin;
pub use client::NoDb;
pub use prepared::{CachedPlan, PreparedCache, PreparedStats, DEFAULT_PREPARED_CAPACITY};
