//! Restart-simulation tests for the snapshot persistence layer (ISSUE 9):
//! a process that snapshots its adaptive state, dies, and reopens must land
//! in exactly the state it left — same positional-map coverage, same cache
//! contents, same statistics — and must answer every query byte-identically
//! to the process that never died. Mutations of the underlying file between
//! death and reopen must be classified: an appended tail replays on top of
//! the restored prefix, a replaced file degrades the table to cold.

use nodb_repro::core::{NoDb, NoDbConfig};
use nodb_repro::prelude::*;
use nodb_repro::snapshot;

mod common;
use common::assert_same_state;

fn scratch(tag: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("nodb_snaprestart_{tag}_{}", std::process::id()));
    p
}

fn config(persistence: bool) -> NoDbConfig {
    NoDbConfig {
        scan_threads: 2,
        snapshot_persistence: persistence,
        ..NoDbConfig::default()
    }
}

fn mk_db(path: &std::path::Path, schema: Schema, persistence: bool) -> NoDb {
    let mut db = NoDb::new(config(persistence));
    db.register_csv_with_schema("t", path, schema, false)
        .unwrap();
    db
}

fn cleanup(path: &std::path::Path) {
    std::fs::remove_file(snapshot::sidecar_path(path)).ok();
    std::fs::remove_file(path).ok();
}

/// The core recovery contract: snapshot, "crash", reopen — the reopened
/// instance answers every query byte-identically AND its adaptive state
/// (map, cache, stats) matches the survivor field by field.
#[test]
fn restart_restores_state_and_results_byte_identically() {
    let cols = 5;
    let gen = GeneratorConfig::uniform_ints(cols, 800, 0x5EED1);
    let path = scratch("roundtrip");
    gen.generate_file(&path).unwrap();
    let queries = [
        "SELECT c1 FROM t WHERE c2 < 600000000",
        "SELECT c3, c0 FROM t",
        "SELECT COUNT(*), SUM(c4) FROM t WHERE c1 >= 300000000",
    ];

    let survivor = mk_db(&path, gen.schema(), true);
    let expect: Vec<String> = queries
        .iter()
        .map(|q| survivor.query(q).unwrap().to_string())
        .collect();
    for (table, r) in survivor.admin().snapshot_now() {
        r.unwrap_or_else(|e| panic!("snapshot_now({table}): {e}"));
    }

    // "Crash": a separate instance reopens from the sidecar alone.
    let reborn = mk_db(&path, gen.schema(), true);
    let stats = reborn.admin().snapshot_stats();
    assert_eq!(stats.restores, 1, "sidecar was restored: {stats:?}");
    assert_eq!(stats.restores_rejected, 0, "{stats:?}");

    assert_same_state("restart", &reborn, &survivor, cols);
    for (q, want) in queries.iter().zip(&expect) {
        assert_eq!(
            &reborn.query(q).unwrap().to_string(),
            want,
            "restored table changed the answer to {q}"
        );
    }
    cleanup(&path);
}

/// Write-behind: with `snapshot_persistence` on, queries alone produce the
/// sidecar — no explicit `snapshot_now` — and a restart restores from it.
#[test]
fn write_behind_persists_without_explicit_snapshot() {
    let gen = GeneratorConfig::uniform_ints(4, 500, 0x5EED2);
    let path = scratch("writebehind");
    gen.generate_file(&path).unwrap();

    let db = mk_db(&path, gen.schema(), true);
    let want = db
        .query("SELECT c0, c2 FROM t WHERE c1 < 700000000")
        .unwrap()
        .to_string();
    let stats = db.admin().snapshot_stats();
    assert!(
        stats.saves >= 1,
        "write-behind saved after the scan: {stats:?}"
    );
    assert!(
        snapshot::sidecar_path(&path).exists(),
        "sidecar rides along for free"
    );
    drop(db);

    let reborn = mk_db(&path, gen.schema(), true);
    assert_eq!(reborn.admin().snapshot_stats().restores, 1);
    assert_eq!(
        reborn
            .query("SELECT c0, c2 FROM t WHERE c1 < 700000000")
            .unwrap()
            .to_string(),
        want
    );
    cleanup(&path);
}

/// The knob gates restore: a database opened with `snapshot_persistence`
/// off ignores an existing sidecar entirely (and writes none).
#[test]
fn persistence_off_ignores_sidecar() {
    let gen = GeneratorConfig::uniform_ints(3, 300, 0x5EED3);
    let path = scratch("knoboff");
    gen.generate_file(&path).unwrap();

    let warm = mk_db(&path, gen.schema(), true);
    warm.query("SELECT c1 FROM t").unwrap();
    drop(warm);
    assert!(snapshot::sidecar_path(&path).exists());

    let cold = mk_db(&path, gen.schema(), false);
    let stats = cold.admin().snapshot_stats();
    assert_eq!(stats.restores, 0, "{stats:?}");
    assert_eq!(stats.restores_rejected, 0, "{stats:?}");
    let handle = cold.table_handle("t").unwrap();
    assert_eq!(
        handle.read().map().row_index().len(),
        0,
        "table opened fully cold"
    );
    cold.query("SELECT c1 FROM t").unwrap();
    cleanup(&path);
}

/// §4.2 appends: rows appended after the snapshot must appear in the first
/// post-restart query. The restored prefix state is kept (restore counted,
/// not rejected) and the tail is replayed by the normal scan machinery.
#[test]
fn appended_tail_replays_on_restored_prefix() {
    let cols = 4;
    let gen = GeneratorConfig::uniform_ints(cols, 600, 0x5EED4);
    let path = scratch("append");
    gen.generate_file(&path).unwrap();
    let sql = "SELECT c1, c3 FROM t WHERE c0 < 800000000";

    let warm = mk_db(&path, gen.schema(), true);
    warm.query(sql).unwrap();
    for (table, r) in warm.admin().snapshot_now() {
        r.unwrap_or_else(|e| panic!("snapshot_now({table}): {e}"));
    }
    drop(warm);

    gen.append_rows(&path, 200).unwrap();

    // Reference: a cold instance on the appended file.
    let reference = mk_db(&path, gen.schema(), false);
    let want = reference.query(sql).unwrap().to_string();
    let want_count = reference
        .query("SELECT COUNT(*) FROM t")
        .unwrap()
        .to_string();

    let reborn = mk_db(&path, gen.schema(), true);
    let stats = reborn.admin().snapshot_stats();
    assert_eq!(stats.restores, 1, "append keeps the prefix: {stats:?}");
    assert_eq!(stats.restores_rejected, 0, "{stats:?}");
    assert_eq!(
        reborn.query(sql).unwrap().to_string(),
        want,
        "appended rows visible after restore"
    );
    assert_eq!(
        reborn.query("SELECT COUNT(*) FROM t").unwrap().to_string(),
        want_count,
        "row count covers the appended tail"
    );
    cleanup(&path);
}

/// A replaced file (same path, different content) fails the fingerprint
/// check: the restore is rejected, the table starts cold, and every answer
/// reflects the new file — stale adaptive state never leaks into results.
#[test]
fn replaced_file_degrades_to_cold() {
    let cols = 4;
    let old = GeneratorConfig::uniform_ints(cols, 500, 0x5EED5);
    let path = scratch("replace");
    old.generate_file(&path).unwrap();
    let sql = "SELECT c0, c2 FROM t WHERE c1 < 500000000";

    let warm = mk_db(&path, old.schema(), true);
    warm.query(sql).unwrap();
    for (table, r) in warm.admin().snapshot_now() {
        r.unwrap_or_else(|e| panic!("snapshot_now({table}): {e}"));
    }
    drop(warm);

    // Replace: different seed, different row count, same path and schema.
    let new = GeneratorConfig::uniform_ints(cols, 450, 0x0FF5E7);
    new.generate_file(&path).unwrap();
    let reference = mk_db(&path, new.schema(), false);
    let want = reference.query(sql).unwrap().to_string();

    let reborn = mk_db(&path, new.schema(), true);
    let stats = reborn.admin().snapshot_stats();
    assert_eq!(stats.restores, 0, "{stats:?}");
    assert_eq!(stats.restores_rejected, 1, "stale fingerprint: {stats:?}");
    assert_eq!(
        reborn.query(sql).unwrap().to_string(),
        want,
        "cold-degraded table answers from the new file"
    );
    assert_same_state("replaced", &reborn, &reference, cols);
    cleanup(&path);
}

/// Concurrent queries while write-behind snapshots are landing: answers
/// stay correct, the final sidecar is valid (atomic rename — never torn),
/// no temp files leak, and a restart from it round-trips.
#[test]
fn concurrent_queries_during_write_behind() {
    let cols = 5;
    let gen = GeneratorConfig::uniform_ints(cols, 700, 0x5EED6);
    let path = scratch("concurrent");
    gen.generate_file(&path).unwrap();
    let queries = [
        "SELECT c1 FROM t WHERE c2 < 400000000",
        "SELECT c3 FROM t WHERE c0 >= 100000000",
        "SELECT COUNT(*) FROM t WHERE c4 < 900000000",
        "SELECT c2, c4 FROM t",
    ];

    // Sequential replay for expected bodies.
    let seq = mk_db(&path, gen.schema(), false);
    let expect: Vec<String> = queries
        .iter()
        .map(|q| seq.query(q).unwrap().to_string())
        .collect();

    let db = std::sync::Arc::new(mk_db(&path, gen.schema(), true));
    std::thread::scope(|s| {
        for _ in 0..4 {
            let db = std::sync::Arc::clone(&db);
            let queries = &queries;
            let expect = &expect;
            s.spawn(move || {
                for _pass in 0..3 {
                    for (q, want) in queries.iter().zip(expect) {
                        assert_eq!(&db.query(q).unwrap().to_string(), want, "{q}");
                    }
                }
            });
        }
    });
    let stats = db.admin().snapshot_stats();
    assert!(stats.saves >= 1, "write-behind ran: {stats:?}");
    assert_eq!(stats.save_failures, 0, "{stats:?}");
    drop(db);

    // No temp droppings; the sidecar decodes cleanly and restores.
    let dir = path.parent().unwrap();
    let leftovers: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with(&format!("{}", path.file_name().unwrap().to_string_lossy())))
        .filter(|n| n.contains(".tmp."))
        .collect();
    assert!(leftovers.is_empty(), "temp files leaked: {leftovers:?}");

    let reborn = mk_db(&path, gen.schema(), true);
    assert_eq!(reborn.admin().snapshot_stats().restores, 1);
    for (q, want) in queries.iter().zip(&expect) {
        assert_eq!(
            &reborn.query(q).unwrap().to_string(),
            want,
            "{q} after restart"
        );
    }
    cleanup(&path);
}

/// Property-style restart harness: across several seeds and query orders,
/// interleaving snapshot / crash / reopen at every step never changes any
/// answer relative to an instance that never restarts.
#[test]
fn restart_at_every_step_is_invisible_in_results() {
    let cols = 4;
    let queries = [
        "SELECT c0 FROM t WHERE c1 < 500000000",
        "SELECT COUNT(*) FROM t WHERE c2 >= 200000000",
        "SELECT c3, c1 FROM t WHERE c0 < 900000000",
    ];
    for seed in [0xA11CEu64, 0xB0B, 0xCAFE] {
        let gen = GeneratorConfig::uniform_ints(cols, 400, seed);
        let path = scratch(&format!("prop{seed:x}"));
        gen.generate_file(&path).unwrap();

        let stable = mk_db(&path, gen.schema(), false);
        let expect: Vec<String> = queries
            .iter()
            .map(|q| stable.query(q).unwrap().to_string())
            .collect();

        // Run the same sequence, crashing and reopening between every query.
        let mut restarting = mk_db(&path, gen.schema(), true);
        for (q, want) in queries.iter().zip(&expect) {
            assert_eq!(
                &restarting.query(q).unwrap().to_string(),
                want,
                "seed {seed:#x}: {q}"
            );
            for (table, r) in restarting.admin().snapshot_now() {
                r.unwrap_or_else(|e| panic!("snapshot_now({table}): {e}"));
            }
            restarting = mk_db(&path, gen.schema(), true);
        }
        // After the final reopen the survivor and the restarter agree on
        // every answer again.
        for (q, want) in queries.iter().zip(&expect) {
            assert_eq!(
                &restarting.query(q).unwrap().to_string(),
                want,
                "seed {seed:#x}: {q} after final restart"
            );
        }
        cleanup(&path);
    }
}
