//! Configuration knobs — the demo's interactive parameter panel.
//!
//! "The user can enable or disable the NoDB components of PostgresRaw and
//! specify the amount of storage space which is devoted to internal indexes
//! and caches" (§1). Every switch the demo exposes is a field here, plus the
//! ablation flags DESIGN.md calls out.

use nodb_posmap::CombinationTrigger;

/// Full configuration of a [`crate::NoDb`] instance.
#[derive(Debug, Clone, Copy)]
pub struct NoDbConfig {
    /// Enable the adaptive positional map (§3.1).
    pub enable_positional_map: bool,
    /// Enable the adaptive binary cache (§3.2).
    pub enable_cache: bool,
    /// Enable on-the-fly statistics (§3.3).
    pub enable_stats: bool,
    /// Byte budget for the positional map's chunks.
    pub map_budget_bytes: usize,
    /// Byte budget for the cache.
    pub cache_budget_bytes: usize,
    /// When to index a new attribute combination (paper default:
    /// all-requested-attributes-in-different-chunks).
    pub combination_trigger: CombinationTrigger,
    /// Selective tokenizing (§3): abort each tuple once the last needed
    /// attribute is located. Disabling reverts to full-tuple tokenizing —
    /// the KNOBS ablation.
    pub selective_tokenizing: bool,
    /// Ablation: cache every parsed attribute of the tuple instead of only
    /// those the query requested. The paper explicitly rejects this
    /// ("caching does not force additional data to be parsed"); turning it
    /// on shows why.
    pub cache_force_full_parse: bool,
    /// Observe every `stats_sample_every`-th row in the statistics
    /// accumulators (1 = every row).
    pub stats_sample_every: u64,
    /// Block size for sequential raw-file reads.
    pub io_block_size: usize,
    /// Collect per-phase execution breakdowns (Fig 3). Costs a few ns per
    /// row; disable for pure-throughput microbenchmarks.
    pub detailed_timing: bool,
    /// Check the raw file for appends/replacement before every query (§4.2
    /// *Updates*).
    pub detect_updates: bool,
    /// Number of scan worker threads for streaming raw scans. `0` means
    /// auto-detect (`std::thread::available_parallelism`). `1` forces the
    /// single-threaded scan path — byte-for-byte the pre-parallel code, kept
    /// for fallback and A/B benchmarking. Values `>= 2` split the file into
    /// that many line-aligned partitions scanned concurrently; post-scan
    /// positional map, cache and statistics are identical to a sequential
    /// scan (see `rawscan`'s module docs for the merge invariants).
    pub scan_threads: usize,
}

impl Default for NoDbConfig {
    fn default() -> Self {
        NoDbConfig {
            enable_positional_map: true,
            enable_cache: true,
            enable_stats: true,
            map_budget_bytes: 256 << 20,
            cache_budget_bytes: 1 << 30,
            combination_trigger: CombinationTrigger::AllDifferentChunks,
            selective_tokenizing: true,
            cache_force_full_parse: false,
            stats_sample_every: 1,
            io_block_size: 1 << 20,
            detailed_timing: true,
            detect_updates: true,
            scan_threads: 0,
        }
    }
}

impl NoDbConfig {
    /// The paper's *PostgresRaw PM+C* configuration (everything on).
    pub fn pm_c() -> Self {
        NoDbConfig::default()
    }

    /// The paper's *Baseline* configuration: "does not use any of the
    /// aforementioned techniques and constitutes the naive way of accessing
    /// external files". Every query re-tokenizes and re-parses everything;
    /// no state is kept between queries.
    pub fn baseline() -> Self {
        NoDbConfig {
            enable_positional_map: false,
            enable_cache: false,
            enable_stats: false,
            selective_tokenizing: false,
            ..NoDbConfig::default()
        }
    }

    /// Positional map only (the *PostgresRaw PM* variant).
    pub fn pm_only() -> Self {
        NoDbConfig {
            enable_cache: false,
            ..NoDbConfig::default()
        }
    }

    /// Cache only (the *PostgresRaw C* variant).
    pub fn cache_only() -> Self {
        NoDbConfig {
            enable_positional_map: false,
            ..NoDbConfig::default()
        }
    }

    /// Resolved scan worker count: `scan_threads`, with `0` mapped to the
    /// machine's available parallelism.
    pub fn effective_scan_threads(&self) -> usize {
        match self.scan_threads {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
    }

    /// Short label for experiment tables.
    pub fn label(&self) -> &'static str {
        match (self.enable_positional_map, self.enable_cache) {
            (true, true) => "PostgresRaw (PM+C)",
            (true, false) => "PostgresRaw (PM)",
            (false, true) => "PostgresRaw (C)",
            (false, false) => {
                if self.selective_tokenizing {
                    "External files (selective)"
                } else {
                    "Baseline (external files)"
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_variants() {
        assert_eq!(NoDbConfig::pm_c().label(), "PostgresRaw (PM+C)");
        assert_eq!(NoDbConfig::baseline().label(), "Baseline (external files)");
        assert!(!NoDbConfig::baseline().enable_positional_map);
        assert!(!NoDbConfig::baseline().selective_tokenizing);
        assert!(NoDbConfig::pm_only().enable_positional_map);
        assert!(!NoDbConfig::pm_only().enable_cache);
    }

    #[test]
    fn scan_threads_zero_means_auto() {
        let cfg = NoDbConfig::default();
        assert_eq!(cfg.scan_threads, 0);
        assert!(cfg.effective_scan_threads() >= 1);
        let one = NoDbConfig {
            scan_threads: 1,
            ..NoDbConfig::default()
        };
        assert_eq!(one.effective_scan_threads(), 1);
        let four = NoDbConfig {
            scan_threads: 4,
            ..NoDbConfig::default()
        };
        assert_eq!(four.effective_scan_threads(), 4);
    }
}
