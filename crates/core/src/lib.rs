//! # nodb-core — PostgresRaw in Rust
//!
//! The paper's primary contribution: a query engine that answers SQL over
//! raw CSV files with **zero data-to-query time** — no loading step — and
//! that gets *faster as you use it*, because every query leaves behind
//! positional-map entries, cached binary columns and statistics (§3).
//!
//! ```no_run
//! use nodb_core::{NoDb, NoDbConfig};
//!
//! let mut db = NoDb::new(NoDbConfig::default());
//! db.register_csv("events", "events.csv").unwrap();           // instant
//! let r = db.query("SELECT c0, c7 FROM events WHERE c3 > 100").unwrap();
//! println!("{r}");
//! println!("{}", db.admin().last_report().unwrap().breakdown.panel_row());
//! println!("{}", db.snapshot("events").unwrap().panel());
//! ```
//!
//! `query` takes `&self`: a `NoDb` behind an `Arc` serves any number of
//! threads at once, and queries against the same table share its positional
//! map and cache through the [`registry`]'s per-table `RwLock` (read-mostly
//! queries stream under the read lock; structure growth is staged and
//! installed under short write locks — see [`rawscan`]'s module docs).
//!
//! Module map: [`api`] (the client/admin facade split — `NoDb` to query,
//! `NoDb::admin` to operate), [`admission`] (the shared scan-thread budget
//! a serving layer installs), [`config`] (the demo's knob panel), [`ctx`]
//! (per-query deadlines and cancellation), [`registry`] (the concurrent
//! table registry), [`table`] (per-file adaptive state), [`rawscan`] (the
//! in-situ scan operator), [`metrics`] (Fig 2 / Fig 3 panels as data).
//!
//! ## Error taxonomy & resilience
//!
//! Queries fail in structured, recoverable ways — an in-situ engine points
//! at files it does not control has to treat failure as a first-class path:
//!
//! * **Deadline / cancellation** — [`EngineError::DeadlineExceeded`] /
//!   [`EngineError::Cancelled`], raised cooperatively (see [`ctx`]) via
//!   [`NoDb::query_with_ctx`] or the `query_timeout_ms` config knob. A
//!   stopped scan merges the completed prefix of its partials first, so the
//!   re-run starts from warmer map/cache/statistics state ("queries as
//!   advisors", applied to failure paths).
//! * **Overload** — with a [`ScanBudget`] installed, a query arriving past
//!   the bounded admission queue fails fast with
//!   [`EngineError::Overloaded`] *before* touching any table state — the
//!   serving layer's back-pressure signal.
//! * **Transient I/O** — `EIO`/`EAGAIN`-class read errors are retried with
//!   bounded exponential backoff inside the block readers
//!   (`io_retry_attempts` / `io_retry_backoff_ms`); only errors that
//!   survive the retries surface, as [`EngineError::Csv`]. Retry counts are
//!   reported in the query's `IoCounters`.
//! * **Malformed rows** — under [`config::ParseErrorPolicy::Strict`] the
//!   first bad cell aborts the query with a precise row/attribute error and
//!   no side effects merged; under `Permissive` the cell is tombstoned as
//!   NULL, the row stays in the result, and the quarantine count plus
//!   row/offset samples surface in [`QueryReport`].
//! * **Worker panics** — contained at the partition-worker boundary and
//!   converted to [`EngineError::WorkerPanic`] (slice index + panic
//!   payload). Locks on the failure path recover from poisoning, so one
//!   crashed query never bricks the shared table — the next query on the
//!   same handle runs normally.
//! * **Source mutation** — the raw files belong to external tools, which
//!   may append, truncate, or rewrite them at any moment. Every table is
//!   keyed to a [`SourceEpoch`] (length, mtime, sampled head/tail hashes),
//!   re-validated under the planning lock at every query (see [`epoch`]):
//!   appends keep prefix state and replay the tail, truncation/rewrite
//!   quarantines map/cache/statistics and rescans cold. A mutation *during*
//!   a scan (short file, failed post-scan re-validation) raises
//!   [`EngineError::SourceChanged`] without merging any poisoned partials;
//!   the facade quarantines and retries cold up to
//!   `source_change_retries` times, so callers normally still get a
//!   correct answer — `source_changed` in [`QueryReport`] counts how often
//!   it happened. The **torn-row fence**: scans only trust bytes up to the
//!   last newline observed at epoch capture, so a row a concurrent
//!   appender is mid-way through writing is invisible until its
//!   terminator lands (while `detect_updates` is on, an unterminated
//!   final line is therefore not served until a newline ends it).

pub mod admission;
mod affinity;
pub mod api;
pub mod config;
pub mod ctx;
pub mod epoch;
pub mod metrics;
pub mod rawscan;
pub mod registry;
pub mod table;
mod worker;

pub use nodb_engine::EngineError;

pub use admission::{BudgetTelemetry, ScanBudget, ScanGrant};
pub use api::{Admin, NoDb, PreparedCache, PreparedStats};
pub use config::{NoDbConfig, NoDbConfigBuilder, ParseErrorPolicy};
pub use ctx::{CancelToken, QueryCtx};
pub use epoch::{EpochChange, SourceEpoch};
pub use metrics::{Breakdown, QueryReport, SnapshotTelemetry, SystemSnapshot};
pub use rawscan::{QuarantineSample, RawScanSource, ScanTelemetry, TelemetryHandle};
pub use registry::{TableHandle, TableRegistry};
pub use table::{RawTable, RestoreOutcome};
