//! Distinct-value estimation by linear counting.
//!
//! A fixed bitmap of `m` bits; each value hashes to one bit. The estimate is
//! `-m * ln(z/m)` where `z` is the number of zero bits — accurate to a few
//! percent while NDV stays below ~`m`, which is plenty for selectivity
//! estimation (the optimizer only needs the right order of magnitude).

use nodb_rawcsv::reader::fnv1a;
use nodb_rawcsv::Datum;

/// Linear-counting NDV estimator.
#[derive(Debug, Clone)]
pub struct DistinctCounter {
    bits: Vec<u64>,
    mbits: usize,
    set: usize,
}

impl DistinctCounter {
    /// Estimator with `mbits` bits (rounded up to a multiple of 64).
    pub fn new(mbits: usize) -> Self {
        let words = mbits.max(64).div_ceil(64);
        DistinctCounter {
            bits: vec![0; words],
            mbits: words * 64,
            set: 0,
        }
    }

    /// Default size: 16 Ki bits (2 KiB), good to ~10k distinct values.
    pub fn default_size() -> Self {
        DistinctCounter::new(16 * 1024)
    }

    /// Record one value.
    pub fn add(&mut self, d: &Datum) {
        let h = hash_datum(d);
        let bit = (h % self.mbits as u64) as usize;
        let word = bit / 64;
        let mask = 1u64 << (bit % 64);
        if self.bits[word] & mask == 0 {
            self.bits[word] |= mask;
            self.set += 1;
        }
    }

    /// Estimated number of distinct values recorded.
    pub fn estimate(&self) -> f64 {
        let m = self.mbits as f64;
        let z = (self.mbits - self.set) as f64;
        if self.set == 0 {
            return 0.0;
        }
        if z < 1.0 {
            // Saturated: lower bound.
            return m;
        }
        m * (m / z).ln()
    }

    /// Reset (file replaced).
    pub fn clear(&mut self) {
        self.bits.iter_mut().for_each(|w| *w = 0);
        self.set = 0;
    }

    /// The raw bitmap words (snapshot export; `mbits` is implied by the
    /// word count and `set` by the popcount, so the bits are the whole
    /// state).
    pub fn words(&self) -> &[u64] {
        &self.bits
    }

    /// Rebuild a counter from exported bitmap words. Returns `None` on an
    /// empty word list (a counter always holds at least one word).
    pub fn from_words(bits: Vec<u64>) -> Option<Self> {
        if bits.is_empty() {
            return None;
        }
        let set = bits.iter().map(|w| w.count_ones() as usize).sum();
        let mbits = bits.len() * 64;
        Some(DistinctCounter { bits, mbits, set })
    }
}

/// Stable hash of a datum for NDV purposes. Int and Float hash by value
/// class so `1` and `1.0` count once, mirroring SQL equality.
pub fn hash_datum(d: &Datum) -> u64 {
    match d {
        Datum::Null => 0x6e75_6c6c,
        Datum::Int(v) => fnv1a(&v.to_le_bytes()),
        Datum::Float(v) => {
            if v.fract() == 0.0 && v.abs() < 9e18 {
                fnv1a(&(*v as i64).to_le_bytes())
            } else {
                fnv1a(&v.to_bits().to_le_bytes())
            }
        }
        Datum::Str(s) => fnv1a(s.as_bytes()),
        Datum::Bool(b) => fnv1a(&[*b as u8]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_cardinalities_are_near_exact() {
        let mut c = DistinctCounter::default_size();
        for i in 0..100 {
            c.add(&Datum::Int(i));
            c.add(&Datum::Int(i)); // duplicates ignored
        }
        let e = c.estimate();
        assert!((e - 100.0).abs() < 10.0, "estimate = {e}");
    }

    #[test]
    fn medium_cardinalities_within_tolerance() {
        let mut c = DistinctCounter::default_size();
        for i in 0..5_000 {
            c.add(&Datum::Int(i * 7919));
        }
        let e = c.estimate();
        assert!((e - 5_000.0).abs() / 5_000.0 < 0.1, "estimate = {e}");
    }

    #[test]
    fn int_and_float_hash_together() {
        assert_eq!(hash_datum(&Datum::Int(42)), hash_datum(&Datum::Float(42.0)));
        assert_ne!(hash_datum(&Datum::Int(42)), hash_datum(&Datum::Float(42.5)));
    }

    #[test]
    fn empty_estimates_zero() {
        let c = DistinctCounter::default_size();
        assert_eq!(c.estimate(), 0.0);
    }

    #[test]
    fn clear_resets() {
        let mut c = DistinctCounter::new(64);
        c.add(&Datum::Int(1));
        c.clear();
        assert_eq!(c.estimate(), 0.0);
    }

    #[test]
    fn words_round_trip_preserves_estimate_and_stream() {
        let mut a = DistinctCounter::default_size();
        for i in 0..3_000 {
            a.add(&Datum::Int(i * 31));
        }
        let mut b = DistinctCounter::from_words(a.words().to_vec()).expect("non-empty");
        assert_eq!(a.estimate(), b.estimate());
        for i in 0..500 {
            a.add(&Datum::Int(i * 7 + 1));
            b.add(&Datum::Int(i * 7 + 1));
        }
        assert_eq!(a.estimate(), b.estimate());
        assert!(DistinctCounter::from_words(Vec::new()).is_none());
    }
}
