//! The two demo panels: Fig 2 (system monitoring) and Fig 3 (execution
//! breakdown).

use nodb_core::NoDbConfig;
use nodb_storage::DbProfile;

use crate::report::{ms, secs, Table};
use crate::systems::{Contestant, LoadedContestant, RawContestant};
use crate::workload::{scratch_dir, sp_query, Dataset, Scale};

use super::ExperimentReport;

/// Fig 2 — the System Monitoring Panel: map/cache utilization, hit ratio
/// and per-attribute usage evolving over a 30-query workload whose focus
/// shifts across the file.
pub fn fig2(scale: Scale) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig2",
        "System Monitoring Panel: positional map & cache utilization over an evolving workload",
    );
    let dir = scratch_dir("fig2");
    let cols = 10usize;
    let data = Dataset::standard(&dir, cols, scale.rows() / 2, 0xF162);
    let schema = data.schema();

    // Budgets sized so the gauges move visibly: the cache can hold roughly
    // half of the attributes, the map all of them.
    let rows = scale.rows() / 2;
    let mut cfg = NoDbConfig::pm_c();
    cfg.cache_budget_bytes = (rows as usize) * 9 * (cols / 2);
    cfg.map_budget_bytes = (rows as usize) * 2 * cols;
    let mut sys = RawContestant::new(cfg);
    sys.init(&data.path, &schema).unwrap();

    let mut t = Table::new(
        "Fig 2 — utilization per query",
        &[
            "q#",
            "attrs",
            "map_util_%",
            "cache_util_%",
            "hit_ratio",
            "evictions",
            "latency_ms",
        ],
    );
    // Workload: drift attribute focus left → right across the file.
    let mut utils = Vec::new();
    for q in 0..30usize {
        let focus = (q * (cols - 2)) / 29; // 0 → cols-2
        let attrs = [focus, focus + 1];
        let sql = sp_query("t", &attrs, focus, 0.5);
        let (_, lat) = sys.run(&sql).unwrap();
        let snap = sys.db.snapshot("t").unwrap();
        utils.push((snap.map_utilization, snap.cache_utilization));
        t.row(vec![
            format!("{q}"),
            format!("c{},c{}", attrs[0], attrs[1]),
            format!("{:.1}", snap.map_utilization * 100.0),
            format!("{:.1}", snap.cache_utilization * 100.0),
            format!("{:.2}", snap.cache_hit_ratio),
            format!("{}", snap.cache_evictions),
            ms(lat),
        ]);
    }
    report.tables.push(t);

    let final_snap = sys.db.snapshot("t").unwrap();
    report.notes.push(format!(
        "cache utilization grows from 0% to {:.0}% and saturates at its budget (evictions={}), map holds {} chunks",
        utils.last().unwrap().1 * 100.0,
        final_snap.cache_evictions,
        final_snap.map_chunks.len()
    ));
    report.notes.push(
        "matches the demo: both gauges start empty and fill exclusively as a side effect of queries"
            .into(),
    );
    std::fs::remove_dir_all(dir).ok();
    report
}

/// Fig 3 — the Query Execution Breakdown: the same Select-Project query on
/// a cold file, across PostgreSQL-like (load + query), Baseline (naive
/// external files) and PostgresRaw PM+C, with per-phase slices.
pub fn fig3(scale: Scale) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig3",
        "Query Execution Breakdown: PostgreSQL vs Baseline vs PostgresRaw (PM+C)",
    );
    let dir = scratch_dir("fig3");
    let data = Dataset::standard(&dir, 10, scale.rows(), 0xF163);
    let schema = data.schema();
    let sql = sp_query("t", &[2, 7], 4, 0.3);

    let mut t = Table::new(
        "Fig 3 — time to first answer (cold system), seconds",
        &[
            "system",
            "init_s",
            "q1_s",
            "io_ms",
            "tok_ms",
            "parse_ms",
            "conv_ms",
            "nodb_ms",
            "engine_ms",
            "proc_ms",
            "total_to_answer_s",
        ],
    );

    // PostgreSQL-like: init = full load; query runs over binary pages.
    let mut pg = LoadedContestant::new(DbProfile::PostgresLike, vec![]);
    let pg_init = pg.init(&data.path, &schema).unwrap();
    let (pg_r, pg_q) = pg.run(&sql).unwrap();
    t.row(vec![
        pg.name(),
        secs(pg_init),
        secs(pg_q),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        ms(pg_q),
        secs(pg_init + pg_q),
    ]);

    // Baseline and PM+C: zero init, detailed slices.
    let mut raw_rows = Vec::new();
    for mut sys in [RawContestant::baseline(), RawContestant::pm_c()] {
        let init = sys.init(&data.path, &schema).unwrap();
        let (r, q) = sys.run(&sql).unwrap();
        assert_eq!(r, pg_r, "all systems must agree");
        let rep = sys.db.admin().last_report().unwrap().clone();
        t.row(vec![
            sys.name(),
            secs(init),
            secs(q),
            ms(rep.breakdown.io),
            ms(rep.breakdown.tokenizing),
            ms(rep.breakdown.parsing),
            ms(rep.breakdown.convert),
            ms(rep.breakdown.nodb),
            ms(rep.breakdown.engine),
            ms(rep.breakdown.processing),
            secs(init + q),
        ]);
        raw_rows.push((sys.name(), init + q, rep, sys));
    }
    report.tables.push(t);

    // The adaptive payoff: the same query again on the warm PM+C system.
    let mut warm = Table::new(
        "Fig 3b — PostgresRaw (PM+C), same query warm",
        &[
            "run",
            "latency_ms",
            "io_ms",
            "tok_ms",
            "parse_ms",
            "conv_ms",
            "engine_ms",
            "fully_cached",
        ],
    );
    let (_, _, _, mut pmc) = raw_rows.pop().unwrap();
    for run in 2..=3 {
        let (_, q) = pmc.run(&sql).unwrap();
        let rep = pmc.db.admin().last_report().unwrap().clone();
        warm.row(vec![
            format!("q{run}"),
            ms(q),
            ms(rep.breakdown.io),
            ms(rep.breakdown.tokenizing),
            ms(rep.breakdown.parsing),
            ms(rep.breakdown.convert),
            ms(rep.breakdown.engine),
            format!("{}", rep.fully_cached),
        ]);
    }
    report.tables.push(warm);

    report.notes.push(
        "shape: conventional DBMS pays a large load before its fast first query; both in-situ \
         systems answer immediately; PostgresRaw's first query costs slightly more than Baseline \
         (NoDB-overhead slice) and subsequent runs collapse to cache reads"
            .into(),
    );
    std::fs::remove_dir_all(dir).ok();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_gauges_move() {
        let r = fig2(Scale::Small);
        assert_eq!(r.tables[0].len(), 30);
        assert!(!r.notes.is_empty());
    }

    #[test]
    fn fig3_produces_all_systems() {
        let r = fig3(Scale::Small);
        assert_eq!(r.tables[0].len(), 3);
        assert_eq!(r.tables[1].len(), 2);
    }
}
