//! Cold-scan cache-reuse benchmark — the two-phase pre-count's acceptance
//! measurement (ISSUE 3).
//!
//! Configuration is cache-only (positional map off), so there is never a
//! row index and *every* rescan runs the cold byte-partitioned path. A
//! tight cache budget makes the first query cache roughly half the rows of
//! the two requested columns; the measured rescans then come in three
//! flavors at each thread count:
//!
//! * `cold_reuse_cached` — rescan against the partially-cached table with
//!   the pre-count on: workers learn their global row bases from the (memoized)
//!   newline counts, serve the covered prefix from the cache, and slices
//!   wholly inside it never open the file.
//! * `cold_reuse_no_precount` — same partially-cached table, pre-count off:
//!   the pre-ISSUE behavior, re-parsing everything from raw bytes.
//! * `cold_reuse_cold` — a fresh registration per iteration: fully cold.
//!
//! Acceptance: `cached` beats `cold` at equal thread counts. The records
//! land in `BENCH_cold_reuse.json` (merged by configuration key, so CI's
//! reduced row count coexists with full-size local runs) and feed the CI
//! perf gate. `NODB_BENCH_ROWS` overrides the row count.
//!
//! ISSUE 9 adds a **snapshot restart mode** (full adaptive config:
//! map + cache + stats): `snapshot_warm` measures a query against a
//! long-lived warm table; `snapshot_restart` measures the first query after
//! a process restart that restored the sidecar at open; `snapshot_cold` is
//! the first query after a restart with no sidecar, paying full cold
//! re-discovery inside the query; `snapshot_restore_open` is the one-time
//! open+restore boot cost itself. Acceptance: restart-then-query lands
//! within 1.25× of warm-query, vs. the much slower full-cold baseline.

use std::cell::RefCell;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use nodb_bench::report::{update_bench_json, BenchRecord};
use nodb_bench::workload::scratch_dir;
use nodb_core::{NoDb, NoDbConfig};
use nodb_rawcsv::{GeneratorConfig, Schema};

const COLS: usize = 8;

fn rows() -> u64 {
    std::env::var("NODB_BENCH_ROWS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000)
}

/// Cache-only cold configuration: every rescan is byte-partitioned.
fn config(rows: u64, threads: usize, precount: bool) -> NoDbConfig {
    NoDbConfig {
        enable_positional_map: false,
        enable_cache: true,
        enable_stats: false,
        selective_tokenizing: true,
        detailed_timing: false,
        detect_updates: false,
        scan_threads: threads,
        cold_precount: precount,
        // ~60% of the two requested int columns (16 bytes buffered per row
        // in the cache's accounting).
        cache_budget_bytes: (rows as usize) * 16 * 6 / 10,
        ..NoDbConfig::default()
    }
}

/// Full adaptive configuration for the snapshot restart mode: positional
/// map + cache + stats all on, budgets sized so the queried columns fit
/// entirely (a restored table then answers fully warm).
fn snap_config(rows: u64, threads: usize, restore: bool) -> NoDbConfig {
    NoDbConfig {
        enable_positional_map: true,
        enable_cache: true,
        enable_stats: true,
        selective_tokenizing: true,
        detailed_timing: false,
        detect_updates: false,
        scan_threads: threads,
        snapshot_persistence: restore,
        cache_budget_bytes: (rows as usize) * 64,
        map_budget_bytes: (rows as usize) * 64,
        ..NoDbConfig::default()
    }
}

fn fresh_db(path: &PathBuf, schema: &Schema, cfg: NoDbConfig) -> NoDb {
    let mut db = NoDb::new(cfg);
    db.register_csv_with_schema("t", path, schema.clone(), false)
        .unwrap();
    db
}

/// A db whose cache holds the partial prefix the budget admits.
fn warmed_db(path: &PathBuf, schema: &Schema, cfg: NoDbConfig, sql: &str) -> NoDb {
    let db = fresh_db(path, schema, cfg);
    db.query(sql).unwrap();
    db.query(sql).unwrap(); // second pass memoizes the pre-count boundaries
    db
}

fn bench_cold_reuse(c: &mut Criterion) {
    let rows = rows();
    let dir = scratch_dir("bench_cold_reuse");
    let gen = GeneratorConfig::uniform_ints(COLS, rows, 0xC01D);
    let mut path = dir.clone();
    path.push("data.csv");
    gen.generate_file(&path).expect("generate dataset");
    let schema = gen.schema();
    let sql = "SELECT c1, c5 FROM t WHERE c5 < 300000000";

    let expect = fresh_db(&path, &schema, config(rows, 1, true))
        .query(sql)
        .unwrap()
        .len();

    let mut group = c.benchmark_group(format!("cold_reuse_{rows}_rows"));
    group.sample_size(4);
    let samples: RefCell<Vec<BenchRecord>> = RefCell::new(Vec::new());
    for threads in [2usize, 4, 8] {
        type MkDb<'a> = Box<dyn Fn() -> NoDb + 'a>;
        let variants: [(&str, MkDb); 3] = [
            (
                "cold_reuse_cached",
                Box::new(|| warmed_db(&path, &schema, config(rows, threads, true), sql)),
            ),
            (
                "cold_reuse_no_precount",
                Box::new(|| warmed_db(&path, &schema, config(rows, threads, false), sql)),
            ),
            (
                "cold_reuse_cold",
                Box::new(|| fresh_db(&path, &schema, config(rows, threads, true))),
            ),
        ];
        for (name, mk) in variants {
            let durations = RefCell::new(Vec::new());
            group.bench_function(format!("{name}_threads_{threads}"), |b| {
                b.iter_batched(
                    &mk,
                    |db| {
                        let t = Instant::now();
                        let r = db.query(sql).unwrap();
                        durations.borrow_mut().push(t.elapsed());
                        assert_eq!(
                            r.len(),
                            expect,
                            "{name} threads={threads} changed the answer"
                        );
                        black_box(r.len())
                    },
                    BatchSize::LargeInput,
                )
            });
            samples.borrow_mut().push(BenchRecord::from_samples(
                name,
                threads,
                rows,
                &durations.borrow(),
            ));
        }
    }
    // --- snapshot restart mode (ISSUE 9) -------------------------------
    // One sidecar, written once from a fully warmed table, serves every
    // restart iteration: restoring it is what makes a reopened process
    // answer warm instead of re-discovering everything cold.
    {
        let warm = warmed_db(&path, &schema, snap_config(rows, 4, false), sql);
        for (table, result) in warm.admin().snapshot_now() {
            result.unwrap_or_else(|e| panic!("snapshot_now({table}): {e}"));
        }
    }
    for threads in [2usize, 4, 8] {
        // Four measurements per thread count:
        //  * `snapshot_warm` — steady-state query in a long-lived process;
        //  * `snapshot_restart` — the first query after a process restart
        //    that restored the sidecar at open (setup = open + restore);
        //    the acceptance ratio compares this against `snapshot_warm`;
        //  * `snapshot_cold` — the first query after a restart with no
        //    restore: cold re-discovery happens *inside* the query;
        //  * `snapshot_restore_open` — the one-time boot cost a restart
        //    pays (open + register + restore), reported separately so the
        //    restore price is visible rather than hidden in setup.
        type Setup<'a> = Box<dyn Fn() -> NoDb + 'a>;
        let first_query: [(&str, Setup); 3] = [
            (
                "snapshot_warm",
                Box::new(|| warmed_db(&path, &schema, snap_config(rows, threads, false), sql)),
            ),
            (
                "snapshot_restart",
                Box::new(|| fresh_db(&path, &schema, snap_config(rows, threads, true))),
            ),
            (
                "snapshot_cold",
                Box::new(|| fresh_db(&path, &schema, snap_config(rows, threads, false))),
            ),
        ];
        for (name, setup) in first_query {
            let durations = RefCell::new(Vec::new());
            group.bench_function(format!("{name}_threads_{threads}"), |b| {
                b.iter_batched(
                    &setup,
                    |db| {
                        let t = Instant::now();
                        let r = db.query(sql).unwrap();
                        durations.borrow_mut().push(t.elapsed());
                        assert_eq!(
                            r.len(),
                            expect,
                            "{name} threads={threads} changed the answer"
                        );
                        black_box(r.len())
                    },
                    BatchSize::LargeInput,
                )
            });
            samples.borrow_mut().push(BenchRecord::from_samples(
                name,
                threads,
                rows,
                &durations.borrow(),
            ));
        }
        let durations = RefCell::new(Vec::new());
        group.bench_function(format!("snapshot_restore_open_threads_{threads}"), |b| {
            b.iter(|| {
                let t = Instant::now();
                let db = fresh_db(&path, &schema, snap_config(rows, threads, true));
                durations.borrow_mut().push(t.elapsed());
                black_box(db)
            })
        });
        samples.borrow_mut().push(BenchRecord::from_samples(
            "snapshot_restore_open",
            threads,
            rows,
            &durations.borrow(),
        ));
    }
    group.finish();

    let records = samples.into_inner();
    let mut out = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    out.pop(); // crates/
    out.pop(); // workspace root
    out.push("BENCH_cold_reuse.json");
    update_bench_json(&out, &records).expect("write BENCH_cold_reuse.json");
    for threads in [2usize, 4, 8] {
        let at = |name: &str| {
            records
                .iter()
                .find(|r| r.name == name && r.scan_threads == threads)
                .map(|r| r.mean_ms)
                .unwrap_or(f64::NAN)
        };
        let (cached, noprec, cold) = (
            at("cold_reuse_cached"),
            at("cold_reuse_no_precount"),
            at("cold_reuse_cold"),
        );
        println!(
            "threads={threads:<2} cached {cached:>9.2} ms  no-precount {noprec:>9.2} ms  \
             fully-cold {cold:>9.2} ms  (reuse speedup {:.2}x)",
            cold / cached
        );
    }
    for threads in [2usize, 4, 8] {
        let at = |name: &str| {
            records
                .iter()
                .find(|r| r.name == name && r.scan_threads == threads)
                .map(|r| r.mean_ms)
                .unwrap_or(f64::NAN)
        };
        let (warm, restart, cold, open) = (
            at("snapshot_warm"),
            at("snapshot_restart"),
            at("snapshot_cold"),
            at("snapshot_restore_open"),
        );
        println!(
            "threads={threads:<2} snapshot: warm {warm:>8.2} ms  restart {restart:>8.2} ms  \
             cold {cold:>8.2} ms  open+restore {open:>8.2} ms  \
             (restart/warm {:.2}x, cold/warm {:.2}x)",
            restart / warm,
            cold / warm
        );
    }
    println!("wrote {}", out.display());

    std::fs::remove_dir_all(dir).ok();
}

criterion_group!(benches, bench_cold_reuse);
criterion_main!(benches);
