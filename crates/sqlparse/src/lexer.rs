//! Tokenizer for the SQL dialect.

use crate::error::ParseError;

/// One lexical token with its byte position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Byte offset of the token's first character.
    pub pos: usize,
    /// Token kind and payload.
    pub kind: TokenKind,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Keyword (uppercased) such as `SELECT`, `FROM`, `WHERE`.
    Keyword(Keyword),
    /// Identifier (case preserved).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (quotes removed, `''` unescaped).
    Str(String),
    /// Punctuation / operator.
    Sym(Sym),
    /// End of input.
    Eof,
}

/// Recognized keywords.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Keyword {
    Select,
    From,
    Where,
    Group,
    Order,
    By,
    Limit,
    And,
    Or,
    Not,
    Between,
    In,
    Like,
    Is,
    Null,
    True,
    False,
    As,
    Asc,
    Desc,
    Count,
    Sum,
    Avg,
    Min,
    Max,
    Distinct,
}

impl Keyword {
    fn from_str(s: &str) -> Option<Keyword> {
        Some(match s.to_ascii_uppercase().as_str() {
            "SELECT" => Keyword::Select,
            "FROM" => Keyword::From,
            "WHERE" => Keyword::Where,
            "GROUP" => Keyword::Group,
            "ORDER" => Keyword::Order,
            "BY" => Keyword::By,
            "LIMIT" => Keyword::Limit,
            "AND" => Keyword::And,
            "OR" => Keyword::Or,
            "NOT" => Keyword::Not,
            "BETWEEN" => Keyword::Between,
            "IN" => Keyword::In,
            "LIKE" => Keyword::Like,
            "IS" => Keyword::Is,
            "NULL" => Keyword::Null,
            "TRUE" => Keyword::True,
            "FALSE" => Keyword::False,
            "AS" => Keyword::As,
            "ASC" => Keyword::Asc,
            "DESC" => Keyword::Desc,
            "COUNT" => Keyword::Count,
            "SUM" => Keyword::Sum,
            "AVG" => Keyword::Avg,
            "MIN" => Keyword::Min,
            "MAX" => Keyword::Max,
            "DISTINCT" => Keyword::Distinct,
            _ => return None,
        })
    }
}

/// Punctuation and operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Sym {
    Comma,
    LParen,
    RParen,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    Semicolon,
}

/// Lex `input` into tokens (ending with [`TokenKind::Eof`]).
pub fn lex(input: &str) -> Result<Vec<Token>, ParseError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let pos = i;
        let kind = match b {
            b',' => {
                i += 1;
                TokenKind::Sym(Sym::Comma)
            }
            b'(' => {
                i += 1;
                TokenKind::Sym(Sym::LParen)
            }
            b')' => {
                i += 1;
                TokenKind::Sym(Sym::RParen)
            }
            b'*' => {
                i += 1;
                TokenKind::Sym(Sym::Star)
            }
            b'+' => {
                i += 1;
                TokenKind::Sym(Sym::Plus)
            }
            b'-' => {
                // `--` comment to end of line.
                if bytes.get(i + 1) == Some(&b'-') {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                    continue;
                }
                i += 1;
                TokenKind::Sym(Sym::Minus)
            }
            b'/' => {
                i += 1;
                TokenKind::Sym(Sym::Slash)
            }
            b'%' => {
                i += 1;
                TokenKind::Sym(Sym::Percent)
            }
            b';' => {
                i += 1;
                TokenKind::Sym(Sym::Semicolon)
            }
            b'=' => {
                i += 1;
                TokenKind::Sym(Sym::Eq)
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    TokenKind::Sym(Sym::NotEq)
                } else {
                    return Err(ParseError::new(pos, "expected '=' after '!'"));
                }
            }
            b'<' => match bytes.get(i + 1) {
                Some(b'=') => {
                    i += 2;
                    TokenKind::Sym(Sym::Le)
                }
                Some(b'>') => {
                    i += 2;
                    TokenKind::Sym(Sym::NotEq)
                }
                _ => {
                    i += 1;
                    TokenKind::Sym(Sym::Lt)
                }
            },
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    TokenKind::Sym(Sym::Ge)
                } else {
                    i += 1;
                    TokenKind::Sym(Sym::Gt)
                }
            }
            b'\'' => {
                // String literal with '' escaping.
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        Some(b'\'') => {
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&c) => {
                            s.push(c as char);
                            i += 1;
                        }
                        None => return Err(ParseError::new(pos, "unterminated string literal")),
                    }
                }
                TokenKind::Str(s)
            }
            b'0'..=b'9' | b'.' => {
                let start = i;
                let mut saw_dot = false;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit() || (bytes[i] == b'.' && !saw_dot))
                {
                    if bytes[i] == b'.' {
                        saw_dot = true;
                    }
                    i += 1;
                }
                // Exponent.
                let mut is_float = saw_dot;
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if matches!(bytes.get(j), Some(b'+') | Some(b'-')) {
                        j += 1;
                    }
                    if bytes.get(j).is_some_and(u8::is_ascii_digit) {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &input[start..i];
                if text == "." {
                    return Err(ParseError::new(pos, "stray '.'"));
                }
                if is_float {
                    let v: f64 = text
                        .parse()
                        .map_err(|_| ParseError::new(pos, format!("bad float {text:?}")))?;
                    TokenKind::Float(v)
                } else {
                    let v: i64 = text
                        .parse()
                        .map_err(|_| ParseError::new(pos, format!("bad integer {text:?}")))?;
                    TokenKind::Int(v)
                }
            }
            b'"' => {
                // Double-quoted identifier.
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(&c) => {
                            s.push(c as char);
                            i += 1;
                        }
                        None => return Err(ParseError::new(pos, "unterminated quoted identifier")),
                    }
                }
                TokenKind::Ident(s)
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &input[start..i];
                match Keyword::from_str(word) {
                    Some(k) => TokenKind::Keyword(k),
                    None => TokenKind::Ident(word.to_string()),
                }
            }
            other => {
                return Err(ParseError::new(
                    pos,
                    format!("unexpected character {:?}", other as char),
                ))
            }
        };
        tokens.push(Token { pos, kind });
    }
    tokens.push(Token {
        pos: input.len(),
        kind: TokenKind::Eof,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(q: &str) -> Vec<TokenKind> {
        lex(q).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(
            kinds("select FROM Where"),
            vec![
                TokenKind::Keyword(Keyword::Select),
                TokenKind::Keyword(Keyword::From),
                TokenKind::Keyword(Keyword::Where),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers_int_and_float() {
        assert_eq!(
            kinds("42 3.5 1e3"),
            vec![
                TokenKind::Int(42),
                TokenKind::Float(3.5),
                TokenKind::Float(1000.0),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds("'ab''c'"),
            vec![TokenKind::Str("ab'c".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("<= <> != = < >"),
            vec![
                TokenKind::Sym(Sym::Le),
                TokenKind::Sym(Sym::NotEq),
                TokenKind::Sym(Sym::NotEq),
                TokenKind::Sym(Sym::Eq),
                TokenKind::Sym(Sym::Lt),
                TokenKind::Sym(Sym::Gt),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("1 -- this is a comment\n2"),
            vec![TokenKind::Int(1), TokenKind::Int(2), TokenKind::Eof]
        );
    }

    #[test]
    fn idents_and_quoted_idents() {
        assert_eq!(
            kinds("foo \"Group\""),
            vec![
                TokenKind::Ident("foo".into()),
                TokenKind::Ident("Group".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("'abc").is_err());
    }

    #[test]
    fn bad_char_errors_with_position() {
        let e = lex("a @ b").unwrap_err();
        assert_eq!(e.position, 2);
    }
}
