//! Materialized query results.

use std::fmt;

use nodb_rawcsv::Datum;

/// A fully materialized result set.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Output column names.
    pub columns: Vec<String>,
    /// Rows in output order.
    pub rows: Vec<Vec<Datum>>,
}

impl QueryResult {
    /// Empty result with the given column names.
    pub fn empty(columns: Vec<String>) -> Self {
        QueryResult {
            columns,
            rows: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were produced.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// First value of the first row — handy for scalar aggregates in tests.
    pub fn scalar(&self) -> Option<&Datum> {
        self.rows.first().and_then(|r| r.first())
    }
}

impl fmt::Display for QueryResult {
    /// Render as an aligned text table (the demo's result panel).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                r.iter()
                    .enumerate()
                    .map(|(i, d)| {
                        let s = d.to_string();
                        if i < widths.len() {
                            widths[i] = widths[i].max(s.len());
                        }
                        s
                    })
                    .collect()
            })
            .collect();
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{c:<w$}", w = widths[i])?;
        }
        writeln!(f)?;
        for (i, _) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, "-+-")?;
            }
            write!(f, "{}", "-".repeat(widths[i]))?;
        }
        writeln!(f)?;
        for row in &rendered {
            for (i, v) in row.iter().enumerate() {
                if i > 0 {
                    write!(f, " | ")?;
                }
                write!(f, "{v:<w$}", w = widths.get(i).copied().unwrap_or(0))?;
            }
            writeln!(f)?;
        }
        write!(
            f,
            "({} row{})",
            self.rows.len(),
            if self.rows.len() == 1 { "" } else { "s" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_aligns_columns() {
        let r = QueryResult {
            columns: vec!["id".into(), "name".into()],
            rows: vec![
                vec![Datum::Int(1), Datum::from("alice")],
                vec![Datum::Int(100), Datum::from("bob")],
            ],
        };
        let s = r.to_string();
        assert!(s.contains("id  | name"));
        assert!(s.contains("(2 rows)"));
    }

    #[test]
    fn scalar_reads_first_cell() {
        let r = QueryResult {
            columns: vec!["n".into()],
            rows: vec![vec![Datum::Int(7)]],
        };
        assert_eq!(r.scalar(), Some(&Datum::Int(7)));
        assert_eq!(QueryResult::empty(vec!["n".into()]).scalar(), None);
    }
}
