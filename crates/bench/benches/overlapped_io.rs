//! Overlapped-I/O benchmark — the read-ahead layer's acceptance measurement
//! (ISSUE 4).
//!
//! Cold full-file scans at equal thread counts — a fresh registration per
//! iteration so nothing is reusable, *and* the file evicted from the OS
//! page cache before every iteration so each block read pays real disk
//! latency (`workload::evict_from_page_cache`) — sweeping
//! `io_readahead_blocks` over {0, 2, 8}:
//!
//! * `overlapped_io_ra0` — synchronous reads (`SyncBlocks`): every block
//!   read stalls the tokenizer.
//! * `overlapped_io_ra2` — the default double-buffered prefetch
//!   (`ReadaheadBlocks`): the helper thread fills the next block while the
//!   scan thread tokenizes the current one.
//! * `overlapped_io_ra8` — deeper pipeline, for the diminishing-returns
//!   curve.
//!
//! Each record carries the new `stall_ms` column — mean I/O stall per
//! iteration (`IoCounters::stall`, via `QueryReport.io`) — so the
//! trajectory shows not just that read-ahead wins but *why*: bytes and
//! read calls stay put while the time spent waiting on disk collapses.
//!
//! Acceptance: readahead ≥ 2 beats readahead 0 at equal threads, and the
//! stall column shrinks. Records land in `BENCH_overlapped_io.json`
//! (merged by configuration key) and feed the CI perf gate.
//! `NODB_BENCH_ROWS` overrides the row count.

use std::cell::RefCell;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use nodb_bench::report::{update_bench_json, BenchRecord};
use nodb_bench::workload::{evict_from_page_cache, scratch_dir};
use nodb_core::{NoDb, NoDbConfig};
use nodb_rawcsv::{GeneratorConfig, Schema};

const COLS: usize = 8;
/// Scan workers for the sweep. The readahead-vs-sync comparison is
/// *per-scanner* (each worker owns a private pipeline), so one worker
/// measures it cleanest: every extra worker brings its own helper thread,
/// and on hosts with few cores that oversubscription measures the
/// scheduler, not the I/O backend (thread *scaling* has its own bench,
/// `parallel_scan`). Raise this on a many-core host to see the per-worker
/// pipelines stack.
const THREADS: [usize; 1] = [1];
const READAHEAD: [usize; 3] = [0, 2, 8];

fn rows() -> u64 {
    std::env::var("NODB_BENCH_ROWS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000)
}

/// Pure-scan configuration: adaptive structures off, so every iteration is
/// the same cold tokenize-and-parse pass and the only variable is how its
/// blocks arrive.
fn config(threads: usize, readahead: usize) -> NoDbConfig {
    NoDbConfig {
        enable_positional_map: false,
        enable_cache: false,
        enable_stats: false,
        detailed_timing: false,
        detect_updates: false,
        scan_threads: threads,
        io_readahead_blocks: readahead,
        ..NoDbConfig::default()
    }
}

fn fresh_db(path: &PathBuf, schema: &Schema, cfg: NoDbConfig) -> NoDb {
    let mut db = NoDb::new(cfg);
    db.register_csv_with_schema("t", path, schema.clone(), false)
        .unwrap();
    db
}

fn bench_overlapped_io(c: &mut Criterion) {
    let rows = rows();
    let dir = scratch_dir("bench_overlapped_io");
    let gen = GeneratorConfig::uniform_ints(COLS, rows, 0x0A11);
    let mut path = dir.clone();
    path.push("data.csv");
    gen.generate_file(&path).expect("generate dataset");
    let schema = gen.schema();
    let sql = "SELECT c1, c5 FROM t WHERE c5 < 300000000";

    let expect = fresh_db(&path, &schema, config(1, 0))
        .query(sql)
        .unwrap()
        .len();

    let mut group = c.benchmark_group(format!("overlapped_io_{rows}_rows"));
    group.sample_size(10);
    let samples: RefCell<Vec<BenchRecord>> = RefCell::new(Vec::new());
    for threads in THREADS {
        for readahead in READAHEAD {
            let name = format!("overlapped_io_ra{readahead}");
            let durations = RefCell::new(Vec::new());
            let stalls = RefCell::new(Vec::new());
            group.bench_function(format!("{name}_threads_{threads}"), |b| {
                b.iter_batched(
                    || {
                        // Cold means cold: drop the file from the page
                        // cache so every iteration pays real disk latency
                        // (best-effort; see `evict_from_page_cache`).
                        evict_from_page_cache(&path);
                        fresh_db(&path, &schema, config(threads, readahead))
                    },
                    |db| {
                        let t = Instant::now();
                        let r = db.query(sql).unwrap();
                        durations.borrow_mut().push(t.elapsed());
                        let report = db.admin().last_report().expect("query just ran");
                        stalls.borrow_mut().push(report.io.stall);
                        assert_eq!(
                            r.len(),
                            expect,
                            "{name} threads={threads} changed the answer"
                        );
                        black_box(r.len())
                    },
                    BatchSize::LargeInput,
                )
            });
            samples.borrow_mut().push(
                BenchRecord::from_samples(&name, threads, rows, &durations.borrow())
                    .with_stall(&stalls.borrow()),
            );
        }
    }
    group.finish();

    let records = samples.into_inner();
    let mut out = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    out.pop(); // crates/
    out.pop(); // workspace root
    out.push("BENCH_overlapped_io.json");
    update_bench_json(&out, &records).expect("write BENCH_overlapped_io.json");
    for threads in THREADS {
        let at = |ra: usize| {
            records
                .iter()
                .find(|r| r.name == format!("overlapped_io_ra{ra}") && r.scan_threads == threads)
                .map(|r| (r.mean_ms, r.stall_ms))
                .unwrap_or((f64::NAN, f64::NAN))
        };
        let ((m0, s0), (m2, s2), (m8, s8)) = (at(0), at(2), at(8));
        println!(
            "threads={threads:<2} ra0 {m0:>9.2} ms (stall {s0:>8.2})  ra2 {m2:>9.2} ms \
             (stall {s2:>8.2})  ra8 {m8:>9.2} ms (stall {s8:>8.2})  (ra2 speedup {:.2}x)",
            m0 / m2
        );
    }
    println!("wrote {}", out.display());

    std::fs::remove_dir_all(dir).ok();
}

criterion_group!(benches, bench_overlapped_io);
criterion_main!(benches);
