//! The sidecar binary format: encode and paranoid decode.
//!
//! Layout (all integers little-endian; see `README.md` for the rationale):
//!
//! ```text
//! [0..8)        magic            "NODBSNP1"
//! [8..12)       version          u32 (FORMAT_VERSION)
//! [12..16)      header_len       u32 (bytes of header payload H)
//! [16..16+H)    header payload   fingerprint + row count + section count
//! [..+8)        header checksum  checksum64 over bytes [8, 16+H)
//! then          section_count ×  { tag u32, payload_len u64,
//!                                  payload checksum u64, payload }
//! ```
//!
//! The decoder trusts nothing: every length is bounds-checked before any
//! allocation, every section checksum is verified before its payload is
//! parsed, the three sections must each appear exactly once, and trailing
//! bytes after the last section are an error. Any failure surfaces as a
//! [`SnapshotError`] and the caller degrades the table to cold.

use std::time::{Duration, UNIX_EPOCH};

use nodb_posmap::chunk::ChunkBuilder;
use nodb_posmap::PositionalMap;
use nodb_rawcache::column::NullMask;
use nodb_rawcache::{RawCache, TypedColumn};
use nodb_rawcsv::reader::RawFileMeta;
use nodb_rawcsv::{ColumnType, Datum};
use nodb_stats::{AttrStatsState, ReservoirState, TableStats, TableStatsState};

/// Sidecar magic: identifies the file family (the trailing `1` is part of
/// the brand, not the version — that lives in the next field).
pub const MAGIC: [u8; 8] = *b"NODBSNP1";

/// Current format version. Bump on any layout change; the loader refuses
/// every other version (degrade to cold, never guess).
pub const FORMAT_VERSION: u32 = 1;

const SECTION_POSMAP: u32 = 1;
const SECTION_CACHE: u32 = 2;
const SECTION_STATS: u32 = 3;

/// The sidecar's content checksum: a word-at-a-time 64-bit mix.
///
/// Not cryptographic — it guards against truncation, bit rot and torn
/// writes, not adversaries (anyone who can rewrite the sidecar can rewrite
/// its checksums too). Each step is bijective in the input word (xor, then
/// multiply by an odd constant, then rotate), so *any* corruption confined
/// to one 8-byte word provably changes the sum; the length is folded into
/// the seed so same-prefix inputs of different lengths differ too.
/// Processing 8 bytes per step keeps validating a multi-megabyte sidecar
/// around a millisecond where a byte-serial hash costs ~8× that — the
/// difference between a warm restart and a noticeably stalled one.
pub fn checksum64(bytes: &[u8]) -> u64 {
    const K: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut h = 0x5851_F42D_4C95_7F2D_u64 ^ (bytes.len() as u64);
    let mut words = bytes.chunks_exact(8);
    for w in &mut words {
        h = (h ^ u64::from_le_bytes(arr8(w)))
            .wrapping_mul(K)
            .rotate_left(27);
    }
    let rem = words.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h = (h ^ u64::from_le_bytes(tail))
            .wrapping_mul(K)
            .rotate_left(27);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^ (h >> 29)
}

/// Why a sidecar could not be used. Every variant means the same thing to
/// the caller — start cold — but the distinction feeds telemetry and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Reading the sidecar failed at the I/O layer.
    Io(String),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file is from a different format version.
    VersionSkew {
        /// The version recorded in the file.
        found: u32,
    },
    /// The file ends before a declared length (torn write / truncation).
    Truncated,
    /// A checksum did not match its bytes (bit flip / torn write).
    ChecksumMismatch {
        /// Which region failed: `"header"` or a section name.
        section: &'static str,
    },
    /// Structurally invalid content inside checksummed bytes.
    Malformed(&'static str),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(msg) => write!(f, "snapshot I/O: {msg}"),
            SnapshotError::BadMagic => write!(f, "snapshot magic mismatch"),
            SnapshotError::VersionSkew { found } => {
                write!(f, "snapshot version {found} != supported {FORMAT_VERSION}")
            }
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::ChecksumMismatch { section } => {
                write!(f, "snapshot checksum mismatch in {section}")
            }
            SnapshotError::Malformed(what) => write!(f, "snapshot malformed: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

type Result<T> = std::result::Result<T, SnapshotError>;

/// One positional-map chunk in serializable form: sorted attrs plus one raw
/// `u16` offset column per attr (sentinels included).
#[derive(Debug, Clone)]
pub struct ChunkState {
    /// Sorted attribute indices.
    pub attrs: Vec<usize>,
    /// `cols[i][row]` = raw offset of `attrs[i]` in tuple `row`.
    pub cols: Vec<Vec<u16>>,
}

/// The positional map's full serializable state.
#[derive(Debug, Clone, Default)]
pub struct PosMapState {
    /// Row-start offsets, in row order.
    pub row_starts: Vec<u64>,
    /// Whether the row index covered the whole file at capture time.
    pub complete: bool,
    /// The line-count memo's `(offset, lines_before)` entries.
    pub line_counts: Vec<(u64, u64)>,
    /// Installed chunks.
    pub chunks: Vec<ChunkState>,
}

impl PosMapState {
    /// Capture a map's state through its read accessors.
    pub fn capture(map: &PositionalMap) -> PosMapState {
        PosMapState {
            row_starts: map.row_index().starts().to_vec(),
            complete: map.row_index().is_complete(),
            line_counts: map.line_counts().entries().to_vec(),
            chunks: map
                .chunks()
                .iter()
                .map(|c| ChunkState {
                    attrs: c.attrs().to_vec(),
                    cols: (0..c.attrs().len())
                        .map(|i| c.raw_col(i).to_vec())
                        .collect(),
                })
                .collect(),
        }
    }

    /// Replay this state into a fresh map. Chunks go through the map's
    /// normal install path (subsumption, budget admission, fresh ids), so a
    /// smaller budget on the restored side simply keeps fewer chunks —
    /// never wrong positions. Malformed chunk shapes are skipped.
    pub fn install_into(self, map: &mut PositionalMap) {
        map.row_index_mut().note_rows(0, &self.row_starts);
        if self.complete {
            map.row_index_mut().mark_complete();
        }
        for (offset, lines) in self.line_counts {
            map.line_counts_mut().note(offset, lines);
        }
        for chunk in self.chunks {
            if let Some(builder) = ChunkBuilder::from_raw_cols(chunk.attrs, chunk.cols) {
                map.install(builder);
            }
        }
    }
}

/// Everything one table persists: the fingerprint the state is keyed by,
/// plus the three adaptive-state sections.
#[derive(Debug)]
pub struct TableSnapshot {
    /// Fingerprint of the raw file at capture time; the loader compares it
    /// against the live file and invalidates on any regression.
    pub meta: RawFileMeta,
    /// The table's exact row count, when a complete scan had established it.
    pub row_count: Option<u64>,
    /// Positional-map state.
    pub map: PosMapState,
    /// Cached typed columns, keyed by attribute.
    pub columns: Vec<(usize, TypedColumn)>,
    /// Statistics registry state.
    pub stats: TableStatsState,
}

impl TableSnapshot {
    /// Capture a consistent snapshot of one table's adaptive state (the
    /// caller holds whatever lock makes the three structures mutually
    /// consistent).
    pub fn capture(
        meta: RawFileMeta,
        row_count: Option<u64>,
        map: &PositionalMap,
        cache: &RawCache,
        stats: &TableStats,
    ) -> TableSnapshot {
        let columns = cache
            .resident()
            .into_iter()
            .filter_map(|(attr, rows)| cache.column(attr).map(|c| (attr, c.export_range(0, rows))))
            .collect();
        TableSnapshot {
            meta,
            row_count,
            map: PosMapState::capture(map),
            columns,
            stats: stats.export_state(),
        }
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }
    fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
    fn put_len(&mut self, v: usize) {
        self.put_u64(v as u64); // widening on all supported targets
    }
    fn put_str(&mut self, s: &str) {
        self.put_len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn put_datum(&mut self, d: &Datum) {
        match d {
            Datum::Null => self.put_u8(0),
            Datum::Int(v) => {
                self.put_u8(1);
                self.put_i64(*v);
            }
            Datum::Float(v) => {
                self.put_u8(2);
                self.put_f64(*v);
            }
            Datum::Str(s) => {
                self.put_u8(3);
                self.put_str(s);
            }
            Datum::Bool(b) => {
                self.put_u8(4);
                self.put_bool(*b);
            }
        }
    }
    fn put_opt_datum(&mut self, d: Option<&Datum>) {
        match d {
            Some(d) => {
                self.put_u8(1);
                self.put_datum(d);
            }
            None => self.put_u8(0),
        }
    }
}

fn encode_posmap(map: &PosMapState) -> Vec<u8> {
    let mut e = Enc { buf: Vec::new() };
    e.put_len(map.row_starts.len());
    for &s in &map.row_starts {
        e.put_u64(s);
    }
    e.put_bool(map.complete);
    e.put_len(map.line_counts.len());
    for &(off, lines) in &map.line_counts {
        e.put_u64(off);
        e.put_u64(lines);
    }
    e.put_len(map.chunks.len());
    for chunk in &map.chunks {
        e.put_len(chunk.attrs.len());
        for &a in &chunk.attrs {
            e.put_u64(a as u64); // widening
        }
        let rows = chunk.cols.first().map_or(0, Vec::len);
        e.put_len(rows);
        for col in &chunk.cols {
            for &v in col {
                e.put_u16(v);
            }
        }
    }
    e.buf
}

fn encode_cache(columns: &[(usize, TypedColumn)]) -> Vec<u8> {
    let mut e = Enc { buf: Vec::new() };
    e.put_len(columns.len());
    for (attr, col) in columns {
        e.put_u64(*attr as u64); // widening
        let rows = col.len();
        match col {
            TypedColumn::Int { values, nulls } => {
                e.put_u8(0);
                e.put_len(rows);
                put_null_bits(&mut e, nulls, rows);
                for &v in values {
                    e.put_i64(v);
                }
            }
            TypedColumn::Float { values, nulls } => {
                e.put_u8(1);
                e.put_len(rows);
                put_null_bits(&mut e, nulls, rows);
                for &v in values {
                    e.put_f64(v);
                }
            }
            TypedColumn::Bool { values, nulls } => {
                e.put_u8(2);
                e.put_len(rows);
                put_null_bits(&mut e, nulls, rows);
                for &v in values {
                    e.put_bool(v);
                }
            }
            TypedColumn::Str {
                values,
                nulls,
                str_bytes: _,
            } => {
                e.put_u8(3);
                e.put_len(rows);
                put_null_bits(&mut e, nulls, rows);
                for v in values {
                    e.put_str(v);
                }
            }
        }
    }
    e.buf
}

/// Pack `rows` validity bits, LSB-first within each byte.
fn put_null_bits(e: &mut Enc, nulls: &NullMask, rows: usize) {
    let mut byte = 0u8;
    for i in 0..rows {
        if nulls.is_null(i) {
            byte |= 1 << (i % 8);
        }
        if i % 8 == 7 {
            e.put_u8(byte);
            byte = 0;
        }
    }
    if !rows.is_multiple_of(8) {
        e.put_u8(byte);
    }
}

fn encode_stats(stats: &TableStatsState) -> Vec<u8> {
    let mut e = Enc { buf: Vec::new() };
    e.put_u64(stats.sample_every);
    match stats.row_count {
        Some(n) => {
            e.put_u8(1);
            e.put_u64(n);
        }
        None => {
            e.put_u8(0);
            e.put_u64(0);
        }
    }
    e.put_len(stats.observed.len());
    for &(attr, frontier) in &stats.observed {
        e.put_u64(attr as u64); // widening
        e.put_u64(frontier);
    }
    e.put_len(stats.attrs.len());
    for a in &stats.attrs {
        e.put_u64(a.attr as u64); // widening
        e.put_u64(a.rows_seen);
        e.put_u64(a.nulls);
        e.put_opt_datum(a.min.as_ref());
        e.put_opt_datum(a.max.as_ref());
        e.put_len(a.reservoir.capacity);
        e.put_u64(a.reservoir.seen);
        for &w in &a.reservoir.rng {
            e.put_u64(w);
        }
        e.put_len(a.reservoir.sample.len());
        for d in &a.reservoir.sample {
            e.put_datum(d);
        }
        e.put_len(a.ndv_words.len());
        for &w in &a.ndv_words {
            e.put_u64(w);
        }
    }
    e.buf
}

/// Serialize a snapshot to sidecar bytes.
pub fn encode_snapshot(snap: &TableSnapshot) -> Vec<u8> {
    // Header payload: fingerprint, row count, section count.
    let mut h = Enc { buf: Vec::new() };
    h.put_u64(snap.meta.len);
    match snap
        .meta
        .modified
        .and_then(|t| t.duration_since(UNIX_EPOCH).ok())
    {
        Some(d) => {
            h.put_u8(1);
            h.put_u64(d.as_secs());
            h.put_u32(d.subsec_nanos());
        }
        None => {
            h.put_u8(0);
            h.put_u64(0);
            h.put_u32(0);
        }
    }
    h.put_u64(snap.meta.head_len);
    h.put_u64(snap.meta.head_hash);
    match snap.row_count {
        Some(n) => {
            h.put_u8(1);
            h.put_u64(n);
        }
        None => {
            h.put_u8(0);
            h.put_u64(0);
        }
    }
    h.put_u32(3); // section count

    let mut out = Enc { buf: Vec::new() };
    out.buf.extend_from_slice(&MAGIC);
    out.put_u32(FORMAT_VERSION);
    out.put_u32(h.buf.len() as u32); // lint: cast-ok header payload is a few dozen bytes
    out.buf.extend_from_slice(&h.buf);
    let header_checksum = checksum64(&out.buf[MAGIC.len()..]);
    out.put_u64(header_checksum);

    for (tag, payload) in [
        (SECTION_POSMAP, encode_posmap(&snap.map)),
        (SECTION_CACHE, encode_cache(&snap.columns)),
        (SECTION_STATS, encode_stats(&snap.stats)),
    ] {
        out.put_u32(tag);
        out.put_len(payload.len());
        out.put_u64(checksum64(&payload));
        out.buf.extend_from_slice(&payload);
    }
    out.buf
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if n > self.remaining() {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Malformed("bool out of range")),
        }
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(arr4(self.take(4)?)))
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(arr8(self.take(8)?)))
    }
    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(arr8(self.take(8)?)))
    }
    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }
    /// A length prefix, rejected outright when it exceeds the bytes that
    /// could possibly follow — so a corrupt length can never drive a huge
    /// allocation.
    fn len(&mut self) -> Result<usize> {
        let v = self.u64()?;
        let v = usize::try_from(v).map_err(|_| SnapshotError::Malformed("length exceeds usize"))?;
        if v > self.remaining() {
            return Err(SnapshotError::Truncated);
        }
        Ok(v)
    }
    fn usize64(&mut self) -> Result<usize> {
        usize::try_from(self.u64()?).map_err(|_| SnapshotError::Malformed("index exceeds usize"))
    }
    fn str(&mut self) -> Result<Box<str>> {
        let n = self.len()?;
        let bytes = self.take(n)?;
        match std::str::from_utf8(bytes) {
            Ok(s) => Ok(s.into()),
            Err(_) => Err(SnapshotError::Malformed("string not UTF-8")),
        }
    }
    fn datum(&mut self) -> Result<Datum> {
        match self.u8()? {
            0 => Ok(Datum::Null),
            1 => Ok(Datum::Int(self.i64()?)),
            2 => Ok(Datum::Float(self.f64()?)),
            3 => Ok(Datum::Str(self.str()?)),
            4 => Ok(Datum::Bool(self.bool()?)),
            _ => Err(SnapshotError::Malformed("unknown datum tag")),
        }
    }
    fn opt_datum(&mut self) -> Result<Option<Datum>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.datum()?)),
            _ => Err(SnapshotError::Malformed("option tag out of range")),
        }
    }
    fn done(&self) -> Result<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapshotError::Malformed("trailing bytes"))
        }
    }
}

fn arr2(s: &[u8]) -> [u8; 2] {
    let mut a = [0u8; 2];
    a.copy_from_slice(s);
    a
}
fn arr4(s: &[u8]) -> [u8; 4] {
    let mut a = [0u8; 4];
    a.copy_from_slice(s);
    a
}
fn arr8(s: &[u8]) -> [u8; 8] {
    let mut a = [0u8; 8];
    a.copy_from_slice(s);
    a
}

fn decode_posmap(payload: &[u8]) -> Result<PosMapState> {
    let mut d = Dec::new(payload);
    let n_rows = d.len()?;
    let row_bytes = n_rows
        .checked_mul(8)
        .ok_or(SnapshotError::Malformed("row count overflow"))?;
    let mut row_starts = Vec::with_capacity(row_bytes.min(d.remaining()) / 8);
    for chunk in d.take(row_bytes)?.chunks_exact(8) {
        row_starts.push(u64::from_le_bytes(arr8(chunk)));
    }
    // Row starts must be strictly increasing: a map replaying a
    // non-monotone index would hand out wrong line offsets.
    if row_starts.windows(2).any(|w| w[0] >= w[1]) {
        return Err(SnapshotError::Malformed("row starts not increasing"));
    }
    let complete = d.bool()?;
    let n_counts = d.len()?;
    let mut line_counts = Vec::with_capacity(n_counts.min(d.remaining() / 16));
    for _ in 0..n_counts {
        let off = d.u64()?;
        let lines = d.u64()?;
        line_counts.push((off, lines));
    }
    let n_chunks = d.len()?;
    let mut chunks = Vec::with_capacity(n_chunks.min(d.remaining()));
    for _ in 0..n_chunks {
        let n_attrs = d.len()?;
        let mut attrs = Vec::with_capacity(n_attrs.min(d.remaining() / 8));
        for _ in 0..n_attrs {
            attrs.push(d.usize64()?);
        }
        let rows = d.len()?;
        let col_bytes = rows
            .checked_mul(2)
            .ok_or(SnapshotError::Malformed("chunk rows overflow"))?;
        let mut cols = Vec::with_capacity(n_attrs);
        for _ in 0..n_attrs {
            let mut col = Vec::with_capacity(rows);
            for pair in d.take(col_bytes)?.chunks_exact(2) {
                col.push(u16::from_le_bytes(arr2(pair)));
            }
            cols.push(col);
        }
        chunks.push(ChunkState { attrs, cols });
    }
    d.done()?;
    Ok(PosMapState {
        row_starts,
        complete,
        line_counts,
        chunks,
    })
}

fn decode_cache(payload: &[u8]) -> Result<Vec<(usize, TypedColumn)>> {
    let mut d = Dec::new(payload);
    let n_cols = d.len()?;
    let mut columns = Vec::with_capacity(n_cols.min(d.remaining()));
    for _ in 0..n_cols {
        let attr = d.usize64()?;
        let ty = match d.u8()? {
            0 => ColumnType::Int,
            1 => ColumnType::Float,
            2 => ColumnType::Bool,
            3 => ColumnType::Str,
            _ => return Err(SnapshotError::Malformed("unknown column type tag")),
        };
        let rows = d.len()?;
        let nulls = take_null_bits(&mut d, rows)?;
        let col = match ty {
            ColumnType::Int => {
                let bytes = rows
                    .checked_mul(8)
                    .ok_or(SnapshotError::Malformed("column rows overflow"))?;
                let mut values = Vec::with_capacity(rows);
                for c in d.take(bytes)?.chunks_exact(8) {
                    values.push(i64::from_le_bytes(arr8(c)));
                }
                TypedColumn::Int { values, nulls }
            }
            ColumnType::Float => {
                let bytes = rows
                    .checked_mul(8)
                    .ok_or(SnapshotError::Malformed("column rows overflow"))?;
                let mut values = Vec::with_capacity(rows);
                for c in d.take(bytes)?.chunks_exact(8) {
                    values.push(f64::from_bits(u64::from_le_bytes(arr8(c))));
                }
                TypedColumn::Float { values, nulls }
            }
            ColumnType::Bool => {
                let mut values = Vec::with_capacity(rows);
                for &b in d.take(rows)? {
                    match b {
                        0 => values.push(false),
                        1 => values.push(true),
                        _ => return Err(SnapshotError::Malformed("bool value out of range")),
                    }
                }
                TypedColumn::Bool { values, nulls }
            }
            ColumnType::Str => {
                let mut values: Vec<Box<str>> = Vec::with_capacity(rows.min(d.remaining()));
                let mut str_bytes = 0usize;
                for _ in 0..rows {
                    let s = d.str()?;
                    str_bytes += s.len();
                    values.push(s);
                }
                TypedColumn::Str {
                    values,
                    str_bytes,
                    nulls,
                }
            }
        };
        columns.push((attr, col));
    }
    d.done()?;
    Ok(columns)
}

/// Unpack `rows` validity bits written by `put_null_bits`.
fn take_null_bits(d: &mut Dec<'_>, rows: usize) -> Result<NullMask> {
    let n_bytes = rows.div_ceil(8);
    let bytes = d.take(n_bytes)?;
    let mut mask = NullMask::default();
    for i in 0..rows {
        mask.push(bytes[i / 8] & (1 << (i % 8)) != 0);
    }
    Ok(mask)
}

fn decode_stats(payload: &[u8]) -> Result<TableStatsState> {
    let mut d = Dec::new(payload);
    let sample_every = d.u64()?;
    let rc_present = d.bool()?;
    let rc = d.u64()?;
    let row_count = rc_present.then_some(rc);
    let n_obs = d.len()?;
    let mut observed = Vec::with_capacity(n_obs.min(d.remaining() / 16));
    for _ in 0..n_obs {
        let attr = d.usize64()?;
        let frontier = d.u64()?;
        observed.push((attr, frontier));
    }
    let n_attrs = d.len()?;
    let mut attrs = Vec::with_capacity(n_attrs.min(d.remaining()));
    for _ in 0..n_attrs {
        let attr = d.usize64()?;
        let rows_seen = d.u64()?;
        let nulls = d.u64()?;
        let min = d.opt_datum()?;
        let max = d.opt_datum()?;
        let capacity = d.usize64()?;
        let seen = d.u64()?;
        let rng = [d.u64()?, d.u64()?, d.u64()?, d.u64()?];
        let n_sample = d.len()?;
        let mut sample = Vec::with_capacity(n_sample.min(d.remaining()));
        for _ in 0..n_sample {
            sample.push(d.datum()?);
        }
        let n_words = d.len()?;
        let word_bytes = n_words
            .checked_mul(8)
            .ok_or(SnapshotError::Malformed("ndv words overflow"))?;
        let mut ndv_words = Vec::with_capacity(n_words.min(d.remaining() / 8));
        for c in d.take(word_bytes)?.chunks_exact(8) {
            ndv_words.push(u64::from_le_bytes(arr8(c)));
        }
        attrs.push(AttrStatsState {
            attr,
            rows_seen,
            nulls,
            min,
            max,
            reservoir: ReservoirState {
                sample,
                capacity,
                seen,
                rng,
            },
            ndv_words,
        });
    }
    d.done()?;
    Ok(TableStatsState {
        attrs,
        observed,
        row_count,
        sample_every,
    })
}

/// Parse and validate sidecar bytes into a [`TableSnapshot`].
pub fn decode_snapshot(bytes: &[u8]) -> Result<TableSnapshot> {
    let mut d = Dec::new(bytes);
    if d.take(MAGIC.len())? != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = d.u32()?;
    if version != FORMAT_VERSION {
        return Err(SnapshotError::VersionSkew { found: version });
    }
    let header_len: usize = d
        .u32()?
        .try_into()
        .map_err(|_| SnapshotError::Malformed("header length exceeds usize"))?;
    if header_len > d.remaining() {
        return Err(SnapshotError::Truncated);
    }
    let header_end = d.pos + header_len;
    // Verify the header checksum before trusting any header field beyond
    // the version (which had to be read to know the layout).
    {
        let mut peek = Dec::new(bytes);
        let _ = peek.take(header_end)?;
        let declared = peek.u64()?;
        if checksum64(&bytes[MAGIC.len()..header_end]) != declared {
            return Err(SnapshotError::ChecksumMismatch { section: "header" });
        }
    }
    let file_len = d.u64()?;
    let mod_present = d.bool()?;
    let mod_secs = d.u64()?;
    let mod_nanos = d.u32()?;
    let modified = mod_present.then(|| UNIX_EPOCH + Duration::new(mod_secs, mod_nanos));
    let head_len = d.u64()?;
    let head_hash = d.u64()?;
    let rc_present = d.bool()?;
    let rc = d.u64()?;
    let row_count = rc_present.then_some(rc);
    let section_count = d.u32()?;
    if d.pos != header_end {
        return Err(SnapshotError::Malformed("header length mismatch"));
    }
    let _checksum = d.u64()?; // verified above
    if section_count != 3 {
        return Err(SnapshotError::Malformed("unexpected section count"));
    }

    let mut map: Option<PosMapState> = None;
    let mut columns: Option<Vec<(usize, TypedColumn)>> = None;
    let mut stats: Option<TableStatsState> = None;
    for _ in 0..section_count {
        let tag = d.u32()?;
        let payload_len = d.len()?;
        let declared = d.u64()?;
        let payload = d.take(payload_len)?;
        let section_name = match tag {
            SECTION_POSMAP => "posmap",
            SECTION_CACHE => "cache",
            SECTION_STATS => "stats",
            _ => return Err(SnapshotError::Malformed("unknown section tag")),
        };
        if checksum64(payload) != declared {
            return Err(SnapshotError::ChecksumMismatch {
                section: section_name,
            });
        }
        match tag {
            SECTION_POSMAP if map.is_none() => map = Some(decode_posmap(payload)?),
            SECTION_CACHE if columns.is_none() => columns = Some(decode_cache(payload)?),
            SECTION_STATS if stats.is_none() => stats = Some(decode_stats(payload)?),
            _ => return Err(SnapshotError::Malformed("duplicate section")),
        }
    }
    d.done()?;
    match (map, columns, stats) {
        (Some(map), Some(columns), Some(stats)) => Ok(TableSnapshot {
            meta: RawFileMeta {
                len: file_len,
                modified,
                head_len,
                head_hash,
            },
            row_count,
            map,
            columns,
            stats,
        }),
        _ => Err(SnapshotError::Malformed("missing section")),
    }
}
