//! Per-query execution context: deadline + cooperative cancellation.
//!
//! A [`QueryCtx`] travels with one query through the whole scan stack —
//! facade, scan orchestration, partition workers, the SWAR pre-count, and
//! (via the shared stop flag) `BlockSource` refills. Cancellation is
//! *cooperative*: nothing is killed, every layer polls [`QueryCtx::check`]
//! at natural boundaries (a refill, a batch, every [`CHECK_STRIDE`] rows)
//! and unwinds with a structured [`EngineError::Cancelled`] /
//! [`EngineError::DeadlineExceeded`]. That cooperative shape is what lets
//! the merge layer still install whatever positional-map / cache /
//! statistics partials completed before the stop — the NoDB "no work is
//! wasted" promise applied to failure paths.
//!
//! The deadline is polled rather than timer-driven: the first observer that
//! notices `Instant::now() >= deadline` trips the shared stop flag, so all
//! sibling workers and prefetch pipelines stop within one check stride of
//! each other without any dedicated timer thread.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use nodb_engine::{EngineError, EngineResult};

/// How many rows a worker processes between [`QueryCtx::check`] polls. At
/// a warm-path rate of millions of rows per second this bounds cancellation
/// latency to well under a millisecond per worker, while keeping the check
/// (one relaxed atomic load + one `Instant` compare) invisible in profiles.
pub const CHECK_STRIDE: u64 = 1024;

/// Deadline + cancellation state for one query.
///
/// Cloning is cheap and shares the underlying flags: every worker, scanner
/// and the caller-held [`CancelToken`] observe (and can trip) the same
/// stop signal.
#[derive(Debug, Clone)]
pub struct QueryCtx {
    /// The shared "stop now" flag: set by [`CancelToken::cancel`] or by the
    /// first observer of an expired deadline.
    stop: Arc<AtomicBool>,
    /// Distinguishes *why* the stop flag is set: `true` when a deadline
    /// expiry tripped it, `false` for an explicit cancel.
    deadline_hit: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl Default for QueryCtx {
    /// An unbounded context: never cancelled, no deadline. Used wherever a
    /// scan runs without a caller-supplied context.
    fn default() -> Self {
        QueryCtx {
            stop: Arc::new(AtomicBool::new(false)),
            deadline_hit: Arc::new(AtomicBool::new(false)),
            deadline: None,
        }
    }
}

impl QueryCtx {
    /// Context with no deadline (cancellable only through its token).
    pub fn unbounded() -> Self {
        QueryCtx::default()
    }

    /// Context that expires `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> Self {
        QueryCtx {
            deadline: Some(Instant::now() + timeout),
            ..QueryCtx::default()
        }
    }

    /// Context from a config-style millisecond knob (`0` = no deadline).
    pub fn from_timeout_ms(timeout_ms: u64) -> Self {
        if timeout_ms == 0 {
            QueryCtx::unbounded()
        } else {
            QueryCtx::with_timeout(Duration::from_millis(timeout_ms))
        }
    }

    /// A token the caller can hold on to (or hand to another thread) to
    /// cancel this query from outside.
    pub fn cancel_token(&self) -> CancelToken {
        CancelToken {
            stop: Arc::clone(&self.stop),
        }
    }

    /// The raw stop flag, for layers below the engine error type: the
    /// rawcsv `BlockSource`s take this through `set_interrupt` and fail
    /// refills once it reads `true`.
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Has the stop flag been tripped (by cancel or a noticed deadline)?
    /// Does not itself poll the clock — use [`Self::check`] on hot paths.
    pub fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    /// Cooperative poll: `Ok(())` to keep going, or the structured error to
    /// unwind with. The first caller to observe an expired deadline trips
    /// the shared flag so every sibling stops within one check stride.
    pub fn check(&self) -> EngineResult<()> {
        if self.stop.load(Ordering::Relaxed) {
            return Err(self.stop_error());
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.deadline_hit.store(true, Ordering::Relaxed);
                self.stop.store(true, Ordering::Relaxed);
                return Err(EngineError::DeadlineExceeded);
            }
        }
        Ok(())
    }

    /// The error this context stops with: [`EngineError::DeadlineExceeded`]
    /// when the deadline tripped the flag, [`EngineError::Cancelled`]
    /// otherwise. Workers report this in place of the I/O error a tripped
    /// interrupt flag surfaces as, so callers always see the structured
    /// cause rather than a wrapped "scan interrupted" read error.
    pub fn stop_error(&self) -> EngineError {
        if self.deadline_hit.load(Ordering::Relaxed) {
            EngineError::DeadlineExceeded
        } else {
            EngineError::Cancelled
        }
    }
}

/// Handle for cancelling a running query from another thread.
#[derive(Debug, Clone)]
pub struct CancelToken {
    stop: Arc<AtomicBool>,
}

impl CancelToken {
    /// Trip the stop flag: the query unwinds with
    /// [`EngineError::Cancelled`] at its next cooperative check.
    pub fn cancel(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_stops() {
        let ctx = QueryCtx::unbounded();
        assert!(ctx.check().is_ok());
        assert!(!ctx.is_stopped());
    }

    #[test]
    fn cancel_token_trips_all_clones() {
        let ctx = QueryCtx::unbounded();
        let clone = ctx.clone();
        ctx.cancel_token().cancel();
        assert!(matches!(clone.check(), Err(EngineError::Cancelled)));
        assert!(clone.stop_flag().load(Ordering::Relaxed));
    }

    #[test]
    fn expired_deadline_reports_deadline_exceeded_everywhere() {
        let ctx = QueryCtx::with_timeout(Duration::from_millis(0));
        let clone = ctx.clone();
        assert!(matches!(ctx.check(), Err(EngineError::DeadlineExceeded)));
        // The sibling sees the tripped flag without polling the clock.
        assert!(clone.is_stopped());
        assert!(matches!(clone.stop_error(), EngineError::DeadlineExceeded));
    }

    #[test]
    fn from_timeout_ms_zero_is_unbounded() {
        let ctx = QueryCtx::from_timeout_ms(0);
        assert!(ctx.deadline.is_none());
        assert!(QueryCtx::from_timeout_ms(5).deadline.is_some());
    }
}
