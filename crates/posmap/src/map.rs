//! The adaptive positional map proper: row index, chunk registry, access
//! planning, LRU bookkeeping.

use crate::chunk::{Chunk, ChunkBuilder, ChunkId};
use crate::policy::MapPolicy;

/// Shared per-file row index: byte offset of the start of every known line.
///
/// Built during the first sequential scan and extended by later scans (and
/// by append resynchronization). All chunks express their positions relative
/// to these line starts.
#[derive(Debug, Default)]
pub struct RowIndex {
    starts: Vec<u64>,
    /// True once a scan has reached end-of-file, i.e. `starts` covers every
    /// tuple currently in the file.
    complete: bool,
}

impl RowIndex {
    /// Number of rows whose start offset is known.
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// True when no rows are known.
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// Whether the index covers the whole file (as of the last scan).
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// Start offset of `row`, if known.
    #[inline]
    pub fn offset(&self, row: usize) -> Option<u64> {
        self.starts.get(row).copied()
    }

    /// Record the start offset of the next row. Rows must arrive in order;
    /// recording an already-known row is a no-op (later queries re-scan the
    /// same prefix).
    #[inline]
    pub fn note_row(&mut self, row: usize, offset: u64) {
        match row.cmp(&self.starts.len()) {
            std::cmp::Ordering::Equal => self.starts.push(offset),
            std::cmp::Ordering::Less => debug_assert_eq!(self.starts[row], offset),
            std::cmp::Ordering::Greater => {
                debug_assert!(
                    false,
                    "row index gap: got row {row}, have {}",
                    self.starts.len()
                )
            }
        }
    }

    /// Record a contiguous run of row starts beginning at `first_row` — the
    /// bulk form of [`Self::note_row`] used when merging the per-partition
    /// offset lists of a parallel scan.
    ///
    /// Rows already known are skipped (replays of a known prefix are no-ops,
    /// with the same debug-time consistency check as `note_row`); rows at
    /// the frontier extend the index. A gap beyond the frontier is a logic
    /// error, as in `note_row`.
    pub fn note_rows(&mut self, first_row: usize, offsets: &[u64]) {
        debug_assert!(
            first_row <= self.starts.len(),
            "row index gap: got run starting at {first_row}, have {}",
            self.starts.len()
        );
        if first_row > self.starts.len() {
            // Release-mode guard: appending across a gap would register the
            // offsets under the wrong row numbers and silently corrupt every
            // later positional-map jump. Dropping the run only loses an
            // optimization, never correctness.
            return;
        }
        let known = self
            .starts
            .len()
            .saturating_sub(first_row)
            .min(offsets.len());
        debug_assert!(
            offsets[..known]
                .iter()
                .zip(&self.starts[first_row..])
                .all(|(a, b)| a == b),
            "row index replay mismatch at rows {first_row}..{}",
            first_row + known
        );
        self.starts.extend_from_slice(&offsets[known..]);
    }

    /// Mark the index as covering the whole file.
    pub fn mark_complete(&mut self) {
        self.complete = true;
    }

    /// Invalidate completeness (file grew); known prefix offsets stay valid.
    pub fn mark_incomplete(&mut self) {
        self.complete = false;
    }

    /// Drop everything (file replaced).
    pub fn clear(&mut self) {
        self.starts.clear();
        self.complete = false;
    }

    /// All known row-start offsets, in row order (the snapshot serializer
    /// reads these wholesale; restore replays them through
    /// [`Self::note_rows`]).
    pub fn starts(&self) -> &[u64] {
        &self.starts
    }

    /// Heap footprint in bytes (reported, not budgeted — see [`MapPolicy`]).
    pub fn footprint(&self) -> usize {
        self.starts.len() * 8
    }
}

/// Memoized newline pre-counts: how many *line starts* precede a given byte
/// offset of the raw file.
///
/// The two-phase cold scan's pre-count pass establishes global row numbers
/// by counting newlines per byte partition. Those counts depend only on the
/// bytes *before* each partition boundary, so they stay valid across
/// queries and are memoized here: a later cold scan that partitions the
/// file at the same boundaries skips the counting pass entirely. Offsets
/// are raw line starts — the header line, when present, is included; the
/// scan layer subtracts it when converting to data rows.
///
/// Lifetime: cleared on file replacement *and* on append. Appended bytes
/// never invalidate a count (they cannot change what precedes an existing
/// offset), but partition boundaries derive from the file length, so an
/// append orphans the whole grid — keeping it would only accumulate dead
/// entries under append-heavy workloads, never produce a hit.
#[derive(Debug, Default, Clone)]
pub struct LineCountMemo {
    /// `(byte_offset, line_starts_before_it)`, sorted by offset.
    entries: Vec<(u64, u64)>,
}

impl LineCountMemo {
    /// Number of line starts strictly before `offset`, if memoized.
    /// Offset 0 is always known (no lines precede the file start).
    pub fn lines_before(&self, offset: u64) -> Option<u64> {
        if offset == 0 {
            return Some(0);
        }
        self.entries
            .binary_search_by_key(&offset, |e| e.0)
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// Memoize `lines` line starts before `offset`. Re-noting a known
    /// offset is a no-op (with a debug-time consistency check).
    pub fn note(&mut self, offset: u64, lines: u64) {
        if offset == 0 {
            return;
        }
        match self.entries.binary_search_by_key(&offset, |e| e.0) {
            Ok(i) => debug_assert_eq!(
                self.entries[i].1, lines,
                "line-count memo mismatch at offset {offset}"
            ),
            Err(i) => self.entries.insert(i, (offset, lines)),
        }
    }

    /// The memoized `(byte_offset, line_starts_before_it)` pairs, sorted by
    /// offset (read by the snapshot serializer; restore replays them
    /// through [`Self::note`]).
    pub fn entries(&self) -> &[(u64, u64)] {
        &self.entries
    }

    /// Number of memoized offsets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Copy of the memo, for lock-free consultation during the scan phase
    /// (the memo itself lives under the table's write lock).
    pub fn snapshot(&self) -> LineCountMemo {
        self.clone()
    }

    /// Drop every memoized count (file replaced).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Heap footprint in bytes (reported, not budgeted, like the row index).
    pub fn footprint(&self) -> usize {
        self.entries.len() * 16
    }
}

/// Where the map says one attribute's bytes can be found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrSource {
    /// A chunk stores this attribute's offset directly.
    Exact {
        /// Index into the map's chunk table.
        chunk: usize,
    },
    /// A chunk stores a *predecessor* attribute; resume tokenizing from it.
    Anchor {
        /// Index into the map's chunk table.
        chunk: usize,
        /// The covered attribute to resume from (`<` the requested one).
        anchor_attr: usize,
    },
    /// Nothing useful: tokenize from the start of the line.
    Scan,
}

/// Result of planning access for one query's attribute set.
///
/// The paper: "PostgresRaw opts to determine first all required positions
/// instead of interleaving parsing with search" — this plan is that
/// pre-computation, made once per query before the scan loop.
#[derive(Debug, Clone)]
pub struct AccessPlan {
    /// `(attribute, source)` pairs, in ascending attribute order.
    pub sources: Vec<(usize, AttrSource)>,
    /// Distinct chunks the *covered* attributes resolve to.
    pub distinct_chunks: usize,
    /// Number of requested attributes with no exact coverage.
    pub uncovered: usize,
    /// Whether the scan should collect this combination into a new chunk
    /// (uncovered attributes always force collection; otherwise the
    /// [`crate::policy::CombinationTrigger`] decides).
    pub should_index: bool,
}

impl AccessPlan {
    /// Source planned for `attr`, if it was part of the request.
    pub fn source_for(&self, attr: usize) -> Option<AttrSource> {
        self.sources
            .iter()
            .find(|(a, _)| *a == attr)
            .map(|&(_, s)| s)
    }
}

/// Counters and gauges exposed to the monitoring panel (Fig 2) and the
/// experiment harness.
#[derive(Debug, Default, Clone)]
pub struct MapMetrics {
    /// Chunks installed over the map's lifetime.
    pub installs: u64,
    /// Chunks evicted by LRU pressure.
    pub evictions: u64,
    /// Chunk installs rejected because a single chunk exceeded the budget.
    pub rejects: u64,
    /// Installs skipped because an existing chunk subsumed the new one.
    pub subsumed: u64,
}

/// The adaptive positional map for one raw file.
#[derive(Debug)]
pub struct PositionalMap {
    row_index: RowIndex,
    line_counts: LineCountMemo,
    chunks: Vec<Chunk>,
    policy: MapPolicy,
    tick: u64,
    next_chunk_id: u64,
    bytes_used: usize,
    metrics: MapMetrics,
}

impl PositionalMap {
    /// Empty map under the given policy.
    pub fn new(policy: MapPolicy) -> Self {
        PositionalMap {
            row_index: RowIndex::default(),
            line_counts: LineCountMemo::default(),
            chunks: Vec::new(),
            policy,
            tick: 0,
            next_chunk_id: 0,
            bytes_used: 0,
            metrics: MapMetrics::default(),
        }
    }

    /// The shared row index.
    pub fn row_index(&self) -> &RowIndex {
        &self.row_index
    }

    /// Mutable access to the row index (used by the scan while streaming).
    pub fn row_index_mut(&mut self) -> &mut RowIndex {
        &mut self.row_index
    }

    /// Memoized newline pre-counts (the two-phase cold scan's row-number
    /// bootstrap).
    pub fn line_counts(&self) -> &LineCountMemo {
        &self.line_counts
    }

    /// Mutable access to the line-count memo (the scan merge installs the
    /// boundary counts a pre-count pass established).
    pub fn line_counts_mut(&mut self) -> &mut LineCountMemo {
        &mut self.line_counts
    }

    /// Policy in force.
    pub fn policy(&self) -> &MapPolicy {
        &self.policy
    }

    /// Replace the byte budget at runtime (the demo's interactive knob).
    /// Shrinking evicts LRU chunks immediately.
    pub fn set_budget(&mut self, budget_bytes: usize) {
        self.policy.budget_bytes = budget_bytes;
        self.evict_to_fit(0);
    }

    /// Installed chunks (monitoring / tests).
    pub fn chunks(&self) -> &[Chunk] {
        &self.chunks
    }

    /// Bytes consumed by chunks (excludes the row index; see policy docs).
    pub fn bytes_used(&self) -> usize {
        self.bytes_used
    }

    /// Lifetime counters.
    pub fn metrics(&self) -> &MapMetrics {
        &self.metrics
    }

    /// Utilization in `[0, 1]` of the chunk budget — the Fig 2 gauge.
    pub fn utilization(&self) -> f64 {
        if self.policy.budget_bytes == 0 {
            return 0.0;
        }
        self.bytes_used as f64 / self.policy.budget_bytes as f64
    }

    /// Number of known rows for which `attr` has an exact position in some
    /// chunk (coverage gauge for the monitoring panel).
    pub fn coverage(&self, attr: usize) -> usize {
        self.chunks
            .iter()
            .filter(|c| c.covers(attr))
            .map(Chunk::rows)
            .max()
            .unwrap_or(0)
    }

    /// Plan access for one query's requested attributes (deduplicated,
    /// any order). Touches the LRU clock of every chunk the plan uses.
    pub fn plan_access(&mut self, attrs: &[usize]) -> AccessPlan {
        self.tick += 1;
        let mut requested: Vec<usize> = attrs.to_vec();
        requested.sort_unstable();
        requested.dedup();

        let mut sources = Vec::with_capacity(requested.len());
        let mut used_chunks: Vec<usize> = Vec::new();
        let mut uncovered = 0usize;

        for &attr in &requested {
            // Prefer exact coverage; among candidates pick the one covering
            // the most rows (ties: most recently used).
            let exact = self
                .chunks
                .iter()
                .enumerate()
                .filter(|(_, c)| c.covers(attr) && c.rows() > 0)
                .max_by_key(|(_, c)| (c.rows(), c.last_used));
            if let Some((idx, _)) = exact {
                sources.push((attr, AttrSource::Exact { chunk: idx }));
                if !used_chunks.contains(&idx) {
                    used_chunks.push(idx);
                }
                continue;
            }
            uncovered += 1;
            // Otherwise the best anchor at or before the attribute.
            let anchor = self
                .chunks
                .iter()
                .enumerate()
                .filter_map(|(i, c)| {
                    (c.rows() > 0)
                        .then(|| c.best_anchor_at_or_before(attr).map(|a| (i, a, c.rows())))
                        .flatten()
                })
                .max_by_key(|&(_, a, rows)| (a, rows));
            match anchor {
                Some((idx, anchor_attr, _)) => {
                    sources.push((
                        attr,
                        AttrSource::Anchor {
                            chunk: idx,
                            anchor_attr,
                        },
                    ));
                    if !used_chunks.contains(&idx) {
                        used_chunks.push(idx);
                    }
                }
                None => sources.push((attr, AttrSource::Scan)),
            }
        }

        // LRU touch for every chunk this plan will read.
        for &idx in &used_chunks {
            self.chunks[idx].last_used = self.tick;
        }

        // Distinct chunks among *exact* resolutions only (the paper's
        // "belong in different chunks" is about where attributes live).
        let mut exact_chunks: Vec<usize> = sources
            .iter()
            .filter_map(|(_, s)| match s {
                AttrSource::Exact { chunk } => Some(*chunk),
                _ => None,
            })
            .collect();
        exact_chunks.sort_unstable();
        exact_chunks.dedup();
        let distinct_chunks = exact_chunks.len();

        let should_index = if uncovered > 0 {
            true
        } else {
            self.policy.trigger.fires(requested.len(), distinct_chunks)
        };

        AccessPlan {
            sources,
            distinct_chunks,
            uncovered,
            should_index,
        }
    }

    /// Offset of `attr` in `row` according to chunk `chunk_idx`
    /// (as referenced by an [`AttrSource`] from the current plan).
    #[inline]
    pub fn offset_in(&self, chunk_idx: usize, attr: usize, row: usize) -> Option<u16> {
        self.chunks.get(chunk_idx)?.offset(attr, row)
    }

    /// Install a finished chunk builder, applying subsumption, LRU eviction
    /// and budget admission. Returns the new chunk's id when installed.
    pub fn install(&mut self, builder: ChunkBuilder) -> Option<ChunkId> {
        if builder.is_empty() {
            return None;
        }
        // Subsumption: an existing chunk with a superset of attributes and
        // at least as many rows makes the new chunk useless.
        let attrs = builder.attrs();
        let rows = builder.rows();
        if self
            .chunks
            .iter()
            .any(|c| c.rows() >= rows && attrs.iter().all(|&a| c.covers(a)))
        {
            self.metrics.subsumed += 1;
            return None;
        }
        // Replacement: drop existing chunks that the new one strictly
        // subsumes (same or subset attrs, fewer-or-equal rows).
        let before = self.chunks.len();
        let new_attrs: Vec<usize> = attrs.to_vec();
        self.chunks.retain(|c| {
            let subsumed = c.rows() <= rows
                && c.attrs()
                    .iter()
                    .all(|&a| new_attrs.binary_search(&a).is_ok());
            !subsumed
        });
        let dropped = before - self.chunks.len();
        if dropped > 0 {
            self.recompute_bytes();
        }

        let fp = builder.footprint();
        if fp > self.policy.budget_bytes {
            self.metrics.rejects += 1;
            return None;
        }
        self.evict_to_fit(fp);

        self.tick += 1;
        let id = ChunkId(self.next_chunk_id);
        self.next_chunk_id += 1;
        let chunk = builder.freeze(id, self.tick);
        self.bytes_used += chunk.footprint();
        self.chunks.push(chunk);
        self.metrics.installs += 1;
        Some(id)
    }

    /// Evict least-recently-used chunks until `incoming` more bytes fit.
    fn evict_to_fit(&mut self, incoming: usize) {
        while self.bytes_used + incoming > self.policy.budget_bytes && !self.chunks.is_empty() {
            let (victim, _) = self
                .chunks
                .iter()
                .enumerate()
                .min_by_key(|(_, c)| c.last_used)
                .expect("non-empty");
            let removed = self.chunks.swap_remove(victim);
            self.bytes_used -= removed.footprint();
            self.metrics.evictions += 1;
        }
    }

    fn recompute_bytes(&mut self) {
        self.bytes_used = self.chunks.iter().map(Chunk::footprint).sum();
    }

    /// Drop all positional state (file replaced).
    pub fn invalidate(&mut self) {
        self.chunks.clear();
        self.row_index.clear();
        self.line_counts.clear();
        self.bytes_used = 0;
    }

    /// File grew: keep all prefix state, but the row index no longer covers
    /// the whole file. The line-count memo is dropped — its entries stay
    /// *correct* (counts depend only on bytes before their offset), but
    /// partition boundaries derive from the file length, so the old grid
    /// can never be probed again and would only accumulate.
    pub fn note_appended(&mut self) {
        self.row_index.mark_incomplete();
        self.line_counts.clear();
    }

    /// Epoch quarantine: the backing file was truncated or rewritten, so
    /// every recorded offset — chunks, the row index, and the line-count
    /// memo — may point at bytes from a different file epoch and must not
    /// be consulted again. Today an alias of [`Self::invalidate`]; the
    /// source-epoch layer calls it under this name so the intent ("the file
    /// mutated under us") stays distinct from administrative resets.
    pub fn quarantine(&mut self) {
        self.invalidate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::CombinationTrigger;
    use nodb_rawcsv::tokenizer::{TokenizerConfig, Tokens};

    fn builder_with_rows(attrs: Vec<usize>, lines: &[&[u8]]) -> ChunkBuilder {
        let cfg = TokenizerConfig::default();
        let mut t = Tokens::new();
        let mut b = ChunkBuilder::new(attrs);
        for line in lines {
            cfg.tokenize_into(line, &mut t);
            b.push_row(&t);
        }
        b
    }

    fn default_map() -> PositionalMap {
        PositionalMap::new(MapPolicy::default())
    }

    #[test]
    fn empty_map_plans_scans() {
        let mut m = default_map();
        let plan = m.plan_access(&[1, 3]);
        assert_eq!(plan.uncovered, 2);
        assert!(plan.should_index);
        assert!(matches!(plan.source_for(1), Some(AttrSource::Scan)));
    }

    #[test]
    fn exact_coverage_preferred() {
        let mut m = default_map();
        m.install(builder_with_rows(vec![1, 3], &[b"a,b,c,d", b"e,f,g,h"]));
        let plan = m.plan_access(&[3]);
        assert_eq!(plan.uncovered, 0);
        assert!(matches!(plan.source_for(3), Some(AttrSource::Exact { .. })));
        assert!(!plan.should_index); // single attr, covered
    }

    #[test]
    fn anchor_used_for_uncovered_attr() {
        let mut m = default_map();
        m.install(builder_with_rows(vec![1], &[b"a,b,c,d"]));
        let plan = m.plan_access(&[3]);
        assert_eq!(plan.uncovered, 1);
        match plan.source_for(3) {
            Some(AttrSource::Anchor { anchor_attr, .. }) => assert_eq!(anchor_attr, 1),
            other => panic!("expected anchor, got {other:?}"),
        }
        assert!(plan.should_index);
    }

    #[test]
    fn best_anchor_across_chunks() {
        let mut m = default_map();
        m.install(builder_with_rows(vec![0], &[b"a,b,c,d,e,f"]));
        m.install(builder_with_rows(vec![3], &[b"a,b,c,d,e,f"]));
        let plan = m.plan_access(&[5]);
        match plan.source_for(5) {
            Some(AttrSource::Anchor { anchor_attr, .. }) => assert_eq!(anchor_attr, 3),
            other => panic!("expected anchor at 3, got {other:?}"),
        }
    }

    #[test]
    fn all_different_chunks_triggers_combination() {
        let mut m = default_map();
        m.install(builder_with_rows(vec![0], &[b"a,b,c"]));
        m.install(builder_with_rows(vec![1], &[b"a,b,c"]));
        let plan = m.plan_access(&[0, 1]);
        assert_eq!(plan.distinct_chunks, 2);
        assert!(plan.should_index, "paper default: all-different triggers");

        // Same chunk: no trigger.
        let mut m2 = default_map();
        m2.install(builder_with_rows(vec![0, 1], &[b"a,b,c"]));
        let plan2 = m2.plan_access(&[0, 1]);
        assert_eq!(plan2.distinct_chunks, 1);
        assert!(!plan2.should_index);
    }

    #[test]
    fn never_trigger_suppresses_combination() {
        let mut m = PositionalMap::new(MapPolicy {
            trigger: CombinationTrigger::Never,
            ..MapPolicy::default()
        });
        m.install(builder_with_rows(vec![0], &[b"a,b"]));
        m.install(builder_with_rows(vec![1], &[b"a,b"]));
        let plan = m.plan_access(&[0, 1]);
        assert!(!plan.should_index);
    }

    #[test]
    fn subsumption_skips_useless_installs() {
        let mut m = default_map();
        m.install(builder_with_rows(vec![0, 1, 2], &[b"a,b,c", b"d,e,f"]));
        let before = m.chunks().len();
        let id = m.install(builder_with_rows(vec![1], &[b"a,b,c"]));
        assert!(id.is_none());
        assert_eq!(m.chunks().len(), before);
        assert_eq!(m.metrics().subsumed, 1);
    }

    #[test]
    fn install_replaces_subsumed_chunks() {
        let mut m = default_map();
        m.install(builder_with_rows(vec![1], &[b"a,b,c"]));
        m.install(builder_with_rows(vec![0, 1], &[b"a,b,c", b"d,e,f"]));
        // The superset chunk replaces the singleton.
        assert_eq!(m.chunks().len(), 1);
        assert_eq!(m.chunks()[0].attrs(), &[0, 1]);
    }

    #[test]
    fn lru_eviction_under_budget() {
        // Budget that fits roughly one 1000-row, 1-attr chunk.
        let one_chunk = {
            let lines: Vec<Vec<u8>> = (0..1000).map(|_| b"aa,bb,cc".to_vec()).collect();
            let refs: Vec<&[u8]> = lines.iter().map(|l| l.as_slice()).collect();
            builder_with_rows(vec![0], &refs).footprint()
        };
        let budget = one_chunk * 2 + 200; // fits two small chunks, not three
        let mut m = PositionalMap::new(MapPolicy::with_budget(budget));

        let lines: Vec<Vec<u8>> = (0..1000).map(|_| b"aa,bb,cc".to_vec()).collect();
        let refs: Vec<&[u8]> = lines.iter().map(|l| l.as_slice()).collect();
        m.install(builder_with_rows(vec![0], &refs));
        m.install(builder_with_rows(vec![1], &refs));
        assert_eq!(m.chunks().len(), 2);

        // Touch attr 1 so attr 0's chunk is the LRU victim.
        let _ = m.plan_access(&[1]);
        m.install(builder_with_rows(vec![2], &refs));
        assert_eq!(m.metrics().evictions, 1);
        let covered: Vec<bool> = (0..3).map(|a| m.coverage(a) > 0).collect();
        assert_eq!(covered, vec![false, true, true], "attr 0 was evicted");
    }

    #[test]
    fn oversized_chunk_rejected() {
        let mut m = PositionalMap::new(MapPolicy::with_budget(8));
        let id = m.install(builder_with_rows(vec![0, 1], &[b"a,b", b"c,d", b"e,f"]));
        assert!(id.is_none());
        assert_eq!(m.metrics().rejects, 1);
        assert_eq!(m.bytes_used(), 0);
    }

    #[test]
    fn shrinking_budget_evicts() {
        let mut m = default_map();
        let lines: Vec<Vec<u8>> = (0..100).map(|_| b"a,b,c".to_vec()).collect();
        let refs: Vec<&[u8]> = lines.iter().map(|l| l.as_slice()).collect();
        m.install(builder_with_rows(vec![0], &refs));
        m.install(builder_with_rows(vec![1], &refs));
        assert_eq!(m.chunks().len(), 2);
        m.set_budget(0);
        assert_eq!(m.chunks().len(), 0);
        assert_eq!(m.bytes_used(), 0);
    }

    #[test]
    fn row_index_notes_in_order() {
        let mut m = default_map();
        m.row_index_mut().note_row(0, 0);
        m.row_index_mut().note_row(1, 10);
        m.row_index_mut().note_row(1, 10); // replay is a no-op
        assert_eq!(m.row_index().len(), 2);
        assert_eq!(m.row_index().offset(1), Some(10));
        assert_eq!(m.row_index().offset(2), None);
        m.row_index_mut().mark_complete();
        assert!(m.row_index().is_complete());
    }

    #[test]
    fn note_rows_bulk_matches_note_row() {
        let mut a = default_map();
        let mut b = default_map();
        let offsets: Vec<u64> = (0..10).map(|i| i * 11).collect();
        for (i, &o) in offsets.iter().enumerate() {
            a.row_index_mut().note_row(i, o);
        }
        b.row_index_mut().note_rows(0, &offsets[..4]);
        b.row_index_mut().note_rows(4, &offsets[4..]);
        // Replay of a known prefix is a no-op.
        b.row_index_mut().note_rows(2, &offsets[2..6]);
        assert_eq!(a.row_index().len(), b.row_index().len());
        for i in 0..10 {
            assert_eq!(a.row_index().offset(i), b.row_index().offset(i));
        }
    }

    #[test]
    fn invalidate_clears_everything() {
        let mut m = default_map();
        m.install(builder_with_rows(vec![0], &[b"a,b"]));
        m.row_index_mut().note_row(0, 0);
        m.line_counts_mut().note(16, 2);
        m.invalidate();
        assert!(m.chunks().is_empty());
        assert!(m.row_index().is_empty());
        assert!(m.line_counts().is_empty());
        assert_eq!(m.bytes_used(), 0);
    }

    #[test]
    fn line_count_memo_lookup_and_replay() {
        let mut memo = LineCountMemo::default();
        assert_eq!(memo.lines_before(0), Some(0), "offset 0 always known");
        assert_eq!(memo.lines_before(64), None);
        memo.note(128, 17);
        memo.note(64, 9);
        memo.note(0, 0); // no-op by definition
        assert_eq!(memo.lines_before(64), Some(9));
        assert_eq!(memo.lines_before(128), Some(17));
        assert_eq!(memo.lines_before(100), None, "exact offsets only");
        memo.note(64, 9); // replay is a no-op
        assert_eq!(memo.len(), 2);
        assert_eq!(memo.footprint(), 32);
        memo.clear();
        assert!(memo.is_empty());
        assert_eq!(memo.lines_before(0), Some(0));
    }

    #[test]
    fn append_drops_line_count_memo() {
        // Boundaries derive from the file length, so an append orphans the
        // memoized grid; keeping it would grow without bound under
        // append-heavy workloads.
        let mut m = default_map();
        m.line_counts_mut().note(64, 9);
        m.row_index_mut().note_row(0, 0);
        m.row_index_mut().mark_complete();
        m.note_appended();
        assert!(m.line_counts().is_empty());
        assert!(!m.row_index().is_complete());
        assert_eq!(m.row_index().len(), 1, "prefix offsets survive");
    }

    #[test]
    fn utilization_gauge() {
        let mut m = PositionalMap::new(MapPolicy::with_budget(10_000));
        assert_eq!(m.utilization(), 0.0);
        let lines: Vec<Vec<u8>> = (0..100).map(|_| b"a,b".to_vec()).collect();
        let refs: Vec<&[u8]> = lines.iter().map(|l| l.as_slice()).collect();
        m.install(builder_with_rows(vec![0], &refs));
        assert!(m.utilization() > 0.0 && m.utilization() <= 1.0);
    }
}
