//! Deterministic synthetic CSV generation.
//!
//! The demo's GUI lets the audience "generate their own input CSV files and
//! choose parameters such as the number of attributes and the number of
//! tuples in the file, the width of attributes, as well as the type of the
//! input data" (§4.2). This module is that knob panel as a library:
//! a seeded [`GeneratorConfig`] producing byte-identical files across runs,
//! with per-column value distributions (uniform, Zipf, sequential) so the
//! statistics/selectivity experiments have controllable skew.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::error::RawCsvError;
use crate::schema::{ColumnDef, ColumnType, Schema};
use crate::Result;

/// Value distribution for one generated column.
#[derive(Debug, Clone)]
pub enum ValueDistribution {
    /// Integers uniform in `[min, max]`.
    IntUniform {
        /// Inclusive lower bound.
        min: i64,
        /// Inclusive upper bound.
        max: i64,
    },
    /// Integers `0..n` with Zipf(s) skew: value `k` has probability
    /// proportional to `1/(k+1)^s`.
    IntZipf {
        /// Number of distinct values.
        n: u64,
        /// Skew parameter (s = 0 is uniform; s = 1 is classic Zipf).
        s: f64,
    },
    /// Sequential integers starting at `start` (a dense primary key).
    IntSequential {
        /// First value emitted.
        start: i64,
    },
    /// Floats uniform in `[min, max)`, printed with 4 decimal digits.
    FloatUniform {
        /// Lower bound.
        min: f64,
        /// Upper bound (exclusive).
        max: f64,
    },
    /// Fixed-width lowercase ASCII strings.
    StrFixed {
        /// Exact width in bytes.
        width: usize,
    },
    /// Variable-width lowercase ASCII strings.
    StrVar {
        /// Minimum width.
        min: usize,
        /// Maximum width (inclusive).
        max: usize,
    },
    /// Booleans, `true` with probability `p`.
    BoolBernoulli {
        /// Probability of `true`.
        p: f64,
    },
}

impl ValueDistribution {
    /// The column type values of this distribution parse as.
    pub fn column_type(&self) -> ColumnType {
        match self {
            ValueDistribution::IntUniform { .. }
            | ValueDistribution::IntZipf { .. }
            | ValueDistribution::IntSequential { .. } => ColumnType::Int,
            ValueDistribution::FloatUniform { .. } => ColumnType::Float,
            ValueDistribution::StrFixed { .. } | ValueDistribution::StrVar { .. } => {
                ColumnType::Str
            }
            ValueDistribution::BoolBernoulli { .. } => ColumnType::Bool,
        }
    }
}

/// Specification of one generated column.
#[derive(Debug, Clone)]
pub struct ColumnGenSpec {
    /// Column name.
    pub name: String,
    /// Value distribution.
    pub dist: ValueDistribution,
    /// Fraction of NULL (empty) fields in `[0, 1)`.
    pub null_fraction: f64,
}

impl ColumnGenSpec {
    /// Column with no NULLs.
    pub fn new(name: impl Into<String>, dist: ValueDistribution) -> Self {
        ColumnGenSpec {
            name: name.into(),
            dist,
            null_fraction: 0.0,
        }
    }
}

/// Full configuration of one synthetic file.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Columns in file order.
    pub columns: Vec<ColumnGenSpec>,
    /// Number of data tuples.
    pub rows: u64,
    /// Field delimiter.
    pub delimiter: u8,
    /// Whether to emit a header line with column names.
    pub header: bool,
    /// RNG seed: the same config always produces the same bytes.
    pub seed: u64,
}

impl GeneratorConfig {
    /// The demo's canonical shape: `cols` integer attributes uniform in
    /// `[0, 10^9)`, named `c0..`, no header.
    pub fn uniform_ints(cols: usize, rows: u64, seed: u64) -> Self {
        GeneratorConfig {
            columns: (0..cols)
                .map(|i| {
                    ColumnGenSpec::new(
                        format!("c{i}"),
                        ValueDistribution::IntUniform {
                            min: 0,
                            max: 999_999_999,
                        },
                    )
                })
                .collect(),
            rows,
            delimiter: b',',
            header: false,
            seed,
        }
    }

    /// `cols` string attributes of exactly `width` bytes — the §4.2
    /// attribute-width sensitivity knob.
    pub fn fixed_width_strings(cols: usize, width: usize, rows: u64, seed: u64) -> Self {
        GeneratorConfig {
            columns: (0..cols)
                .map(|i| ColumnGenSpec::new(format!("c{i}"), ValueDistribution::StrFixed { width }))
                .collect(),
            rows,
            delimiter: b',',
            header: false,
            seed,
        }
    }

    /// Schema matching the generated file.
    pub fn schema(&self) -> Schema {
        Schema::new(
            self.columns
                .iter()
                .map(|c| ColumnDef::new(c.name.clone(), c.dist.column_type()))
                .collect(),
        )
    }

    /// Generate into an in-memory buffer (tests, small files).
    pub fn generate_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.write_to(&mut out)
            .expect("in-memory write cannot fail");
        out
    }

    /// Generate to a file at `path`, returning the number of bytes written.
    pub fn generate_file(&self, path: impl AsRef<Path>) -> Result<u64> {
        let path = path.as_ref();
        let file = File::create(path)
            .map_err(|e| RawCsvError::io(format!("create {}", path.display()), e))?;
        let mut w = CountingWriter {
            inner: BufWriter::new(file),
            written: 0,
        };
        self.write_to(&mut w)
            .map_err(|e| RawCsvError::io(format!("write {}", path.display()), e))?;
        w.inner
            .flush()
            .map_err(|e| RawCsvError::io(format!("flush {}", path.display()), e))?;
        Ok(w.written)
    }

    /// Append `extra_rows` more tuples to an existing file, continuing the
    /// deterministic stream (used by the UPDATES experiment). The RNG is
    /// fast-forwarded past the first `self.rows` tuples so appended values
    /// continue the same sequence.
    pub fn append_rows(&self, path: impl AsRef<Path>, extra_rows: u64) -> Result<u64> {
        let path = path.as_ref();
        let file = std::fs::OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| RawCsvError::io(format!("open append {}", path.display()), e))?;
        let mut w = CountingWriter {
            inner: BufWriter::new(file),
            written: 0,
        };
        let mut state = GenState::new(self);
        // Fast-forward deterministically.
        let mut sink = Vec::with_capacity(256);
        for row in 0..self.rows {
            sink.clear();
            state.write_row(&mut sink, row, self).expect("vec write");
        }
        for row in self.rows..self.rows + extra_rows {
            state
                .write_row(&mut w, row, self)
                .map_err(|e| RawCsvError::io(format!("append {}", path.display()), e))?;
        }
        w.inner
            .flush()
            .map_err(|e| RawCsvError::io(format!("flush {}", path.display()), e))?;
        Ok(w.written)
    }

    fn write_to<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        if self.header {
            for (i, c) in self.columns.iter().enumerate() {
                if i > 0 {
                    w.write_all(&[self.delimiter])?;
                }
                w.write_all(c.name.as_bytes())?;
            }
            w.write_all(b"\n")?;
        }
        let mut state = GenState::new(self);
        for row in 0..self.rows {
            state.write_row(w, row, self)?;
        }
        Ok(())
    }
}

/// Running generator state: RNG plus precomputed Zipf tables per column.
struct GenState {
    rng: StdRng,
    /// For each column with a Zipf distribution, the cumulative probability
    /// table used for inverse-transform sampling (capped at 10k entries;
    /// beyond that the tail is uniform, which is indistinguishable in
    /// practice for selectivity experiments).
    zipf_cdfs: Vec<Option<Vec<f64>>>,
    /// Reused per-row formatting buffer.
    scratch: Vec<u8>,
}

impl GenState {
    fn new(cfg: &GeneratorConfig) -> Self {
        let zipf_cdfs = cfg
            .columns
            .iter()
            .map(|c| match c.dist {
                ValueDistribution::IntZipf { n, s } => Some(zipf_cdf(n.min(10_000), s)),
                _ => None,
            })
            .collect();
        GenState {
            rng: StdRng::seed_from_u64(cfg.seed),
            zipf_cdfs,
            scratch: Vec::with_capacity(64),
        }
    }

    fn write_row<W: Write>(
        &mut self,
        w: &mut W,
        row: u64,
        cfg: &GeneratorConfig,
    ) -> std::io::Result<()> {
        self.scratch.clear();
        for (i, col) in cfg.columns.iter().enumerate() {
            if i > 0 {
                self.scratch.push(cfg.delimiter);
            }
            // NULL draw happens before the value draw but the value draw
            // still occurs, keeping the stream position independent of null
            // placement (so append_rows fast-forward stays exact).
            let is_null = col.null_fraction > 0.0 && self.rng.random::<f64>() < col.null_fraction;
            let start = self.scratch.len();
            match col.dist {
                ValueDistribution::IntUniform { min, max } => {
                    let v = self.rng.random_range(min..=max);
                    write_i64(&mut self.scratch, v);
                }
                ValueDistribution::IntZipf { .. } => {
                    let cdf = self.zipf_cdfs[i].as_ref().expect("zipf table");
                    let u: f64 = self.rng.random();
                    let k = cdf.partition_point(|&c| c < u) as i64;
                    write_i64(&mut self.scratch, k);
                }
                ValueDistribution::IntSequential { start: s } => {
                    write_i64(&mut self.scratch, s + row as i64);
                }
                ValueDistribution::FloatUniform { min, max } => {
                    let v: f64 = self.rng.random_range(min..max);
                    // 4 decimal digits, stable formatting.
                    let _ = write!(&mut self.scratch, "{v:.4}");
                }
                ValueDistribution::StrFixed { width } => {
                    for _ in 0..width {
                        let c = b'a' + self.rng.random_range(0..26u8);
                        self.scratch.push(c);
                    }
                }
                ValueDistribution::StrVar { min, max } => {
                    let width = self.rng.random_range(min..=max);
                    for _ in 0..width {
                        let c = b'a' + self.rng.random_range(0..26u8);
                        self.scratch.push(c);
                    }
                }
                ValueDistribution::BoolBernoulli { p } => {
                    let v = self.rng.random::<f64>() < p;
                    self.scratch
                        .extend_from_slice(if v { b"true" } else { b"false" });
                }
            }
            if is_null {
                self.scratch.truncate(start);
            }
        }
        self.scratch.push(b'\n');
        w.write_all(&self.scratch)
    }
}

/// Cumulative distribution for Zipf(s) over `0..n`.
fn zipf_cdf(n: u64, s: f64) -> Vec<f64> {
    // A CDF table of u64::MAX entries could never allocate anyway; saturate.
    let n = usize::try_from(n.max(1)).unwrap_or(usize::MAX);
    let mut weights: Vec<f64> = (0..n).map(|k| 1.0 / ((k as f64) + 1.0).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    for w in &mut weights {
        acc += *w / total;
        *w = acc;
    }
    // Guard against floating point shortfall at the end.
    if let Some(last) = weights.last_mut() {
        *last = 1.0;
    }
    weights
}

/// Append the decimal representation of `v` without allocating.
fn write_i64(out: &mut Vec<u8>, v: i64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    let neg = v < 0;
    let mut u = v.unsigned_abs();
    loop {
        i -= 1;
        buf[i] = b'0' + (u % 10) as u8; // lint: cast-ok bounded by % 10
        u /= 10;
        if u == 0 {
            break;
        }
    }
    if neg {
        i -= 1;
        buf[i] = b'-';
    }
    out.extend_from_slice(&buf[i..]);
}

struct CountingWriter<W: Write> {
    inner: W,
    written: u64,
}

impl<W: Write> Write for CountingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.written += n as u64;
        Ok(n)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GeneratorConfig::uniform_ints(5, 100, 42);
        assert_eq!(cfg.generate_bytes(), cfg.generate_bytes());
        let other = GeneratorConfig::uniform_ints(5, 100, 43);
        assert_ne!(cfg.generate_bytes(), other.generate_bytes());
    }

    #[test]
    fn row_and_column_counts_match() {
        let cfg = GeneratorConfig::uniform_ints(7, 50, 1);
        let bytes = cfg.generate_bytes();
        let lines: Vec<&[u8]> = bytes
            .split(|&b| b == b'\n')
            .filter(|l| !l.is_empty())
            .collect();
        assert_eq!(lines.len(), 50);
        for l in lines {
            assert_eq!(l.iter().filter(|&&b| b == b',').count(), 6);
        }
    }

    #[test]
    fn header_row_present_when_requested() {
        let mut cfg = GeneratorConfig::uniform_ints(3, 2, 9);
        cfg.header = true;
        let bytes = cfg.generate_bytes();
        assert!(bytes.starts_with(b"c0,c1,c2\n"));
    }

    #[test]
    fn fixed_width_strings_have_exact_width() {
        let cfg = GeneratorConfig::fixed_width_strings(4, 9, 20, 3);
        let bytes = cfg.generate_bytes();
        for line in bytes.split(|&b| b == b'\n').filter(|l| !l.is_empty()) {
            for field in line.split(|&b| b == b',') {
                assert_eq!(field.len(), 9);
            }
        }
    }

    #[test]
    fn sequential_column_is_dense() {
        let cfg = GeneratorConfig {
            columns: vec![ColumnGenSpec::new(
                "id",
                ValueDistribution::IntSequential { start: 10 },
            )],
            rows: 5,
            delimiter: b',',
            header: false,
            seed: 0,
        };
        let bytes = cfg.generate_bytes();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text, "10\n11\n12\n13\n14\n");
    }

    #[test]
    fn null_fraction_produces_empty_fields() {
        let cfg = GeneratorConfig {
            columns: vec![ColumnGenSpec {
                name: "v".into(),
                dist: ValueDistribution::IntUniform { min: 0, max: 9 },
                null_fraction: 0.5,
            }],
            rows: 1000,
            delimiter: b',',
            header: false,
            seed: 11,
        };
        let bytes = cfg.generate_bytes();
        let empties = bytes
            .split(|&b| b == b'\n')
            .filter(|l| l.is_empty())
            .count();
        // 1000 rows → 1000 newlines → the final split yields one trailing
        // empty; NULL rows are empty lines too in a 1-column file.
        assert!(empties > 300 && empties < 700, "empties = {empties}");
    }

    #[test]
    fn zipf_is_skewed() {
        let cfg = GeneratorConfig {
            columns: vec![ColumnGenSpec::new(
                "z",
                ValueDistribution::IntZipf { n: 100, s: 1.2 },
            )],
            rows: 2000,
            delimiter: b',',
            header: false,
            seed: 5,
        };
        let bytes = cfg.generate_bytes();
        let zeros = bytes.split(|&b| b == b'\n').filter(|l| *l == b"0").count();
        // Value 0 should dominate under heavy skew.
        assert!(zeros > 200, "zeros = {zeros}");
    }

    #[test]
    fn append_continues_stream() {
        let mut p = std::env::temp_dir();
        p.push(format!("nodb_gen_append_{}", std::process::id()));
        let cfg = GeneratorConfig::uniform_ints(3, 10, 77);
        cfg.generate_file(&p).unwrap();
        cfg.append_rows(&p, 5).unwrap();

        // The 15-row file generated in one shot must equal generate+append.
        let mut cfg15 = cfg.clone();
        cfg15.rows = 15;
        let expect = cfg15.generate_bytes();
        let got = std::fs::read(&p).unwrap();
        assert_eq!(got, expect);
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn write_i64_handles_extremes() {
        let mut v = Vec::new();
        write_i64(&mut v, i64::MIN);
        assert_eq!(v, b"-9223372036854775808");
        v.clear();
        write_i64(&mut v, 0);
        assert_eq!(v, b"0");
    }
}
