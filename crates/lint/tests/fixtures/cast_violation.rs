//! Seeded violations for `truncating-cast`: the narrowing casts on lines 7
//! (two on one line) and 12 fire; the waived ones and the widening `as u64`
//! do not.

fn span(file_offset: u64, line_start: u64) -> (u32, u32) {
    // Two findings on one line.
    (file_offset as u32, line_start as u32)
}

fn index(row: u64) -> usize {
    // One finding: u64 row → usize truncates on 32-bit targets.
    row as usize
}

fn widened(len: usize) -> u64 {
    // `as u64` from usize is widening on every supported target: no finding.
    len as u64
}

fn waived(off: u64) -> usize {
    // lint: cast-ok off is bounded by io_block_size in this fixture
    off as usize
}

fn trailing_waiver(off: u64) -> u16 {
    off as u16 // lint: cast-ok fixture: off < 65536 by construction
}
