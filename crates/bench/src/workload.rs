//! Workload generation: datasets and query sequences for every experiment.

use std::path::{Path, PathBuf};

use nodb_rawcsv::GeneratorConfig;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Experiment scale: `Small` keeps CI runs fast; `Full` is the
/// paper-comparable size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// ~2 MB files, seconds per experiment.
    Small,
    /// ~100 MB-class files, minutes per experiment.
    Full,
}

impl Scale {
    /// Rows for the standard dataset at this scale.
    pub fn rows(self) -> u64 {
        match self {
            Scale::Small => 20_000,
            Scale::Full => 500_000,
        }
    }

    /// Parse from a CLI flag.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "small" => Some(Scale::Small),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }
}

/// A generated dataset on disk plus its generator config (for appends).
pub struct Dataset {
    /// File path.
    pub path: PathBuf,
    /// Generator used (re-usable for appends).
    pub gen: GeneratorConfig,
}

impl Dataset {
    /// The standard experiment dataset: `cols` uniform integer attributes.
    pub fn standard(dir: &Path, cols: usize, rows: u64, seed: u64) -> Dataset {
        let gen = GeneratorConfig::uniform_ints(cols, rows, seed);
        let path = dir.join(format!("data_{cols}x{rows}_{seed}.csv"));
        gen.generate_file(&path).expect("generate dataset");
        Dataset { path, gen }
    }

    /// Fixed-width string dataset (attribute-width sensitivity).
    pub fn strings(dir: &Path, cols: usize, width: usize, rows: u64, seed: u64) -> Dataset {
        let gen = GeneratorConfig::fixed_width_strings(cols, width, rows, seed);
        let path = dir.join(format!("strs_{cols}x{width}x{rows}_{seed}.csv"));
        gen.generate_file(&path).expect("generate dataset");
        Dataset { path, gen }
    }

    /// Schema of the dataset.
    pub fn schema(&self) -> nodb_rawcsv::Schema {
        self.gen.schema()
    }
}

/// Build a simple projection query over the given attributes.
pub fn projection_query(table: &str, attrs: &[usize]) -> String {
    let cols: Vec<String> = attrs.iter().map(|a| format!("c{a}")).collect();
    format!("SELECT {} FROM {}", cols.join(", "), table)
}

/// Build a Select-Project query with a range predicate of roughly the given
/// selectivity over a uniform `[0, 10^9)` integer attribute.
pub fn sp_query(table: &str, proj: &[usize], pred_attr: usize, selectivity: f64) -> String {
    let cut = (selectivity.clamp(0.0, 1.0) * 1e9) as i64;
    format!(
        "{} WHERE c{} < {}",
        projection_query(table, proj),
        pred_attr,
        cut
    )
}

/// The §4.2 *Query Adaptation* workload: epochs of SP queries, each epoch
/// confined to a sliding window of attributes ("queries within each epoch
/// refer to a specific part of the input data file, representing their
/// exploratory behavior").
pub struct EpochWorkload {
    /// Queries grouped by epoch.
    pub epochs: Vec<Vec<String>>,
    /// The attribute window of each epoch (for shading the panel).
    pub windows: Vec<(usize, usize)>,
}

/// Generate `n_epochs` epochs of `per_epoch` queries over a table with
/// `ncols` attributes; each epoch uses a window of `window` attributes that
/// slides across the file.
pub fn epoch_workload(
    table: &str,
    ncols: usize,
    n_epochs: usize,
    per_epoch: usize,
    window: usize,
    seed: u64,
) -> EpochWorkload {
    let mut rng = StdRng::seed_from_u64(seed);
    let window = window.min(ncols).max(2);
    let max_start = ncols - window;
    let mut epochs = Vec::with_capacity(n_epochs);
    let mut windows = Vec::with_capacity(n_epochs);
    for e in 0..n_epochs {
        let start = if n_epochs > 1 {
            e * max_start / (n_epochs - 1)
        } else {
            0
        };
        windows.push((start, start + window - 1));
        let mut queries = Vec::with_capacity(per_epoch);
        for _ in 0..per_epoch {
            // 2 projected attrs + 1 predicate attr, all inside the window.
            let a = start + rng.random_range(0..window);
            let mut b = start + rng.random_range(0..window);
            if b == a {
                b = start + (b - start + 1) % window;
            }
            let p = start + rng.random_range(0..window);
            let sel = 0.1 + rng.random::<f64>() * 0.4;
            queries.push(sp_query(table, &[a.min(b), a.max(b)], p, sel));
        }
        epochs.push(queries);
    }
    EpochWorkload { epochs, windows }
}

/// The friendly-race query set (§4.3): a mix of projections, filters and
/// aggregates touching different parts of the file.
pub fn race_queries(table: &str, ncols: usize) -> Vec<String> {
    let c = |i: usize| i.min(ncols - 1);
    vec![
        format!("SELECT c{} FROM {table} WHERE c{} < 100000000", c(0), c(1)),
        format!(
            "SELECT c{}, c{} FROM {table} WHERE c{} > 900000000",
            c(2),
            c(3),
            c(0)
        ),
        format!("SELECT COUNT(*) FROM {table}"),
        format!(
            "SELECT AVG(c{}) FROM {table} WHERE c{} < 500000000",
            c(1),
            c(2)
        ),
        format!(
            "SELECT c{} FROM {table} WHERE c{} BETWEEN 200000000 AND 300000000",
            c(4),
            c(4)
        ),
        format!("SELECT MIN(c{}), MAX(c{}) FROM {table}", c(0), c(0)),
        format!(
            "SELECT c{}, c{} FROM {table} WHERE c{} < 50000000 ORDER BY c{} LIMIT 100",
            c(1),
            c(2),
            c(3),
            c(1)
        ),
        format!(
            "SELECT COUNT(*) FROM {table} WHERE c{} > 500000000 AND c{} < 500000000",
            c(0),
            c(1)
        ),
        format!(
            "SELECT SUM(c{}) FROM {table} WHERE c{} > 100000000",
            c(2),
            c(2)
        ),
        format!("SELECT c{} FROM {table} WHERE c{} = 123456789", c(0), c(0)),
    ]
}

/// Evict `path` from the OS page cache, best-effort (Linux only): sync the
/// pages clean, then `posix_fadvise(POSIX_FADV_DONTNEED)`. A "cold scan"
/// benchmark that just generated its dataset is otherwise reading straight
/// from the page cache and measures memcpy, not I/O — evicting before every
/// iteration makes cold honestly cold, which is what gives overlapped I/O
/// real disk latency to hide. Returns whether the kernel accepted the
/// advice (tmpfs and non-Linux targets refuse; the bench then degrades to
/// a warm-cache measurement rather than failing).
pub fn evict_from_page_cache(path: &Path) -> bool {
    #[cfg(target_os = "linux")]
    {
        use std::os::unix::io::AsRawFd;
        const POSIX_FADV_DONTNEED: i32 = 4;
        extern "C" {
            fn posix_fadvise(fd: i32, offset: i64, len: i64, advice: i32) -> i32;
        }
        match std::fs::File::open(path) {
            Ok(f) => {
                let _ = f.sync_all(); // dirty pages cannot be dropped
                                      // SAFETY: fd is open for the duration of the call; len 0 =
                                      // whole file; the call mutates no user memory.
                unsafe { posix_fadvise(f.as_raw_fd(), 0, 0, POSIX_FADV_DONTNEED) == 0 }
            }
            Err(_) => false,
        }
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = path;
        false
    }
}

/// Temp directory for one experiment run (unique per process + nanos).
pub fn scratch_dir(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "nodb_exp_{tag}_{}_{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&p).expect("scratch dir");
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sp_query_selectivity_maps_to_cut() {
        let q = sp_query("t", &[0, 2], 1, 0.25);
        assert!(q.contains("WHERE c1 < 250000000"), "{q}");
        assert!(q.starts_with("SELECT c0, c2 FROM t"));
    }

    #[test]
    fn epochs_slide_across_attributes() {
        let w = epoch_workload("t", 50, 4, 10, 10, 1);
        assert_eq!(w.epochs.len(), 4);
        assert_eq!(w.windows[0].0, 0);
        assert_eq!(w.windows[3].1, 49);
        assert!(w.windows[1].0 > w.windows[0].0);
        for (e, queries) in w.epochs.iter().enumerate() {
            assert_eq!(queries.len(), 10);
            let (lo, hi) = w.windows[e];
            for q in queries {
                // Every referenced attribute must be inside the window.
                for part in q.split(['c', ' ', ',']).filter(|p| !p.is_empty()) {
                    if let Ok(a) = part.parse::<usize>() {
                        if a < 100 {
                            assert!(a >= lo && a <= hi, "attr {a} outside {lo}..{hi} in {q}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn race_queries_are_parseable() {
        for q in race_queries("t", 10) {
            nodb_sqlparse::parse_select(&q).unwrap_or_else(|e| panic!("{q}: {e}"));
        }
    }

    #[test]
    fn dataset_generation_round_trips() {
        let dir = scratch_dir("workload_test");
        let d = Dataset::standard(&dir, 3, 100, 1);
        assert!(d.path.exists());
        assert_eq!(d.schema().len(), 3);
        std::fs::remove_dir_all(dir).unwrap();
    }
}
