//! Schema inference from a file sample.
//!
//! NoDB's promise is "here are my data files, where are my results": the user
//! should not have to write DDL. [`infer_schema`] reads a bounded sample of
//! the file, detects a header row, counts fields, and assigns each column the
//! narrowest type that accepts every sampled value (Int ⊂ Float ⊂ Str;
//! Bool is only chosen when every non-null sample parses as a boolean).

use std::path::Path;

use crate::error::RawCsvError;
use crate::parser::{parse_bool, parse_float, parse_int};
use crate::reader::BlockScanner;
use crate::schema::{ColumnDef, ColumnType, Schema};
use crate::tokenizer::{TokenizerConfig, Tokens};
use crate::Result;

/// Outcome of schema inference.
#[derive(Debug, Clone)]
pub struct InferredSchema {
    /// The inferred schema.
    pub schema: Schema,
    /// True when the first line looked like a header (non-numeric names over
    /// otherwise-numeric columns) and should be skipped by scans.
    pub has_header: bool,
    /// Number of data lines sampled.
    pub sampled_rows: u64,
    /// The tokenizer configuration used (delimiter possibly sniffed).
    pub tokenizer: TokenizerConfig,
}

/// Candidate delimiters for sniffing, in preference order on ties.
const DELIMITER_CANDIDATES: [u8; 4] = [b',', b'\t', b';', b'|'];

/// Guess the field delimiter from a sample line: the candidate that splits
/// it into the most fields. Comma wins ties.
pub fn sniff_delimiter(line: &[u8]) -> u8 {
    let mut best = b',';
    let mut best_count = 0usize;
    for &cand in &DELIMITER_CANDIDATES {
        let count = line.iter().filter(|&&b| b == cand).count();
        if count > best_count {
            best = cand;
            best_count = count;
        }
    }
    best
}

/// [`infer_schema`] with the delimiter sniffed from the file's first line —
/// the default registration path, so TSV / semicolon / pipe files work with
/// zero configuration.
pub fn infer_schema_sniffed(path: impl AsRef<Path>, sample_rows: u64) -> Result<InferredSchema> {
    let path = path.as_ref();
    let mut scanner = BlockScanner::open_default(path)?;
    let first = scanner
        .next_line()?
        .ok_or_else(|| RawCsvError::Infer("file is empty".into()))?;
    let delimiter = sniff_delimiter(first.bytes);
    drop(scanner);
    infer_schema(path, TokenizerConfig::plain(delimiter), sample_rows)
}

/// Per-column running type lattice during inference.
#[derive(Debug, Clone, Copy, PartialEq)]
enum TypeGuess {
    /// No non-null value seen yet.
    Unknown,
    Bool,
    Int,
    Float,
    Str,
}

impl TypeGuess {
    fn update(self, field: &[u8]) -> TypeGuess {
        if field.is_empty() {
            return self;
        }
        let field_class = if parse_int(field).is_some() {
            TypeGuess::Int
        } else if parse_float(field).is_some() {
            TypeGuess::Float
        } else if parse_bool(field).is_some() {
            TypeGuess::Bool
        } else {
            TypeGuess::Str
        };
        self.join(field_class)
    }

    fn join(self, other: TypeGuess) -> TypeGuess {
        use TypeGuess::*;
        match (self, other) {
            (Unknown, x) | (x, Unknown) => x,
            (a, b) if a == b => a,
            (Int, Float) | (Float, Int) => Float,
            // Bool mixed with anything else degrades to Str (e.g. "true"
            // appearing in a text column).
            _ => Str,
        }
    }

    fn to_column_type(self) -> ColumnType {
        match self {
            TypeGuess::Int => ColumnType::Int,
            TypeGuess::Float => ColumnType::Float,
            TypeGuess::Bool => ColumnType::Bool,
            // All-null or unseen columns default to Str, the universal type.
            TypeGuess::Str | TypeGuess::Unknown => ColumnType::Str,
        }
    }
}

/// Infer a schema by sampling up to `sample_rows` lines of `path`.
pub fn infer_schema(
    path: impl AsRef<Path>,
    tokenizer: TokenizerConfig,
    sample_rows: u64,
) -> Result<InferredSchema> {
    let mut scanner = BlockScanner::open_default(path)?;
    let mut tokens = Tokens::new();

    // Read the first line separately: it may be a header.
    let first: Vec<u8> = match scanner.next_line()? {
        Some(l) => l.bytes.to_vec(),
        None => return Err(RawCsvError::Infer("file is empty".into())),
    };
    tokenizer.tokenize_into(&first, &mut tokens);
    let ncols = tokens.len();
    let first_fields: Vec<Vec<u8>> = tokens
        .spans()
        .iter()
        .map(|s| s.of(&first).to_vec())
        .collect();

    let mut guesses = vec![TypeGuess::Unknown; ncols];
    let mut sampled = 0u64;
    while sampled < sample_rows {
        let Some(line) = scanner.next_line()? else {
            break;
        };
        tokenizer.tokenize_into(line.bytes, &mut tokens);
        for (i, span) in tokens.spans().iter().enumerate().take(ncols) {
            guesses[i] = guesses[i].update(span.of(line.bytes));
        }
        sampled += 1;
    }

    // Header heuristic: the first line is a header if at least one column
    // whose data is numeric has a non-numeric first-line value.
    let mut header_votes = 0usize;
    for (i, g) in guesses.iter().enumerate() {
        let data_numeric = matches!(g, TypeGuess::Int | TypeGuess::Float);
        let first_numeric = parse_float(&first_fields[i]).is_some();
        if data_numeric && !first_numeric && !first_fields[i].is_empty() {
            header_votes += 1;
        }
    }
    let has_header = header_votes > 0 && sampled > 0;

    let columns = (0..ncols)
        .map(|i| {
            let name = if has_header {
                String::from_utf8_lossy(&first_fields[i]).into_owned()
            } else {
                format!("c{i}")
            };
            let guess = if has_header {
                guesses[i]
            } else {
                // Without a header the first line is data and participates.
                guesses[i].update(&first_fields[i])
            };
            ColumnDef::new(name, guess.to_column_type())
        })
        .collect();

    Ok(InferredSchema {
        schema: Schema::new(columns),
        has_header,
        sampled_rows: sampled,
        tokenizer,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::path::PathBuf;

    fn tmp(name: &str, content: &[u8]) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("nodb_infer_{name}_{}", std::process::id()));
        let mut f = std::fs::File::create(&p).unwrap();
        f.write_all(content).unwrap();
        p
    }

    #[test]
    fn infers_types_with_header() {
        let p = tmp(
            "hdr",
            b"id,score,name,ok\n1,2.5,alice,true\n2,3.5,bob,false\n",
        );
        let r = infer_schema(&p, TokenizerConfig::default(), 100).unwrap();
        assert!(r.has_header);
        assert_eq!(r.schema.column(0).name, "id");
        assert_eq!(r.schema.ty(0), ColumnType::Int);
        assert_eq!(r.schema.ty(1), ColumnType::Float);
        assert_eq!(r.schema.ty(2), ColumnType::Str);
        assert_eq!(r.schema.ty(3), ColumnType::Bool);
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn infers_headerless_numeric_file() {
        let p = tmp("nohdr", b"1,2\n3,4\n5,6\n");
        let r = infer_schema(&p, TokenizerConfig::default(), 100).unwrap();
        assert!(!r.has_header);
        assert_eq!(r.schema.column(0).name, "c0");
        assert_eq!(r.schema.ty(0), ColumnType::Int);
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn int_widens_to_float() {
        let p = tmp("widen", b"1\n2.5\n3\n");
        let r = infer_schema(&p, TokenizerConfig::default(), 100).unwrap();
        assert_eq!(r.schema.ty(0), ColumnType::Float);
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn empty_file_errors() {
        let p = tmp("empty", b"");
        assert!(infer_schema(&p, TokenizerConfig::default(), 10).is_err());
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn sniffs_common_delimiters() {
        assert_eq!(sniff_delimiter(b"a,b,c"), b',');
        assert_eq!(sniff_delimiter(b"a\tb\tc\td"), b'\t');
        assert_eq!(sniff_delimiter(b"x;y;z"), b';');
        assert_eq!(sniff_delimiter(b"1|2"), b'|');
        assert_eq!(sniff_delimiter(b"nodelims"), b',');
    }

    #[test]
    fn sniffed_inference_handles_tsv() {
        let p = tmp("tsv", b"id\tscore\n1\t2.5\n2\t3.5\n");
        let r = infer_schema_sniffed(&p, 100).unwrap();
        assert_eq!(r.tokenizer.delimiter, b'\t');
        assert!(r.has_header);
        assert_eq!(r.schema.ty(1), ColumnType::Float);
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn nulls_do_not_disturb_types() {
        let p = tmp("nulls", b"v\n1\n\n3\n");
        let r = infer_schema(&p, TokenizerConfig::default(), 100).unwrap();
        assert_eq!(r.schema.ty(0), ColumnType::Int);
        std::fs::remove_file(p).unwrap();
    }
}
