//! Columnar batches flowing between operators.

use nodb_rawcsv::Datum;

/// Default number of rows per batch.
pub const BATCH_SIZE: usize = 1024;

/// A column-major batch of datums. All columns have the same length.
#[derive(Debug, Clone, Default)]
pub struct Batch {
    cols: Vec<Vec<Datum>>,
    rows: usize,
}

impl Batch {
    /// Empty batch with `ncols` columns, each with capacity for
    /// [`BATCH_SIZE`] rows.
    pub fn with_columns(ncols: usize) -> Self {
        Batch {
            cols: (0..ncols).map(|_| Vec::with_capacity(BATCH_SIZE)).collect(),
            rows: 0,
        }
    }

    /// Build directly from columns.
    ///
    /// # Panics
    /// Panics if the columns have differing lengths.
    pub fn from_columns(cols: Vec<Vec<Datum>>) -> Self {
        let rows = cols.first().map(Vec::len).unwrap_or(0);
        for c in &cols {
            assert_eq!(c.len(), rows, "ragged batch");
        }
        Batch { cols, rows }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols.len()
    }

    /// True when the batch has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// True when the batch reached its target size.
    pub fn is_full(&self) -> bool {
        self.rows >= BATCH_SIZE
    }

    /// Column `c` as a slice.
    #[inline]
    pub fn col(&self, c: usize) -> &[Datum] {
        &self.cols[c]
    }

    /// Value at (`row`, `col`).
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> &Datum {
        &self.cols[col][row]
    }

    /// Append one value to column `c` (caller keeps columns aligned and
    /// finishes the row with [`Self::finish_row`]).
    #[inline]
    pub fn push_value(&mut self, c: usize, d: Datum) {
        self.cols[c].push(d);
    }

    /// Declare one full row appended across all columns.
    #[inline]
    pub fn finish_row(&mut self) {
        self.rows += 1;
        debug_assert!(self.cols.iter().all(|c| c.len() == self.rows));
    }

    /// Append a row given as a slice of datums.
    pub fn push_row(&mut self, row: &[Datum]) {
        assert_eq!(row.len(), self.cols.len(), "row arity mismatch");
        for (c, d) in row.iter().enumerate() {
            self.cols[c].push(d.clone());
        }
        self.rows += 1;
    }

    /// Extract row `r` as an owned vector.
    pub fn row(&self, r: usize) -> Vec<Datum> {
        self.cols.iter().map(|c| c[r].clone()).collect()
    }

    /// Keep only the rows whose index is in `keep` (ascending).
    pub fn take(&self, keep: &[usize]) -> Batch {
        let cols = self
            .cols
            .iter()
            .map(|c| keep.iter().map(|&i| c[i].clone()).collect())
            .collect();
        Batch {
            cols,
            rows: keep.len(),
        }
    }

    /// Append every row of `other` after this batch's rows.
    ///
    /// This is the reorder-free concatenation the parallel scan relies on:
    /// per-partition output batches are stitched back together in partition
    /// order, so downstream operators observe exactly the row order a
    /// sequential scan would have produced. Column-wise `Vec::append` moves
    /// the datums without cloning.
    ///
    /// # Panics
    /// Panics when the column counts differ.
    pub fn extend_from(&mut self, other: Batch) {
        assert_eq!(self.cols.len(), other.cols.len(), "batch arity mismatch");
        for (col, mut ocol) in self.cols.iter_mut().zip(other.cols) {
            col.append(&mut ocol);
        }
        self.rows += other.rows;
    }

    /// Consume into raw columns.
    pub fn into_columns(self) -> Vec<Vec<Datum>> {
        self.cols
    }
}

/// Random access to one logical row, the index space being defined by the
/// evaluation context (scan attribute positions for pushed predicates, batch
/// column positions above the scan).
pub trait RowAccess {
    /// Value of column `col` in this row.
    fn value(&self, col: usize) -> &Datum;
}

/// A row borrowed from a batch.
pub struct BatchRow<'a> {
    batch: &'a Batch,
    row: usize,
}

impl<'a> BatchRow<'a> {
    /// Borrow row `row` of `batch`.
    pub fn new(batch: &'a Batch, row: usize) -> Self {
        BatchRow { batch, row }
    }
}

impl RowAccess for BatchRow<'_> {
    #[inline]
    fn value(&self, col: usize) -> &Datum {
        self.batch.get(self.row, col)
    }
}

/// A row backed by a plain slice (used by scan sources before a batch is
/// formed — this is how *selective tuple formation* evaluates the predicate
/// without building the tuple).
pub struct SliceRow<'a>(pub &'a [Datum]);

impl RowAccess for SliceRow<'_> {
    #[inline]
    fn value(&self, col: usize) -> &Datum {
        &self.0[col]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back() {
        let mut b = Batch::with_columns(2);
        b.push_row(&[Datum::Int(1), Datum::from("a")]);
        b.push_row(&[Datum::Int(2), Datum::from("b")]);
        assert_eq!(b.rows(), 2);
        assert_eq!(b.get(1, 0), &Datum::Int(2));
        assert_eq!(b.row(0), vec![Datum::Int(1), Datum::from("a")]);
    }

    #[test]
    fn take_filters_rows() {
        let mut b = Batch::with_columns(1);
        for i in 0..5 {
            b.push_row(&[Datum::Int(i)]);
        }
        let t = b.take(&[0, 2, 4]);
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(1, 0), &Datum::Int(2));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_batch_panics() {
        let _ = Batch::from_columns(vec![vec![Datum::Int(1)], vec![]]);
    }

    #[test]
    fn extend_from_preserves_row_order() {
        let mut a = Batch::with_columns(2);
        a.push_row(&[Datum::Int(1), Datum::from("a")]);
        let mut b = Batch::with_columns(2);
        b.push_row(&[Datum::Int(2), Datum::from("b")]);
        b.push_row(&[Datum::Int(3), Datum::from("c")]);
        a.extend_from(b);
        assert_eq!(a.rows(), 3);
        assert_eq!(a.row(0), vec![Datum::Int(1), Datum::from("a")]);
        assert_eq!(a.row(2), vec![Datum::Int(3), Datum::from("c")]);
        // Extending with an empty batch is a no-op.
        a.extend_from(Batch::with_columns(2));
        assert_eq!(a.rows(), 3);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn extend_from_rejects_arity_mismatch() {
        let mut a = Batch::with_columns(1);
        a.extend_from(Batch::with_columns(2));
    }

    #[test]
    fn row_access_adapters() {
        let mut b = Batch::with_columns(2);
        b.push_row(&[Datum::Int(7), Datum::Int(8)]);
        let r = BatchRow::new(&b, 0);
        assert_eq!(r.value(1), &Datum::Int(8));
        let vals = [Datum::Int(9)];
        let s = SliceRow(&vals);
        assert_eq!(s.value(0), &Datum::Int(9));
    }
}
