//! The in-situ scan operator — the paper's §3 in one module.
//!
//! For every tuple the operator:
//!
//! 1. serves attributes from the **cache** when their row is covered (§3.2);
//! 2. otherwise resolves field positions through the **positional map** —
//!    exact jumps where a chunk stores the attribute, resumable tokenizing
//!    from the nearest anchor where it doesn't (§3.1);
//! 3. falls back to **selective tokenizing** from the line start, aborting
//!    at the last attribute the query needs (§3);
//! 4. converts to binary only what the plan needs (**selective parsing**);
//! 5. evaluates the pushed predicate *before* materializing the tuple
//!    (**selective tuple formation** — tuples "are only created after the
//!    select operator");
//! 6. as side effects, populates the positional map, cache and statistics
//!    (§3.1–3.3) and the shared row index.
//!
//! When the cache covers every requested attribute for every known row, the
//! scan never opens the file at all — the paper's "eliminating the need to
//! access hot raw data via caching".
//!
//! # Threading model
//!
//! Streaming scans run on `NoDbConfig::scan_threads` workers (`0` =
//! auto-detect, `1` = the original single-threaded path, kept verbatim for
//! fallback and A/B benchmarking). The in-situ scan is embarrassingly
//! parallel over row-ordered CSV, so the driver splits the file into
//! line-aligned partitions, one worker per partition (`crate::worker`), and
//! deterministically merges the partial results. Two partitioning modes:
//!
//! * **Row-partitioned (warm)** — when the shared row index is complete
//!   (some earlier query scanned to EOF with the map enabled), partitions
//!   are row ranges: every worker knows its global row base up front and can
//!   therefore use per-row cache reads and exact positional-map jumps,
//!   exactly like the sequential scan.
//! * **Byte-partitioned (cold)** — otherwise the file is split at byte
//!   targets snapped forward to line boundaries
//!   ([`nodb_rawcsv::reader::partition_line_ranges`]). Global row numbers
//!   are unknown until the workers count their partitions, so workers
//!   resolve every value from raw bytes; partitions whose tokenizer is
//!   plain use the fused single-pass scan
//!   ([`nodb_rawcsv::reader::BlockScanner::next_line_tokenized`]).
//!
//! Every scanner — sequential, per-partition worker, and the cold
//! pre-count — pulls its blocks through the pluggable
//! [`nodb_rawcsv::reader::BlockSource`] layer: with
//! `NoDbConfig::io_readahead_blocks > 0` each gets its own prefetch helper
//! thread that keeps blocks in flight while the scan thread tokenizes
//! (disk wait overlaps CPU; the remaining wait is reported as
//! `IoCounters::stall`), with `0` it reads synchronously as before. The
//! byte stream is identical either way, so the read-ahead depth never
//! affects the post-scan state. `NoDbConfig::pin_cores` additionally pins
//! each worker to a distinct core, best-effort.
//!
//! # Concurrent queries (lock staging)
//!
//! With the table registry (`crate::registry`), several queries may scan
//! the *same* table at once. The scan is split into three phases so the
//! table's write lock is held only for bookkeeping, never for data access:
//!
//! 1. **Prepare** ([`prepare_scan`], write lock) — update probe, access
//!    planning (LRU touches, cache query tick), coverage snapshots and warm
//!    partitioning, captured into a [`ScanPrep`] together with the table's
//!    file-state generation.
//! 2. **Scan** ([`run_partitions`] / [`stream_cached_shared`], read lock) —
//!    workers borrow the map/cache/schema immutably and stage everything in
//!    partition-local partials; fully-cached queries stream through
//!    `RawCache::peek` with local hit tallies. Any number of queries can be
//!    in this phase simultaneously.
//! 3. **Merge** ([`merge_outputs`], write lock) — staged partials are
//!    installed. The merge is *frontier-based* and therefore idempotent
//!    under interleaving: the row index skips known rows, chunk installs go
//!    through subsumption, cache admission replays from the cache's
//!    *current* coverage, and statistics replay only rows beyond each
//!    attribute's observation frontier. Merging the same full-scan output
//!    after another query already merged its own is a no-op, which is what
//!    makes N concurrent queries end in the same state as a sequential
//!    replay.
//!
//! A `ScanPrep` is only valid for the generation it was taken at: if update
//! detection reconciled an append/replacement in between, phases 2 and 3
//! refuse to run (`None`) and the caller retries against the new state.
//! Stale *plan* details (chunk indices, cache coverage) are harmless within
//! a generation — a chunk that moved or a column that was evicted simply
//! degrades to tokenizing, never to wrong data, because every chunk of the
//! same generation stores identical offsets for the same `(attr, row)`.
//!
//! # Merge invariants
//!
//! Workers never touch shared mutable state; each returns partition-local
//! partials that the driver merges **in partition order**, which makes the
//! post-scan state byte-identical to a sequential scan (property-tested in
//! `tests/property_based.rs`):
//!
//! * *Row index* — per-partition line-start lists are replayed in order
//!   ([`nodb_posmap::RowIndex::note_rows`]); offsets are absolute, so
//!   rebasing is concatenation.
//! * *Positional map* — per-partition `ChunkBuilder`s hold line-relative
//!   offsets keyed by local row; `ChunkBuilder::append_partial` rebases by
//!   concatenating in partition order, then the usual install path
//!   (subsumption, LRU, budget) runs once on the merged chunk.
//! * *Cache* — workers buffer one value per row per requested attribute
//!   (partial columns); the driver replays the sequential scan's exact
//!   admission loop — row-major, attribute-interleaved, stopping a column
//!   permanently at the first refused append — starting from the cache's
//!   coverage at merge time, so budget/LRU behavior matches the sequential
//!   scan decision for decision.
//! * *Statistics* — observations are replayed from the buffered columns in
//!   global row order under the same sampling stride, starting at each
//!   attribute's observation frontier. Replay (not accumulator merging) is
//!   deliberate: the reservoir sample depends on arrival order, so only
//!   order-preserving replay keeps statistics identical.
//! * *Results* — per-partition output batches are concatenated in partition
//!   order (`Batch::extend_from`), no reordering anywhere downstream.
//! * *Telemetry* — `Breakdown` and `IoCounters` are summed; cache hit/miss
//!   tallies travel with the scan (not as global metric diffs), so
//!   concurrent queries never misattribute each other's reads.
//!
//! The `cache_force_full_parse` ablation always runs sequentially (it
//! exists to demonstrate a pathology, not to be fast). Under the strict
//! parse-error policy a malformed row aborts the parallel scan without
//! merging any side effects; the permissive policy instead tombstones the
//! malformed cell as NULL and quarantines the row into telemetry.
//!
//! ## Partial merge on cancellation
//!
//! A cancelled or deadline-expired scan is not all-or-nothing: the workers
//! that finished their slices before the stop flag tripped hand back normal
//! partials, and the driver merges the **contiguous completed prefix** of
//! slices through the same frontier-based merge — with the end-of-scan
//! bookkeeping (`row_count`, `mark_complete`, `set_row_count`) withheld,
//! since the file was not fully visited. Statistics observation frontiers
//! *are* advanced over the merged prefix so a re-run never double-observes.
//! The query itself still fails with [`EngineError::Cancelled`] /
//! [`EngineError::DeadlineExceeded`]; the next identical query starts from
//! the warmer map/cache/statistics state the aborted one left behind — the
//! paper's "queries as advisors" principle applied to failure paths.

#![doc = " lint:cancellable — every scan/batch loop in this module must poll the"]
#![doc = " query context (`ctx.check()`) or drive an interrupt-flagged `BlockSource`;"]
#![doc = " enforced by `nodb-lint` (see crates/lint/README.md)."]

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use nodb_engine::batch::{Batch, ColView, Column, SliceRow, BATCH_SIZE};
use nodb_engine::{EngineError, EngineResult, ScanRequest, ScanSource};
use nodb_posmap::{AccessPlan, AttrSource, ChunkBuilder, LineCountMemo};
use nodb_rawcache::TypedColumn;
use nodb_rawcsv::reader::{
    count_lines_in_range_ctl, partition_line_ranges_capped, BlockScanner, LineRange,
};
use nodb_rawcsv::tokenizer::{find_byte, Tokens};
use nodb_rawcsv::{parser, Datum, IoCounters, RawCsvError};

use crate::config::{NoDbConfig, ParseErrorPolicy};
use crate::ctx::{QueryCtx, CHECK_STRIDE};
use crate::epoch::SourceEpoch;
use crate::metrics::{Breakdown, PhaseClock};
use crate::registry::TableHandle;
use crate::table::RawTable;
use crate::worker::{self, Partition, PartitionOutput, ScanContext};

/// One quarantined malformed cell, sampled for telemetry under
/// [`ParseErrorPolicy::Permissive`]: the row stayed in the result with the
/// offending cell tombstoned as NULL, and this records where it came from so
/// an operator can inspect the raw bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuarantineSample {
    /// Global data-row number of the malformed tuple.
    pub row: u64,
    /// Byte offset of the tuple's line start in the raw file.
    pub offset: u64,
    /// First requested attribute whose cell failed to parse.
    pub attr: usize,
}

impl QuarantineSample {
    /// Cap on samples retained per scan; the quarantined *count* is always
    /// exact, only the per-row detail is sampled.
    pub const MAX_SAMPLES: usize = 8;
}

/// Telemetry the scan writes as it finishes; the facade keeps a handle and
/// reads it after execution.
#[derive(Debug, Default)]
pub struct ScanTelemetry {
    /// Phase breakdown (I/O, tokenizing, parsing, convert, nodb). With
    /// `scan_threads > 1` the slices are summed *thread time* across
    /// workers, so their total can exceed the query's wall clock (and the
    /// facade's derived `processing` remainder can clamp to zero).
    pub breakdown: Breakdown,
    /// Raw-file I/O counters, including the **I/O stall time**
    /// (`IoCounters::stall`): the summed time scan threads spent blocked
    /// waiting for bytes — the whole `read` on the synchronous source, only
    /// the empty-pipeline wait with read-ahead. This is what separates
    /// "waiting on disk" from "tokenizing" in the Figure-3-style breakdown:
    /// `io_readahead_blocks > 0` shrinks `io.stall` while `bytes_read`
    /// stays put.
    pub io: IoCounters,
    /// Tuples visited.
    pub rows_scanned: u64,
    /// True when no file access was needed (pure cache scan).
    pub fully_cached: bool,
    /// True when a positional-map chunk was installed at scan end.
    pub installed_chunk: bool,
    /// Cache reads served by this scan. Tallied per scan rather than
    /// derived from global cache-metric deltas so concurrent queries on the
    /// same table never count each other's reads.
    pub cache_hits: u64,
    /// Cache reads refused by this scan (value resolved from raw bytes).
    pub cache_misses: u64,
    /// True when a cold scan ran the two-phase newline pre-count (global
    /// row bases established before parsing, enabling mid-partition cache
    /// and positional-map reads).
    pub precounted: bool,
    /// Partition slices executed by a worker other than their run's owner
    /// (work stealing under skewed line widths). Always 0 for sequential
    /// scans and static partitioning.
    pub steals: u64,
    /// Rows with at least one malformed cell tombstoned under
    /// [`ParseErrorPolicy::Permissive`] (always 0 under strict).
    pub rows_quarantined: u64,
    /// Capped per-row detail of the quarantined rows (first
    /// [`QuarantineSample::MAX_SAMPLES`] in row order).
    pub quarantine_samples: Vec<QuarantineSample>,
    /// The scan stopped before EOF (cancellation or deadline) and merged
    /// only the completed prefix of its partials.
    pub stopped_early: bool,
    /// Source-epoch invalidations this query observed: how many times the
    /// backing file was found truncated/rewritten (at planning, mid-scan,
    /// or at the post-scan re-validation) and the adaptive state was
    /// quarantined for a cold retry. 0 on the happy path.
    pub source_changed: u64,
}

/// Rewrite a partition-local row number in a worker error to the global
/// file row: cold byte-partitioned workers count rows from their partition
/// start, so the driver adds the preceding partitions' row counts before
/// surfacing the error (warm workers already use global rows).
fn rebase_row_error(e: EngineError, base: u64) -> EngineError {
    match e {
        EngineError::Csv(RawCsvError::ParseField {
            row,
            attr,
            ty,
            text,
        }) => EngineError::Csv(RawCsvError::ParseField {
            row: row + base,
            attr,
            ty,
            text,
        }),
        EngineError::Csv(RawCsvError::MissingField { row, attr, present }) => {
            EngineError::Csv(RawCsvError::MissingField {
                row: row + base,
                attr,
                present,
            })
        }
        other => other,
    }
}

/// Best-effort extraction of a panic payload's message (`&str` / `String`
/// payloads cover `panic!` and `assert!`; anything else gets a placeholder).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Map an error from a layer below the engine to the structured stop error
/// when the query context tripped mid-operation (a cancelled refill
/// surfaces as a wrapped "scan interrupted" I/O error otherwise).
fn check_stop<T>(ctx: &QueryCtx, r: EngineResult<T>) -> EngineResult<T> {
    r.map_err(|e| {
        if ctx.is_stopped() {
            ctx.stop_error()
        } else {
            e
        }
    })
}

/// Lock a mutex, recovering the guard from a poisoned lock: every value
/// behind these mutexes (telemetry, result slots) is plain data that stays
/// structurally valid even if a panicking thread held the guard, and the
/// panic itself is surfaced separately as [`EngineError::WorkerPanic`].
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // lint: lock-ok this is the recovery shim the poison-lock rule routes to
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Shared handle to the telemetry a scan publishes when it finishes.
///
/// `Arc<Mutex<…>>` rather than `Rc<RefCell<…>>`: the parallel scan path
/// requires every scan-adjacent type to be `Send`, and the facade keeps its
/// clone across the engine call. The lock is touched once per query.
pub type TelemetryHandle = Arc<Mutex<ScanTelemetry>>;

/// Selective tuple formation shared by the sequential scan, the partition
/// workers and the cached streamer: evaluate the pushed predicate over the
/// resolved values and, if it passes, append one output row to `batch`
/// (predicate-only columns stay NULL). Returns whether the row was formed.
pub(crate) fn form_tuple_into(
    req: &ScanRequest,
    values: &mut [Option<Datum>],
    pred_row: &mut Vec<Datum>,
    batch: &mut Batch,
) -> bool {
    if let Some(pred) = &req.predicate {
        pred_row.clear();
        for v in values.iter() {
            pred_row.push(v.clone().unwrap_or(Datum::Null));
        }
        if !pred.eval_filter(&SliceRow(&pred_row[..])) {
            return false;
        }
    }
    for (i, v) in values.iter_mut().enumerate() {
        let d = if req.materialize.get(i).copied().unwrap_or(true) {
            v.take().unwrap_or(Datum::Null)
        } else {
            Datum::Null // predicate-only column: never materialized
        };
        batch.push_value(i, d);
    }
    batch.finish_row();
    true
}

/// The vectorized warm path's batch former: serve cache rows `[lo, hi)` of
/// the requested attributes as one typed batch, filtering columnar.
///
/// The pushed predicate runs as a vectorized kernel over the *borrowed*
/// cache columns (`engine::expr::RExpr::filter_columnar` — selection vector
/// out, no per-cell `Datum` boxing, row-at-a-time fallback inside for
/// unsupported expression shapes). Only then is anything copied, and only
/// for materialized positions (late materialization):
///
/// * selective outcome (< half the rows pass) — survivors are gathered into
///   dense typed columns (`TypedColumn::gather`), nothing else is copied;
/// * mostly-passing outcome — the full segment is exported once
///   (`TypedColumn::export_range`, a `memcpy` for fixed-width types) and the
///   selection vector travels with the batch for the engine's
///   selection-aware kernels;
/// * predicate-only positions (`materialize[i] == false`) become all-NULL
///   columns either way, matching the row-wise path's never-materialized
///   NULLs byte for byte.
pub(crate) fn cached_segment_batch(
    req: &ScanRequest,
    cols: &[&TypedColumn],
    lo: usize,
    hi: usize,
) -> Batch {
    let rows = hi.saturating_sub(lo);
    let materialized = |i: usize| req.materialize.get(i).copied().unwrap_or(true);
    let sel: Option<Vec<u32>> = req.predicate.as_ref().map(|p| {
        let views: Vec<ColView> = cols
            .iter()
            .map(|&c| ColView::Typed { col: c, base: lo })
            .collect();
        p.filter_columnar(&views, rows)
    });
    if cols.is_empty() {
        // COUNT(*)-style scan: zero attributes, cardinality only.
        return Batch::rows_only(sel.map(|s| s.len()).unwrap_or(rows));
    }
    match sel {
        None => Batch::from_parts(
            cols.iter()
                .enumerate()
                .map(|(i, c)| {
                    if materialized(i) {
                        Column::Typed(c.export_range(lo, hi))
                    } else {
                        Column::Nulls(rows)
                    }
                })
                .collect(),
            None,
        ),
        Some(sel) if sel.len() * 2 < rows => Batch::from_parts(
            cols.iter()
                .enumerate()
                .map(|(i, c)| {
                    if materialized(i) {
                        Column::Typed(c.gather(&sel, lo))
                    } else {
                        Column::Nulls(sel.len())
                    }
                })
                .collect(),
            None,
        ),
        Some(sel) => Batch::from_parts(
            cols.iter()
                .enumerate()
                .map(|(i, c)| {
                    if materialized(i) {
                        Column::Typed(c.export_range(lo, hi))
                    } else {
                        Column::Nulls(rows)
                    }
                })
                .collect(),
            Some(sel),
        ),
    }
}

/// Resolve the cache column handles backing a fully-cached scan: `None`
/// when any requested attribute is not resident with at least `rows`
/// coverage (a concurrent eviction since planning — the caller re-plans).
pub(crate) fn cached_column_handles<'a>(
    cache: &'a nodb_rawcache::RawCache,
    attrs: &[usize],
    rows: usize,
) -> Option<Vec<&'a TypedColumn>> {
    attrs
        .iter()
        .map(|&a| cache.column(a).filter(|c| c.len() >= rows))
        .collect()
}

/// Everything a scan decides up front, captured under the table's write
/// lock so the data phase can run under a read lock (or no lock at all for
/// cold partitioning). Tied to the table's file-state `generation`: the
/// scan and merge phases refuse to run against a different generation.
pub(crate) struct ScanPrep {
    /// The planner's scan request.
    pub req: ScanRequest,
    /// Positional-map access plan (None when the map is unusable).
    pub plan: Option<AccessPlan>,
    /// Whether this scan collects a new positional-map chunk.
    pub build_chunk: bool,
    /// Row-count hint for chunk-builder preallocation.
    pub rows_hint: usize,
    /// Cache coverage per requested position at plan time.
    pub cache_cov: Vec<usize>,
    /// LRU tick from `RawCache::begin_query` protecting this query's columns.
    pub query_tick: u64,
    /// Statistics observation frontier per requested position at plan time
    /// (the sequential streaming path observes only rows at or beyond it).
    pub stats_frontier: Vec<u64>,
    /// Pure-cache fast path: every requested attribute covered for every
    /// known row.
    pub fully_cached: bool,
    /// Known row count backing `fully_cached`.
    pub cached_rows: u64,
    /// Row-partitioned (warm) mode is available.
    pub warm: bool,
    /// Precomputed row-range partitions (warm mode, `threads >= 2` only).
    pub warm_partitions: Vec<Partition>,
    /// Resolved worker count.
    pub threads: usize,
    /// Partition-slice target (`threads × steal granularity`).
    pub slice_target: usize,
    /// A cold parallel scan should run the newline pre-count: the knob is
    /// on and there is state worth reusing mid-partition (partial cache
    /// coverage of a requested attribute, or a usable map chunk).
    pub precount: bool,
    /// The access plan resolves at least one attribute through a chunk
    /// (exact or anchor). Workers only receive the map when this holds, so
    /// an assist-free cold scan keeps the fused single-pass fast path.
    pub plan_assists: bool,
    /// Snapshot of the positional map's memoized newline counts, consulted
    /// lock-free by the pre-count pass.
    pub line_counts: LineCountMemo,
    /// File-state generation this prep belongs to.
    pub generation: u64,
    /// Raw file path (cold partitioning runs without any table lock).
    pub path: PathBuf,
    /// Whether partition 0 of a cold scan must skip a header line.
    pub has_header: bool,
    /// Per-query deadline/cancellation state; every execution path of this
    /// scan polls it cooperatively.
    pub ctx: QueryCtx,
    /// Source epoch this scan was planned against (`None` when
    /// `detect_updates` is off — the legacy trust-the-file behavior).
    /// Workers fence every read to the epoch's trusted length, and the
    /// merge phases re-validate it post-scan so a mid-scan rewrite never
    /// installs poisoned partials.
    pub epoch: Option<SourceEpoch>,
}

impl ScanPrep {
    /// The torn-row fence: byte length of the file prefix this scan
    /// trusts (up to the last newline observed at epoch capture). `None`
    /// when mutation detection is off.
    pub fn source_len(&self) -> Option<u64> {
        self.epoch.as_ref().map(|e| e.trusted_len)
    }
}

/// Phase 1 of a scan: access planning and coverage snapshots, run under the
/// table's write lock (access planning touches LRU clocks and the cache
/// query tick). Also publishes the `fully_cached` flag to the telemetry.
pub(crate) fn prepare_scan(
    table: &mut RawTable,
    config: &NoDbConfig,
    req: ScanRequest,
    telemetry: &TelemetryHandle,
    ctx: QueryCtx,
) -> ScanPrep {
    let n = req.attrs.len();
    let cache_cov: Vec<usize> = if config.enable_cache {
        table.cache.coverage_of(&req.attrs)
    } else {
        vec![0; n]
    };
    let query_tick = if config.enable_cache {
        table.cache.begin_query(&req.attrs)
    } else {
        0
    };

    // Quoted fields may contain the delimiter, so a stored offset is not
    // enough to re-tokenize from mid-tuple: the quote state is unknown. The
    // positional map is therefore only used on plain (unquoted) tokenizer
    // configurations; quoted files still get selective tokenizing, caching
    // and statistics.
    let map_usable = config.enable_positional_map && table.tokenizer.quote.is_none();
    let plan = map_usable.then(|| table.map.plan_access(&req.attrs));
    let build_chunk = matches!(&plan, Some(p) if p.should_index);
    let rows_hint = table.map.row_index().len();

    let stats_frontier: Vec<u64> = if config.enable_stats {
        req.attrs
            .iter()
            .map(|&a| table.stats.observed_upto(a))
            .collect()
    } else {
        vec![0; n]
    };

    // Pure-cache fast path: every requested attribute covered for every
    // known row.
    let (fully_cached, cached_rows) = match table.row_count {
        Some(rc) if config.enable_cache => {
            let all = cache_cov.iter().all(|&c| c as u64 >= rc);
            (all, rc)
        }
        _ => (false, 0),
    };
    lock_recover(telemetry).fully_cached = fully_cached;

    let threads = config.effective_scan_threads();
    let slice_target = config.scan_slice_target();
    let warm = plan.is_some() && table.map.row_index().is_complete() && table.row_count.is_some();
    let mut warm_partitions: Vec<Partition> = Vec::new();
    if warm && threads >= 2 && !fully_cached {
        let total = table.row_count.expect("warm mode") as usize;
        let idx = table.map.row_index();
        let parts = slice_target.min(total.max(1));
        for k in 0..parts {
            let lo = total * k / parts;
            let hi = total * (k + 1) / parts;
            if lo >= hi {
                continue;
            }
            let start = idx.offset(lo).expect("complete row index");
            let end = if hi < total {
                idx.offset(hi).expect("complete row index")
            } else {
                u64::MAX // last partition runs to EOF
            };
            warm_partitions.push(Partition {
                range: LineRange { start, end },
                skip_header: false, // data-row offsets already skip it
                row_base: Some(lo),
                rows: Some(hi - lo),
            });
        }
    }

    // Two-phase cold scan trigger: the pre-count only pays off when a
    // worker could reuse something mid-partition — partial cache coverage
    // of a requested attribute, or a map chunk resolving one (after an
    // append, say). A first-ever scan skips it (nothing to reuse), and so
    // does a near-empty cache: the counting pass reads the whole file once
    // (unless memoized), so a cache covering a vanishing fraction of a
    // known row count would cost ~2x I/O to serve a handful of rows.
    let plan_assists = matches!(&plan, Some(p) if p
        .sources
        .iter()
        .any(|(_, s)| !matches!(s, AttrSource::Scan)));
    let best_cov = cache_cov.iter().copied().max().unwrap_or(0) as u64;
    let cache_worthwhile = config.enable_cache
        && best_cov > 0
        && match table.row_count {
            // ≥ ~3% of the known rows; below that, re-parsing the covered
            // prefix is cheaper than a counting pass over the file.
            Some(rc) => best_cov.saturating_mul(32) >= rc,
            // Unknown total (e.g. first rescan after an append): the
            // coverage is a full pre-append prefix — assume worthwhile.
            None => true,
        };
    let has_reuse = cache_worthwhile || plan_assists;
    let precount = config.cold_precount && has_reuse && !warm && !fully_cached && threads >= 2;
    let line_counts = if precount {
        table.map.line_counts().snapshot()
    } else {
        LineCountMemo::default()
    };

    ScanPrep {
        req,
        plan,
        build_chunk,
        rows_hint,
        cache_cov,
        query_tick,
        stats_frontier,
        fully_cached,
        cached_rows,
        warm,
        warm_partitions,
        threads,
        slice_target,
        precount,
        plan_assists,
        line_counts,
        generation: table.generation,
        path: table.path.clone(),
        has_header: table.has_header,
        ctx,
        epoch: config.detect_updates.then(|| *table.epoch()),
    }
}

/// Post-scan epoch re-validation: run after the data phase and **before**
/// any merge, so a file rewritten or truncated while the scan streamed it
/// can never install poisoned map/cache/statistics partials. An `Appended`
/// verdict is fine — the scanned prefix is still byte-identical. This also
/// narrows the one blind spot of pre-scan validation (a same-length
/// in-place rewrite within mtime granularity) to the window between the
/// last read and this probe.
pub(crate) fn revalidate_epoch(prep: &ScanPrep) -> EngineResult<()> {
    let Some(epoch) = &prep.epoch else {
        return Ok(());
    };
    let invalidated = match epoch.classify(&prep.path) {
        Ok(change) => change.invalidates(),
        // Can't even probe the file (deleted mid-scan, permissions
        // yanked): same fate as a rewrite.
        Err(_) => true,
    };
    if invalidated {
        return Err(source_changed_err(prep));
    }
    Ok(())
}

/// The `SourceChanged` error for this scan, labeled with the backing path
/// (the facade knows the table name; the path is what an operator needs).
pub(crate) fn source_changed_err(prep: &ScanPrep) -> EngineError {
    EngineError::SourceChanged {
        table: prep.path.display().to_string(),
    }
}

/// Everything a cold byte-partitioned scan decides before its workers run.
pub(crate) struct ColdScanPlan {
    /// Partition slices, with global row bases filled in when the
    /// pre-count ran.
    pub partitions: Vec<Partition>,
    /// Global row bases are known: workers may read the cache and map
    /// mid-partition, and error rows are already global.
    pub rows_known: bool,
    /// Boundary counts the pre-count newly established, memoized into the
    /// positional map at merge: `(byte offset, raw line starts before it)`.
    pub new_counts: Vec<(u64, u64)>,
    /// I/O performed by the counting pass.
    pub io: IoCounters,
}

/// Phase 0 of a cold parallel scan: byte-partition the file into slices
/// and, when the prep asked for it, run the **newline pre-count** — one
/// SWAR counting pass per slice (parallelized, memo-assisted) that
/// establishes every slice's global first-row number before any parsing.
/// That is what lets cold workers consult the raw cache and positional-map
/// chunks mid-partition: per-row adaptive reads need global row numbers,
/// and a pure byte split does not know them.
///
/// Boundary counts are read from the prep's memo snapshot where available;
/// only unknown slices are counted, concurrently on up to `prep.threads`
/// threads — each reusing the scan's read-ahead pipeline
/// (`config.io_readahead_blocks`) and pinned to a core when
/// `config.pin_cores` asks for it. Runs without any table lock (it touches
/// only the raw file and the snapshot).
pub(crate) fn plan_cold_partitions(
    prep: &ScanPrep,
    config: &NoDbConfig,
) -> EngineResult<ColdScanPlan> {
    // Partition only the trusted epoch prefix: bytes past the fence (a
    // torn trailing row, a concurrent append) belong to the next epoch.
    let ranges = partition_line_ranges_capped(
        &prep.path,
        prep.slice_target,
        prep.source_len().unwrap_or(u64::MAX),
    )?;
    let n = ranges.len();
    let mut plan = ColdScanPlan {
        partitions: ranges
            .iter()
            .enumerate()
            .map(|(i, &range)| Partition {
                range,
                skip_header: prep.has_header && i == 0,
                row_base: None,
                rows: None,
            })
            .collect(),
        rows_known: false,
        new_counts: Vec::new(),
        io: IoCounters::default(),
    };
    if !prep.precount || n == 0 {
        return Ok(plan);
    }

    // Memoized raw-line-start count before a boundary offset, if known.
    let memo = |off: u64| prep.line_counts.lines_before(off);
    // Boundary `i` is the start of range `i`; boundary `n` is the file end.
    let boundary = |i: usize| -> u64 {
        if i < n {
            ranges[i].start
        } else {
            ranges[n - 1].end
        }
    };
    // Lines each range owns: memo diff when both boundaries are known,
    // otherwise a counting pass over the range.
    let mut owned: Vec<Option<u64>> = (0..n)
        .map(|i| Some(memo(boundary(i + 1))? - memo(boundary(i))?))
        .collect();
    let missing: Vec<usize> = (0..n).filter(|&i| owned[i].is_none()).collect();
    if !missing.is_empty() {
        type CountedRanges = Result<Vec<(usize, u64, IoCounters)>, RawCsvError>;
        let counters = prep.threads.min(missing.len()).max(1);
        let counted: Vec<CountedRanges> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..counters)
                .map(|w| {
                    let lo = missing.len() * w / counters;
                    let hi = missing.len() * (w + 1) / counters;
                    let mine = &missing[lo..hi];
                    let ranges = &ranges;
                    let path = &prep.path;
                    let (io_block, readahead, pin) = (
                        config.io_block_size,
                        config.io_readahead_blocks,
                        config.pin_cores,
                    );
                    let profile = config.io_profile();
                    let interrupt = prep.ctx.stop_flag();
                    s.spawn(move || {
                        if pin {
                            crate::affinity::pin_current_thread(w);
                        }
                        let mut out = Vec::with_capacity(mine.len());
                        for &i in mine {
                            let (lines, io) = count_lines_in_range_ctl(
                                path,
                                io_block,
                                readahead,
                                ranges[i],
                                profile,
                                Some(Arc::clone(&interrupt)),
                            )?;
                            out.push((i, lines, io));
                        }
                        Ok(out)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|payload| {
                        Err(RawCsvError::io(
                            "newline pre-count",
                            std::io::Error::other(format!(
                                "counting worker panicked: {}",
                                panic_message(payload)
                            )),
                        ))
                    })
                })
                .collect()
        });
        for r in counted {
            for (i, lines, io) in r? {
                owned[i] = Some(lines);
                plan.io.merge(io);
            }
        }
    }

    // Cumulative raw-line counts at each boundary; newly established ones
    // go to the memo at merge time.
    let hdr = u64::from(prep.has_header);
    let mut cum = 0u64;
    for (i, slice_owned) in owned.iter().enumerate() {
        if memo(boundary(i)).is_none() {
            plan.new_counts.push((boundary(i), cum));
        }
        let raw_before = cum;
        let raw_owned = slice_owned.expect("all ranges counted");
        cum += raw_owned;
        // Raw lines → data rows: the header line (always owned by slice 0)
        // is not a data row.
        let data_base = raw_before - hdr.min(raw_before);
        let data_rows = raw_owned - if i == 0 { hdr.min(raw_owned) } else { 0 };
        plan.partitions[i].row_base = Some(data_base as usize);
        plan.partitions[i].rows = Some(data_rows as usize);
    }
    if memo(boundary(n)).is_none() {
        plan.new_counts.push((boundary(n), cum));
    }
    plan.rows_known = true;
    Ok(plan)
}

/// Claim the next partition slice for worker `me`: pop from its own run
/// first, then steal from the peer with the most remaining slices. Claims
/// are `fetch_add` on per-run cursors, so every slice is handed out exactly
/// once regardless of interleaving; the boolean reports a steal.
fn claim_slice(
    me: usize,
    cursors: &[AtomicUsize],
    bounds: &[(usize, usize)],
) -> Option<(usize, bool)> {
    let i = cursors[me].fetch_add(1, Ordering::Relaxed);
    if i < bounds[me].1 {
        return Some((i, false));
    }
    loop {
        let victim = (0..cursors.len())
            .filter(|&j| j != me)
            .map(|j| {
                let next = cursors[j].load(Ordering::Relaxed).max(bounds[j].0);
                (bounds[j].1.saturating_sub(next), j)
            })
            .max();
        match victim {
            Some((remaining, j)) if remaining > 0 => {
                let i = cursors[j].fetch_add(1, Ordering::Relaxed);
                if i < bounds[j].1 {
                    return Some((i, true));
                }
                // Lost the race for the victim's tail; rescan.
            }
            _ => return None,
        }
    }
}

/// Phase 2 of a parallel scan: run the partition slices on `prep.threads`
/// workers over shared borrows of the table and collect the partials in
/// slice order. Needs only `&RawTable`, so concurrent queries run this
/// phase under the table's read lock.
///
/// Scheduling is a **work-stealing run queue**: each worker owns a
/// contiguous run of slices (adjacent file regions, so a worker streams
/// forward through the file like the static split did) and claims them via
/// an atomic cursor; a worker whose run drains steals slices from the
/// most-loaded peer. Which worker executes a slice never affects the
/// output — partials are merged in slice order — so every steal
/// interleaving produces the byte-identical post-scan state the merge
/// invariants promise. Returns the outputs plus the number of stolen
/// slices (telemetry).
///
/// What [`run_partitions`] hands back.
pub(crate) struct ScanOutcome {
    /// Completed partition partials — all of them on success, the
    /// contiguous completed prefix when `stopped` is set.
    pub outputs: Vec<PartitionOutput>,
    /// Stolen-slice tally (telemetry).
    pub steals: u64,
    /// The cancellation/deadline error that stopped the scan, when one did.
    pub stopped: Option<EngineError>,
}

/// A worker error aborts the scan; the error reported is the
/// lowest-numbered slice's. Cold-mode errors without a pre-count are
/// rebased to global row numbers using the preceding slices' row counts
/// (pre-counted and warm workers already use global rows).
///
/// Two error classes get special handling:
///
/// * A worker **panic** is contained at the worker boundary
///   (`catch_unwind`) and surfaced as [`EngineError::WorkerPanic`] with the
///   slice index and panic payload — one bad slice never takes down the
///   process or poisons shared state.
/// * **Cancellation / deadline** errors do not abort: the contiguous
///   completed prefix of slices is handed back in
///   [`ScanOutcome::stopped`], so the caller can merge the partials before
///   failing the query (see the module docs on partial merge).
pub(crate) fn run_partitions(
    table: &RawTable,
    config: &NoDbConfig,
    prep: &ScanPrep,
    partitions: &[Partition],
) -> EngineResult<ScanOutcome> {
    // With global row bases known — warm mode, or a pre-counted cold scan —
    // workers can address per-row adaptive state: the cache always, the map
    // only when the plan actually resolves something through a chunk (an
    // assist-free plan would just cost the fused fast path for nothing).
    let rows_known = partitions.first().is_some_and(|p| p.row_base.is_some());
    let adaptive = prep.warm || rows_known;
    let ctx = ScanContext {
        config: *config,
        ctx: &prep.ctx,
        req: &prep.req,
        tokenizer: table.tokenizer,
        schema: &table.schema,
        path: &table.path,
        map: (adaptive && prep.plan_assists).then_some(&table.map),
        plan: if adaptive && prep.plan_assists {
            prep.plan.as_ref()
        } else {
            None
        },
        cache: if adaptive && config.enable_cache {
            Some(&table.cache)
        } else {
            None
        },
        cache_cov: &prep.cache_cov,
        collect_side: config.enable_cache || config.enable_stats,
        build_chunk: prep.build_chunk,
        // A warm scan's row index is complete by definition — collecting
        // offsets there would only replay no-ops.
        collect_offsets: prep.plan.is_some() && !prep.warm,
        source_len: prep.source_len(),
    };

    let workers = prep.threads.min(partitions.len()).max(1);
    let steals = AtomicU64::new(0);
    let slots: Vec<Mutex<Option<EngineResult<PartitionOutput>>>> =
        partitions.iter().map(|_| Mutex::new(None)).collect();
    let bounds: Vec<(usize, usize)> = (0..workers)
        .map(|w| {
            (
                partitions.len() * w / workers,
                partitions.len() * (w + 1) / workers,
            )
        })
        .collect();
    let cursors: Vec<AtomicUsize> = bounds.iter().map(|&(lo, _)| AtomicUsize::new(lo)).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let (ctx, slots, bounds, cursors, steals) =
                    (&ctx, &slots, &bounds, &cursors, &steals);
                s.spawn(move || {
                    // Best-effort core pinning: worker w on core w (modulo
                    // available cores), so workers stop migrating mid-scan.
                    // Never load-bearing — pinning can silently fail.
                    if ctx.config.pin_cores {
                        crate::affinity::pin_current_thread(w);
                    }
                    // Errors park in the slice's slot; the worker keeps
                    // draining so every lower-numbered slice completes and
                    // the driver can report the lowest-slice error with an
                    // exact row rebase, exactly like the static split did.
                    while let Some((idx, stolen)) = claim_slice(w, cursors, bounds) {
                        if stolen {
                            steals.fetch_add(1, Ordering::Relaxed);
                        }
                        // Worker-panic containment: a panicking slice is
                        // converted to a structured error right here, so the
                        // other workers keep draining and the process (and
                        // any lock the panic would otherwise poison)
                        // survives.
                        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            worker::run_partition(ctx, partitions[idx])
                        }))
                        .unwrap_or_else(|payload| {
                            Err(EngineError::WorkerPanic {
                                partition: idx,
                                message: panic_message(payload),
                            })
                        });
                        *lock_recover(&slots[idx]) = Some(r);
                    }
                })
            })
            .collect();
        for h in handles {
            // A panicked worker leaves its claimed slice's slot empty; the
            // collection loop below reports it.
            let _ = h.join();
        }
    });

    let steals = steals.into_inner();
    let collected: Vec<EngineResult<PartitionOutput>> = slots
        .into_iter()
        .enumerate()
        .map(|(idx, slot)| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .unwrap_or_else(|| {
                    // `catch_unwind` converts every worker panic in place, so
                    // an empty slot means the worker thread died before
                    // reporting — still surfaced structurally rather than as
                    // a bare string.
                    Err(EngineError::WorkerPanic {
                        partition: idx,
                        message: "worker exited without reporting a result".into(),
                    })
                })
        })
        .collect();
    // Source mutation outranks every other failure, whatever slice it hit:
    // a lower slice's cancellation would otherwise win and merge a prefix
    // of partials read from a file that no longer exists in that form, and
    // a lower slice's parse error (rewrite garbage) would mislabel the
    // root cause.
    if let Some(e) = collected.iter().find_map(|r| match r {
        Err(EngineError::SourceChanged { table }) => Some(EngineError::SourceChanged {
            table: table.clone(),
        }),
        _ => None,
    }) {
        return Err(e);
    }
    let mut results: Vec<PartitionOutput> = Vec::with_capacity(collected.len());
    for r in collected {
        match r {
            Ok(o) => results.push(o),
            Err(e @ (EngineError::Cancelled | EngineError::DeadlineExceeded)) => {
                // Cooperative stop: hand back the contiguous completed
                // prefix so the caller can merge the partials (the NoDB
                // "no work is wasted" promise applied to failure paths).
                return Ok(ScanOutcome {
                    outputs: results,
                    steals,
                    stopped: Some(e),
                });
            }
            Err(e) => {
                // Abort without merging any side effects. Workers without
                // global row bases number rows slice-locally, so rebase row
                // references by the preceding slices' row counts to report
                // the true file row.
                let e = if prep.warm || rows_known {
                    e
                } else {
                    let base: usize = results.iter().map(|o| o.rows).sum();
                    rebase_row_error(e, base as u64)
                };
                return Err(e);
            }
        }
    }
    Ok(ScanOutcome {
        outputs: results,
        steals,
        stopped: None,
    })
}

/// What [`merge_outputs`] hands back: the total rows scanned and the output
/// batches ready for the engine.
pub(crate) struct MergeInfo {
    /// Data rows the scan visited.
    pub total: usize,
    /// Re-packed output batches in row order.
    pub queue: VecDeque<Batch>,
}

/// Phase 3 of a parallel scan: merge the per-partition partials into the
/// table's adaptive structures, in partition order, under the table's write
/// lock, and publish the scan telemetry.
///
/// Every sub-merge is **frontier-based** so interleaved queries converge to
/// the sequential-replay state: the row index skips known rows, the chunk
/// install goes through subsumption, cache admission replays from the
/// cache's *current* coverage, and statistics replay only rows at or beyond
/// each attribute's observation frontier. With exclusive access (the
/// `scan_threads = 1` facade path or direct `RawScanSource` use) the
/// frontiers equal the plan-time snapshots, reproducing the sequential scan
/// decision for decision.
/// `complete` is false when the scan stopped before EOF (cancellation /
/// deadline) and `results` holds only the contiguous completed prefix of
/// partitions: every frontier-based sub-merge still runs over that prefix,
/// but the end-of-scan bookkeeping (`row_count`, `mark_complete`,
/// `set_row_count`) is withheld — the file was not fully visited, so those
/// totals are unknown. Statistics observation frontiers are still advanced
/// over the merged prefix, so a re-run never double-observes.
#[allow(clippy::too_many_arguments)] // phase boundary: each argument is one staged ingredient
pub(crate) fn merge_outputs(
    table: &mut RawTable,
    config: &NoDbConfig,
    prep: &ScanPrep,
    cold: Option<&ColdScanPlan>,
    steals: u64,
    mut results: Vec<PartitionOutput>,
    mut bd: Breakdown,
    telemetry: &TelemetryHandle,
    clock: &PhaseClock,
    complete: bool,
) -> MergeInfo {
    // Ordered merge. Timed as NoDB-structure maintenance, like the
    // sequential scan's chunk install.
    let t = clock.start();
    let n = prep.req.attrs.len();
    let bases: Vec<usize> = results
        .iter()
        .scan(0usize, |acc, o| {
            let b = *acc;
            *acc += o.rows;
            Some(b)
        })
        .collect();
    let total = bases.last().copied().unwrap_or(0) + results.last().map(|o| o.rows).unwrap_or(0);

    let mut io = IoCounters::default();
    let mut worker_hits = 0u64;
    let mut worker_misses = 0u64;
    let mut quarantined = 0u64;
    let mut quarantine_samples: Vec<QuarantineSample> = Vec::new();
    // Cold workers without a pre-count number sample rows slice-locally;
    // rebase by the preceding partitions' row counts, like error rows.
    let rows_global = prep.warm || cold.is_some_and(|c| c.rows_known);
    for (p, o) in results.iter().enumerate() {
        bd.merge(&o.breakdown);
        io.merge(o.io);
        worker_hits += o.cache_hits;
        worker_misses += o.cache_misses;
        quarantined += o.quarantined;
        for s in &o.quarantine_samples {
            if quarantine_samples.len() >= QuarantineSample::MAX_SAMPLES {
                break;
            }
            let mut s = *s;
            if !rows_global {
                s.row += bases[p] as u64;
            }
            quarantine_samples.push(s);
        }
    }

    // Cold-scan bookkeeping: account the pre-count pass's I/O and memoize
    // the newline counts it established — boundary counts from the counting
    // pass, plus the file-total count every completed cold scan knows. The
    // next cold scan over the same bytes partitions at the same offsets and
    // skips the counting pass entirely.
    if let Some(cp) = cold {
        io.merge(cp.io);
        for &(off, lines) in &cp.new_counts {
            table.map.line_counts_mut().note(off, lines);
        }
        // The file-total memo entry derives from `total`, which only equals
        // the file's row count when every partition completed.
        if complete {
            if let Some(last) = cp.partitions.last() {
                let raw_lines = total as u64 + u64::from(prep.has_header);
                table.map.line_counts_mut().note(last.range.end, raw_lines);
            }
        }
    }

    if prep.plan.is_some() {
        for (p, o) in results.iter().enumerate() {
            table
                .map
                .row_index_mut()
                .note_rows(bases[p], &o.line_starts);
        }
    }

    let mut installed = false;
    if prep.build_chunk {
        let mut merged = ChunkBuilder::with_capacity(prep.req.attrs.clone(), total);
        for o in &mut results {
            if let Some(wb) = o.builder.take() {
                merged.append_partial(wb);
            }
        }
        installed = table.map.install(merged).is_some();
    }

    // Side columns: concatenate the per-partition partial cache columns in
    // partition order (segment merge) — one full column per requested
    // attribute, addressed by global row below.
    let collect_side = config.enable_cache || config.enable_stats;
    let side: Vec<TypedColumn> = if collect_side {
        let mut it = results.iter_mut();
        let mut side = it
            .next()
            .map(|o| std::mem::take(&mut o.side_cols))
            .unwrap_or_else(|| {
                prep.req
                    .attrs
                    .iter()
                    .map(|&a| TypedColumn::new(table.schema.ty(a)))
                    .collect()
            });
        for o in it {
            for (full, seg) in side.iter_mut().zip(o.side_cols.drain(..)) {
                full.append_segment(seg);
            }
        }
        side
    } else {
        Vec::new()
    };

    // Cache: replay the sequential admission loop — row-major,
    // attribute-interleaved, a column stopping permanently at its first
    // refused append — so budget/LRU decisions are identical. The admission
    // frontier is the cache's coverage *now*: rows another interleaved
    // query already admitted are skipped, never appended twice.
    if config.enable_cache {
        table.cache.record_reads(worker_hits, worker_misses);
        if total > 0 {
            let mut next = table.cache.coverage_of(&prep.req.attrs);
            let mut row = next
                .iter()
                .copied()
                .filter(|&v| v != usize::MAX)
                .min()
                .unwrap_or(total);
            while row < total {
                if next.iter().all(|&v| v == usize::MAX || v > row) {
                    // Nothing appends at this row; jump to the next frontier.
                    match next
                        .iter()
                        .copied()
                        .filter(|&v| v != usize::MAX && v > row)
                        .min()
                    {
                        Some(r) => {
                            row = r;
                            continue;
                        }
                        None => break,
                    }
                }
                for (i, slot) in next.iter_mut().enumerate() {
                    if *slot == row {
                        let d = side[i].datum(row).unwrap_or(Datum::Null);
                        let ty = table.schema.ty(prep.req.attrs[i]);
                        if table
                            .cache
                            .append(prep.req.attrs[i], ty, &d, prep.query_tick)
                        {
                            *slot += 1;
                        } else {
                            *slot = usize::MAX;
                        }
                    }
                }
                row += 1;
            }
        }
    }

    // Statistics: order-preserving replay under the shared stride (see
    // module docs on why replay, not accumulator merging), starting at each
    // attribute's observation frontier as of this merge.
    if config.enable_stats && total > 0 {
        let frontiers: Vec<u64> = prep
            .req
            .attrs
            .iter()
            .map(|&a| table.stats.observed_upto(a))
            .collect();
        let mut row = frontiers.iter().copied().min().unwrap_or(0);
        while (row as usize) < total {
            if table.stats.should_sample(row) {
                for (i, (col, &attr)) in side.iter().zip(&prep.req.attrs).enumerate() {
                    if row >= frontiers[i] {
                        let d = col.datum(row as usize).unwrap_or(Datum::Null);
                        table.stats.attr_mut(attr).observe(&d);
                    }
                }
            }
            row += 1;
        }
    }

    // End-of-scan bookkeeping (the sequential scan's `finish`) — withheld
    // on a partial merge, where `total` is a prefix, not the file.
    if complete {
        table.row_count = Some(total as u64);
        if prep.plan.is_some() {
            table.map.row_index_mut().mark_complete();
        }
        if config.enable_stats {
            table.stats.set_row_count(total as u64);
        }
    }
    if config.enable_stats {
        // Always advance the observation frontier over the merged prefix
        // (monotone): the statistics replay above fed rows `[0, total)`, and
        // a re-run after a cancellation must not observe them again.
        for &attr in &prep.req.attrs {
            table.stats.advance_observed(attr, total as u64);
        }
    }

    // Results: concatenate per-partition batches in partition order,
    // re-packing to full batches (reorder-free concatenation).
    let mut queue: VecDeque<Batch> = VecDeque::new();
    let mut acc = Batch::with_columns(n);
    for mut o in results {
        for b in o.batches.drain(..) {
            if acc.is_empty() && b.rows() >= BATCH_SIZE {
                queue.push_back(b);
            } else {
                acc.extend_from(b);
                if acc.rows() >= BATCH_SIZE {
                    queue.push_back(std::mem::replace(&mut acc, Batch::with_columns(n)));
                }
            }
        }
    }
    if !acc.is_empty() {
        queue.push_back(acc);
    }
    clock.lap(t, &mut bd.nodb);

    let mut tel = lock_recover(telemetry);
    tel.io.merge(io);
    tel.rows_scanned = total as u64;
    tel.installed_chunk = installed;
    tel.breakdown = bd;
    tel.cache_hits = worker_hits;
    tel.cache_misses = worker_misses;
    tel.precounted = cold.is_some_and(|c| c.rows_known);
    tel.steals = steals;
    tel.rows_quarantined = quarantined;
    tel.quarantine_samples = quarantine_samples;
    tel.stopped_early = !complete;

    MergeInfo { total, queue }
}

/// Run a prepared scan against a shared table handle: partitioned workers
/// under the read lock, frontier-based merge under a short write lock.
///
/// Returns `Ok(None)` when the table's file-state generation moved past
/// `prep.generation` (an append or replacement was reconciled while no lock
/// was held) — the staged work describes dead state and the caller must
/// re-prepare.
pub(crate) fn scan_shared(
    handle: &TableHandle,
    config: &NoDbConfig,
    prep: &ScanPrep,
    telemetry: &TelemetryHandle,
) -> EngineResult<Option<VecDeque<Batch>>> {
    let clock = PhaseClock::new(config.detailed_timing);
    let mut bd = Breakdown::default();
    // Partitioning. Warm row ranges were captured at prepare time; cold
    // byte partitioning (and the newline pre-count, when triggered) probes
    // only the raw file and the prep's memo snapshot — no table lock.
    let cold = if prep.warm {
        None
    } else {
        let t = clock.start();
        let cp = check_stop(&prep.ctx, plan_cold_partitions(prep, config))?;
        clock.lap(t, &mut bd.io);
        Some(cp)
    };
    let partitions: &[Partition] = match &cold {
        Some(cp) => &cp.partitions,
        None => &prep.warm_partitions,
    };

    let outcome = {
        let table = handle.read();
        if table.generation != prep.generation {
            return Ok(None);
        }
        run_partitions(&table, config, prep, partitions)?
    };
    // Re-validate the epoch before *any* merge — including a stopped
    // scan's partial-prefix merge — so a file rewritten while the workers
    // streamed it never installs poisoned map/cache/stats partials.
    revalidate_epoch(prep)?;

    let mut table = handle.write();
    if table.generation != prep.generation {
        // The staged work describes dead state; a stopped query still fails
        // with its structured cause rather than retrying against new state.
        return match outcome.stopped {
            Some(stop) => Err(stop),
            None => Ok(None),
        };
    }
    // A stopped scan still merges its completed prefix (partial merge, see
    // module docs) before failing the query: the next identical query
    // starts from the warmer map/cache/statistics state.
    let complete = outcome.stopped.is_none();
    let info = merge_outputs(
        &mut table,
        config,
        prep,
        cold.as_ref(),
        outcome.steals,
        outcome.outputs,
        bd,
        telemetry,
        &clock,
        complete,
    );
    match outcome.stopped {
        Some(stop) => Err(stop),
        None => Ok(Some(info.queue)),
    }
}

/// Serve a fully-cached query from a shared table handle under the read
/// lock, tallying hits locally and folding them into the cache metrics
/// under a short write lock at the end.
///
/// With `config.vectorized_exec` the cache segments cross into the engine
/// typed ([`cached_segment_batch`]): columnar predicate kernels, selection
/// vectors, no per-cell `Datum` boxing. Otherwise the original row-at-a-time
/// loop runs byte-for-byte (the ablation arm). Hit accounting is identical
/// either way: one hit per requested attribute per cached row.
///
/// Returns `Ok(None)` when the generation moved or a concurrent eviction
/// dropped a column the plan relied on — the caller re-prepares (the next
/// attempt will see the shrunk coverage and take a raw scan instead).
pub(crate) fn stream_cached_shared(
    handle: &TableHandle,
    config: &NoDbConfig,
    prep: &ScanPrep,
    telemetry: &TelemetryHandle,
) -> EngineResult<Option<VecDeque<Batch>>> {
    let n = prep.req.attrs.len();
    let total = prep.cached_rows as usize;
    let mut queue: VecDeque<Batch> = VecDeque::new();
    let hits;
    if config.vectorized_exec {
        let table = handle.read();
        if table.generation != prep.generation {
            return Ok(None);
        }
        let Some(cols) = cached_column_handles(&table.cache, &prep.req.attrs, total) else {
            return Ok(None);
        };
        let mut lo = 0usize;
        while lo < total {
            // Cancellation granularity: one check per batch; a pure cache
            // read mutates nothing, so stopping here needs no partial merge.
            prep.ctx.check()?;
            let hi = total.min(lo + BATCH_SIZE);
            let batch = cached_segment_batch(&prep.req, &cols, lo, hi);
            if !batch.is_empty() {
                queue.push_back(batch);
            }
            lo = hi;
        }
        hits = (total * n) as u64;
    } else {
        let mut batch = Batch::with_columns(n);
        let mut values: Vec<Option<Datum>> = vec![None; n];
        let mut pred_row: Vec<Datum> = Vec::with_capacity(n);
        let mut tally = 0u64;
        {
            let table = handle.read();
            if table.generation != prep.generation {
                return Ok(None);
            }
            for row in 0..total {
                if (row as u64).is_multiple_of(CHECK_STRIDE) {
                    prep.ctx.check()?;
                }
                for (i, v) in values.iter_mut().enumerate() {
                    *v = table.cache.peek(prep.req.attrs[i], row);
                    if v.is_none() {
                        return Ok(None);
                    }
                    tally += 1;
                }
                form_tuple_into(&prep.req, &mut values, &mut pred_row, &mut batch);
                if batch.rows() >= BATCH_SIZE {
                    queue.push_back(std::mem::replace(&mut batch, Batch::with_columns(n)));
                }
            }
        }
        if !batch.is_empty() {
            queue.push_back(batch);
        }
        hits = tally;
    }
    handle.write().cache.record_reads(hits, 0);
    let mut tel = lock_recover(telemetry);
    tel.rows_scanned = prep.cached_rows;
    tel.cache_hits = hits;
    Ok(Some(queue))
}

/// The adaptive raw scan over an exclusively borrowed table.
///
/// This is the `scan_threads = 1` streaming path (kept byte-for-byte for
/// fallback and A/B benchmarking), the `cache_force_full_parse` ablation,
/// and the exclusive-fallback path of the concurrent facade. The
/// parallel-scan driver inside delegates to the same [`run_partitions`] /
/// [`merge_outputs`] stages the shared path uses.
pub struct RawScanSource<'a> {
    table: &'a mut RawTable,
    config: NoDbConfig,
    prep: ScanPrep,
    telemetry: TelemetryHandle,
    bd: Breakdown,

    /// Chunk under collection (sequential streaming path).
    builder: Option<ChunkBuilder>,
    /// Next row appendable to the cache, per position (`usize::MAX` = stop).
    cache_next: Vec<usize>,
    /// Cache metric snapshots for per-query hit/miss reporting (exclusive
    /// access makes the delta exact).
    hits0: u64,
    misses0: u64,

    // Streaming state.
    scanner: Option<BlockScanner>,
    header_skipped: bool,
    row: usize,
    done: bool,
    /// Byte offset of the current line's start (for quarantine samples).
    cur_offset: u64,
    /// Rows with a tombstoned malformed cell (permissive policy).
    quarantined: u64,
    quarantine_samples: Vec<QuarantineSample>,
    /// Buffered result batches of a completed parallel scan, drained by
    /// `next_batch`. `Some` once the parallel driver has run.
    parallel_queue: Option<VecDeque<Batch>>,

    // Reused per-row buffers (workhorse pattern: zero allocation per row in
    // the common paths).
    tokens: Tokens,
    values: Vec<Option<Datum>>,
    spans: Vec<Option<(u32, u32)>>,
    offsets_buf: Vec<(usize, u32)>,
    pred_row: Vec<Datum>,
    line_buf: Vec<u8>,

    clock: PhaseClock,
}

impl<'a> RawScanSource<'a> {
    /// Plan and prepare a scan of `table` for `req` under `config`.
    ///
    /// This performs the paper's up-front access planning: cache coverage
    /// probes, positional-map access plan (with its LRU touch and
    /// combination-trigger decision), and chunk-builder setup.
    pub fn new(
        table: &'a mut RawTable,
        config: NoDbConfig,
        req: ScanRequest,
        telemetry: TelemetryHandle,
    ) -> Self {
        let ctx = QueryCtx::from_timeout_ms(config.query_timeout_ms);
        let prep = prepare_scan(table, &config, req, &telemetry, ctx);
        Self::from_prep(table, config, prep, telemetry)
    }

    /// Build the scan from an already-taken [`ScanPrep`] (the facade runs
    /// `prepare_scan` itself under the table's write lock so planning
    /// happens exactly once per query regardless of execution path).
    pub(crate) fn from_prep(
        table: &'a mut RawTable,
        config: NoDbConfig,
        prep: ScanPrep,
        telemetry: TelemetryHandle,
    ) -> Self {
        let n = prep.req.attrs.len();
        let cache_next = prep.cache_cov.clone();
        let (hits0, misses0) = {
            let m = table.cache.metrics();
            (m.hits, m.misses)
        };
        RawScanSource {
            table,
            config,
            telemetry,
            bd: Breakdown::default(),
            builder: None,
            cache_next,
            hits0,
            misses0,
            scanner: None,
            header_skipped: false,
            row: 0,
            done: false,
            cur_offset: 0,
            quarantined: 0,
            quarantine_samples: Vec::new(),
            parallel_queue: None,
            tokens: Tokens::new(),
            values: vec![None; n],
            spans: vec![None; n],
            offsets_buf: Vec::with_capacity(n),
            pred_row: Vec::with_capacity(n),
            line_buf: Vec::new(),
            clock: PhaseClock::new(config.detailed_timing),
            prep,
        }
    }

    /// Resolve the values of every requested position for the current row's
    /// raw line, filling `self.values` (cache first, then map-assisted raw
    /// access), and recording spans for map population.
    fn resolve_row(&mut self, line: &[u8]) -> EngineResult<()> {
        let n = self.prep.req.attrs.len();
        let row = self.row;
        let mut d_tok = Duration::ZERO;
        let mut d_parse = Duration::ZERO;
        let mut d_conv = Duration::ZERO;
        let mut d_nodb = Duration::ZERO;

        for i in 0..n {
            self.values[i] = None;
            self.spans[i] = None;
        }

        // 1. Cache reads.
        if self.config.enable_cache {
            for i in 0..n {
                if row < self.prep.cache_cov[i] {
                    self.values[i] = self.table.cache.get(self.prep.req.attrs[i], row);
                }
            }
        }

        // 2. Exact positional-map jumps for positions the cache missed.
        let mut missing_lo: Option<usize> = None;
        let mut missing_hi: Option<usize> = None;
        for i in 0..n {
            if self.values[i].is_some() {
                continue;
            }
            if let Some(plan) = &self.prep.plan {
                if let Some(AttrSource::Exact { chunk }) = plan.source_for(self.prep.req.attrs[i]) {
                    if let Some(off) = self.table.map.offset_in(chunk, self.prep.req.attrs[i], row)
                    {
                        let t = self.clock.start();
                        let start = (off as usize).min(line.len());
                        let end = find_byte(&line[start..], self.table.tokenizer.delimiter)
                            .map(|p| start + p)
                            .unwrap_or(line.len());
                        self.spans[i] = Some((start as u32, end as u32));
                        self.clock.lap(t, &mut d_parse);
                        continue;
                    }
                }
            }
            missing_lo = missing_lo.or(Some(i));
            missing_hi = Some(i);
        }

        // 3. Tokenize for the positions still missing.
        if let (Some(lo), Some(hi)) = (missing_lo, missing_hi) {
            let t = self.clock.start();
            let first_attr = self.prep.req.attrs[lo];
            let last_attr = self.prep.req.attrs[hi];
            let upto = if self.config.selective_tokenizing {
                last_attr
            } else {
                usize::MAX // Baseline: tokenize the full tuple.
            };
            // Best anchor: the largest attribute < first_attr whose start we
            // already resolved this row, else the plan's anchor chunk.
            let mut anchor: Option<(usize, usize)> = None; // (attr, byte)
            for i in (0..lo).rev() {
                if let Some((s, _)) = self.spans[i] {
                    anchor = Some((self.prep.req.attrs[i], s as usize));
                    break;
                }
            }
            if anchor.is_none() {
                if let Some(plan) = &self.prep.plan {
                    if let Some(AttrSource::Anchor { chunk, anchor_attr }) =
                        plan.source_for(first_attr)
                    {
                        if let Some(off) = self.table.map.offset_in(chunk, anchor_attr, row) {
                            anchor = Some((anchor_attr, off as usize));
                        }
                    }
                }
            }
            match anchor {
                Some((attr, off)) if self.config.selective_tokenizing && off <= line.len() => {
                    self.table
                        .tokenizer
                        .tokenize_from(line, attr, off, upto, &mut self.tokens);
                }
                _ => {
                    self.table
                        .tokenizer
                        .tokenize_selective(line, upto, &mut self.tokens);
                }
            }
            for i in lo..=hi {
                if self.values[i].is_some() || self.spans[i].is_some() {
                    continue;
                }
                if let Some(span) = self.tokens.get(self.prep.req.attrs[i]) {
                    self.spans[i] = Some((span.start, span.end));
                }
            }
            self.clock.lap(t, &mut d_tok);
        }

        // 4. Selective parsing: convert only what is needed.
        {
            let t = self.clock.start();
            let mut quarantined_attr: Option<usize> = None;
            for i in 0..n {
                if self.values[i].is_some() {
                    continue;
                }
                let attr = self.prep.req.attrs[i];
                let ty = self.table.schema.ty(attr);
                let d = match self.spans[i] {
                    Some((s, e)) => {
                        let raw = &line[s as usize..e as usize];
                        match self.table.tokenizer.quote {
                            // Quoted string fields keep `""` escapes in
                            // their spans; unescape when materializing.
                            Some(q) if ty == nodb_rawcsv::ColumnType::Str && raw.contains(&q) => {
                                Datum::Str(parser::unescape_quoted(raw, q).into_boxed_str())
                            }
                            _ => match parser::parse_field(raw, ty, row as u64, attr) {
                                Ok(d) => d,
                                // Permissive policy: tombstone the malformed
                                // cell exactly like a short row's absent
                                // attribute, so cache/stats/map state stays
                                // byte-identical across cold and warm runs.
                                Err(RawCsvError::ParseField { .. })
                                    if self.config.parse_errors == ParseErrorPolicy::Permissive =>
                                {
                                    quarantined_attr.get_or_insert(attr);
                                    Datum::Null
                                }
                                Err(e) => return Err(e.into()),
                            },
                        }
                    }
                    // Short row: attribute absent → NULL.
                    None => Datum::Null,
                };
                self.values[i] = Some(d);
            }
            if let Some(attr) = quarantined_attr {
                self.quarantined += 1;
                if self.quarantine_samples.len() < QuarantineSample::MAX_SAMPLES {
                    self.quarantine_samples.push(QuarantineSample {
                        row: row as u64,
                        offset: self.cur_offset,
                        attr,
                    });
                }
            }
            self.clock.lap(t, &mut d_conv);
        }

        // 5. Side effects: cache population, statistics, map collection.
        {
            let t = self.clock.start();
            if self.config.enable_cache {
                for i in 0..n {
                    if self.cache_next[i] == row {
                        let d = self.values[i].clone().unwrap_or(Datum::Null);
                        let ty = self.table.schema.ty(self.prep.req.attrs[i]);
                        if self.table.cache.append(
                            self.prep.req.attrs[i],
                            ty,
                            &d,
                            self.prep.query_tick,
                        ) {
                            self.cache_next[i] += 1;
                        } else {
                            self.cache_next[i] = usize::MAX;
                        }
                    }
                }
            }
            if self.config.enable_stats && self.table.stats.should_sample(row as u64) {
                for i in 0..n {
                    // Observation frontier: rows an earlier scan already fed
                    // into the accumulators are not observed again.
                    if (row as u64) < self.prep.stats_frontier[i] {
                        continue;
                    }
                    if let Some(d) = &self.values[i] {
                        self.table.stats.attr_mut(self.prep.req.attrs[i]).observe(d);
                    }
                }
            }
            if let Some(b) = &mut self.builder {
                self.offsets_buf.clear();
                for i in 0..n {
                    if let Some((s, _)) = self.spans[i] {
                        self.offsets_buf.push((self.prep.req.attrs[i], s));
                    }
                }
                b.push_row_offsets(&self.offsets_buf);
            }
            self.clock.lap(t, &mut d_nodb);
        }

        // Ablation: force-parse and cache every remaining attribute of the
        // tuple (the behaviour §3.2 explicitly rejects).
        if self.config.enable_cache && self.config.cache_force_full_parse {
            let t = self.clock.start();
            self.force_full_parse(line, row)?;
            self.clock.lap(t, &mut d_nodb);
        }

        self.bd.tokenizing += d_tok;
        self.bd.parsing += d_parse;
        self.bd.convert += d_conv;
        self.bd.nodb += d_nodb;
        Ok(())
    }

    /// The `cache_force_full_parse` ablation: tokenize and parse the whole
    /// tuple, caching attributes the query never asked for.
    fn force_full_parse(&mut self, line: &[u8], row: usize) -> EngineResult<()> {
        let nattrs = self.table.schema.len();
        self.table.tokenizer.tokenize_into(line, &mut self.tokens);
        for attr in 0..nattrs {
            if self.prep.req.attrs.contains(&attr) {
                continue; // already handled
            }
            if self.table.cache.coverage(attr) != row {
                continue; // not contiguous; skip
            }
            let d = match self.tokens.get(attr) {
                Some(span) => match parser::parse_field(
                    span.of(line),
                    self.table.schema.ty(attr),
                    row as u64,
                    attr,
                ) {
                    Ok(d) => d,
                    // Permissive: tombstone, keeping the ablation's cache
                    // contents consistent with what a requested-attr scan
                    // would have admitted. Not counted as a quarantined row
                    // (the attribute was never requested).
                    Err(RawCsvError::ParseField { .. })
                        if self.config.parse_errors == ParseErrorPolicy::Permissive =>
                    {
                        Datum::Null
                    }
                    Err(e) => return Err(e.into()),
                },
                None => Datum::Null,
            };
            let ty = self.table.schema.ty(attr);
            self.table.cache.append(attr, ty, &d, self.prep.query_tick);
        }
        Ok(())
    }

    /// Form output tuples for one resolved row into `batch` if the pushed
    /// predicate accepts it (selective tuple formation).
    fn form_tuple(&mut self, batch: &mut Batch) {
        form_tuple_into(&self.prep.req, &mut self.values, &mut self.pred_row, batch);
    }

    /// End-of-scan bookkeeping: install the collected chunk, record counts,
    /// absorb I/O counters, publish telemetry.
    fn finish(&mut self, reached_eof: bool) {
        if reached_eof && !self.prep.fully_cached {
            self.table.row_count = Some(self.row as u64);
            if self.prep.plan.is_some() {
                self.table.map.row_index_mut().mark_complete();
            }
            if self.config.enable_stats {
                self.table.stats.set_row_count(self.row as u64);
                for &attr in &self.prep.req.attrs {
                    self.table.stats.advance_observed(attr, self.row as u64);
                }
            }
        }
        let mut installed = false;
        if let Some(b) = self.builder.take() {
            let t = self.clock.start();
            installed = self.table.map.install(b).is_some();
            self.clock.lap(t, &mut self.bd.nodb);
        }
        let io = self
            .scanner
            .as_mut()
            .map(BlockScanner::take_counters)
            .unwrap_or_default();
        let cache_hits = self.table.cache.metrics().hits - self.hits0;
        let cache_misses = self.table.cache.metrics().misses - self.misses0;
        let mut tel = lock_recover(&self.telemetry);
        tel.io.merge(io);
        tel.rows_scanned = self.row as u64;
        tel.installed_chunk = installed;
        tel.breakdown = self.bd;
        tel.cache_hits = cache_hits;
        tel.cache_misses = cache_misses;
        tel.rows_quarantined = self.quarantined;
        tel.quarantine_samples = std::mem::take(&mut self.quarantine_samples);
        self.done = true;
    }

    /// End-of-scan bookkeeping for a scan stopped mid-stream by its query
    /// context: the sequential analogue of the parallel partial merge. Rows
    /// `[0, self.row)` were fully processed — their cache appends and
    /// statistics observations already happened inline — so the collected
    /// chunk prefix is installed and the statistics observation frontier is
    /// advanced over the visited prefix (a re-run must not double-observe),
    /// while the EOF bookkeeping (`row_count`, `mark_complete`,
    /// `set_row_count`) is withheld.
    fn finish_cancelled(&mut self) {
        if self.config.enable_stats {
            for (i, &attr) in self.prep.req.attrs.iter().enumerate() {
                // The streaming loop only observes rows at or beyond the
                // plan-time frontier; advance from whichever is further.
                let upto = (self.row as u64).max(self.prep.stats_frontier[i]);
                self.table.stats.advance_observed(attr, upto);
            }
        }
        self.finish(false);
        lock_recover(&self.telemetry).stopped_early = true;
    }

    /// Stream one batch from the raw file.
    fn next_streaming_batch(&mut self) -> EngineResult<Option<Batch>> {
        let mut d_io = Duration::ZERO;
        if self.scanner.is_none() {
            let t = self.clock.start();
            let mut scanner = BlockScanner::open_with_profile(
                &self.table.path,
                self.config.io_block_size,
                self.config.io_readahead_blocks,
                self.config.io_profile(),
            )?;
            scanner.set_interrupt(self.prep.ctx.stop_flag());
            if let Some(fence) = self.prep.source_len() {
                // Bound read-ahead at the torn-row fence; the loop below
                // enforces the fence on line offsets (the cap alone is
                // soft — it caps read-ahead, not the scan).
                scanner.set_read_cap(fence);
            }
            self.clock.lap(t, &mut d_io);
            self.scanner = Some(scanner);
            // The chunk builder is created here, not in `from_prep`: the
            // streaming loop is its only consumer (the parallel driver
            // merges per-worker builders instead), so allocating it up
            // front would waste `attrs × rows_hint` capacity on every
            // parallel chunk-building scan.
            if self.prep.build_chunk {
                self.builder = Some(ChunkBuilder::with_capacity(
                    self.prep.req.attrs.clone(),
                    self.prep.rows_hint,
                ));
            }
        }

        let n = self.prep.req.attrs.len();
        let mut batch = Batch::with_columns(n);
        let mut reached_eof = false;
        loop {
            // Cooperative cancellation, at the same stride the partition
            // workers use. A stopped scan installs its partial state (the
            // sequential partial merge) before surfacing the error.
            if (self.row as u64).is_multiple_of(CHECK_STRIDE) {
                if let Err(e) = self.prep.ctx.check() {
                    self.bd.io += d_io;
                    self.finish_cancelled();
                    return Err(e);
                }
            }
            // Pull one line (timed as I/O, including newline discovery).
            // The line is copied into a reusable buffer so the borrow on the
            // scanner's block does not pin `self`.
            let t = self.clock.start();
            let (line_meta, short_end): (Option<u64>, bool) = {
                let scanner = self.scanner.as_mut().expect("scanner open");
                let fetched = match scanner.next_line() {
                    Ok(Some(l)) => {
                        self.line_buf.clear();
                        self.line_buf.extend_from_slice(l.bytes);
                        Some(l.offset)
                    }
                    Ok(None) => None,
                    Err(e) => {
                        // A tripped interrupt flag surfaces as a wrapped
                        // read error; report the structured cause instead.
                        self.bd.io += d_io;
                        if self.prep.ctx.is_stopped() {
                            let stop = self.prep.ctx.stop_error();
                            self.finish_cancelled();
                            return Err(stop);
                        }
                        return Err(e.into());
                    }
                };
                // Mid-scan truncation probe, checked after *every* fetch: a
                // cut mid-line surfaces a bogus final unterminated line
                // before EOF (catch it before parsing garbage), and a cut
                // exactly on a newline boundary is only discovered by the
                // empty refill after the last complete line.
                let short = match self.prep.source_len() {
                    Some(fence) => scanner.at_eof() && scanner.position() < fence,
                    None => false,
                };
                (fetched, short)
            };
            self.clock.lap(t, &mut d_io);
            if short_end {
                self.bd.io += d_io;
                return Err(source_changed_err(&self.prep));
            }
            let Some(offset) = line_meta else {
                reached_eof = true;
                break;
            };
            if let Some(fence) = self.prep.source_len() {
                // Bytes at or past the fence belong to the next epoch (a
                // torn trailing row, or rows appended since capture): stop
                // as if at EOF — the next query replays them from the
                // advanced fence.
                if offset >= fence {
                    reached_eof = true;
                    break;
                }
            }
            if self.table.has_header && !self.header_skipped {
                self.header_skipped = true;
                continue;
            }
            if self.prep.plan.is_some() {
                self.table.map.row_index_mut().note_row(self.row, offset);
            }
            self.cur_offset = offset;
            let line = std::mem::take(&mut self.line_buf);
            let r = self.resolve_row(&line);
            self.line_buf = line;
            r?;
            self.form_tuple(&mut batch);
            self.row += 1;
            if batch.rows() >= BATCH_SIZE {
                break;
            }
        }
        self.bd.io += d_io;
        if reached_eof {
            // Same post-scan re-validation as the parallel paths, before
            // the EOF bookkeeping installs the chunk and row count. The
            // inline cache/stats side effects already happened — that is
            // fine: the error reaches the facade, which quarantines the
            // table before its cold retry.
            revalidate_epoch(&self.prep)?;
            self.finish(true);
        }
        Ok(if batch.is_empty() { None } else { Some(batch) })
    }

    /// The parallel driver for an exclusively borrowed table: partition the
    /// file, fan out via [`run_partitions`], merge via [`merge_outputs`]
    /// (the same stages the shared-handle path uses). Fills
    /// `self.parallel_queue`; the ordinary `next_batch` path then drains
    /// the queue.
    fn run_parallel(&mut self) -> EngineResult<()> {
        let mut bd = std::mem::take(&mut self.bd);
        let cold = if self.prep.warm {
            None
        } else {
            let t = self.clock.start();
            let cp = match check_stop(
                &self.prep.ctx,
                plan_cold_partitions(&self.prep, &self.config),
            ) {
                Ok(cp) => cp,
                Err(e) => {
                    self.bd = bd;
                    self.done = true;
                    self.parallel_queue = Some(VecDeque::new());
                    return Err(e);
                }
            };
            self.clock.lap(t, &mut bd.io);
            Some(cp)
        };
        let partitions: &[Partition] = match &cold {
            Some(cp) => &cp.partitions,
            None => &self.prep.warm_partitions,
        };

        let outcome = match run_partitions(self.table, &self.config, &self.prep, partitions)
            .and_then(|o| {
                // Re-validate the epoch before any merge — a mid-scan
                // rewrite must not install poisoned partials (same fence as
                // the shared-handle path).
                revalidate_epoch(&self.prep)?;
                Ok(o)
            }) {
            Ok(o) => o,
            Err(e) => {
                self.bd = bd;
                self.done = true;
                self.parallel_queue = Some(VecDeque::new());
                return Err(e);
            }
        };

        // A stopped scan still merges its completed prefix (partial merge)
        // before failing, exactly like the shared-handle path.
        let complete = outcome.stopped.is_none();
        let info = merge_outputs(
            self.table,
            &self.config,
            &self.prep,
            cold.as_ref(),
            outcome.steals,
            outcome.outputs,
            bd,
            &self.telemetry,
            &self.clock,
            complete,
        );
        self.row = info.total;
        self.done = true;
        match outcome.stopped {
            Some(stop) => {
                self.parallel_queue = Some(VecDeque::new());
                Err(stop)
            }
            None => {
                self.parallel_queue = Some(info.queue);
                Ok(())
            }
        }
    }

    /// Serve one batch purely from the cache.
    fn next_cached_batch(&mut self) -> EngineResult<Option<Batch>> {
        let total = self.prep.cached_rows as usize;
        let n = self.prep.req.attrs.len();
        if self.config.vectorized_exec {
            // Typed segments + columnar filter; see `cached_segment_batch`.
            // A fully-filtered segment must not end the stream, so loop
            // until a non-empty batch or exhaustion.
            while self.row < total {
                // Pure cache reads mutate nothing: stopping needs no
                // partial-state bookkeeping.
                self.prep.ctx.check()?;
                let lo = self.row;
                let hi = total.min(lo + BATCH_SIZE);
                let batch = match cached_column_handles(&self.table.cache, &self.prep.req.attrs, hi)
                {
                    Some(cols) => cached_segment_batch(&self.prep.req, &cols, lo, hi),
                    // Exclusive access makes eviction impossible mid-scan,
                    // but stay total: fall back to row-at-a-time reads.
                    None => break,
                };
                self.row = hi;
                // Same accounting as the row-wise loop's per-value `get`s.
                self.table.cache.record_reads(((hi - lo) * n) as u64, 0);
                if !batch.is_empty() {
                    if self.row >= total {
                        self.finish(false);
                    }
                    return Ok(Some(batch));
                }
            }
            if self.row >= total {
                self.finish(false);
                return Ok(None);
            }
        }
        let mut batch = Batch::with_columns(n);
        self.prep.ctx.check()?;
        while self.row < total && batch.rows() < BATCH_SIZE {
            let row = self.row;
            self.row += 1;
            for i in 0..n {
                self.values[i] = self.table.cache.get(self.prep.req.attrs[i], row);
            }
            self.form_tuple(&mut batch);
        }
        if self.row >= total {
            self.finish(false);
        }
        Ok(if batch.is_empty() { None } else { Some(batch) })
    }
}

impl ScanSource for RawScanSource<'_> {
    fn next_batch(&mut self) -> EngineResult<Option<Batch>> {
        if let Some(q) = self.parallel_queue.as_mut() {
            return Ok(q.pop_front());
        }
        if self.done {
            return Ok(None);
        }
        if self.prep.fully_cached {
            return self.next_cached_batch();
        }
        // The ablation that force-parses whole tuples stays sequential: it
        // exists to demonstrate a pathology, not to be fast.
        if self.prep.threads >= 2 && !self.config.cache_force_full_parse {
            self.run_parallel()?;
            let q = self.parallel_queue.as_mut().expect("parallel scan ran");
            return Ok(q.pop_front());
        }
        self.next_streaming_batch()
    }

    fn size_hint(&self) -> Option<usize> {
        // Staged parallel output counts exactly; otherwise the known row
        // count (cache coverage or posmap line count) is an upper bound the
        // executor uses for pre-sizing.
        if let Some(q) = &self.parallel_queue {
            return Some(q.iter().map(Batch::rows).sum());
        }
        if self.prep.fully_cached {
            return Some(self.prep.cached_rows as usize);
        }
        (self.prep.rows_hint > 0).then_some(self.prep.rows_hint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::RawTable;
    use nodb_rawcsv::GeneratorConfig;
    use std::path::PathBuf;

    fn tmp_csv(cols: usize, rows: u64, seed: u64) -> (PathBuf, nodb_rawcsv::Schema) {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "nodb_rawscan_{cols}_{rows}_{seed}_{}",
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let cfg = GeneratorConfig::uniform_ints(cols, rows, seed);
        cfg.generate_file(&p).unwrap();
        (p, cfg.schema())
    }

    fn drain(src: &mut RawScanSource<'_>) -> Vec<Vec<Datum>> {
        let mut out = Vec::new();
        while let Some(b) = src.next_batch().unwrap() {
            for r in 0..b.rows() {
                out.push(b.row(r));
            }
        }
        out
    }

    fn scan_once(
        table: &mut RawTable,
        config: NoDbConfig,
        req: ScanRequest,
    ) -> (Vec<Vec<Datum>>, ScanTelemetry) {
        let tel: TelemetryHandle = Arc::new(Mutex::new(ScanTelemetry::default()));
        let rows = {
            let mut src = RawScanSource::new(table, config, req, Arc::clone(&tel));
            drain(&mut src)
        };
        let t = Arc::try_unwrap(tel).unwrap().into_inner().unwrap();
        (rows, t)
    }

    #[test]
    fn first_scan_learns_row_count_and_installs_chunk() {
        let (p, schema) = tmp_csv(5, 500, 1);
        let cfg = NoDbConfig::default();
        let mut t = RawTable::register(&p, schema, false, &cfg).unwrap();
        let (rows, tel) = scan_once(&mut t, cfg, ScanRequest::project(vec![1, 3]));
        assert_eq!(rows.len(), 500);
        assert_eq!(tel.rows_scanned, 500);
        assert!(tel.installed_chunk);
        assert_eq!(t.row_count, Some(500));
        assert!(t.map.row_index().is_complete());
        assert_eq!(t.map.coverage(1), 500);
        assert_eq!(t.cache.coverage(3), 500);
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn second_scan_is_fully_cached() {
        let (p, schema) = tmp_csv(4, 300, 2);
        let cfg = NoDbConfig::default();
        let mut t = RawTable::register(&p, schema, false, &cfg).unwrap();
        let req = ScanRequest::project(vec![0, 2]);
        let (first, tel1) = scan_once(&mut t, cfg, req.clone());
        assert!(!tel1.fully_cached);
        let (second, tel2) = scan_once(&mut t, cfg, req);
        assert!(tel2.fully_cached, "all attrs cached → no file access");
        assert_eq!(tel2.io.bytes_read, 0);
        assert!(tel2.cache_hits > 0, "cached scan tallies its hits");
        assert_eq!(first, second, "cache must return identical data");
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn map_only_scan_matches_baseline_values() {
        let (p, schema) = tmp_csv(6, 200, 3);
        let mut t_pm =
            RawTable::register(&p, schema.clone(), false, &NoDbConfig::pm_only()).unwrap();
        let mut t_base = RawTable::register(&p, schema, false, &NoDbConfig::baseline()).unwrap();
        let req = ScanRequest::project(vec![2, 4]);
        // Warm the map with a first query on different attrs.
        let (_, _) = scan_once(
            &mut t_pm,
            NoDbConfig::pm_only(),
            ScanRequest::project(vec![1]),
        );
        let (a, _) = scan_once(&mut t_pm, NoDbConfig::pm_only(), req.clone());
        let (b, _) = scan_once(&mut t_base, NoDbConfig::baseline(), req);
        assert_eq!(a, b);
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn predicate_filters_before_tuple_formation() {
        use nodb_engine::RExpr;
        use nodb_sqlparse::ast::BinOp;
        let (p, schema) = tmp_csv(3, 400, 4);
        let cfg = NoDbConfig::default();
        let mut t = RawTable::register(&p, schema, false, &cfg).unwrap();
        let req = ScanRequest {
            attrs: vec![0, 1],
            predicate: Some(RExpr::Binary {
                op: BinOp::Lt,
                left: Box::new(RExpr::Col(1)),
                right: Box::new(RExpr::Const(Datum::Int(500_000_000))),
            }),
            materialize: vec![true, false],
        };
        let (rows, tel) = scan_once(&mut t, cfg, req);
        assert!(tel.rows_scanned == 400);
        assert!(rows.len() < 400 && !rows.is_empty());
        // Predicate-only column arrives as NULL (never materialized).
        assert!(rows.iter().all(|r| r[1] == Datum::Null));
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn exact_map_jumps_replace_tokenizing() {
        let (p, schema) = tmp_csv(8, 300, 5);
        let cfg = NoDbConfig::pm_only();
        let mut t = RawTable::register(&p, schema, false, &cfg).unwrap();
        let req = ScanRequest::project(vec![5]);
        let (_, _) = scan_once(&mut t, cfg, req.clone());
        assert_eq!(t.map.coverage(5), 300);
        let (rows, tel2) = scan_once(&mut t, cfg, req);
        assert_eq!(rows.len(), 300);
        // Second scan uses exact jumps: parsing time present, tokenizing ~0.
        assert_eq!(tel2.breakdown.tokenizing, Duration::ZERO);
        assert!(tel2.breakdown.parsing > Duration::ZERO);
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn stats_observed_on_requested_attrs_only() {
        let (p, schema) = tmp_csv(5, 100, 6);
        let cfg = NoDbConfig::default();
        let mut t = RawTable::register(&p, schema, false, &cfg).unwrap();
        let (_, _) = scan_once(&mut t, cfg, ScanRequest::project(vec![1, 2]));
        assert_eq!(t.stats.covered_attrs(), vec![1, 2]);
        assert_eq!(t.stats.attr(1).unwrap().rows_seen(), 100);
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn rescans_never_double_observe_statistics() {
        // pm_only: no cache, so the second query re-scans the file. The
        // observation frontier must keep the accumulators at one
        // observation per (attr, row).
        let (p, schema) = tmp_csv(4, 150, 66);
        let cfg = NoDbConfig::pm_only();
        let mut t = RawTable::register(&p, schema, false, &cfg).unwrap();
        let req = ScanRequest::project(vec![2]);
        let (_, _) = scan_once(&mut t, cfg, req.clone());
        let seen1 = t.stats.attr(2).unwrap().rows_seen();
        let sample1 = t.stats.attr(2).unwrap().sample().to_vec();
        let (_, _) = scan_once(&mut t, cfg, req);
        assert_eq!(t.stats.attr(2).unwrap().rows_seen(), seen1);
        assert_eq!(t.stats.attr(2).unwrap().sample(), &sample1[..]);
        assert_eq!(t.stats.observed_upto(2), 150);
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn baseline_keeps_no_state() {
        let (p, schema) = tmp_csv(4, 100, 7);
        let cfg = NoDbConfig::baseline();
        let mut t = RawTable::register(&p, schema, false, &cfg).unwrap();
        let (rows, tel) = scan_once(&mut t, cfg, ScanRequest::project(vec![0, 3]));
        assert_eq!(rows.len(), 100);
        assert!(!tel.installed_chunk);
        assert!(t.map.chunks().is_empty());
        assert_eq!(t.cache.bytes_used(), 0);
        assert!(t.stats.covered_attrs().is_empty());
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn force_full_parse_caches_unrequested_attrs() {
        let (p, schema) = tmp_csv(5, 50, 8);
        let cfg = NoDbConfig {
            cache_force_full_parse: true,
            ..NoDbConfig::default()
        };
        let mut t = RawTable::register(&p, schema, false, &cfg).unwrap();
        let (_, _) = scan_once(&mut t, cfg, ScanRequest::project(vec![1]));
        assert_eq!(
            t.cache.coverage(0),
            50,
            "unrequested attr cached by ablation"
        );
        assert_eq!(t.cache.coverage(4), 50);
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn header_rows_are_skipped() {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "nodb_rawscan_hdr_{}",
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::write(&p, "a,b\n1,2\n3,4\n").unwrap();
        let schema = nodb_rawcsv::Schema::new(vec![
            nodb_rawcsv::ColumnDef::new("a", nodb_rawcsv::ColumnType::Int),
            nodb_rawcsv::ColumnDef::new("b", nodb_rawcsv::ColumnType::Int),
        ]);
        let cfg = NoDbConfig::default();
        let mut t = RawTable::register(&p, schema, true, &cfg).unwrap();
        let (rows, _) = scan_once(&mut t, cfg, ScanRequest::project(vec![0, 1]));
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], vec![Datum::Int(1), Datum::Int(2)]);
        std::fs::remove_file(p).unwrap();
    }

    /// Scan the same table twice — `scan_threads = 1` vs `threads` — against
    /// two freshly registered tables, and assert identical results and
    /// identical post-scan adaptive state.
    fn assert_parallel_matches_sequential(
        cols: usize,
        rows: u64,
        seed: u64,
        threads: usize,
        mk_cfg: impl Fn(usize) -> NoDbConfig,
        reqs: &[ScanRequest],
    ) {
        let (p, schema) = tmp_csv(cols, rows, seed);
        let cfg_seq = mk_cfg(1);
        let cfg_par = mk_cfg(threads);
        let mut t_seq = RawTable::register(&p, schema.clone(), false, &cfg_seq).unwrap();
        let mut t_par = RawTable::register(&p, schema, false, &cfg_par).unwrap();
        for (qi, req) in reqs.iter().enumerate() {
            let (a, tel_a) = scan_once(&mut t_seq, cfg_seq, req.clone());
            let (b, tel_b) = scan_once(&mut t_par, cfg_par, req.clone());
            assert_eq!(a, b, "query {qi} rows differ (threads = {threads})");
            assert_eq!(
                tel_a.rows_scanned, tel_b.rows_scanned,
                "query {qi} rows_scanned"
            );
            assert_eq!(
                tel_a.fully_cached, tel_b.fully_cached,
                "query {qi} fully_cached"
            );
        }
        assert_eq!(t_seq.row_count, t_par.row_count);
        // Hit/miss telemetry matches in warm (row-partitioned) mode *and*,
        // since the two-phase pre-count, in cold byte-partitioned mode:
        // pre-counted workers know their global rows and read the cache
        // exactly where the sequential scan would.
        assert_eq!(
            t_seq.cache.metrics().hits,
            t_par.cache.metrics().hits,
            "cache hit accounting must match"
        );
        assert_eq!(
            t_seq.cache.metrics().misses,
            t_par.cache.metrics().misses,
            "cache miss accounting must match"
        );
        assert_eq!(t_seq.map.row_index().len(), t_par.map.row_index().len());
        assert_eq!(
            t_seq.map.row_index().is_complete(),
            t_par.map.row_index().is_complete()
        );
        for attr in 0..cols {
            assert_eq!(
                t_seq.map.coverage(attr),
                t_par.map.coverage(attr),
                "map c{attr}"
            );
            assert_eq!(
                t_seq.cache.coverage(attr),
                t_par.cache.coverage(attr),
                "cache c{attr}"
            );
            for row in 0..t_seq.cache.coverage(attr) {
                assert_eq!(
                    t_seq.cache.peek(attr, row),
                    t_par.cache.peek(attr, row),
                    "cache c{attr} row {row}"
                );
            }
            match (t_seq.stats.attr(attr), t_par.stats.attr(attr)) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(a.rows_seen(), b.rows_seen(), "stats rows c{attr}");
                    assert_eq!(a.sample(), b.sample(), "stats reservoir c{attr}");
                }
                other => panic!("stats presence differs for c{attr}: {other:?}"),
            }
            assert_eq!(
                t_seq.stats.observed_upto(attr),
                t_par.stats.observed_upto(attr),
                "stats frontier c{attr}"
            );
        }
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn parallel_cold_scan_matches_sequential_state() {
        for threads in [2, 3, 8] {
            assert_parallel_matches_sequential(
                6,
                1000,
                21,
                threads,
                |t| NoDbConfig {
                    scan_threads: t,
                    ..NoDbConfig::default()
                },
                &[ScanRequest::project(vec![1, 4])],
            );
        }
    }

    #[test]
    fn parallel_warm_scan_uses_map_and_cache() {
        // Second query on other attrs runs in row-partitioned (warm) mode.
        assert_parallel_matches_sequential(
            8,
            600,
            22,
            4,
            |t| NoDbConfig {
                scan_threads: t,
                ..NoDbConfig::default()
            },
            &[
                ScanRequest::project(vec![0, 3]),
                ScanRequest::project(vec![3, 6]),
                ScanRequest::project(vec![1]),
            ],
        );
    }

    #[test]
    fn pinned_readahead_scan_matches_sequential_state() {
        // Core pinning and read-ahead are pure scheduling/overlap knobs:
        // cold scan, then a warm rescan, must leave state byte-identical to
        // the unpinned synchronous sequential scan.
        assert_parallel_matches_sequential(
            5,
            800,
            28,
            4,
            |t| NoDbConfig {
                scan_threads: t,
                pin_cores: t > 1,
                io_readahead_blocks: if t > 1 { 8 } else { 0 },
                ..NoDbConfig::default()
            },
            &[
                ScanRequest::project(vec![0, 2]),
                ScanRequest::project(vec![2, 4]),
            ],
        );
    }

    #[test]
    fn parallel_predicate_filters_like_sequential() {
        use nodb_engine::RExpr;
        use nodb_sqlparse::ast::BinOp;
        let (p, schema) = tmp_csv(4, 700, 23);
        let req = ScanRequest {
            attrs: vec![0, 2],
            predicate: Some(RExpr::Binary {
                op: BinOp::Lt,
                left: Box::new(RExpr::Col(1)),
                right: Box::new(RExpr::Const(Datum::Int(400_000_000))),
            }),
            materialize: vec![true, false],
        };
        let cfg1 = NoDbConfig {
            scan_threads: 1,
            ..NoDbConfig::default()
        };
        let cfg4 = NoDbConfig {
            scan_threads: 4,
            ..NoDbConfig::default()
        };
        let mut t1 = RawTable::register(&p, schema.clone(), false, &cfg1).unwrap();
        let mut t4 = RawTable::register(&p, schema, false, &cfg4).unwrap();
        let (a, tel_a) = scan_once(&mut t1, cfg1, req.clone());
        let (b, tel_b) = scan_once(&mut t4, cfg4, req);
        assert_eq!(a, b);
        assert_eq!(tel_a.rows_scanned, 700);
        assert_eq!(tel_b.rows_scanned, 700);
        assert!(!a.is_empty() && a.len() < 700);
        assert!(a.iter().all(|r| r[1] == Datum::Null), "predicate-only col");
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn parallel_respects_cache_budget_stalls() {
        // Tight budget: only a prefix fits; admission decisions must match.
        assert_parallel_matches_sequential(
            4,
            300,
            24,
            4,
            |t| NoDbConfig {
                scan_threads: t,
                cache_budget_bytes: 900,
                enable_positional_map: false,
                ..NoDbConfig::default()
            },
            &[ScanRequest::project(vec![1]), ScanRequest::project(vec![1])],
        );
    }

    #[test]
    fn parallel_baseline_keeps_no_state() {
        let (p, schema) = tmp_csv(4, 200, 25);
        let cfg = NoDbConfig {
            scan_threads: 4,
            ..NoDbConfig::baseline()
        };
        let mut t = RawTable::register(&p, schema, false, &cfg).unwrap();
        let (rows, tel) = scan_once(&mut t, cfg, ScanRequest::project(vec![0, 3]));
        assert_eq!(rows.len(), 200);
        assert!(!tel.installed_chunk);
        assert!(t.map.chunks().is_empty());
        assert_eq!(t.cache.bytes_used(), 0);
        assert!(t.stats.covered_attrs().is_empty());
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn parallel_empty_and_tiny_files() {
        for rows in [0u64, 1, 3] {
            assert_parallel_matches_sequential(
                3,
                rows,
                26,
                8,
                |t| NoDbConfig {
                    scan_threads: t,
                    ..NoDbConfig::default()
                },
                &[ScanRequest::project(vec![0, 2])],
            );
        }
    }

    #[test]
    fn parallel_scan_with_header() {
        let mut p = std::env::temp_dir();
        p.push(format!("nodb_rawscan_par_hdr_{}", std::process::id()));
        let mut content = String::from("a,b\n");
        for i in 0..500 {
            content.push_str(&format!("{i},{}\n", i * 2));
        }
        std::fs::write(&p, content).unwrap();
        let schema = nodb_rawcsv::Schema::new(vec![
            nodb_rawcsv::ColumnDef::new("a", nodb_rawcsv::ColumnType::Int),
            nodb_rawcsv::ColumnDef::new("b", nodb_rawcsv::ColumnType::Int),
        ]);
        let cfg = NoDbConfig {
            scan_threads: 4,
            ..NoDbConfig::default()
        };
        let mut t = RawTable::register(&p, schema, true, &cfg).unwrap();
        let (rows, _) = scan_once(&mut t, cfg, ScanRequest::project(vec![0, 1]));
        assert_eq!(rows.len(), 500);
        assert_eq!(rows[0], vec![Datum::Int(0), Datum::Int(0)]);
        assert_eq!(rows[499], vec![Datum::Int(499), Datum::Int(998)]);
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn parallel_warm_partial_coverage_counts_cache_hits() {
        // Tight cache budget + posmap on: the second scan runs warm
        // (row-partitioned) with only a prefix cached, so workers peek the
        // cache for covered rows — hit/miss telemetry must match the
        // sequential scan's `get` accounting.
        assert_parallel_matches_sequential(
            4,
            400,
            27,
            4,
            |t| NoDbConfig {
                scan_threads: t,
                cache_budget_bytes: 1200,
                ..NoDbConfig::default()
            },
            &[ScanRequest::project(vec![1]), ScanRequest::project(vec![1])],
        );
    }

    #[test]
    fn parallel_cold_error_reports_global_row() {
        let mut p = std::env::temp_dir();
        p.push(format!("nodb_rawscan_par_badrow_{}", std::process::id()));
        let mut content = String::new();
        for i in 0..800 {
            if i == 700 {
                content.push_str("oops,1\n");
            } else {
                content.push_str(&format!("{i},{}\n", i * 2));
            }
        }
        std::fs::write(&p, content).unwrap();
        let schema = nodb_rawcsv::Schema::new(vec![
            nodb_rawcsv::ColumnDef::new("a", nodb_rawcsv::ColumnType::Int),
            nodb_rawcsv::ColumnDef::new("b", nodb_rawcsv::ColumnType::Int),
        ]);
        for threads in [1usize, 4] {
            let cfg = NoDbConfig {
                scan_threads: threads,
                ..NoDbConfig::default()
            };
            let mut t = RawTable::register(&p, schema.clone(), false, &cfg).unwrap();
            let tel: TelemetryHandle = Arc::new(Mutex::new(ScanTelemetry::default()));
            let mut src = RawScanSource::new(&mut t, cfg, ScanRequest::project(vec![0]), tel);
            let err = loop {
                match src.next_batch() {
                    Ok(Some(_)) => continue,
                    Ok(None) => panic!("scan must fail on the malformed row"),
                    Err(e) => break e,
                }
            };
            let msg = err.to_string();
            assert!(
                msg.contains("row 700"),
                "threads={threads}: error must name the global row, got: {msg}"
            );
        }
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn cold_error_text_identical_across_thread_counts() {
        // Satellite audit: the same malformed file must produce *identical*
        // error text at scan_threads 1 and 8 — same global row number (0- vs
        // 1-based confusion would differ), same attribute, same field text —
        // with errors placed in partitions ≥ 1 (the rebase path) and with a
        // header shifting data-row numbering.
        for (label, bad_rows, header) in [
            ("mid", vec![421usize], false),
            ("late", vec![707], false),
            ("multi", vec![303, 551], false),
            ("hdr", vec![645], true),
        ] {
            let mut p = std::env::temp_dir();
            p.push(format!(
                "nodb_rawscan_errtext_{label}_{}",
                std::process::id()
            ));
            let mut content = String::new();
            if header {
                content.push_str("a,b\n");
            }
            for i in 0..800usize {
                if bad_rows.contains(&i) {
                    content.push_str(&format!("bad{i},1\n"));
                } else {
                    content.push_str(&format!("{i},{}\n", i * 2));
                }
            }
            std::fs::write(&p, content).unwrap();
            let schema = nodb_rawcsv::Schema::new(vec![
                nodb_rawcsv::ColumnDef::new("a", nodb_rawcsv::ColumnType::Int),
                nodb_rawcsv::ColumnDef::new("b", nodb_rawcsv::ColumnType::Int),
            ]);
            let mut texts = Vec::new();
            for threads in [1usize, 8] {
                let cfg = NoDbConfig {
                    scan_threads: threads,
                    ..NoDbConfig::default()
                };
                let mut t = RawTable::register(&p, schema.clone(), header, &cfg).unwrap();
                let tel: TelemetryHandle = Arc::new(Mutex::new(ScanTelemetry::default()));
                let mut src = RawScanSource::new(&mut t, cfg, ScanRequest::project(vec![0]), tel);
                let err = loop {
                    match src.next_batch() {
                        Ok(Some(_)) => continue,
                        Ok(None) => panic!("{label}: scan must fail"),
                        Err(e) => break e,
                    }
                };
                texts.push(err.to_string());
            }
            assert_eq!(
                texts[0], texts[1],
                "{label}: error text must not depend on scan_threads"
            );
            assert!(
                texts[0].contains(&format!("row {}", bad_rows[0])),
                "{label}: first bad data row must be named: {}",
                texts[0]
            );
            std::fs::remove_file(p).unwrap();
        }
    }

    #[test]
    fn parallel_quoted_file_matches_sequential() {
        use nodb_rawcsv::tokenizer::TokenizerConfig;
        let mut p = std::env::temp_dir();
        p.push(format!("nodb_rawscan_par_quoted_{}", std::process::id()));
        let mut content = String::new();
        for i in 0..400 {
            content.push_str(&format!("{i},\"name, {i}\",\"say \"\"hi\"\"\"\n"));
        }
        std::fs::write(&p, content).unwrap();
        let schema = nodb_rawcsv::Schema::new(vec![
            nodb_rawcsv::ColumnDef::new("id", nodb_rawcsv::ColumnType::Int),
            nodb_rawcsv::ColumnDef::new("name", nodb_rawcsv::ColumnType::Str),
            nodb_rawcsv::ColumnDef::new("quip", nodb_rawcsv::ColumnType::Str),
        ]);
        let tok = TokenizerConfig {
            delimiter: b',',
            quote: Some(b'"'),
        };
        let cfg1 = NoDbConfig {
            scan_threads: 1,
            ..NoDbConfig::default()
        };
        let cfg4 = NoDbConfig {
            scan_threads: 4,
            ..NoDbConfig::default()
        };
        let mut t1 =
            RawTable::register_with_tokenizer(&p, schema.clone(), false, &cfg1, tok).unwrap();
        let mut t4 = RawTable::register_with_tokenizer(&p, schema, false, &cfg4, tok).unwrap();
        let req = ScanRequest::project(vec![0, 1, 2]);
        let (a, _) = scan_once(&mut t1, cfg1, req.clone());
        let (b, _) = scan_once(&mut t4, cfg4, req);
        assert_eq!(a, b);
        assert_eq!(a.len(), 400);
        assert_eq!(a[7][1], Datum::from("name, 7"));
        assert_eq!(a[7][2], Datum::from("say \"hi\""));
        // Quoted files bypass the positional map but still cache.
        assert_eq!(t1.cache.coverage(1), t4.cache.coverage(1));
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn cold_scan_reuses_partial_cache_via_precount() {
        // Cache-only configuration: the positional map is off, so there is
        // never a row index and every rescan is cold byte-partitioned. With
        // a tight budget the first query caches only a prefix; the second
        // cold scan must pre-count, read that prefix from the cache, and
        // still end byte-identical to the sequential scan.
        let mk = |threads: usize| NoDbConfig {
            scan_threads: threads,
            cache_budget_bytes: 1200,
            ..NoDbConfig::cache_only()
        };
        assert_parallel_matches_sequential(
            4,
            400,
            31,
            8,
            mk,
            &[ScanRequest::project(vec![1]), ScanRequest::project(vec![1])],
        );

        // Telemetry detail: the second parallel scan ran the pre-count and
        // tallied cache hits for the covered prefix.
        let (p, schema) = tmp_csv(4, 400, 31);
        let cfg = mk(8);
        let mut t = RawTable::register(&p, schema, false, &cfg).unwrap();
        let req = ScanRequest::project(vec![1]);
        let (_, tel1) = scan_once(&mut t, cfg, req.clone());
        assert!(!tel1.precounted, "first scan has nothing to reuse");
        assert_eq!(tel1.cache_hits, 0);
        let cov = t.cache.coverage(1);
        assert!(cov > 0 && cov < 400, "partial coverage, got {cov}");
        let (_, tel2) = scan_once(&mut t, cfg, req.clone());
        assert!(tel2.precounted, "partial cache must trigger the pre-count");
        assert_eq!(tel2.cache_hits, cov as u64, "covered prefix served");
        assert!(
            !t.map.line_counts().is_empty(),
            "pre-count boundaries memoized"
        );
        // Third scan: same boundaries, so the memo answers the pre-count
        // without re-reading the file — strictly less I/O.
        let (_, tel3) = scan_once(&mut t, cfg, req);
        assert!(tel3.precounted);
        assert!(
            tel3.io.bytes_read < tel2.io.bytes_read,
            "memoized pre-count must skip the counting I/O ({} vs {})",
            tel3.io.bytes_read,
            tel2.io.bytes_read
        );
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn negligible_cache_coverage_skips_the_precount() {
        // A cache covering a vanishing fraction of a known row count must
        // not trigger the pre-count: the counting pass reads the whole
        // file, which can't pay for serving a handful of rows.
        let cfg = NoDbConfig {
            scan_threads: 8,
            cache_budget_bytes: 100, // ~12 of 400 rows
            ..NoDbConfig::cache_only()
        };
        let (p, schema) = tmp_csv(4, 400, 35);
        let mut t = RawTable::register(&p, schema, false, &cfg).unwrap();
        let req = ScanRequest::project(vec![1]);
        let (a, _) = scan_once(&mut t, cfg, req.clone());
        let cov = t.cache.coverage(1);
        assert!(cov > 0 && (cov as u64) * 32 < 400, "tiny coverage: {cov}");
        let (b, tel2) = scan_once(&mut t, cfg, req);
        assert_eq!(a, b);
        assert!(!tel2.precounted, "coverage below threshold: no pre-count");
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn cold_precount_off_keeps_raw_only_behavior() {
        let cfg = NoDbConfig {
            scan_threads: 8,
            cache_budget_bytes: 1200,
            cold_precount: false,
            ..NoDbConfig::cache_only()
        };
        let (p, schema) = tmp_csv(4, 400, 32);
        let mut t = RawTable::register(&p, schema, false, &cfg).unwrap();
        let req = ScanRequest::project(vec![1]);
        let (a, _) = scan_once(&mut t, cfg, req.clone());
        let (b, tel2) = scan_once(&mut t, cfg, req);
        assert_eq!(a, b);
        assert!(!tel2.precounted, "knob off: no pre-count");
        assert_eq!(tel2.cache_hits, 0, "cold workers resolve from raw bytes");
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn cold_scan_after_append_reuses_map_chunks() {
        // An append invalidates row-index completeness but keeps chunks and
        // cache for the prefix: the next scan is cold *with* reuse
        // potential, so it pre-counts and must match the sequential scan.
        use nodb_rawcsv::GeneratorConfig;
        let gen = GeneratorConfig::uniform_ints(5, 500, 33);
        let mk_table = |threads: usize, path: &PathBuf| {
            let cfg = NoDbConfig {
                scan_threads: threads,
                ..NoDbConfig::default()
            };
            (
                RawTable::register(path, gen.schema(), false, &cfg).unwrap(),
                cfg,
            )
        };
        let mut p1 = std::env::temp_dir();
        p1.push(format!("nodb_rawscan_append_seq_{}", std::process::id()));
        gen.generate_file(&p1).unwrap();
        let mut p8 = std::env::temp_dir();
        p8.push(format!("nodb_rawscan_append_par_{}", std::process::id()));
        gen.generate_file(&p8).unwrap();
        let (mut t1, cfg1) = mk_table(1, &p1);
        let (mut t8, cfg8) = mk_table(8, &p8);
        let req = ScanRequest::project(vec![1, 3]);
        let (a0, _) = scan_once(&mut t1, cfg1, req.clone());
        let (b0, _) = scan_once(&mut t8, cfg8, req.clone());
        assert_eq!(a0, b0);
        gen.append_rows(&p1, 120).unwrap();
        gen.append_rows(&p8, 120).unwrap();
        t1.check_updates().unwrap();
        t8.check_updates().unwrap();
        let (a1, tel_a) = scan_once(&mut t1, cfg1, req.clone());
        let (b1, tel_b) = scan_once(&mut t8, cfg8, req);
        assert_eq!(a1, b1, "post-append scans must agree");
        assert_eq!(a1.len(), 620);
        assert!(tel_b.precounted, "append rescan reuses prefix state");
        assert!(
            tel_b.cache_hits > 0,
            "cold workers must peek the prefix cache"
        );
        assert_eq!(tel_a.cache_hits, tel_b.cache_hits, "hit parity");
        assert_eq!(t1.row_count, t8.row_count);
        for attr in [1usize, 3] {
            assert_eq!(t1.cache.coverage(attr), t8.cache.coverage(attr));
            for row in 0..t1.cache.coverage(attr) {
                assert_eq!(t1.cache.peek(attr, row), t8.cache.peek(attr, row));
            }
        }
        std::fs::remove_file(p1).unwrap();
        std::fs::remove_file(p8).unwrap();
    }

    #[test]
    fn stealing_and_static_partitioning_agree() {
        // Same dataset and queries under static partitioning
        // (steal_slices_per_thread = 0) and fine-grained stealing: results
        // and post-scan state must be identical — which worker executes a
        // slice can never matter.
        for steal in [0usize, 1, 4, 16] {
            assert_parallel_matches_sequential(
                6,
                700,
                34,
                8,
                move |t| NoDbConfig {
                    scan_threads: t,
                    steal_slices_per_thread: steal,
                    ..NoDbConfig::default()
                },
                &[
                    ScanRequest::project(vec![0, 4]),
                    ScanRequest::project(vec![2]),
                ],
            );
        }
    }

    #[test]
    fn skewed_line_widths_balance_via_stealing() {
        // A file whose first half has enormous lines and second half tiny
        // ones: equal-byte slices then hold wildly different row counts.
        // The scan must still return every row, in order, at any thread
        // count, with stealing on.
        let mut p = std::env::temp_dir();
        p.push(format!("nodb_rawscan_skew_{}", std::process::id()));
        let mut content = String::new();
        let wide = "x".repeat(900);
        for i in 0..200 {
            content.push_str(&format!("{i},{wide}\n"));
        }
        for i in 200..2200 {
            content.push_str(&format!("{i},s\n"));
        }
        std::fs::write(&p, content).unwrap();
        let schema = nodb_rawcsv::Schema::new(vec![
            nodb_rawcsv::ColumnDef::new("a", nodb_rawcsv::ColumnType::Int),
            nodb_rawcsv::ColumnDef::new("b", nodb_rawcsv::ColumnType::Str),
        ]);
        for threads in [1usize, 3, 8] {
            let cfg = NoDbConfig {
                scan_threads: threads,
                ..NoDbConfig::default()
            };
            let mut t = RawTable::register(&p, schema.clone(), false, &cfg).unwrap();
            let (rows, _) = scan_once(&mut t, cfg, ScanRequest::project(vec![0]));
            assert_eq!(rows.len(), 2200, "threads = {threads}");
            assert_eq!(rows[0][0], Datum::Int(0));
            assert_eq!(rows[2199][0], Datum::Int(2199));
        }
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn partial_cache_coverage_mixes_sources() {
        let (p, schema) = tmp_csv(4, 200, 9);
        // Tight budget: only part of the column fits.
        let cfg = NoDbConfig {
            cache_budget_bytes: 800, // ~100 int rows
            enable_positional_map: false,
            ..NoDbConfig::default()
        };
        let mut t = RawTable::register(&p, schema, false, &cfg).unwrap();
        let req = ScanRequest::project(vec![1]);
        let (a, _) = scan_once(&mut t, cfg, req.clone());
        let cov = t.cache.coverage(1);
        assert!(cov > 0 && cov < 200, "partial coverage, got {cov}");
        let (b, tel) = scan_once(&mut t, cfg, req);
        assert_eq!(a, b, "mixed cache+raw scan must match raw scan");
        assert!(!tel.fully_cached);
        std::fs::remove_file(p).unwrap();
    }

    /// `scan_once` variant that surfaces the scan error instead of
    /// unwrapping, for the failure-path tests.
    fn try_scan_once(
        table: &mut RawTable,
        config: NoDbConfig,
        req: ScanRequest,
        ctx: QueryCtx,
    ) -> (EngineResult<Vec<Vec<Datum>>>, ScanTelemetry) {
        let tel: TelemetryHandle = Arc::new(Mutex::new(ScanTelemetry::default()));
        let r = {
            let prep = prepare_scan(table, &config, req, &tel, ctx);
            let mut src = RawScanSource::from_prep(table, config, prep, Arc::clone(&tel));
            let mut out = Vec::new();
            loop {
                match src.next_batch() {
                    Ok(Some(b)) => {
                        for r in 0..b.rows() {
                            out.push(b.row(r));
                        }
                    }
                    Ok(None) => break Ok(out),
                    Err(e) => break Err(e),
                }
            }
        };
        let t = Arc::try_unwrap(tel).unwrap().into_inner().unwrap();
        (r, t)
    }

    #[test]
    fn worker_panic_is_contained_and_table_stays_usable() {
        let (p, schema) = tmp_csv(4, 400, 21);
        let cfg = NoDbConfig {
            scan_threads: 4,
            ..NoDbConfig::default()
        };
        let mut t = RawTable::register(&p, schema, false, &cfg).unwrap();
        worker::INJECT_WORKER_PANIC.store(true, Ordering::Relaxed);
        let (r, _) = try_scan_once(
            &mut t,
            cfg,
            ScanRequest::project(vec![0, 2]),
            QueryCtx::unbounded(),
        );
        worker::INJECT_WORKER_PANIC.store(false, Ordering::Relaxed);
        match r {
            Err(EngineError::WorkerPanic { partition, message }) => {
                assert_eq!(partition, 0, "lowest failed slice reported");
                assert!(
                    message.contains("injected worker panic"),
                    "panic payload carried: {message}"
                );
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
        // The same table serves the next query normally.
        let (rows, tel) = scan_once(&mut t, cfg, ScanRequest::project(vec![0, 2]));
        assert_eq!(rows.len(), 400);
        assert_eq!(tel.rows_scanned, 400);
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn permissive_policy_quarantines_malformed_cells() {
        let mut p = std::env::temp_dir();
        p.push(format!("nodb_rawscan_quar_{}", std::process::id()));
        std::fs::write(&p, "1,10\n2,oops\n3,30\nbad,40\n5,50\n").unwrap();
        let schema = nodb_rawcsv::Schema::new(vec![
            nodb_rawcsv::ColumnDef::new("a", nodb_rawcsv::ColumnType::Int),
            nodb_rawcsv::ColumnDef::new("b", nodb_rawcsv::ColumnType::Int),
        ]);

        // Strict (the default) aborts on the first malformed cell.
        let strict = NoDbConfig {
            scan_threads: 1,
            ..NoDbConfig::default()
        };
        let mut t = RawTable::register(&p, schema.clone(), false, &strict).unwrap();
        let (r, _) = try_scan_once(
            &mut t,
            strict,
            ScanRequest::project(vec![0, 1]),
            QueryCtx::unbounded(),
        );
        assert!(matches!(r, Err(EngineError::Csv(_))), "strict aborts");

        // Permissive keeps every row, tombstoning the bad cells as NULL, at
        // any thread count, with identical output and telemetry.
        for threads in [1usize, 4] {
            let cfg = NoDbConfig {
                scan_threads: threads,
                parse_errors: ParseErrorPolicy::Permissive,
                ..NoDbConfig::default()
            };
            let mut t = RawTable::register(&p, schema.clone(), false, &cfg).unwrap();
            let (r, tel) = try_scan_once(
                &mut t,
                cfg,
                ScanRequest::project(vec![0, 1]),
                QueryCtx::unbounded(),
            );
            let rows = r.unwrap();
            assert_eq!(rows.len(), 5, "threads = {threads}");
            assert_eq!(rows[1], vec![Datum::Int(2), Datum::Null]);
            assert_eq!(rows[3], vec![Datum::Null, Datum::Int(40)]);
            assert_eq!(tel.rows_quarantined, 2, "threads = {threads}");
            let sampled: Vec<(u64, usize)> = tel
                .quarantine_samples
                .iter()
                .map(|s| (s.row, s.attr))
                .collect();
            assert_eq!(sampled, vec![(1, 1), (3, 0)], "threads = {threads}");
            // The tombstones land in the cache like short-row NULLs: the
            // warm rerun serves identical rows.
            let (rows2, tel2) = scan_once(&mut t, cfg, ScanRequest::project(vec![0, 1]));
            assert_eq!(rows, rows2, "cached rerun identical (threads = {threads})");
            assert!(tel2.fully_cached);
        }
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn expired_deadline_stops_scan_and_leaves_state_reusable() {
        let (p, schema) = tmp_csv(4, 300, 22);
        for threads in [1usize, 4] {
            let cfg = NoDbConfig {
                scan_threads: threads,
                ..NoDbConfig::default()
            };
            let mut t = RawTable::register(&p, schema.clone(), false, &cfg).unwrap();
            // Already-expired deadline: the scan stops at its first check.
            let (r, _) = try_scan_once(
                &mut t,
                cfg,
                ScanRequest::project(vec![1]),
                QueryCtx::with_timeout(Duration::ZERO),
            );
            assert!(
                matches!(r, Err(EngineError::DeadlineExceeded)),
                "threads = {threads}, got {r:?}"
            );
            // The table is immediately usable and the rerun is complete and
            // correct — no double-observed statistics, full row count.
            let (rows, tel) = scan_once(&mut t, cfg, ScanRequest::project(vec![1]));
            assert_eq!(rows.len(), 300, "threads = {threads}");
            assert_eq!(tel.rows_scanned, 300);
            assert_eq!(t.row_count, Some(300));
            assert_eq!(t.stats.attr(1).unwrap().rows_seen(), 300);
            assert_eq!(t.stats.observed_upto(1), 300);
        }
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn cancel_token_stops_streaming_scan_with_partial_state() {
        // Sequential path, cancel after the first batch: the partial chunk
        // and cache prefix must be installed and the frontier advanced.
        let (p, schema) = tmp_csv(3, 5000, 23);
        let cfg = NoDbConfig {
            scan_threads: 1,
            ..NoDbConfig::default()
        };
        let mut t = RawTable::register(&p, schema, false, &cfg).unwrap();
        let tel: TelemetryHandle = Arc::new(Mutex::new(ScanTelemetry::default()));
        let ctx = QueryCtx::unbounded();
        let token = ctx.cancel_token();
        let err = {
            let prep = prepare_scan(&mut t, &cfg, ScanRequest::project(vec![1]), &tel, ctx);
            let mut src = RawScanSource::from_prep(&mut t, cfg, prep, Arc::clone(&tel));
            let first = src.next_batch().unwrap();
            assert!(first.is_some(), "first batch before cancellation");
            token.cancel();
            loop {
                match src.next_batch() {
                    Ok(Some(_)) => continue,
                    Ok(None) => panic!("scan finished despite cancellation"),
                    Err(e) => break e,
                }
            }
        };
        assert!(matches!(err, EngineError::Cancelled), "got {err:?}");
        let stopped_tel = Arc::try_unwrap(tel).unwrap().into_inner().unwrap();
        assert!(stopped_tel.stopped_early);
        let visited = stopped_tel.rows_scanned;
        assert!(
            visited > 0 && visited < 5000,
            "stopped mid-file, visited {visited}"
        );
        // Partial state: cache/frontier cover the visited prefix; EOF
        // bookkeeping withheld.
        assert_eq!(t.row_count, None);
        assert!(!t.map.row_index().is_complete());
        assert_eq!(t.cache.coverage(1) as u64, visited);
        assert_eq!(t.stats.observed_upto(1), visited);
        // Rerun completes, starting warmer, without double observation.
        let (rows, _) = scan_once(&mut t, cfg, ScanRequest::project(vec![1]));
        assert_eq!(rows.len(), 5000);
        assert_eq!(t.stats.attr(1).unwrap().rows_seen(), 5000);
        std::fs::remove_file(p).unwrap();
    }
}
