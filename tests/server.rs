//! End-to-end tests for the nodb-server network front-end (ISSUE 8): real
//! TCP clients against a [`Server`] fronting a shared `NoDb` instance.
//!
//! The core invariant mirrors `concurrent_queries.rs`: M clients × N
//! queries over the wire must return, byte for byte, the bodies a
//! sequential in-process replay produces, and must leave the server's
//! table in exactly the replay's adaptive state — even though the server
//! adds admission control and a prepared-statement cache on top.
//!
//! The acceptance criterion from the issue rides here too: with 32
//! concurrent clients and a scan budget of 8, the budget's high-water mark
//! never exceeds 8 (asserted via [`ScanBudget`] telemetry, not sampling).

use std::sync::Arc;

use nodb_repro::core::{NoDb, NoDbConfig};
use nodb_repro::prelude::*;
use nodb_server::{NoDbClient, Server, ServerConfig};

mod common;
use common::assert_same_state;

fn scratch(tag: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("nodb_server_{tag}_{}", std::process::id()));
    p
}

/// A `NoDb` with table `t` registered from `path`. `scan_threads: 1` keeps
/// the per-query fan-out deterministic whether or not a budget clamps it
/// (a grant for 1 is always exactly 1), so server state and sequential
/// replay state are comparable field by field.
fn mk_db(path: &std::path::Path, schema: Schema, scan_threads: usize) -> NoDb {
    let mut db = NoDb::new(NoDbConfig {
        scan_threads,
        ..NoDbConfig::default()
    });
    db.register_csv_with_schema("t", path, schema, false)
        .unwrap();
    db
}

fn server_config(budget: usize) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        scan_budget: budget,
        admission_queue: 64,
        prepared_statements: 64,
        query_timeout_ms: 0,
    }
}

/// M TCP clients × N queries × 2 passes return byte-identical bodies to a
/// sequential in-process replay, and the server's table lands in the
/// replay's exact adaptive state. Every pass-2 status must report a
/// prepared-statement hit: by then each client has itself planned all four
/// statements, the table generation never moves, and capacity (64) far
/// exceeds the working set, so a miss would be a cache bug.
#[test]
fn tcp_storm_matches_sequential_replay() {
    let cols = 6;
    let gen = GeneratorConfig::uniform_ints(cols, 600, 0x57011);
    let path = scratch("storm");
    gen.generate_file(&path).unwrap();
    let queries: Vec<String> = vec![
        "SELECT c1 FROM t WHERE c2 < 500000000".to_string(),
        "SELECT c3, c1 FROM t".to_string(),
        "SELECT COUNT(*) FROM t WHERE c2 >= 500000000".to_string(),
        "SELECT c5 FROM t WHERE c0 < 900000000".to_string(),
    ];

    // Sequential replay: same workload, one query at a time, no server.
    let seq = mk_db(&path, gen.schema(), 1);
    let mut expect = Vec::new();
    for _pass in 0..2 {
        for q in &queries {
            expect.push(seq.query(q).unwrap().to_string());
        }
    }

    let server = Server::start(Arc::new(mk_db(&path, gen.schema(), 1)), server_config(8)).unwrap();
    let addr = server.local_addr();

    let n_clients = 4;
    std::thread::scope(|s| {
        for c in 0..n_clients {
            let queries = &queries;
            let expect = &expect;
            s.spawn(move || {
                let mut client = NoDbClient::connect(addr).unwrap();
                for pass in 0..2 {
                    for (qi, q) in queries.iter().enumerate() {
                        let resp = client.query(q).unwrap();
                        assert!(
                            resp.is_ok(),
                            "client {c} pass {pass} query {qi}: {}",
                            resp.status
                        );
                        assert_eq!(
                            resp.body,
                            expect[pass * queries.len() + qi],
                            "client {c} pass {pass} query {qi}: body"
                        );
                        if pass == 1 {
                            assert!(
                                resp.status.contains("prepared=1"),
                                "client {c} pass {pass} query {qi}: expected a \
                                 prepared-statement hit, got {}",
                                resp.status
                            );
                        }
                    }
                }
                client.quit().unwrap();
            });
        }
    });

    assert_same_state("tcp storm", server.db(), &seq, cols);
    let prepared = server.db().admin().prepared_stats().unwrap();
    assert!(
        prepared.hits >= (n_clients * queries.len()) as u64,
        "every pass-2 query hit the prepared cache: {prepared:?}"
    );
    let stats = server.shutdown();
    assert_eq!(stats.queries_ok, (n_clients * queries.len() * 2) as u64);
    assert_eq!(stats.queries_err, 0);
    std::fs::remove_file(path).unwrap();
}

/// The issue's acceptance criterion: 32 concurrent TCP clients against a
/// scan budget of 8, every query answers correctly, and telemetry proves
/// the number of scan permits in flight never exceeded the budget — with
/// `scan_threads: 4` configured, unbounded fan-out would run 128 threads.
#[test]
fn budget_cap_holds_under_32_clients() {
    let cols = 5;
    let gen = GeneratorConfig::uniform_ints(cols, 20_000, 0xB0D6E7);
    let path = scratch("cap");
    gen.generate_file(&path).unwrap();
    let queries = [
        "SELECT COUNT(*) FROM t",
        "SELECT c1 FROM t WHERE c2 > 900000000",
        "SELECT COUNT(*), SUM(c3) FROM t WHERE c4 < 500000000",
    ];

    let reference = mk_db(&path, gen.schema(), 4);
    let expect: Vec<String> = queries
        .iter()
        .map(|q| reference.query(q).unwrap().to_string())
        .collect();

    let server = Server::start(Arc::new(mk_db(&path, gen.schema(), 4)), server_config(8)).unwrap();
    let addr = server.local_addr();

    let n_clients = 32;
    std::thread::scope(|s| {
        for c in 0..n_clients {
            let queries = &queries;
            let expect = &expect;
            s.spawn(move || {
                let mut client = NoDbClient::connect(addr).unwrap();
                for (qi, q) in queries.iter().enumerate() {
                    let resp = client.query(q).unwrap();
                    assert!(resp.is_ok(), "client {c} query {qi}: {}", resp.status);
                    assert_eq!(resp.body, expect[qi], "client {c} query {qi}: body");
                }
                client.quit().unwrap();
            });
        }
    });

    let t = server.budget().telemetry();
    assert!(
        t.peak_in_flight <= 8,
        "scan budget exceeded: peak {} > capacity 8",
        t.peak_in_flight
    );
    assert_eq!(t.in_flight, 0, "all grants returned");
    assert_eq!(t.waiting, 0, "no stuck waiters");
    assert_eq!(t.admitted, (n_clients * queries.len()) as u64);
    assert_eq!(t.rejected, 0, "queue of 64 never overflows with 32 clients");
    let stats = server.shutdown();
    assert_eq!(stats.queries_ok, (n_clients * queries.len()) as u64);
    assert_eq!(stats.connections, n_clients as u64);
    std::fs::remove_file(path).unwrap();
}

/// Prepared-statement hits are visible over the wire (`prepared=` in the
/// `OK` status line) and in the admin stats, and the second run of the same
/// SQL skips planning entirely in its report breakdown.
#[test]
fn prepared_hits_visible_over_wire() {
    let gen = GeneratorConfig::uniform_ints(3, 400, 0x9E9);
    let path = scratch("prep");
    gen.generate_file(&path).unwrap();

    let server = Server::start(Arc::new(mk_db(&path, gen.schema(), 1)), server_config(2)).unwrap();
    let mut client = NoDbClient::connect(server.local_addr()).unwrap();

    let sql = "SELECT c0, c2 FROM t WHERE c1 < 700000000";
    let cold = client.query(sql).unwrap();
    assert!(cold.is_ok(), "{}", cold.status);
    assert!(cold.status.contains("prepared=0"), "{}", cold.status);

    let warm = client.query(sql).unwrap();
    assert!(warm.is_ok(), "{}", warm.status);
    assert!(warm.status.contains("prepared=1"), "{}", warm.status);
    assert_eq!(cold.body, warm.body, "same answer either way");

    let stats = server.db().admin().prepared_stats().unwrap();
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.misses, 1);
    let report = server.db().admin().last_report().unwrap();
    assert!(report.prepared_hit);
    assert_eq!(
        report.breakdown.planning,
        std::time::Duration::ZERO,
        "prepared hit skips parse/plan"
    );

    client.quit().unwrap();
    server.shutdown();
    std::fs::remove_file(path).unwrap();
}

/// `SNAPSHOT` over the wire persists every table's sidecar on demand and
/// `SNAPSHOT?` reports the persistence counters — even on a database
/// opened without `snapshot_persistence` (an explicit request is its own
/// authorization).
#[test]
fn snapshot_verbs_over_wire() {
    let gen = GeneratorConfig::uniform_ints(3, 300, 0x54AF);
    let path = scratch("snapverb");
    gen.generate_file(&path).unwrap();

    let server = Server::start(Arc::new(mk_db(&path, gen.schema(), 1)), server_config(2)).unwrap();
    let mut client = NoDbClient::connect(server.local_addr()).unwrap();

    // Warm some adaptive state so the sidecar has something to hold.
    let q = client
        .query("SELECT c1 FROM t WHERE c0 < 800000000")
        .unwrap();
    assert!(q.is_ok(), "{}", q.status);

    let before = client.command("SNAPSHOT?").unwrap();
    assert!(before.is_ok(), "{}", before.status);
    assert!(before.body.contains("saves=0"), "{}", before.body);

    let snap = client.command("SNAPSHOT").unwrap();
    assert!(snap.is_ok(), "{}", snap.status);
    assert_eq!(snap.body.trim(), "t=ok");
    let sidecar = nodb_repro::snapshot::sidecar_path(&path);
    assert!(sidecar.exists(), "SNAPSHOT wrote the sidecar");

    let after = client.command("SNAPSHOT?").unwrap();
    assert!(after.is_ok(), "{}", after.status);
    assert!(after.body.contains("saves=1"), "{}", after.body);
    assert!(after.body.contains("save_failures=0"), "{}", after.body);

    client.quit().unwrap();
    server.shutdown();
    std::fs::remove_file(&sidecar).unwrap();
    std::fs::remove_file(path).unwrap();
}

/// Bounded overload retry (ISSUE 10 satellite): against a saturated
/// budget with a zero-length admission queue, a plain client surfaces
/// `ERR overloaded` immediately, while a client opted into
/// `retry_overloaded` rides out the saturation with backoff and gets the
/// answer once the permit frees up.
#[test]
fn retry_overloaded_rides_out_saturation() {
    let gen = GeneratorConfig::uniform_ints(5, 60_000, 0x0B5C);
    let path = scratch("overload");
    gen.generate_file(&path).unwrap();
    // The permit-holding query must stay in flight for hundreds of ms:
    // same deterministic slow-scan recipe as the resilience suite (tiny
    // blocks, a fault every refill, retry backoff on each).
    let mut db = NoDb::new(NoDbConfig {
        scan_threads: 1,
        io_block_size: 4096,
        io_readahead_blocks: 0,
        cold_precount: false,
        io_fault_seed: 0x0B5C,
        io_fault_one_in: 1,
        io_retry_attempts: 2,
        io_retry_backoff_ms: 4,
        ..NoDbConfig::default()
    });
    db.register_csv_with_schema("t", &path, gen.schema(), false)
        .unwrap();
    let server = Server::start(
        Arc::new(db),
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            scan_budget: 1,
            admission_queue: 0,
            prepared_statements: 8,
            query_timeout_ms: 0,
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let sql = "SELECT COUNT(*), SUM(c1) FROM t";

    // Client A grabs the only permit and holds it for the whole slow scan.
    let mut holder = NoDbClient::connect(addr).unwrap();
    holder.send_only(&format!("QUERY {sql}")).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(40));

    // A plain client is bounced immediately — the back-pressure signal.
    let mut plain = NoDbClient::connect(addr).unwrap();
    let bounced = plain.query(sql).unwrap();
    assert!(
        bounced.status.starts_with("ERR overloaded"),
        "expected an immediate rejection, got {}",
        bounced.status
    );

    // A retrying client backs off and wins once the holder finishes. The
    // budget is generous (the backoff caps at 128 ms/attempt, so 64
    // attempts ≈ 8 s) because the holder's chaos scan can stretch well
    // past its usual few hundred ms when the whole suite runs in parallel.
    let mut patient = NoDbClient::connect(addr).unwrap().retry_overloaded(64);
    let resp = patient.query(sql).unwrap();
    assert!(resp.is_ok(), "retry never got through: {}", resp.status);

    // Drain the holder's response: same answer, and telemetry shows both
    // the rejection(s) and zero stuck waiters.
    let hold_resp = holder.command("PING").map(|_| ());
    assert!(hold_resp.is_ok(), "holder connection still healthy");
    let t = server.budget().telemetry();
    assert!(t.rejected >= 1, "the bounce was counted: {t:?}");
    assert_eq!(t.waiting, 0, "no stuck waiters");
    plain.quit().unwrap();
    patient.quit().unwrap();
    holder.quit().unwrap();
    server.shutdown();
    std::fs::remove_file(path).unwrap();
}

/// `EPOCH?` over the wire, and `source_changed=` in the QUERY status
/// line: a freshly served table reports generation 0 and no torn tail;
/// after an external rewrite the next query heals and the report shows
/// the bumped generation and re-keyed length.
#[test]
fn epoch_verb_over_wire() {
    let gen = GeneratorConfig::uniform_ints(3, 500, 0xE9);
    let path = scratch("epochverb");
    gen.generate_file(&path).unwrap();

    let server = Server::start(Arc::new(mk_db(&path, gen.schema(), 1)), server_config(2)).unwrap();
    let mut client = NoDbClient::connect(server.local_addr()).unwrap();

    let q = client.query("SELECT COUNT(*) FROM t").unwrap();
    assert!(q.is_ok(), "{}", q.status);
    assert!(q.status.contains("source_changed=0"), "{}", q.status);

    let before = client.command("EPOCH?").unwrap();
    assert!(before.is_ok(), "{}", before.status);
    assert!(before.body.contains("source_changes=0"), "{}", before.body);
    assert!(
        before.body.contains("table=t generation=0"),
        "{}",
        before.body
    );
    assert!(before.body.contains("torn_tail=0"), "{}", before.body);

    // External rewrite between queries: reconciled at the planning probe,
    // generation bumps, the epoch re-keys to the new length.
    let gen2 = GeneratorConfig::uniform_ints(3, 250, 0xBEE);
    gen2.generate_file(&path).unwrap();
    let q2 = client.query("SELECT COUNT(*) FROM t").unwrap();
    assert!(q2.is_ok(), "{}", q2.status);
    assert!(q2.body.contains("250"), "cold-correct answer: {}", q2.body);

    let after = client.command("EPOCH?").unwrap();
    assert!(after.is_ok(), "{}", after.status);
    assert!(
        after.body.contains("table=t generation=1"),
        "{}",
        after.body
    );
    let len = std::fs::metadata(&path).unwrap().len();
    assert!(
        after.body.contains(&format!("len={len} trusted_len={len}")),
        "{}",
        after.body
    );

    client.quit().unwrap();
    server.shutdown();
    std::fs::remove_file(path).unwrap();
}

/// The non-query protocol surface: PING, TABLES, SCHEMA, PANEL, REPORT,
/// and the error paths (bad SQL, unknown table, unknown command) — all
/// without wedging the connection.
#[test]
fn protocol_surface_round_trips() {
    let gen = GeneratorConfig::uniform_ints(3, 200, 0xAB);
    let path = scratch("proto");
    gen.generate_file(&path).unwrap();

    let server = Server::start(Arc::new(mk_db(&path, gen.schema(), 1)), server_config(2)).unwrap();
    let mut client = NoDbClient::connect(server.local_addr()).unwrap();

    assert!(client.ping().unwrap());

    let tables = client.command("TABLES").unwrap();
    assert!(tables.is_ok());
    assert_eq!(tables.body.trim(), "t");

    let schema = client.command("SCHEMA t").unwrap();
    assert!(schema.is_ok());
    assert!(schema.body.contains("c0"), "schema lists columns");

    // REPORT before any query: an error, not a wedged connection.
    let no_report = client.command("REPORT").unwrap();
    assert!(!no_report.is_ok(), "{}", no_report.status);

    let q = client.query("SELECT COUNT(*) FROM t").unwrap();
    assert!(q.is_ok());
    assert!(q.status.contains("rows=1"), "{}", q.status);

    let report = client.command("REPORT").unwrap();
    assert!(report.is_ok());
    assert!(!report.body.is_empty(), "report body has the plan");

    let panel = client.command("PANEL t").unwrap();
    assert!(panel.is_ok());
    assert!(!panel.body.is_empty(), "panel body rendered");

    let stats = client.command("STATS").unwrap();
    assert!(stats.is_ok());
    assert!(stats.body.contains("budget_capacity=2"), "{}", stats.body);

    for bad in [
        "QUERY SELECT nope FROM t",
        "QUERY SELECT c0 FROM missing",
        "SCHEMA missing",
        "PANEL missing",
        "FROBNICATE",
    ] {
        let resp = client.command(bad).unwrap();
        assert!(resp.status.starts_with("ERR"), "{bad}: {}", resp.status);
    }
    // Connection still healthy after every error.
    assert!(client.ping().unwrap());

    client.quit().unwrap();
    server.shutdown();
    std::fs::remove_file(path).unwrap();
}
