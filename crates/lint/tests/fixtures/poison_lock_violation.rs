//! Seeded violations for the `poison-lock` rule: lines 9, 14 and 20 must
//! each produce exactly one finding (a multiline chain reports the line of
//! the acquisition call); the waived chain at the bottom must not.

use std::sync::{Mutex, RwLock};

fn direct_unwrap(m: &Mutex<u32>) -> u32 {
    // Finding: panics the caller if a worker poisoned the lock.
    *m.lock().unwrap()
}

fn expect_chain(l: &RwLock<u32>) -> u32 {
    // Finding: expect is just unwrap with a banner.
    *l.read().expect("poisoned")
}

fn multiline_chain(l: &RwLock<u32>) {
    // Finding: the chain spans lines; the finding lands on `.write()`.
    *l
        .write()
        .unwrap() += 1;
}

fn hand_rolled_recovery(m: &Mutex<u32>) -> u32 {
    // lint: lock-ok fixture: pretend this is the central recovery shim
    *m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
