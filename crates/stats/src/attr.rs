//! Per-attribute statistics accumulator.
//!
//! Fed by the scan operator for *requested attributes only* (§3.3: "creates
//! statistics only on requested attributes") and incrementally augmented as
//! queries touch more rows.

use nodb_rawcsv::Datum;

use crate::histogram::EquiDepthHistogram;
use crate::ndv::DistinctCounter;
use crate::sample::Reservoir;

/// Default reservoir capacity per attribute.
pub const DEFAULT_SAMPLE_CAPACITY: usize = 1024;

/// Running statistics for one attribute of one raw file.
#[derive(Debug)]
pub struct AttrStats {
    attr: usize,
    /// Values observed (including NULLs).
    rows_seen: u64,
    /// NULLs observed.
    nulls: u64,
    /// Smallest non-null value (total order).
    min: Option<Datum>,
    /// Largest non-null value (total order).
    max: Option<Datum>,
    reservoir: Reservoir,
    ndv: DistinctCounter,
    /// Histogram cache, invalidated when the reservoir changes.
    histogram: Option<(u64, EquiDepthHistogram)>,
}

impl AttrStats {
    /// Fresh accumulator for attribute `attr`. The reservoir seed derives
    /// from the attribute index, keeping runs reproducible.
    pub fn new(attr: usize) -> Self {
        AttrStats {
            attr,
            rows_seen: 0,
            nulls: 0,
            min: None,
            max: None,
            reservoir: Reservoir::new(DEFAULT_SAMPLE_CAPACITY, 0x5eed_0000 + attr as u64),
            ndv: DistinctCounter::default_size(),
            histogram: None,
        }
    }

    /// The attribute index this accumulator describes.
    pub fn attr(&self) -> usize {
        self.attr
    }

    /// Observe one value during a scan.
    pub fn observe(&mut self, d: &Datum) {
        self.rows_seen += 1;
        if d.is_null() {
            self.nulls += 1;
            return;
        }
        match &self.min {
            Some(m) if d.total_cmp(m) != std::cmp::Ordering::Less => {}
            _ => self.min = Some(d.clone()),
        }
        match &self.max {
            Some(m) if d.total_cmp(m) != std::cmp::Ordering::Greater => {}
            _ => self.max = Some(d.clone()),
        }
        self.ndv.add(d);
        self.reservoir.offer(d);
    }

    /// Values observed so far (including NULLs).
    pub fn rows_seen(&self) -> u64 {
        self.rows_seen
    }

    /// Fraction of observed values that were NULL.
    pub fn null_fraction(&self) -> f64 {
        if self.rows_seen == 0 {
            0.0
        } else {
            self.nulls as f64 / self.rows_seen as f64
        }
    }

    /// Estimated number of distinct non-null values.
    pub fn ndv(&self) -> f64 {
        self.ndv.estimate().max(1.0)
    }

    /// Observed minimum.
    pub fn min(&self) -> Option<&Datum> {
        self.min.as_ref()
    }

    /// Observed maximum.
    pub fn max(&self) -> Option<&Datum> {
        self.max.as_ref()
    }

    /// The current reservoir sample (non-null values, unordered).
    pub fn sample(&self) -> &[Datum] {
        self.reservoir.sample()
    }

    /// Equi-depth histogram over the current sample (rebuilt lazily when the
    /// sample has grown since the last build).
    pub fn histogram(&mut self) -> Option<&EquiDepthHistogram> {
        let seen = self.reservoir.seen();
        let stale = match &self.histogram {
            Some((at, _)) => *at != seen,
            None => true,
        };
        if stale {
            self.histogram =
                EquiDepthHistogram::build(self.reservoir.sample(), 64).map(|h| (seen, h));
        }
        self.histogram.as_ref().map(|(_, h)| h)
    }

    /// Reset (file replaced).
    pub fn clear(&mut self) {
        self.rows_seen = 0;
        self.nulls = 0;
        self.min = None;
        self.max = None;
        self.reservoir.clear();
        self.ndv.clear();
        self.histogram = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_max_null_tracking() {
        let mut s = AttrStats::new(0);
        s.observe(&Datum::Int(5));
        s.observe(&Datum::Null);
        s.observe(&Datum::Int(-3));
        s.observe(&Datum::Int(9));
        assert_eq!(s.min(), Some(&Datum::Int(-3)));
        assert_eq!(s.max(), Some(&Datum::Int(9)));
        assert_eq!(s.rows_seen(), 4);
        assert!((s.null_fraction() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn ndv_counts_distinct() {
        let mut s = AttrStats::new(1);
        for i in 0..50 {
            s.observe(&Datum::Int(i % 10));
        }
        let e = s.ndv();
        assert!((e - 10.0).abs() < 3.0, "ndv = {e}");
    }

    #[test]
    fn histogram_rebuilds_after_growth() {
        let mut s = AttrStats::new(2);
        for i in 0..100 {
            s.observe(&Datum::Int(i));
        }
        let f1 = s.histogram().unwrap().fraction_le(&Datum::Int(50));
        assert!(f1 > 0.3 && f1 < 0.7);
        for i in 100..1000 {
            s.observe(&Datum::Int(i));
        }
        let f2 = s.histogram().unwrap().fraction_le(&Datum::Int(50));
        assert!(f2 < 0.2, "after growth le(50) = {f2}");
    }

    #[test]
    fn clear_resets_everything() {
        let mut s = AttrStats::new(3);
        s.observe(&Datum::Int(1));
        s.clear();
        assert_eq!(s.rows_seen(), 0);
        assert!(s.min().is_none());
        assert!(s.histogram().is_none());
    }
}
