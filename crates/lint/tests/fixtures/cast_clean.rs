//! Clean under `truncating-cast`: narrowing goes through `try_into`, is
//! waived with a documented bound, or happens in test code.

use std::convert::TryInto;

fn checked(off: u64) -> Result<usize, std::num::TryFromIntError> {
    off.try_into()
}

fn widening_only(rows: u32, bytes: usize) -> u64 {
    // u32/usize → u64 never truncates on supported targets.
    rows as u64 + bytes as u64
}

fn waived(off: u64) -> u32 {
    // lint: cast-ok off is a line-relative span in this fixture
    off as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_cast_freely() {
        let x: u64 = 5;
        assert_eq!(x as usize, 5usize);
        assert_eq!(checked(9).unwrap(), 9usize);
    }
}
