//! Typed columnar storage for cached binary values.

use nodb_rawcsv::{ColumnType, Datum};

/// Compact null bitmap (1 bit per row).
#[derive(Debug, Default, Clone)]
pub struct NullMask {
    words: Vec<u64>,
    len: usize,
    any_null: bool,
}

impl NullMask {
    /// Append one validity bit (`true` = NULL).
    #[inline]
    pub fn push(&mut self, is_null: bool) {
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if is_null {
            self.words[word] |= 1u64 << (self.len % 64);
            self.any_null = true;
        }
        self.len += 1;
    }

    /// Whether row `i` is NULL.
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        if !self.any_null {
            return false;
        }
        self.words
            .get(i / 64)
            .is_some_and(|w| w & (1u64 << (i % 64)) != 0)
    }

    /// Number of recorded rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when at least one NULL bit is set; on a `false` (all-valid)
    /// column, vectorized kernels skip the per-row null check entirely.
    #[inline]
    pub fn any_null(&self) -> bool {
        self.any_null
    }

    /// The mask restricted to rows `[lo, hi)` (segment export). Copies
    /// word-at-a-time (shift-and-merge across the `lo % 64` misalignment) —
    /// this runs once per batch per column on the warm path, so per-bit
    /// pushes would be ~64x too slow on nullable columns.
    pub fn slice(&self, lo: usize, hi: usize) -> NullMask {
        let len = hi.saturating_sub(lo);
        let mut words = vec![0u64; len.div_ceil(64)];
        let mut any_null = false;
        if self.any_null {
            let shift = lo % 64;
            let base = lo / 64;
            let src = |i: usize| self.words.get(i).copied().unwrap_or(0);
            for (w, out) in words.iter_mut().enumerate() {
                let mut v = src(base + w) >> shift;
                if shift > 0 {
                    v |= src(base + w + 1) << (64 - shift);
                }
                *out = v;
            }
            // Zero the bits past `len`: later pushes OR into these slots,
            // and `any_null` must describe only the sliced range.
            if !len.is_multiple_of(64) {
                if let Some(last) = words.last_mut() {
                    *last &= (1u64 << (len % 64)) - 1;
                }
            }
            any_null = words.iter().any(|&w| w != 0);
        }
        NullMask {
            words,
            len,
            any_null,
        }
    }

    /// The mask at the given rows, in order (selective segment export).
    pub fn gather(&self, rows: &[u32], base: usize) -> NullMask {
        let mut out = NullMask::default();
        if !self.any_null {
            out.len = rows.len();
            out.words = vec![0; out.len.div_ceil(64)];
            return out;
        }
        for &r in rows {
            out.push(self.is_null(base + r as usize)); // lint: cast-ok u32 selection index widens into usize
        }
        out
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bitmap bytes held (see [`TypedColumn::footprint`] for the accounting
    /// discipline).
    pub fn footprint(&self) -> usize {
        self.words.len() * 8
    }

    /// Append every bit of `other` after this mask's bits (segment merge).
    pub fn append_segment(&mut self, other: &NullMask) {
        if !other.any_null {
            // Fast path: extend with zeros by just bumping the length.
            self.len += other.len;
            let words_needed = self.len.div_ceil(64);
            if self.words.len() < words_needed {
                self.words.resize(words_needed, 0);
            }
            return;
        }
        for i in 0..other.len {
            self.push(other.is_null(i));
        }
    }
}

/// One cached attribute's values in typed, post-parse form.
#[derive(Debug)]
pub enum TypedColumn {
    /// 64-bit integers.
    Int {
        /// Values (NULL rows hold 0; consult `nulls`).
        values: Vec<i64>,
        /// Null bitmap.
        nulls: NullMask,
    },
    /// 64-bit floats.
    Float {
        /// Values (NULL rows hold 0.0).
        values: Vec<f64>,
        /// Null bitmap.
        nulls: NullMask,
    },
    /// Booleans.
    Bool {
        /// Values (NULL rows hold false).
        values: Vec<bool>,
        /// Null bitmap.
        nulls: NullMask,
    },
    /// Strings.
    Str {
        /// Values (NULL rows hold "").
        values: Vec<Box<str>>,
        /// Cumulative byte length of all strings (budget accounting).
        str_bytes: usize,
        /// Null bitmap.
        nulls: NullMask,
    },
}

impl TypedColumn {
    /// Empty column of the given type.
    pub fn new(ty: ColumnType) -> Self {
        match ty {
            ColumnType::Int => TypedColumn::Int {
                values: Vec::new(),
                nulls: NullMask::default(),
            },
            ColumnType::Float => TypedColumn::Float {
                values: Vec::new(),
                nulls: NullMask::default(),
            },
            ColumnType::Bool => TypedColumn::Bool {
                values: Vec::new(),
                nulls: NullMask::default(),
            },
            ColumnType::Str => TypedColumn::Str {
                values: Vec::new(),
                str_bytes: 0,
                nulls: NullMask::default(),
            },
        }
    }

    /// The column's type.
    pub fn ty(&self) -> ColumnType {
        match self {
            TypedColumn::Int { .. } => ColumnType::Int,
            TypedColumn::Float { .. } => ColumnType::Float,
            TypedColumn::Bool { .. } => ColumnType::Bool,
            TypedColumn::Str { .. } => ColumnType::Str,
        }
    }

    /// Number of rows stored.
    pub fn len(&self) -> usize {
        match self {
            TypedColumn::Int { values, .. } => values.len(),
            TypedColumn::Float { values, .. } => values.len(),
            TypedColumn::Bool { values, .. } => values.len(),
            TypedColumn::Str { values, .. } => values.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append a datum. NULL appends a null slot; a type-mismatched datum is
    /// recorded as NULL (cannot happen when fed from a typed parse path, but
    /// keeps the API total).
    pub fn push(&mut self, d: &Datum) {
        match self {
            TypedColumn::Int { values, nulls } => match d {
                Datum::Int(v) => {
                    values.push(*v);
                    nulls.push(false);
                }
                _ => {
                    values.push(0);
                    nulls.push(true);
                }
            },
            TypedColumn::Float { values, nulls } => match d {
                Datum::Float(v) => {
                    values.push(*v);
                    nulls.push(false);
                }
                Datum::Int(v) => {
                    values.push(*v as f64);
                    nulls.push(false);
                }
                _ => {
                    values.push(0.0);
                    nulls.push(true);
                }
            },
            TypedColumn::Bool { values, nulls } => match d {
                Datum::Bool(v) => {
                    values.push(*v);
                    nulls.push(false);
                }
                _ => {
                    values.push(false);
                    nulls.push(true);
                }
            },
            TypedColumn::Str {
                values,
                str_bytes,
                nulls,
            } => match d {
                Datum::Str(s) => {
                    *str_bytes += s.len();
                    values.push(s.clone());
                    nulls.push(false);
                }
                _ => {
                    values.push("".into());
                    nulls.push(true);
                }
            },
        }
    }

    /// Read row `i` back as a datum. Returns `None` past the end.
    #[inline]
    pub fn datum(&self, i: usize) -> Option<Datum> {
        match self {
            TypedColumn::Int { values, nulls } => values.get(i).map(|v| {
                if nulls.is_null(i) {
                    Datum::Null
                } else {
                    Datum::Int(*v)
                }
            }),
            TypedColumn::Float { values, nulls } => values.get(i).map(|v| {
                if nulls.is_null(i) {
                    Datum::Null
                } else {
                    Datum::Float(*v)
                }
            }),
            TypedColumn::Bool { values, nulls } => values.get(i).map(|v| {
                if nulls.is_null(i) {
                    Datum::Null
                } else {
                    Datum::Bool(*v)
                }
            }),
            TypedColumn::Str { values, nulls, .. } => values.get(i).map(|v| {
                if nulls.is_null(i) {
                    Datum::Null
                } else {
                    Datum::Str(v.clone())
                }
            }),
        }
    }

    /// Append every row of `other` after this column's rows — the segment
    /// merge of the parallel scan, which concatenates per-partition partial
    /// columns in partition order.
    ///
    /// # Panics
    /// Panics when the column types differ (partials are always derived from
    /// one schema, so a mismatch is a logic error).
    pub fn append_segment(&mut self, other: TypedColumn) {
        match (self, other) {
            (
                TypedColumn::Int { values, nulls },
                TypedColumn::Int {
                    values: ov,
                    nulls: on,
                },
            ) => {
                values.extend_from_slice(&ov);
                nulls.append_segment(&on);
            }
            (
                TypedColumn::Float { values, nulls },
                TypedColumn::Float {
                    values: ov,
                    nulls: on,
                },
            ) => {
                values.extend_from_slice(&ov);
                nulls.append_segment(&on);
            }
            (
                TypedColumn::Bool { values, nulls },
                TypedColumn::Bool {
                    values: ov,
                    nulls: on,
                },
            ) => {
                values.extend_from_slice(&ov);
                nulls.append_segment(&on);
            }
            (
                TypedColumn::Str {
                    values,
                    str_bytes,
                    nulls,
                },
                TypedColumn::Str {
                    values: ov,
                    str_bytes: ob,
                    nulls: on,
                },
            ) => {
                values.extend(ov);
                *str_bytes += ob;
                nulls.append_segment(&on);
            }
            (a, b) => panic!(
                "cannot merge column segments of different types: {:?} vs {:?}",
                a.ty(),
                b.ty()
            ),
        }
    }

    /// Export rows `[lo, hi)` as an owned column of the same type — the
    /// typed segment export the vectorized warm path is built on: a cache
    /// segment crosses into the engine as value vectors plus a null mask,
    /// never as per-cell boxed datums. Values are copied (`memcpy` for
    /// fixed-width types). The range is clamped to `[0, len())`: rows past
    /// the end are truncated, so the exported column's length is
    /// `min(hi, len()) - min(lo, len())`.
    pub fn export_range(&self, lo: usize, hi: usize) -> TypedColumn {
        let lo = lo.min(self.len());
        let hi = hi.clamp(lo, self.len());
        match self {
            TypedColumn::Int { values, nulls } => TypedColumn::Int {
                values: values[lo..hi].to_vec(),
                nulls: nulls.slice(lo, hi),
            },
            TypedColumn::Float { values, nulls } => TypedColumn::Float {
                values: values[lo..hi].to_vec(),
                nulls: nulls.slice(lo, hi),
            },
            TypedColumn::Bool { values, nulls } => TypedColumn::Bool {
                values: values[lo..hi].to_vec(),
                nulls: nulls.slice(lo, hi),
            },
            TypedColumn::Str { values, nulls, .. } => {
                let vals: Vec<Box<str>> = values[lo..hi].to_vec();
                let str_bytes = vals.iter().map(|s| s.len()).sum();
                TypedColumn::Str {
                    values: vals,
                    str_bytes,
                    nulls: nulls.slice(lo, hi),
                }
            }
        }
    }

    /// Export the rows `base + rows[i]`, in order, as an owned column of the
    /// same type — the selective (late-materializing) twin of
    /// [`Self::export_range`]: only rows that survived a selection vector
    /// are ever copied.
    pub fn gather(&self, rows: &[u32], base: usize) -> TypedColumn {
        match self {
            TypedColumn::Int { values, nulls } => TypedColumn::Int {
                values: rows.iter().map(|&r| values[base + r as usize]).collect(), // lint: cast-ok u32 selection index widens into usize
                nulls: nulls.gather(rows, base),
            },
            TypedColumn::Float { values, nulls } => TypedColumn::Float {
                values: rows.iter().map(|&r| values[base + r as usize]).collect(), // lint: cast-ok u32 selection index widens into usize
                nulls: nulls.gather(rows, base),
            },
            TypedColumn::Bool { values, nulls } => TypedColumn::Bool {
                values: rows.iter().map(|&r| values[base + r as usize]).collect(), // lint: cast-ok u32 selection index widens into usize
                nulls: nulls.gather(rows, base),
            },
            TypedColumn::Str { values, nulls, .. } => {
                let vals: Vec<Box<str>> = rows
                    .iter()
                    .map(|&r| values[base + r as usize].clone()) // lint: cast-ok u32 selection index widens into usize
                    .collect();
                let str_bytes = vals.iter().map(|s| s.len()).sum();
                TypedColumn::Str {
                    values: vals,
                    str_bytes,
                    nulls: nulls.gather(rows, base),
                }
            }
        }
    }

    /// Value bytes held (budget accounting). Deliberately counts *data*
    /// bytes (`len`), not allocator capacity: capacity slack is bounded at
    /// 2x by Vec's growth policy and charging it would make per-row budget
    /// checks jump unpredictably at reallocation points.
    pub fn footprint(&self) -> usize {
        match self {
            TypedColumn::Int { values, nulls } => values.len() * 8 + nulls.footprint(),
            TypedColumn::Float { values, nulls } => values.len() * 8 + nulls.footprint(),
            TypedColumn::Bool { values, nulls } => values.len() + nulls.footprint(),
            TypedColumn::Str {
                values,
                str_bytes,
                nulls,
            } => values.len() * std::mem::size_of::<Box<str>>() + str_bytes + nulls.footprint(),
        }
    }
}

/// Convenience builder used by loaders that materialize a full column before
/// installing it (the conventional-DBMS path); the in-situ scan appends
/// directly through [`crate::cache::RawCache`].
#[derive(Debug)]
pub struct ColumnBuilder {
    col: TypedColumn,
}

impl ColumnBuilder {
    /// New builder of the given type.
    pub fn new(ty: ColumnType) -> Self {
        ColumnBuilder {
            col: TypedColumn::new(ty),
        }
    }

    /// Append a value.
    pub fn push(&mut self, d: &Datum) {
        self.col.push(d);
    }

    /// Rows so far.
    pub fn len(&self) -> usize {
        self.col.len()
    }

    /// True when no rows were pushed.
    pub fn is_empty(&self) -> bool {
        self.col.is_empty()
    }

    /// Finish and return the column.
    pub fn finish(self) -> TypedColumn {
        self.col
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_mask_round_trip() {
        let mut m = NullMask::default();
        for i in 0..130 {
            m.push(i % 7 == 0);
        }
        for i in 0..130 {
            assert_eq!(m.is_null(i), i % 7 == 0, "row {i}");
        }
        assert_eq!(m.len(), 130);
    }

    #[test]
    fn int_column_round_trip() {
        let mut c = TypedColumn::new(ColumnType::Int);
        c.push(&Datum::Int(5));
        c.push(&Datum::Null);
        c.push(&Datum::Int(-9));
        assert_eq!(c.datum(0), Some(Datum::Int(5)));
        assert_eq!(c.datum(1), Some(Datum::Null));
        assert_eq!(c.datum(2), Some(Datum::Int(-9)));
        assert_eq!(c.datum(3), None);
    }

    #[test]
    fn str_column_accounts_bytes() {
        let mut c = TypedColumn::new(ColumnType::Str);
        c.push(&Datum::Str("hello".into()));
        c.push(&Datum::Str("world!".into()));
        assert!(c.footprint() >= 11);
        assert_eq!(c.datum(1), Some(Datum::Str("world!".into())));
    }

    #[test]
    fn float_column_coerces_ints() {
        let mut c = TypedColumn::new(ColumnType::Float);
        c.push(&Datum::Int(2));
        assert_eq!(c.datum(0), Some(Datum::Float(2.0)));
    }

    #[test]
    fn mismatched_push_becomes_null() {
        let mut c = TypedColumn::new(ColumnType::Int);
        c.push(&Datum::Str("oops".into()));
        assert_eq!(c.datum(0), Some(Datum::Null));
    }

    #[test]
    fn null_mask_append_segment_matches_pushes() {
        for (la, lb) in [(0usize, 5usize), (64, 64), (63, 130), (70, 1)] {
            let mut direct = NullMask::default();
            let mut a = NullMask::default();
            let mut b = NullMask::default();
            for i in 0..la {
                let null = i % 3 == 0;
                direct.push(null);
                a.push(null);
            }
            for i in 0..lb {
                let null = i % 5 == 0;
                direct.push(null);
                b.push(null);
            }
            a.append_segment(&b);
            assert_eq!(a.len(), direct.len());
            for i in 0..direct.len() {
                assert_eq!(a.is_null(i), direct.is_null(i), "({la},{lb}) bit {i}");
            }
            // Appending after an all-zero fast-path merge stays consistent.
            a.push(true);
            direct.push(true);
            assert!(a.is_null(direct.len() - 1));
        }
    }

    #[test]
    fn column_append_segment_matches_pushes() {
        let vals = [
            Datum::Int(3),
            Datum::Null,
            Datum::Int(-7),
            Datum::Int(42),
            Datum::Null,
        ];
        let mut direct = TypedColumn::new(ColumnType::Int);
        let mut lo = TypedColumn::new(ColumnType::Int);
        let mut hi = TypedColumn::new(ColumnType::Int);
        for (i, v) in vals.iter().enumerate() {
            direct.push(v);
            if i < 2 {
                lo.push(v);
            } else {
                hi.push(v);
            }
        }
        lo.append_segment(hi);
        assert_eq!(lo.len(), direct.len());
        assert_eq!(lo.footprint(), direct.footprint());
        for i in 0..vals.len() {
            assert_eq!(lo.datum(i), direct.datum(i), "row {i}");
        }

        let mut s1 = TypedColumn::new(ColumnType::Str);
        let mut s2 = TypedColumn::new(ColumnType::Str);
        s1.push(&Datum::Str("ab".into()));
        s2.push(&Datum::Null);
        s2.push(&Datum::Str("cdef".into()));
        s1.append_segment(s2);
        assert_eq!(s1.len(), 3);
        assert_eq!(s1.datum(1), Some(Datum::Null));
        assert_eq!(s1.datum(2), Some(Datum::Str("cdef".into())));
        assert!(s1.footprint() >= 6);
    }

    #[test]
    #[should_panic(expected = "different types")]
    fn column_append_segment_rejects_type_mismatch() {
        let mut a = TypedColumn::new(ColumnType::Int);
        a.append_segment(TypedColumn::new(ColumnType::Str));
    }

    #[test]
    fn export_range_matches_pushes() {
        let vals = [
            Datum::Int(3),
            Datum::Null,
            Datum::Int(-7),
            Datum::Int(42),
            Datum::Null,
            Datum::Int(9),
        ];
        let mut col = TypedColumn::new(ColumnType::Int);
        for v in &vals {
            col.push(v);
        }
        for (lo, hi) in [(0usize, 6usize), (1, 4), (3, 3), (5, 6)] {
            let seg = col.export_range(lo, hi);
            assert_eq!(seg.len(), hi - lo, "({lo},{hi})");
            for i in 0..hi - lo {
                assert_eq!(seg.datum(i), col.datum(lo + i), "({lo},{hi}) row {i}");
            }
        }
        let mut s = TypedColumn::new(ColumnType::Str);
        s.push(&Datum::Str("ab".into()));
        s.push(&Datum::Null);
        s.push(&Datum::Str("cdef".into()));
        let seg = s.export_range(1, 3);
        assert_eq!(seg.datum(0), Some(Datum::Null));
        assert_eq!(seg.datum(1), Some(Datum::Str("cdef".into())));
        assert!(seg.footprint() >= 4, "str_bytes recomputed for the range");
    }

    #[test]
    fn null_mask_slice_matches_per_bit() {
        // Word-level shift-and-merge must agree with bit-by-bit extraction
        // across alignments, word boundaries, and ragged tails.
        let mut m = NullMask::default();
        for i in 0..300 {
            m.push(i % 5 == 0 || i % 37 == 0);
        }
        for (lo, hi) in [
            (0usize, 300usize),
            (0, 64),
            (64, 128),
            (1, 65),
            (63, 64),
            (63, 190),
            (100, 100),
            (129, 257),
            (250, 310), // past the end: stray range reads as not-null
        ] {
            let s = m.slice(lo, hi);
            assert_eq!(s.len(), hi - lo, "({lo},{hi})");
            let mut any = false;
            for i in 0..hi - lo {
                let expect = m.is_null(lo + i);
                assert_eq!(s.is_null(i), expect, "({lo},{hi}) bit {i}");
                any |= expect;
            }
            assert_eq!(s.any_null(), any, "({lo},{hi}) any_null exact");
            // Appending after a slice stays consistent (no stray tail bits).
            let mut grown = s;
            grown.push(true);
            assert!(grown.is_null(hi - lo));
        }
        // Export range clamps to the column length, values and mask agreeing.
        let mut c = TypedColumn::new(ColumnType::Int);
        for i in 0..10 {
            if i % 3 == 0 {
                c.push(&Datum::Null);
            } else {
                c.push(&Datum::Int(i));
            }
        }
        let seg = c.export_range(7, 99);
        assert_eq!(seg.len(), 3, "range clamped to len()");
        for i in 0..3 {
            assert_eq!(seg.datum(i), c.datum(7 + i));
        }
    }

    #[test]
    fn gather_picks_selected_rows() {
        let mut col = TypedColumn::new(ColumnType::Float);
        for i in 0..10 {
            if i % 4 == 0 {
                col.push(&Datum::Null);
            } else {
                col.push(&Datum::Float(i as f64));
            }
        }
        let picked = col.gather(&[0, 3, 5], 2); // rows 2, 5, 7
        assert_eq!(picked.len(), 3);
        assert_eq!(picked.datum(0), col.datum(2));
        assert_eq!(picked.datum(1), col.datum(5));
        assert_eq!(picked.datum(2), col.datum(7));
        // All-valid fast path keeps bits addressable past the copy.
        let mut dense = TypedColumn::new(ColumnType::Int);
        for i in 0..70 {
            dense.push(&Datum::Int(i));
        }
        let seg = dense.export_range(0, 70);
        assert_eq!(seg.datum(69), Some(Datum::Int(69)));
    }

    #[test]
    fn builder_finishes_into_column() {
        let mut b = ColumnBuilder::new(ColumnType::Bool);
        b.push(&Datum::Bool(true));
        b.push(&Datum::Bool(false));
        let c = b.finish();
        assert_eq!(c.len(), 2);
        assert_eq!(c.datum(0), Some(Datum::Bool(true)));
    }
}
