//! Execution breakdowns and system snapshots — the demo's two panels.
//!
//! [`Breakdown`] is the Figure 3 stacked bar: where one query's time went
//! (I/O, tokenizing, parsing, conversion, NoDB-structure maintenance,
//! processing). [`SystemSnapshot`] is the Figure 2 monitoring panel: what
//! the positional map and cache currently hold, their budgets, utilization
//! and usage statistics.

use std::time::Duration;

use nodb_rawcsv::IoCounters;

use crate::rawscan::QuarantineSample;

/// Per-phase wall-clock breakdown of one query (Fig 3).
#[derive(Debug, Default, Clone, Copy)]
pub struct Breakdown {
    /// Reading raw bytes from disk (block fetches).
    pub io: Duration,
    /// Locating delimiters (SWAR scanning, resumable tokenizing).
    pub tokenizing: Duration,
    /// Navigating via positional-map offsets (jump + field-end location).
    pub parsing: Duration,
    /// Converting field bytes to binary datums.
    pub convert: Duration,
    /// Populating the positional map / cache / statistics (the "NoDB
    /// overhead" slice).
    pub nodb: Duration,
    /// The engine pipeline above the scan: projection / aggregation /
    /// sort / limit over the staged batches. Measured around the engine
    /// `execute` call, so "scan time" and "engine time" separate cleanly
    /// in the panel (the vectorized warm path shrinks this slice).
    pub engine: Duration,
    /// Parsing the SQL text and planning the statement. Exactly zero when
    /// the query was served from the prepared-statement cache — the slice
    /// a prepared hit deletes.
    pub planning: Duration,
    /// Everything not attributed elsewhere: admission waits, lock waits,
    /// and (for the exclusive streaming path, whose scan and engine
    /// interleave) the scan-side remainder.
    pub processing: Duration,
}

impl Breakdown {
    /// Sum of all slices.
    pub fn total(&self) -> Duration {
        self.io
            + self.tokenizing
            + self.parsing
            + self.convert
            + self.nodb
            + self.engine
            + self.planning
            + self.processing
    }

    /// Merge another breakdown into this one.
    pub fn merge(&mut self, other: &Breakdown) {
        self.io += other.io;
        self.tokenizing += other.tokenizing;
        self.parsing += other.parsing;
        self.convert += other.convert;
        self.nodb += other.nodb;
        self.engine += other.engine;
        self.planning += other.planning;
        self.processing += other.processing;
    }

    /// Render as the Fig 3 panel row: `io=…ms tok=…ms parse=…ms conv=…ms
    /// nodb=…ms engine=…ms plan=…ms proc=…ms`.
    pub fn panel_row(&self) -> String {
        fn ms(d: Duration) -> f64 {
            d.as_secs_f64() * 1e3
        }
        format!(
            "io={:8.2}ms tok={:8.2}ms parse={:8.2}ms conv={:8.2}ms nodb={:8.2}ms \
             engine={:8.2}ms plan={:8.2}ms proc={:8.2}ms",
            ms(self.io),
            ms(self.tokenizing),
            ms(self.parsing),
            ms(self.convert),
            ms(self.nodb),
            ms(self.engine),
            ms(self.planning),
            ms(self.processing)
        )
    }
}

/// Counters of the snapshot persistence layer, one set per [`crate::NoDb`]
/// instance (read via `Admin::snapshot_stats`). Saves are write-behind
/// (after queries) plus explicit `Admin::snapshot_now` calls; restores are
/// counted at registration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotTelemetry {
    /// Sidecar files written successfully.
    pub saves: u64,
    /// Save attempts that failed (I/O); the query they rode behind still
    /// succeeded, and the next state growth retries.
    pub save_failures: u64,
    /// Tables restored warm from a sidecar at registration.
    pub restores: u64,
    /// Sidecars rejected at registration (corrupt, truncated, version
    /// skew, replaced file) — the table started cold instead.
    pub restores_rejected: u64,
}

/// Everything recorded about one query execution.
#[derive(Debug, Default, Clone)]
pub struct QueryReport {
    /// Wall-clock end-to-end latency (parse → result materialized).
    pub total: Duration,
    /// Per-phase breakdown (zeroed when `detailed_timing` is off).
    pub breakdown: Breakdown,
    /// Raw-file I/O performed by this query.
    pub io: IoCounters,
    /// Tuples scanned (rows of the raw file visited).
    pub rows_scanned: u64,
    /// Rows the query returned.
    pub rows_returned: u64,
    /// Cache hits during this query (row-values served without raw access).
    pub cache_hits: u64,
    /// Cache misses (values parsed from raw bytes).
    pub cache_misses: u64,
    /// Whether the scan was served entirely from the cache (no file access).
    pub fully_cached: bool,
    /// Whether the plan came from the prepared-statement cache: parse and
    /// plan were skipped entirely (`breakdown.planning` is exactly zero).
    pub prepared_hit: bool,
    /// Whether a positional-map chunk was installed as a side effect.
    pub installed_chunk: bool,
    /// Rows with a malformed cell tombstoned as NULL under the permissive
    /// parse-error policy (always 0 under strict, which aborts instead).
    pub rows_quarantined: u64,
    /// Capped per-row detail of the quarantined rows (row number, line byte
    /// offset, first offending attribute).
    pub quarantine_samples: Vec<QuarantineSample>,
    /// How many times this query found its backing file truncated or
    /// rewritten mid-scan, quarantined the table's adaptive state and
    /// retried with a cold rescan (bounded by the `source_change_retries`
    /// config knob). 0 on the happy path; non-zero means the answer came
    /// from a fresh epoch of the file.
    pub source_changed: u64,
    /// Plan summary (EXPLAIN-lite).
    pub plan: String,
}

/// One chunk's description in the monitoring panel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkInfo {
    /// Attributes stored together.
    pub attrs: Vec<usize>,
    /// Rows covered.
    pub rows: usize,
    /// Bytes held.
    pub bytes: usize,
}

/// The Figure 2 system monitoring panel as data.
#[derive(Debug, Clone, Default)]
pub struct SystemSnapshot {
    /// Positional-map bytes in use.
    pub map_bytes: usize,
    /// Positional-map budget.
    pub map_budget: usize,
    /// Map utilization in `[0, 1]`.
    pub map_utilization: f64,
    /// Installed chunks.
    pub map_chunks: Vec<ChunkInfo>,
    /// Shared row-index footprint (reported separately, not budgeted).
    pub row_index_bytes: usize,
    /// Map lifetime counters: installs, evictions, rejects.
    pub map_installs: u64,
    /// Chunks evicted so far.
    pub map_evictions: u64,
    /// Cache bytes in use.
    pub cache_bytes: usize,
    /// Cache budget.
    pub cache_budget: usize,
    /// Cache utilization in `[0, 1]`.
    pub cache_utilization: f64,
    /// Resident cached attributes with their row coverage.
    pub cache_resident: Vec<(usize, usize)>,
    /// Cache lifetime hit ratio.
    pub cache_hit_ratio: f64,
    /// Cache evictions so far.
    pub cache_evictions: u64,
    /// Attributes with statistics, sorted.
    pub stats_attrs: Vec<usize>,
    /// Per-attribute access counts since registration (usage panel).
    pub attr_access_counts: Vec<(usize, u64)>,
    /// Known row count, if a full scan has completed.
    pub row_count: Option<u64>,
}

impl SystemSnapshot {
    /// Render the panel as text (the demo GUI's textual twin).
    pub fn panel(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "positional map : {:>10} / {:>10} bytes ({:5.1}%)  chunks={} installs={} evictions={}\n",
            self.map_bytes,
            self.map_budget,
            self.map_utilization * 100.0,
            self.map_chunks.len(),
            self.map_installs,
            self.map_evictions,
        ));
        for c in &self.map_chunks {
            s.push_str(&format!(
                "   chunk attrs={:?} rows={} bytes={}\n",
                c.attrs, c.rows, c.bytes
            ));
        }
        s.push_str(&format!(
            "cache          : {:>10} / {:>10} bytes ({:5.1}%)  hit_ratio={:.2} evictions={}\n",
            self.cache_bytes,
            self.cache_budget,
            self.cache_utilization * 100.0,
            self.cache_hit_ratio,
            self.cache_evictions,
        ));
        for (attr, rows) in &self.cache_resident {
            s.push_str(&format!("   cached attr c{attr} rows={rows}\n"));
        }
        s.push_str(&format!("statistics     : attrs={:?}\n", self.stats_attrs));
        let touched: Vec<String> = self
            .attr_access_counts
            .iter()
            .filter(|(_, n)| *n > 0)
            .map(|(a, n)| format!("c{a}:{n}"))
            .collect();
        s.push_str(&format!("attr accesses  : {}\n", touched.join(" ")));
        if let Some(n) = self.row_count {
            s.push_str(&format!("rows known     : {n}\n"));
        }
        s
    }
}

/// Low-overhead phase stopwatch used inside the scan loop. When disabled,
/// every call is a no-op the optimizer removes.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseClock {
    enabled: bool,
}

impl PhaseClock {
    /// Clock that records when `enabled`.
    pub fn new(enabled: bool) -> Self {
        PhaseClock { enabled }
    }

    /// Start a measurement (None when disabled).
    #[inline]
    pub fn start(&self) -> Option<std::time::Instant> {
        if self.enabled {
            Some(std::time::Instant::now())
        } else {
            None
        }
    }

    /// Add the elapsed time since `start` to `slot`.
    #[inline]
    pub fn lap(&self, start: Option<std::time::Instant>, slot: &mut Duration) {
        if let Some(t) = start {
            *slot += t.elapsed();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_total_and_merge() {
        let mut a = Breakdown {
            io: Duration::from_millis(10),
            ..Default::default()
        };
        let b = Breakdown {
            convert: Duration::from_millis(5),
            engine: Duration::from_millis(3),
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.total(), Duration::from_millis(18));
        assert!(a.panel_row().contains("io="));
        assert!(
            a.panel_row().contains("engine="),
            "engine slice visible in the Fig-3 row"
        );
    }

    #[test]
    fn snapshot_panel_renders() {
        let snap = SystemSnapshot {
            map_bytes: 100,
            map_budget: 1000,
            map_utilization: 0.1,
            map_chunks: vec![ChunkInfo {
                attrs: vec![0, 2],
                rows: 10,
                bytes: 40,
            }],
            cache_resident: vec![(2, 10)],
            attr_access_counts: vec![(0, 3), (1, 0)],
            row_count: Some(10),
            ..Default::default()
        };
        let p = snap.panel();
        assert!(p.contains("chunk attrs=[0, 2]"));
        assert!(p.contains("cached attr c2"));
        assert!(p.contains("c0:3"));
        assert!(!p.contains("c1:0"));
    }

    #[test]
    fn disabled_clock_is_noop() {
        let c = PhaseClock::new(false);
        assert!(c.start().is_none());
        let mut d = Duration::ZERO;
        c.lap(None, &mut d);
        assert_eq!(d, Duration::ZERO);
    }
}
