//! The concurrent table registry — shared ownership of per-file adaptive
//! state.
//!
//! Before this module the facade owned a `HashMap<String, RawTable>` and
//! `NoDb::query` took `&mut self`, so one instance could run exactly one
//! query at a time and every reader serialized behind the table's auxiliary
//! structures. NoDB's economics point the other way: the positional map and
//! raw-data cache only pay off when *many* queries share them. The registry
//! makes that sharing possible:
//!
//! * every table lives behind its own [`TableHandle`]
//!   (`Arc<RwLock<RawTable>>`), so queries against different tables never
//!   contend at all;
//! * the name → handle map sits behind its own `RwLock`, touched only to
//!   register a table or resolve a name (a query holds it just long enough
//!   to clone the `Arc`);
//! * per-query lock discipline is *staged* (see `rawscan::scan_shared`):
//!   a short **write** lock for planning side effects (update probe, access
//!   plan LRU touches, cache query tick), a **read** lock for the whole
//!   data scan — workers only need shared borrows since PR 1 removed
//!   `Rc`/`RefCell` from the scan path — and a second short **write** lock
//!   to install the staged positional-map chunk, cache columns and
//!   statistics. Read-mostly queries that are answered entirely from the
//!   cache never hold a write lock during data access.
//!
//! The poison-free `RwLock` comes from the workspace's `parking_lot`
//! stand-in: a panicking scan must not wedge every later query on the same
//! table. That guarantee is load-bearing for resilience — worker panics are
//! already contained at the scan's worker boundary
//! (`EngineError::WorkerPanic`), and should a panic ever unwind while a
//! guard is held, the next `read()`/`write()` on the same handle still
//! succeeds against structurally valid state (every mutation of `RawTable`
//! state goes through append/install operations that are individually
//! complete). `one_bad_query_never_bricks_the_table` below pins this down.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::table::RawTable;

/// Shared, lockable ownership of one registered table.
///
/// Cloning the handle is cheap (`Arc`); the `RwLock` arbitrates between
/// concurrent scans (readers) and structure installs / update reconciliation
/// (writers). Scans hold the read side while streaming raw bytes and hold
/// the write side only for the short planning and merge windows.
pub type TableHandle = Arc<RwLock<RawTable>>;

/// Name → [`TableHandle`] map shared by every query on a [`crate::NoDb`]
/// instance.
#[derive(Default)]
pub struct TableRegistry {
    inner: RwLock<HashMap<String, TableHandle>>,
}

impl TableRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        TableRegistry::default()
    }

    /// Register `table` under `name`, replacing any previous table with the
    /// same name. In-flight queries against a replaced table keep their own
    /// `Arc` and finish against the old state.
    pub fn insert(&self, name: impl Into<String>, table: RawTable) -> TableHandle {
        let handle: TableHandle = Arc::new(RwLock::new(table));
        self.inner.write().insert(name.into(), Arc::clone(&handle));
        handle
    }

    /// Handle for `name`, if registered. The registry lock is released
    /// before this returns; callers lock the handle itself.
    pub fn get(&self, name: &str) -> Option<TableHandle> {
        self.inner.read().get(name).cloned()
    }

    /// Registered table names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.inner.read().keys().cloned().collect();
        v.sort_unstable();
        v
    }

    /// Run `f` over every registered table's handle (budget knobs, harness
    /// sweeps). Handles are cloned out first so `f` may lock freely without
    /// holding the registry lock.
    pub fn for_each(&self, mut f: impl FnMut(&str, &TableHandle)) {
        let handles: Vec<(String, TableHandle)> = self
            .inner
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect();
        for (name, h) in &handles {
            f(name, h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NoDbConfig;
    use nodb_rawcsv::GeneratorConfig;

    fn sample_table(rows: u64) -> (std::path::PathBuf, RawTable) {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "nodb_registry_{rows}_{}",
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let gen = GeneratorConfig::uniform_ints(2, rows, 7);
        gen.generate_file(&p).unwrap();
        let t = RawTable::register(&p, gen.schema(), false, &NoDbConfig::default()).unwrap();
        (p, t)
    }

    #[test]
    fn insert_get_and_names() {
        let (p, t) = sample_table(5);
        let reg = TableRegistry::new();
        assert!(reg.get("t").is_none());
        reg.insert("t", t);
        assert!(reg.get("t").is_some());
        assert_eq!(reg.names(), vec!["t".to_string()]);
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn handles_survive_replacement() {
        let (p1, t1) = sample_table(5);
        let (p2, t2) = sample_table(9);
        let reg = TableRegistry::new();
        reg.insert("t", t1);
        let old = reg.get("t").unwrap();
        reg.insert("t", t2);
        // The old handle still points at the old table's state.
        assert_eq!(old.read().path(), p1.as_path());
        assert_eq!(reg.get("t").unwrap().read().path(), p2.as_path());
        std::fs::remove_file(p1).unwrap();
        std::fs::remove_file(p2).unwrap();
    }

    #[test]
    fn one_bad_query_never_bricks_the_table() {
        // A thread panics while holding the table's write lock (the worst
        // spot: mid-"query" with exclusive access). The registry's lock is
        // poison-free, so the next query on the same handle proceeds and
        // sees valid state.
        let (p, t) = sample_table(6);
        let reg = TableRegistry::new();
        reg.insert("t", t);
        let handle = reg.get("t").unwrap();
        let h2 = reg.get("t").unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = h2.write();
            panic!("query blew up while holding the write lock");
        }));
        assert!(result.is_err(), "the panic fired");
        // Both lock modes still work on the same handle.
        assert_eq!(handle.read().path(), p.as_path());
        handle.write().attr_access[0] += 1;
        assert_eq!(handle.read().attr_access[0], 1);
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn for_each_visits_every_table() {
        let (p1, t1) = sample_table(3);
        let (p2, t2) = sample_table(4);
        let reg = TableRegistry::new();
        reg.insert("a", t1);
        reg.insert("b", t2);
        let mut seen = Vec::new();
        reg.for_each(|name, _| seen.push(name.to_string()));
        seen.sort_unstable();
        assert_eq!(seen, vec!["a".to_string(), "b".to_string()]);
        std::fs::remove_file(p1).unwrap();
        std::fs::remove_file(p2).unwrap();
    }
}
