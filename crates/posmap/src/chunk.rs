//! Chunks: per-combination columnar position storage.
//!
//! A chunk holds, for one *combination* of attributes, the relative byte
//! offset of each attribute's start within every covered tuple. Offsets are
//! `u16` relative to the tuple's line start (tuples ≥ 64 KiB store the
//! [`NO_OFFSET`] sentinel and fall back to anchor-based tokenizing).

use nodb_rawcsv::tokenizer::Tokens;

/// Sentinel for "position unavailable" (line too long for a u16 offset, or
/// the tuple had fewer fields than the attribute index).
pub const NO_OFFSET: u16 = u16::MAX;

/// Stable identity of an installed chunk (used by LRU bookkeeping and by
/// the monitoring panel to visualize map contents).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChunkId(pub u64);

/// An immutable, installed chunk of the positional map.
#[derive(Debug)]
pub struct Chunk {
    id: ChunkId,
    /// Sorted attribute indices stored in this chunk.
    attrs: Vec<usize>,
    /// `cols[i][row]` = offset of attribute `attrs[i]` in tuple `row`,
    /// for rows `0..self.rows`.
    cols: Vec<Box<[u16]>>,
    rows: usize,
    /// LRU tick of the last access (maintained by the map).
    pub(crate) last_used: u64,
}

impl Chunk {
    /// Chunk identity.
    pub fn id(&self) -> ChunkId {
        self.id
    }

    /// Sorted attributes covered by this chunk.
    pub fn attrs(&self) -> &[usize] {
        &self.attrs
    }

    /// Number of tuples covered (a prefix of the file's rows).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// True when the chunk stores attribute `attr`.
    pub fn covers(&self, attr: usize) -> bool {
        self.attrs.binary_search(&attr).is_ok()
    }

    /// Offset of `attr` within tuple `row`, if covered and recorded.
    #[inline]
    pub fn offset(&self, attr: usize, row: usize) -> Option<u16> {
        let col = self.attrs.binary_search(&attr).ok()?;
        let v = *self.cols[col].get(row)?;
        (v != NO_OFFSET).then_some(v)
    }

    /// Raw offset column for `attrs()[col]`, sentinel values included —
    /// the lossless view a snapshot serializer needs ([`Chunk::offset`]
    /// masks [`NO_OFFSET`], which must survive a round trip as-is).
    pub fn raw_col(&self, col: usize) -> &[u16] {
        &self.cols[col]
    }

    /// Greatest covered attribute `<= attr` (the best resume anchor this
    /// chunk offers for `attr`).
    pub fn best_anchor_at_or_before(&self, attr: usize) -> Option<usize> {
        match self.attrs.binary_search(&attr) {
            Ok(_) => Some(attr),
            Err(0) => None,
            Err(i) => Some(self.attrs[i - 1]),
        }
    }

    /// Approximate heap footprint in bytes, charged against the map budget.
    pub fn footprint(&self) -> usize {
        self.cols.iter().map(|c| c.len() * 2).sum::<usize>()
            + self.attrs.len() * std::mem::size_of::<usize>()
            + std::mem::size_of::<Chunk>()
    }
}

/// Incrementally collects positions for one attribute combination during a
/// scan, then freezes into a [`Chunk`].
///
/// The builder is fed once per tuple, in row order, from the scan's
/// [`Tokens`] buffer — population happens *during tokenizing*, exactly as in
/// the paper ("the map is populated during the tokenizing phase").
#[derive(Debug)]
pub struct ChunkBuilder {
    attrs: Vec<usize>,
    cols: Vec<Vec<u16>>,
    rows: usize,
}

impl ChunkBuilder {
    /// Builder for the given attribute set (deduplicated, sorted).
    pub fn new(mut attrs: Vec<usize>) -> Self {
        attrs.sort_unstable();
        attrs.dedup();
        let cols = attrs.iter().map(|_| Vec::new()).collect();
        ChunkBuilder {
            attrs,
            cols,
            rows: 0,
        }
    }

    /// Builder with capacity for `rows` tuples (avoids regrowth when the
    /// file's row count is already known from the row index).
    pub fn with_capacity(mut attrs: Vec<usize>, rows: usize) -> Self {
        attrs.sort_unstable();
        attrs.dedup();
        let cols = attrs.iter().map(|_| Vec::with_capacity(rows)).collect();
        ChunkBuilder {
            attrs,
            cols,
            rows: 0,
        }
    }

    /// Rebuild a builder from raw offset columns (sentinels included), the
    /// inverse of reading [`Chunk::raw_col`] per attribute — the snapshot
    /// restore path. Returns `None` when the shape is inconsistent: attrs
    /// unsorted or duplicated, column count != attr count, or ragged column
    /// lengths. A restored sidecar is untrusted input, so shape errors
    /// degrade to "no chunk" rather than panic.
    pub fn from_raw_cols(attrs: Vec<usize>, cols: Vec<Vec<u16>>) -> Option<Self> {
        if attrs.windows(2).any(|w| w[0] >= w[1]) || attrs.len() != cols.len() {
            return None;
        }
        let rows = cols.first().map_or(0, Vec::len);
        if cols.iter().any(|c| c.len() != rows) {
            return None;
        }
        Some(ChunkBuilder { attrs, cols, rows })
    }

    /// Attributes this builder collects.
    pub fn attrs(&self) -> &[usize] {
        &self.attrs
    }

    /// Rows recorded so far.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Record one tuple's positions from the scan's token buffer.
    ///
    /// Must be called exactly once per row, in row order. Attributes the
    /// tokenizer did not reach (short rows) or whose offset exceeds `u16`
    /// record [`NO_OFFSET`].
    pub fn push_row(&mut self, tokens: &Tokens) {
        for (i, &attr) in self.attrs.iter().enumerate() {
            let off = match tokens.get(attr) {
                // lint: cast-ok guarded (start < NO_OFFSET fits u16; NO_OFFSET widens)
                Some(span) if span.start < NO_OFFSET as u32 => span.start as u16,
                _ => NO_OFFSET,
            };
            self.cols[i].push(off);
        }
        self.rows += 1;
    }

    /// Record one tuple's positions from raw `(attr, offset)` pairs; used by
    /// resumable scans that compute offsets without a full `Tokens` pass.
    pub fn push_row_offsets(&mut self, offsets: &[(usize, u32)]) {
        for (i, &attr) in self.attrs.iter().enumerate() {
            let off = offsets
                .iter()
                .find(|(a, _)| *a == attr)
                .map(|&(_, o)| {
                    // lint: cast-ok guarded (o < NO_OFFSET fits u16)
                    if o < NO_OFFSET as u32 {
                        o as u16 // lint: cast-ok guarded by the branch above
                    } else {
                        NO_OFFSET
                    }
                })
                .unwrap_or(NO_OFFSET);
            self.cols[i].push(off);
        }
        self.rows += 1;
    }

    /// Approximate current footprint (for admission decisions mid-scan).
    pub fn footprint(&self) -> usize {
        self.cols.iter().map(|c| c.len() * 2).sum::<usize>()
    }

    /// Append every row of `other` after this builder's rows — the partition
    /// merge of the parallel scan.
    ///
    /// Each worker collects positions for *its* partition with local row
    /// numbering; because offsets are stored relative to each tuple's line
    /// start, rebasing to global rows is pure concatenation in partition
    /// order. Both builders must target the same attribute combination.
    ///
    /// # Panics
    /// Panics when the attribute sets differ (the driver always derives all
    /// partial builders from one request, so a mismatch is a logic error).
    pub fn append_partial(&mut self, other: ChunkBuilder) {
        assert_eq!(
            self.attrs, other.attrs,
            "cannot merge chunk builders over different attribute sets"
        );
        for (col, mut ocol) in self.cols.iter_mut().zip(other.cols) {
            col.append(&mut ocol);
        }
        self.rows += other.rows;
    }

    /// Freeze into an installable chunk. `id` is assigned by the map.
    pub(crate) fn freeze(self, id: ChunkId, tick: u64) -> Chunk {
        Chunk {
            id,
            attrs: self.attrs,
            cols: self.cols.into_iter().map(Vec::into_boxed_slice).collect(),
            rows: self.rows,
            last_used: tick,
        }
    }

    /// True when nothing was collected (no rows or no attributes).
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.attrs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodb_rawcsv::tokenizer::TokenizerConfig;

    fn tokens_for(line: &[u8]) -> Tokens {
        let mut t = Tokens::new();
        TokenizerConfig::default().tokenize_into(line, &mut t);
        t
    }

    #[test]
    fn builder_collects_offsets() {
        let mut b = ChunkBuilder::new(vec![2, 0]);
        b.push_row(&tokens_for(b"aa,bb,cc"));
        b.push_row(&tokens_for(b"x,y,z"));
        let c = b.freeze(ChunkId(1), 0);
        assert_eq!(c.attrs(), &[0, 2]);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.offset(0, 0), Some(0));
        assert_eq!(c.offset(2, 0), Some(6));
        assert_eq!(c.offset(2, 1), Some(4));
        assert_eq!(c.offset(1, 0), None); // not covered
        assert_eq!(c.offset(2, 5), None); // beyond rows
    }

    #[test]
    fn short_rows_record_sentinel() {
        let mut b = ChunkBuilder::new(vec![0, 3]);
        b.push_row(&tokens_for(b"only,two"));
        let c = b.freeze(ChunkId(2), 0);
        assert_eq!(c.offset(0, 0), Some(0));
        assert_eq!(c.offset(3, 0), None);
    }

    #[test]
    fn anchor_lookup() {
        let mut b = ChunkBuilder::new(vec![1, 4, 7]);
        b.push_row(&tokens_for(b"a,b,c,d,e,f,g,h"));
        let c = b.freeze(ChunkId(3), 0);
        assert_eq!(c.best_anchor_at_or_before(4), Some(4));
        assert_eq!(c.best_anchor_at_or_before(6), Some(4));
        assert_eq!(c.best_anchor_at_or_before(0), None);
        assert_eq!(c.best_anchor_at_or_before(100), Some(7));
    }

    #[test]
    fn dedup_and_sort_attrs() {
        let b = ChunkBuilder::new(vec![5, 1, 5, 3]);
        assert_eq!(b.attrs(), &[1, 3, 5]);
    }

    #[test]
    fn footprint_scales_with_rows() {
        let mut b = ChunkBuilder::new(vec![0, 1]);
        for _ in 0..100 {
            b.push_row(&tokens_for(b"a,b"));
        }
        let c = b.freeze(ChunkId(4), 0);
        assert!(c.footprint() >= 400); // 100 rows * 2 attrs * 2 bytes
    }

    #[test]
    fn append_partial_concatenates_partitions() {
        let mut lo = ChunkBuilder::new(vec![0, 2]);
        lo.push_row(&tokens_for(b"aa,bb,cc"));
        lo.push_row(&tokens_for(b"x,y,z"));
        let mut hi = ChunkBuilder::new(vec![0, 2]);
        hi.push_row(&tokens_for(b"pppp,q,r"));

        let mut whole = ChunkBuilder::new(vec![0, 2]);
        for line in [b"aa,bb,cc".as_slice(), b"x,y,z", b"pppp,q,r"] {
            whole.push_row(&tokens_for(line));
        }

        lo.append_partial(hi);
        assert_eq!(lo.rows(), 3);
        let merged = lo.freeze(ChunkId(10), 0);
        let direct = whole.freeze(ChunkId(11), 0);
        for attr in [0usize, 2] {
            for row in 0..3 {
                assert_eq!(merged.offset(attr, row), direct.offset(attr, row));
            }
        }
    }

    #[test]
    #[should_panic(expected = "different attribute sets")]
    fn append_partial_rejects_mismatched_attrs() {
        let mut a = ChunkBuilder::new(vec![0]);
        let b = ChunkBuilder::new(vec![1]);
        a.append_partial(b);
    }

    #[test]
    fn raw_cols_round_trip_preserves_sentinels() {
        let mut b = ChunkBuilder::new(vec![0, 3]);
        b.push_row(&tokens_for(b"only,two")); // attr 3 records NO_OFFSET
        b.push_row(&tokens_for(b"a,b,c,d"));
        let c = b.freeze(ChunkId(7), 0);

        let cols: Vec<Vec<u16>> = (0..c.attrs().len())
            .map(|i| c.raw_col(i).to_vec())
            .collect();
        let restored = ChunkBuilder::from_raw_cols(c.attrs().to_vec(), cols)
            .expect("well-formed shape")
            .freeze(ChunkId(8), 0);
        assert_eq!(restored.rows(), c.rows());
        for attr in [0usize, 3] {
            for row in 0..c.rows() {
                assert_eq!(restored.offset(attr, row), c.offset(attr, row));
            }
        }
    }

    #[test]
    fn from_raw_cols_rejects_bad_shapes() {
        // Unsorted attrs.
        assert!(ChunkBuilder::from_raw_cols(vec![2, 0], vec![vec![0], vec![0]]).is_none());
        // Duplicated attrs.
        assert!(ChunkBuilder::from_raw_cols(vec![1, 1], vec![vec![0], vec![0]]).is_none());
        // Column count mismatch.
        assert!(ChunkBuilder::from_raw_cols(vec![0, 1], vec![vec![0]]).is_none());
        // Ragged columns.
        assert!(ChunkBuilder::from_raw_cols(vec![0, 1], vec![vec![0, 1], vec![0]]).is_none());
    }

    #[test]
    fn push_row_offsets_matches_tokens_path() {
        let mut b1 = ChunkBuilder::new(vec![0, 2]);
        b1.push_row(&tokens_for(b"aa,bb,cc"));
        let c1 = b1.freeze(ChunkId(5), 0);

        let mut b2 = ChunkBuilder::new(vec![0, 2]);
        b2.push_row_offsets(&[(0, 0), (2, 6)]);
        let c2 = b2.freeze(ChunkId(6), 0);

        assert_eq!(c1.offset(0, 0), c2.offset(0, 0));
        assert_eq!(c1.offset(2, 0), c2.offset(2, 0));
    }
}
