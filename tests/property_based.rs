//! Property-based tests over the core invariants:
//!
//! 1. *Adaptive transparency* — for any dataset and any query, PostgresRaw
//!    (PM+C, any budgets) returns exactly what the stateless baseline
//!    returns, cold and warm.
//! 2. *Parallel transparency* — for any dataset, query and thread count,
//!    the partitioned parallel scan yields identical query results,
//!    positional-map coverage, cache contents and statistics as
//!    `scan_threads = 1`.
//! 3. *Tokenizer equivalence* — selective/resumable tokenizing agrees with
//!    full tokenizing on arbitrary byte soup.
//! 4. *Cache round-trip* — any sequence of typed values read back from the
//!    cache equals what was appended.
//! 5. *Histogram sanity* — `fraction_le` is monotone and bounded.
//!
//! The randomized cases are driven by a small self-contained deterministic
//! generator (the environment has no registry access, so `proptest` is not
//! available); every case derives from a fixed seed and failures print the
//! case number for replay.

use nodb_repro::core::{NoDb, NoDbConfig};
use nodb_repro::prelude::*;
use nodb_repro::rawcache::{CachePolicy, RawCache};
use nodb_repro::rawcsv::tokenizer::{TokenizerConfig, Tokens};
use nodb_repro::stats::EquiDepthHistogram;

/// SplitMix64: tiny, deterministic, plenty for case generation.
struct CaseRng(u64);

impl CaseRng {
    fn new(seed: u64) -> Self {
        CaseRng(seed.wrapping_add(0x9e37_79b9_7f4a_7c15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    /// Uniform choice from a slice.
    fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

fn scratch(tag: &str, n: u64) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("nodb_prop_{tag}_{n}_{}", std::process::id()));
    p
}

/// Randomized-iteration multiplier: `NODB_TEST_STRESS=k` runs `4k`× the
/// default case count (CI's steal-race stress job sets it to 1; unset = 1×).
fn stress_factor() -> u64 {
    std::env::var("NODB_TEST_STRESS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .map(|v| v.max(1) * 4)
        .unwrap_or(1)
}

/// Read-ahead depth for the suites that don't sweep it themselves:
/// `NODB_TEST_READAHEAD` pins `io_readahead_blocks` (CI's stress job runs
/// 8); unset, the config default applies.
fn test_readahead() -> usize {
    std::env::var("NODB_TEST_READAHEAD")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(NoDbConfig::default().io_readahead_blocks)
}

#[test]
fn adaptive_equals_baseline() {
    let mut rng = CaseRng::new(0xADA7);
    for case in 0..24u64 {
        let cols = 2 + rng.below(6) as usize;
        let rows = 1 + rng.below(400);
        let seed = rng.below(1_000);
        let proj = rng.below(cols as u64);
        let pred = rng.below(cols as u64);
        let cut = rng.below(1_000_000_000) as i64;
        let map_budget = *rng.pick(&[0usize, 1_000, 1 << 22]);
        let cache_budget = *rng.pick(&[0usize, 1_000, 1 << 22]);

        let gen = GeneratorConfig::uniform_ints(cols, rows, seed);
        let path = scratch("adapt", case);
        gen.generate_file(&path).unwrap();
        let sql = format!("SELECT c{proj} FROM t WHERE c{pred} < {cut}");

        let mut base = NoDb::new(NoDbConfig::baseline());
        base.register_csv_with_schema("t", &path, gen.schema(), false)
            .unwrap();
        let expect = base.query(&sql).unwrap();

        let cfg = NoDbConfig {
            map_budget_bytes: map_budget,
            cache_budget_bytes: cache_budget,
            ..NoDbConfig::pm_c()
        };
        let mut sys = NoDb::new(cfg);
        sys.register_csv_with_schema("t", &path, gen.schema(), false)
            .unwrap();
        let cold = sys.query(&sql).unwrap();
        let warm = sys.query(&sql).unwrap();
        assert_eq!(cold, expect, "case {case}: cold ({sql})");
        assert_eq!(warm, expect, "case {case}: warm ({sql})");
        std::fs::remove_file(path).ok();
    }
}

/// The new-code invariant for the partitioned parallel scan: for random
/// CSVs, schemas and thread counts 1/2/4/8, query results, positional-map
/// coverage, cache contents and statistics must be identical to
/// `scan_threads = 1`.
#[test]
fn parallel_scan_equals_sequential() {
    let mut rng = CaseRng::new(0x9A54);
    for case in 0..16u64 {
        let cols = 2 + rng.below(6) as usize;
        let rows = rng.below(600);
        let seed = rng.below(1_000);
        let threads = *rng.pick(&[2usize, 3, 4, 8]);
        let a1 = rng.below(cols as u64);
        let a2 = rng.below(cols as u64);
        let pred = rng.below(cols as u64);
        let cut = rng.below(1_000_000_000) as i64;
        // Exercise budget pressure on some cases.
        let cache_budget = *rng.pick(&[800usize, 1 << 22, 1 << 30]);

        let gen = GeneratorConfig::uniform_ints(cols, rows, seed);
        let path = scratch("par", case);
        gen.generate_file(&path).unwrap();
        let queries = [
            format!("SELECT c{a1} FROM t WHERE c{pred} < {cut}"),
            format!("SELECT c{a2}, c{a1} FROM t"),
            format!("SELECT COUNT(*) FROM t WHERE c{pred} >= {cut}"),
        ];

        let mk = |scan_threads: usize| {
            let cfg = NoDbConfig {
                scan_threads,
                cache_budget_bytes: cache_budget,
                io_readahead_blocks: test_readahead(),
                ..NoDbConfig::pm_c()
            };
            let mut db = NoDb::new(cfg);
            db.register_csv_with_schema("t", &path, gen.schema(), false)
                .unwrap();
            db
        };
        let seq = mk(1);
        let par = mk(threads);

        for (qi, sql) in queries.iter().enumerate() {
            let a = seq.query(sql).unwrap();
            let b = par.query(sql).unwrap();
            assert_eq!(a, b, "case {case} query {qi} threads {threads}: {sql}");
        }

        // Post-scan adaptive state must be byte-identical.
        let (hs, hp) = (
            seq.table_handle("t").unwrap(),
            par.table_handle("t").unwrap(),
        );
        let (ts, tp) = (hs.read(), hp.read());
        for attr in 0..cols {
            assert_eq!(
                ts.map().coverage(attr),
                tp.map().coverage(attr),
                "case {case}: posmap coverage of c{attr}"
            );
            assert_eq!(
                ts.cache().coverage(attr),
                tp.cache().coverage(attr),
                "case {case}: cache coverage of c{attr}"
            );
            for row in 0..ts.cache().coverage(attr) {
                assert_eq!(
                    ts.cache().peek(attr, row),
                    tp.cache().peek(attr, row),
                    "case {case}: cache content c{attr} row {row}"
                );
            }
            match (ts.stats().attr(attr), tp.stats().attr(attr)) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(
                        a.rows_seen(),
                        b.rows_seen(),
                        "case {case}: stats rows c{attr}"
                    );
                    assert_eq!(
                        a.null_fraction(),
                        b.null_fraction(),
                        "case {case}: stats nulls c{attr}"
                    );
                    assert_eq!(a.sample(), b.sample(), "case {case}: reservoir c{attr}");
                }
                other => panic!("case {case}: stats presence differs for c{attr}: {other:?}"),
            }
        }
        assert_eq!(
            ts.map().row_index().len(),
            tp.map().row_index().len(),
            "case {case}: row index size"
        );
        std::fs::remove_file(path).ok();
    }
}

/// The two-phase cold-scan invariant (ISSUE 3): a cold byte-partitioned
/// scan over a table with a *pre-populated partial cache* — random coverage
/// prefixes induced by random tight budgets — must produce byte-identical
/// results, cache contents and statistics to a fully-cold sequential scan.
/// Exercised across scan_threads 1/2/8, stealing off and on, pre-count on
/// and off, and with an occasional append (which turns a warm table cold
/// again while keeping reusable prefix state).
#[test]
fn cold_partial_cache_reuse_equals_sequential() {
    let mut rng = CaseRng::new(0xC01D);
    for case in 0..12 * stress_factor() {
        let cols = 2 + rng.below(6) as usize;
        let rows = 40 + rng.below(500);
        let seed = rng.below(1_000);
        let threads = *rng.pick(&[1usize, 2, 8]);
        let steal = *rng.pick(&[0usize, 4]);
        let precount = rng.below(4) != 0; // mostly on
        let append = rng.below(3) == 0;
        let a1 = rng.below(cols as u64);
        let pred = rng.below(cols as u64);
        let cut = rng.below(1_000_000_000) as i64;
        // Tight random budget → the first query caches a random prefix.
        let budget = 300 + rng.below(5_000) as usize;
        // Positional map off on most cases: without it there is no row
        // index, so every rescan stays cold byte-partitioned — the exact
        // path under test. Map-on cases cover the cold-after-append route.
        let map_on = append && rng.below(2) == 0;

        let gen = GeneratorConfig::uniform_ints(cols, rows, seed);
        let path = scratch("coldreuse", case);
        gen.generate_file(&path).unwrap();
        let queries = [
            format!("SELECT c{a1} FROM t WHERE c{pred} < {cut}"),
            format!("SELECT c{a1} FROM t WHERE c{pred} < {cut}"),
            format!("SELECT c{a1}, c{pred} FROM t"),
        ];

        let mk = |scan_threads: usize| {
            let cfg = NoDbConfig {
                enable_positional_map: map_on,
                cache_budget_bytes: budget,
                scan_threads,
                steal_slices_per_thread: steal,
                cold_precount: precount,
                io_readahead_blocks: test_readahead(),
                ..NoDbConfig::pm_c()
            };
            let mut db = NoDb::new(cfg);
            db.register_csv_with_schema("t", &path, gen.schema(), false)
                .unwrap();
            db
        };
        let seq = mk(1);
        let par = mk(threads);

        let tag = format!(
            "case {case} (threads {threads} steal {steal} precount {precount} \
             append {append} map {map_on} budget {budget})"
        );
        for (qi, sql) in queries.iter().enumerate() {
            let a = seq.query(sql).unwrap();
            let b = par.query(sql).unwrap();
            assert_eq!(a, b, "{tag} query {qi}: {sql}");
            if append && qi == 0 {
                gen.append_rows(&path, 1 + rng.below(200)).unwrap();
            }
        }

        // Post-scan adaptive state must be byte-identical.
        let (hs, hp) = (
            seq.table_handle("t").unwrap(),
            par.table_handle("t").unwrap(),
        );
        let (ts, tp) = (hs.read(), hp.read());
        // Hit accounting parity needs the pre-count: without it, cold
        // parallel workers honestly report zero cache reads (they re-parse
        // instead of peeking) while the sequential scan counts its `get`s.
        if precount || threads == 1 {
            assert_eq!(
                ts.cache().metrics().hits,
                tp.cache().metrics().hits,
                "{tag}: lifetime cache hits"
            );
        }
        for attr in 0..cols {
            assert_eq!(
                ts.cache().coverage(attr),
                tp.cache().coverage(attr),
                "{tag}: cache coverage of c{attr}"
            );
            for row in 0..ts.cache().coverage(attr) {
                assert_eq!(
                    ts.cache().peek(attr, row),
                    tp.cache().peek(attr, row),
                    "{tag}: cache content c{attr} row {row}"
                );
            }
            assert_eq!(
                ts.stats().observed_upto(attr),
                tp.stats().observed_upto(attr),
                "{tag}: stats frontier c{attr}"
            );
            match (ts.stats().attr(attr), tp.stats().attr(attr)) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(a.rows_seen(), b.rows_seen(), "{tag}: stats rows c{attr}");
                    assert_eq!(a.sample(), b.sample(), "{tag}: reservoir c{attr}");
                }
                other => panic!("{tag}: stats presence differs for c{attr}: {other:?}"),
            }
        }
        std::fs::remove_file(path).ok();
    }
}

/// The overlapped-I/O invariant (ISSUE 4): every combination of
/// `scan_threads` {1, 4, 8} × `io_readahead_blocks` {0, 2, 8} × stealing
/// {off, on} must produce byte-identical positional map, cache and
/// statistics and identical result batches to the synchronous sequential
/// reference (`threads 1, readahead 0`). Read-ahead only changes *when*
/// bytes arrive, never which bytes the scan consumes, so no schedule may
/// perturb results or post-scan adaptive state — including under cache
/// budget pressure, where admission replays must stay decision-identical.
#[test]
fn readahead_schedules_equal_sync_sequential_state() {
    let mut rng = CaseRng::new(0x10AD);
    for case in 0..(3 * stress_factor()) {
        let cols = 2 + rng.below(5) as usize;
        let rows = 30 + rng.below(400);
        let seed = rng.below(1_000);
        let a1 = rng.below(cols as u64);
        let pred = rng.below(cols as u64);
        let cut = rng.below(1_000_000_000) as i64;
        let cache_budget = *rng.pick(&[1_500usize, 1 << 22]);

        let gen = GeneratorConfig::uniform_ints(cols, rows, seed);
        let path = scratch("readahead", case);
        gen.generate_file(&path).unwrap();
        let queries = [
            format!("SELECT c{a1} FROM t WHERE c{pred} < {cut}"),
            format!("SELECT c{pred}, c{a1} FROM t"),
        ];

        let run = |threads: usize, readahead: usize, steal: usize| {
            let cfg = NoDbConfig {
                scan_threads: threads,
                io_readahead_blocks: readahead,
                steal_slices_per_thread: steal,
                cache_budget_bytes: cache_budget,
                ..NoDbConfig::pm_c()
            };
            let mut db = NoDb::new(cfg);
            db.register_csv_with_schema("t", &path, gen.schema(), false)
                .unwrap();
            let results: Vec<_> = queries.iter().map(|q| db.query(q).unwrap()).collect();
            (db, results)
        };

        let (ref_db, ref_results) = run(1, 0, 0);
        let ref_handle = ref_db.table_handle("t").unwrap();
        let ref_table = ref_handle.read();
        for threads in [1usize, 4, 8] {
            for readahead in [0usize, 2, 8] {
                for steal in [0usize, 4] {
                    let tag = format!(
                        "case {case} threads {threads} readahead {readahead} steal {steal} \
                         budget {cache_budget}"
                    );
                    let (db, results) = run(threads, readahead, steal);
                    assert_eq!(results, ref_results, "{tag}: query results");
                    let handle = db.table_handle("t").unwrap();
                    let table = handle.read();
                    for attr in 0..cols {
                        assert_eq!(
                            ref_table.map().coverage(attr),
                            table.map().coverage(attr),
                            "{tag}: posmap coverage c{attr}"
                        );
                        assert_eq!(
                            ref_table.cache().coverage(attr),
                            table.cache().coverage(attr),
                            "{tag}: cache coverage c{attr}"
                        );
                        for row in 0..ref_table.cache().coverage(attr) {
                            assert_eq!(
                                ref_table.cache().peek(attr, row),
                                table.cache().peek(attr, row),
                                "{tag}: cache content c{attr} row {row}"
                            );
                        }
                        assert_eq!(
                            ref_table.stats().observed_upto(attr),
                            table.stats().observed_upto(attr),
                            "{tag}: stats frontier c{attr}"
                        );
                        match (ref_table.stats().attr(attr), table.stats().attr(attr)) {
                            (None, None) => {}
                            (Some(a), Some(b)) => {
                                assert_eq!(a.rows_seen(), b.rows_seen(), "{tag}: stats c{attr}");
                                assert_eq!(a.sample(), b.sample(), "{tag}: reservoir c{attr}");
                            }
                            other => panic!("{tag}: stats presence differs c{attr}: {other:?}"),
                        }
                    }
                    assert_eq!(
                        ref_table.map().row_index().len(),
                        table.map().row_index().len(),
                        "{tag}: row index size"
                    );
                }
            }
        }
        std::fs::remove_file(path).ok();
    }
}

/// The vectorized warm-path invariant (ISSUE 5): query results must be
/// byte-identical with `vectorized_exec` on and off, for random schemas,
/// predicates (comparisons, BETWEEN, IN, LIKE, AND/OR trees) and aggregates
/// (COUNT/COUNT DISTINCT/SUM/MIN/MAX/AVG, grouped and global), across
/// `scan_threads` {1, 4} × cold/warm. The warm (second) run exercises the
/// typed cache-segment export + columnar kernels; the cold run exercises the
/// engine kernels over datum batches.
#[test]
fn vectorized_execution_equals_rowwise() {
    let mut rng = CaseRng::new(0x7EC7);
    for case in 0..(10 * stress_factor()) {
        let cols = 2 + rng.below(5) as usize;
        let rows = rng.below(500);
        let seed = rng.below(1_000);
        let strings = rng.below(4) == 0; // every 4th case: string data + LIKE
        let a1 = rng.below(cols as u64);
        let a2 = rng.below(cols as u64);
        let pred = rng.below(cols as u64);
        let cut = rng.below(1_000_000_000) as i64;
        let lo = rng.below(500_000_000) as i64;
        let hi = lo + rng.below(500_000_000) as i64;
        // Tight budgets on some cases so partial coverage (mixed
        // cache/raw rescans) flows through the kernels too.
        let budget = *rng.pick(&[1_000usize, 1 << 22, 1 << 30]);

        let gen = if strings {
            GeneratorConfig::fixed_width_strings(cols, 1 + rng.below(6) as usize, rows, seed)
        } else {
            GeneratorConfig::uniform_ints(cols, rows, seed)
        };
        let path = scratch("vect", case);
        gen.generate_file(&path).unwrap();
        let queries: Vec<String> = if strings {
            vec![
                format!("SELECT c{a1} FROM t WHERE c{pred} LIKE 'a%'"),
                format!("SELECT c{a1}, COUNT(*) FROM t GROUP BY c{a1} ORDER BY c{a1} LIMIT 20"),
                format!("SELECT COUNT(DISTINCT c{a2}) FROM t WHERE c{pred} NOT LIKE '%z%'"),
                format!("SELECT MIN(c{a1}), MAX(c{a2}) FROM t WHERE c{pred} >= 'c'"),
            ]
        } else {
            vec![
                format!("SELECT c{a1}, c{a2} FROM t WHERE c{pred} < {cut}"),
                format!("SELECT c{a1} FROM t WHERE c{pred} BETWEEN {lo} AND {hi}"),
                format!(
                    "SELECT c{a1} FROM t WHERE c{pred} < {lo} OR c{pred} > {hi} ORDER BY c{a1}"
                ),
                format!(
                    "SELECT COUNT(*), SUM(c{a1}), MIN(c{a2}), MAX(c{a2}), AVG(c{a1}) FROM t \
                     WHERE c{pred} < {cut} AND c{a2} NOT IN (1, 2, {cut})"
                ),
                format!(
                    "SELECT c{a1} % 7, COUNT(*), SUM(c{a2}) FROM t GROUP BY c{a1} % 7 \
                     ORDER BY c{a1} % 7"
                ),
                format!("SELECT COUNT(DISTINCT c{a1}) FROM t WHERE c{pred} * 2 > {cut}"),
            ]
        };

        let mk = |scan_threads: usize, vectorized: bool| {
            let cfg = NoDbConfig {
                scan_threads,
                vectorized_exec: vectorized,
                cache_budget_bytes: budget,
                io_readahead_blocks: test_readahead(),
                ..NoDbConfig::pm_c()
            };
            let mut db = NoDb::new(cfg);
            db.register_csv_with_schema("t", &path, gen.schema(), false)
                .unwrap();
            db
        };

        for threads in [1usize, 4] {
            let on = mk(threads, true);
            let off = mk(threads, false);
            for (qi, sql) in queries.iter().enumerate() {
                let cold_on = on.query(sql).unwrap();
                let cold_off = off.query(sql).unwrap();
                assert_eq!(
                    cold_on, cold_off,
                    "case {case} threads {threads} query {qi} cold: {sql}"
                );
                let warm_on = on.query(sql).unwrap();
                let warm_off = off.query(sql).unwrap();
                assert_eq!(
                    warm_on, warm_off,
                    "case {case} threads {threads} query {qi} warm: {sql}"
                );
                assert_eq!(
                    warm_on, cold_on,
                    "case {case} threads {threads} query {qi} warm≡cold: {sql}"
                );
            }
            // The adaptive state the two ablation arms leave behind must
            // also be identical — the vectorized side-column export replays
            // exactly what row-wise pushes would have.
            let (h_on, h_off) = (
                on.table_handle("t").unwrap(),
                off.table_handle("t").unwrap(),
            );
            let (t_on, t_off) = (h_on.read(), h_off.read());
            for attr in 0..cols {
                assert_eq!(
                    t_on.cache().coverage(attr),
                    t_off.cache().coverage(attr),
                    "case {case} threads {threads}: cache coverage c{attr}"
                );
                for row in 0..t_on.cache().coverage(attr) {
                    assert_eq!(
                        t_on.cache().peek(attr, row),
                        t_off.cache().peek(attr, row),
                        "case {case} threads {threads}: cache content c{attr} row {row}"
                    );
                }
                match (t_on.stats().attr(attr), t_off.stats().attr(attr)) {
                    (None, None) => {}
                    (Some(a), Some(b)) => {
                        assert_eq!(a.rows_seen(), b.rows_seen(), "case {case}: stats c{attr}");
                        assert_eq!(a.sample(), b.sample(), "case {case}: reservoir c{attr}");
                    }
                    other => panic!("case {case}: stats presence differs c{attr}: {other:?}"),
                }
            }
        }
        std::fs::remove_file(path).ok();
    }
}

#[test]
fn selective_tokenizing_agrees_with_full() {
    let mut rng = CaseRng::new(0x5E1E);
    let alphabet = [b',', b'a', b'1', b'x', b'.'];
    for case in 0..200u64 {
        let len = rng.below(200) as usize;
        let line: Vec<u8> = (0..len).map(|_| *rng.pick(&alphabet)).collect();
        let upto = rng.below(30) as usize;

        let cfg = TokenizerConfig::default();
        let mut full = Tokens::new();
        let mut sel = Tokens::new();
        cfg.tokenize_into(&line, &mut full);
        let n = cfg.tokenize_selective(&line, upto, &mut sel);
        assert_eq!(n, full.len().min(upto + 1), "case {case}");
        for f in 0..n {
            assert_eq!(sel.get(f), full.get(f), "case {case} field {f}");
        }
    }
}

#[test]
fn resumable_tokenizing_agrees_with_full() {
    let mut rng = CaseRng::new(0x4E5);
    let alphabet = [b',', b'q', b'7'];
    for case in 0..200u64 {
        let len = 1 + rng.below(150) as usize;
        let line: Vec<u8> = (0..len).map(|_| *rng.pick(&alphabet)).collect();
        let cfg = TokenizerConfig::default();
        let mut full = Tokens::new();
        cfg.tokenize_into(&line, &mut full);
        let anchor = rng.below(10) as usize;
        if anchor >= full.len() {
            continue;
        }
        let upto = anchor + rng.below(10) as usize;
        let anchor_off = full.get(anchor).unwrap().start as usize;
        let mut res = Tokens::new();
        cfg.tokenize_from(&line, anchor, anchor_off, upto, &mut res);
        for f in anchor..=upto.min(full.len() - 1) {
            assert_eq!(res.get(f), full.get(f), "case {case} field {f}");
        }
    }
}

#[test]
fn cache_round_trips_arbitrary_values() {
    let mut rng = CaseRng::new(0xCAC4E);
    for case in 0..40u64 {
        let n = rng.below(300) as usize;
        let mut cache = RawCache::new(CachePolicy::default());
        let tick = cache.begin_query(&[0, 1]);
        let mut ints = Vec::new();
        let mut strs = Vec::new();
        for _ in 0..n {
            match rng.below(3) {
                0 => {
                    let v = Datum::Null;
                    assert!(cache.append(0, ColumnType::Int, &v, tick));
                    ints.push(v);
                }
                1 => {
                    let v = Datum::Int(rng.next() as i64);
                    assert!(cache.append(0, ColumnType::Int, &v, tick));
                    ints.push(v);
                }
                _ => {
                    let len = rng.below(13) as usize;
                    let s: String = (0..len)
                        .map(|_| (b'a' + rng.below(26) as u8) as char)
                        .collect();
                    let v = Datum::from(s.as_str());
                    assert!(cache.append(1, ColumnType::Str, &v, tick));
                    strs.push(v);
                }
            }
        }
        for (i, v) in ints.iter().enumerate() {
            assert_eq!(cache.peek(0, i), Some(v.clone()), "case {case} int row {i}");
        }
        for (i, v) in strs.iter().enumerate() {
            assert_eq!(cache.peek(1, i), Some(v.clone()), "case {case} str row {i}");
        }
    }
}

#[test]
fn histogram_fraction_le_is_monotone() {
    let mut rng = CaseRng::new(0x415);
    for case in 0..60u64 {
        let n = 1 + rng.below(400) as usize;
        let sample: Vec<i64> = (0..n).map(|_| rng.below(2_000) as i64 - 1_000).collect();
        let buckets = 1 + rng.below(40) as usize;
        let datums: Vec<Datum> = sample.iter().map(|&v| Datum::Int(v)).collect();
        let h = EquiDepthHistogram::build(&datums, buckets).unwrap();
        let mut probes: Vec<i64> = (0..2 + rng.below(18))
            .map(|_| rng.below(2_400) as i64 - 1_200)
            .collect();
        probes.sort_unstable();
        let mut prev = 0.0f64;
        for v in probes {
            let f = h.fraction_le(&Datum::Int(v));
            assert!((0.0..=1.0).contains(&f), "case {case}: f = {f}");
            assert!(
                f + 1e-9 >= prev,
                "case {case}: monotonicity {prev} then {f}"
            );
            prev = f;
        }
        let max = sample.iter().max().unwrap();
        assert!(
            (h.fraction_le(&Datum::Int(*max)) - 1.0).abs() < 1e-9,
            "case {case}: max must reach 1.0"
        );
    }
}

#[test]
fn parse_int_matches_std() {
    let mut rng = CaseRng::new(0x147);
    for _ in 0..500 {
        let v = rng.next() as i64;
        let text = v.to_string();
        assert_eq!(
            nodb_repro::rawcsv::parser::parse_int(text.as_bytes()),
            Some(v)
        );
    }
    for v in [0, 1, -1, i64::MAX, i64::MIN] {
        let text = v.to_string();
        assert_eq!(
            nodb_repro::rawcsv::parser::parse_int(text.as_bytes()),
            Some(v)
        );
    }
}

#[test]
fn generated_files_always_queryable() {
    let mut rng = CaseRng::new(0x6E4);
    for case in 0..24u64 {
        let cols = 1 + rng.below(5) as usize;
        let rows = rng.below(200);
        let seed = rng.below(500);
        let gen = GeneratorConfig::uniform_ints(cols, rows, seed);
        let path = scratch("gen", case);
        gen.generate_file(&path).unwrap();
        let mut db = NoDb::new(NoDbConfig::default());
        db.register_csv_with_schema("t", &path, gen.schema(), false)
            .unwrap();
        let r = db.query("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r.scalar(), Some(&Datum::Int(rows as i64)), "case {case}");
        std::fs::remove_file(path).ok();
    }
}

/// Compare every piece of post-scan adaptive state between two instances
/// holding the same table: positional-map coverage and row index, cache
/// coverage and contents, statistics. Used by the chaos suite, where the
/// two sides differ only in injected (and retried) I/O faults — wall-clock
/// I/O counters are deliberately *not* compared, since retries legitimately
/// re-issue reads.
fn assert_same_adaptive_state(a: &NoDb, b: &NoDb, cols: usize, label: &str) {
    let (ha, hb) = (a.table_handle("t").unwrap(), b.table_handle("t").unwrap());
    let (ta, tb) = (ha.read(), hb.read());
    for attr in 0..cols {
        assert_eq!(
            ta.map().coverage(attr),
            tb.map().coverage(attr),
            "{label}: posmap coverage of c{attr}"
        );
        assert_eq!(
            ta.cache().coverage(attr),
            tb.cache().coverage(attr),
            "{label}: cache coverage of c{attr}"
        );
        for row in 0..ta.cache().coverage(attr) {
            assert_eq!(
                ta.cache().peek(attr, row),
                tb.cache().peek(attr, row),
                "{label}: cache content c{attr} row {row}"
            );
        }
        match (ta.stats().attr(attr), tb.stats().attr(attr)) {
            (None, None) => {}
            (Some(x), Some(y)) => {
                assert_eq!(x.rows_seen(), y.rows_seen(), "{label}: stats rows c{attr}");
                assert_eq!(
                    x.null_fraction(),
                    y.null_fraction(),
                    "{label}: stats nulls c{attr}"
                );
                assert_eq!(x.sample(), y.sample(), "{label}: reservoir c{attr}");
            }
            other => panic!("{label}: stats presence differs for c{attr}: {other:?}"),
        }
    }
    assert_eq!(
        ta.map().row_index().len(),
        tb.map().row_index().len(),
        "{label}: row index size"
    );
    assert_eq!(
        ta.snapshot().row_count,
        tb.snapshot().row_count,
        "{label}: known row count"
    );
}

/// The resilience invariant (ISSUE 6): transient I/O faults that the
/// bounded retry layer clears must be *invisible*. For random datasets and
/// queries, a scan under deterministic fault injection (seeded `EIO`s,
/// short reads and latency on block refills) produces query results — cold
/// and warm — and post-scan adaptive state byte-identical to a fault-free
/// run, across scan_threads {1, 4, 8} × read-ahead {0, 2}.
#[test]
fn faulty_scans_match_fault_free() {
    let mut rng = CaseRng::new(0xFA17);
    for case in 0..4 * stress_factor() {
        let cols = 2 + rng.below(5) as usize;
        let rows = 30 + rng.below(400);
        let seed = rng.below(1_000);
        let fault_seed = 1 + rng.below(u64::MAX - 1);
        let a1 = rng.below(cols as u64);
        let pred = rng.below(cols as u64);
        let cut = rng.below(1_000_000_000) as i64;
        // Tight-ish budget on some cases so eviction paths run under faults.
        let cache_budget = *rng.pick(&[3_000usize, 1 << 22]);

        let gen = GeneratorConfig::uniform_ints(cols, rows, seed);
        let path = scratch("chaos", case);
        gen.generate_file(&path).unwrap();
        let queries = [
            format!("SELECT c{a1} FROM t WHERE c{pred} < {cut}"),
            format!("SELECT COUNT(*) FROM t WHERE c{pred} >= {cut}"),
        ];

        for &threads in &[1usize, 4, 8] {
            for &readahead in &[0usize, 2] {
                let label = format!("case {case} threads {threads} ra {readahead}");
                let mk = |fault_seed: u64| {
                    let cfg = NoDbConfig {
                        scan_threads: threads,
                        io_readahead_blocks: readahead,
                        cache_budget_bytes: cache_budget,
                        // Aggressive injection (~1 refill in 4) with zero
                        // backoff: the default 2 retries must clear every
                        // injected fault (the injector never fires twice in
                        // a row on one source).
                        io_fault_seed: fault_seed,
                        io_fault_one_in: 4,
                        io_retry_backoff_ms: 0,
                        ..NoDbConfig::pm_c()
                    };
                    let mut db = NoDb::new(cfg);
                    db.register_csv_with_schema("t", &path, gen.schema(), false)
                        .unwrap();
                    db
                };
                let clean = mk(0);
                let chaos = mk(fault_seed);
                for (qi, sql) in queries.iter().enumerate() {
                    // Cold then warm on both sides, compared pairwise.
                    for pass in ["cold", "warm"] {
                        let want = clean.query(sql).unwrap();
                        let got = chaos.query(sql).unwrap();
                        assert_eq!(want, got, "{label} q{qi} {pass}: {sql}");
                    }
                }
                assert_same_adaptive_state(&clean, &chaos, cols, &label);
            }
        }
        std::fs::remove_file(path).ok();
    }
}
