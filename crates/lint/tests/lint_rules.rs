//! Golden-fixture tests for every lint rule (exact finding counts, rule IDs
//! and line numbers), ratchet direction tests, and an end-to-end run of the
//! `nodb-lint` binary over the real workspace (which must be clean — that is
//! the whole point of checking the lint in).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use nodb_lint::{lint_paths, ratchet, RuleId};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// `(rule, line)` pairs for one fixture, sorted.
fn findings(name: &str) -> Vec<(RuleId, u32)> {
    let path = fixture(name);
    let found = lint_paths(&[path.as_path()]).expect("fixture readable");
    found.iter().map(|f| (f.rule, f.line)).collect()
}

fn of_rule(name: &str, rule: RuleId) -> Vec<u32> {
    findings(name)
        .into_iter()
        .filter(|(r, _)| *r == rule)
        .map(|(_, l)| l)
        .collect()
}

// --- poison-lock -----------------------------------------------------------

#[test]
fn poison_lock_violations_exact() {
    assert_eq!(
        of_rule("poison_lock_violation.rs", RuleId::PoisonLock),
        vec![9, 14, 20]
    );
}

#[test]
fn poison_lock_clean_fixture_has_none() {
    assert_eq!(
        of_rule("poison_lock_clean.rs", RuleId::PoisonLock),
        Vec::<u32>::new()
    );
}

// --- cancellation ----------------------------------------------------------

#[test]
fn cancellation_violations_exact() {
    assert_eq!(
        of_rule("cancellation_violation.rs", RuleId::Cancellation),
        vec![9, 20]
    );
}

#[test]
fn cancellation_clean_fixture_has_none() {
    assert_eq!(
        of_rule("cancellation_clean.rs", RuleId::Cancellation),
        Vec::<u32>::new()
    );
}

#[test]
fn cancellation_needs_the_module_marker() {
    // The same loops in an unannotated module are not findings: the rule
    // only applies where the module opted in.
    assert_eq!(
        of_rule("unwrap_violation.rs", RuleId::Cancellation),
        Vec::<u32>::new()
    );
}

// --- no-unwrap -------------------------------------------------------------

#[test]
fn unwrap_violations_exact() {
    assert_eq!(
        of_rule("unwrap_violation.rs", RuleId::NoUnwrap),
        vec![6, 11, 17, 22]
    );
}

#[test]
fn unwrap_clean_fixture_has_none() {
    assert_eq!(
        of_rule("unwrap_clean.rs", RuleId::NoUnwrap),
        Vec::<u32>::new()
    );
}

// --- truncating-cast -------------------------------------------------------

#[test]
fn cast_violations_exact() {
    // Two narrowing casts share line 7; one more on line 12. Waived and
    // widening casts stay silent.
    assert_eq!(
        of_rule("cast_violation.rs", RuleId::TruncatingCast),
        vec![7, 7, 12]
    );
}

#[test]
fn cast_clean_fixture_has_none() {
    assert_eq!(
        of_rule("cast_clean.rs", RuleId::TruncatingCast),
        Vec::<u32>::new()
    );
}

// --- unsafe-audit ----------------------------------------------------------

#[test]
fn unsafe_violations_exact() {
    assert_eq!(
        of_rule("unsafe_violation.rs", RuleId::UnsafeAudit),
        vec![7, 16]
    );
}

#[test]
fn unsafe_clean_fixture_has_none() {
    assert_eq!(
        of_rule("unsafe_clean.rs", RuleId::UnsafeAudit),
        Vec::<u32>::new()
    );
}

// --- rules do not bleed across fixtures ------------------------------------

#[test]
fn clean_fixtures_are_clean_under_every_rule() {
    for name in [
        "poison_lock_clean.rs",
        "cancellation_clean.rs",
        "unwrap_clean.rs",
        "cast_clean.rs",
        "unsafe_clean.rs",
    ] {
        // The poison-lock clean fixture deliberately keeps one library-code
        // unwrap on an I/O read to prove the lock rule ignores it; that site
        // belongs to no-unwrap. Everything else must be silent everywhere.
        let extra: Vec<_> = findings(name)
            .into_iter()
            .filter(|(r, _)| !(name == "poison_lock_clean.rs" && *r == RuleId::NoUnwrap))
            .collect();
        assert!(extra.is_empty(), "{name}: unexpected findings {extra:?}");
    }
}

// --- ratchet ---------------------------------------------------------------

fn counts(pairs: &[(&str, usize)]) -> BTreeMap<String, usize> {
    pairs.iter().map(|(p, n)| (p.to_string(), *n)).collect()
}

#[test]
fn ratchet_rejects_an_increased_count() {
    let r = ratchet::parse("[no-unwrap]\n\"crates/x/src/lib.rs\" = 3\n").expect("parse");
    let f = ratchet::check(&counts(&[("crates/x/src/lib.rs", 4)]), &r);
    assert_eq!(f.len(), 1);
    assert_eq!(f[0].rule, RuleId::NoUnwrap);
    assert!(
        f[0].message.contains("ratchet allows 3"),
        "{}",
        f[0].message
    );
}

#[test]
fn ratchet_rejects_a_new_file_with_sites() {
    let r = ratchet::Ratchet::default();
    let f = ratchet::check(&counts(&[("crates/new/src/lib.rs", 1)]), &r);
    assert_eq!(f.len(), 1);
}

#[test]
fn ratchet_flags_stale_entries_so_they_ratchet_down() {
    let r = ratchet::parse("[no-unwrap]\n\"a.rs\" = 5\n").expect("parse");
    let f = ratchet::check(&counts(&[("a.rs", 2)]), &r);
    assert_eq!(f.len(), 1);
    assert!(f[0].message.contains("stale"));
    // And at the exact budget: silence.
    assert!(ratchet::check(&counts(&[("a.rs", 5)]), &r).is_empty());
}

// --- end to end ------------------------------------------------------------

/// The checked-in workspace must be lint-clean: run the real binary with
/// `--workspace` against the repo root and require exit code 0.
#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_nodb-lint"))
        .arg("--workspace")
        .arg("--root")
        .arg(&root)
        .output()
        .expect("run nodb-lint");
    assert!(
        out.status.success(),
        "workspace has lint findings:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

/// Seeded fixtures must fail through the binary too (exit code 1), proving
/// the CI wiring actually gates.
#[test]
fn binary_exits_nonzero_on_every_seeded_fixture() {
    for name in [
        "poison_lock_violation.rs",
        "cancellation_violation.rs",
        "unwrap_violation.rs",
        "cast_violation.rs",
        "unsafe_violation.rs",
    ] {
        let out = std::process::Command::new(env!("CARGO_BIN_EXE_nodb-lint"))
            .arg(fixture(name))
            .output()
            .expect("run nodb-lint");
        assert_eq!(
            out.status.code(),
            Some(1),
            "{name} should fail the lint:\n{}",
            String::from_utf8_lossy(&out.stdout)
        );
    }
}
