//! [`ScanSource`] implementations over loaded storage.

use std::sync::Arc;

use nodb_engine::batch::{Batch, SliceRow, BATCH_SIZE};
use nodb_engine::{EngineResult, ScanRequest, ScanSource};
use nodb_rawcsv::Datum;

use crate::colstore::ColumnStore;
use crate::heap::HeapFile;

/// Sequential scan over a heap file: page at a time through the buffer pool,
/// decoding only requested attributes (tagged encoding supports skipping).
pub struct HeapScanSource {
    heap: Arc<HeapFile>,
    req: ScanRequest,
    nattrs: usize,
    page_no: u64,
    scratch: Vec<Datum>,
}

impl HeapScanSource {
    /// Scan `heap` (whose tuples have `nattrs` attributes) per `req`.
    pub fn new(heap: Arc<HeapFile>, nattrs: usize, req: ScanRequest) -> Self {
        HeapScanSource {
            heap,
            req,
            nattrs,
            page_no: 0,
            scratch: Vec::new(),
        }
    }
}

impl ScanSource for HeapScanSource {
    fn next_batch(&mut self) -> EngineResult<Option<Batch>> {
        let ncols = self.req.attrs.len();
        let mut batch = Batch::with_columns(ncols);
        while self.page_no < self.heap.npages() && !batch.is_full() {
            let page_no = self.page_no;
            self.page_no += 1;
            // Copy tuples out under the pool lock, then decode outside it.
            let tuples: Vec<Vec<u8>> = self
                .heap
                .with_page(page_no, |p| p.tuples().map(|t| t.to_vec()).collect())?;
            for t in tuples {
                self.scratch.clear();
                let mut r = crate::tuple::TupleReader::new(&t);
                r.project(&self.req.attrs, self.nattrs, &mut self.scratch);
                if let Some(pred) = &self.req.predicate {
                    if !pred.eval_filter(&SliceRow(&self.scratch)) {
                        continue;
                    }
                }
                for (c, d) in self.scratch.drain(..).enumerate() {
                    batch.push_value(c, d);
                }
                batch.finish_row();
            }
        }
        Ok(if batch.is_empty() { None } else { Some(batch) })
    }
}

/// Scan over a column store: requested column segments are read once at
/// construction (sequential I/O), then streamed as batches.
pub struct ColScanSource {
    cols: Vec<Vec<Datum>>,
    req: ScanRequest,
    nrows: usize,
    at: usize,
}

impl ColScanSource {
    /// Build by reading the needed segments of `store`.
    pub fn new(store: &ColumnStore, req: ScanRequest) -> EngineResult<Self> {
        let mut cols = Vec::with_capacity(req.attrs.len());
        for &a in &req.attrs {
            cols.push(
                store
                    .read_column(a)
                    .map_err(nodb_engine::EngineError::from)?,
            );
        }
        let nrows = store.nrows() as usize;
        Ok(ColScanSource {
            cols,
            req,
            nrows,
            at: 0,
        })
    }
}

impl ScanSource for ColScanSource {
    fn next_batch(&mut self) -> EngineResult<Option<Batch>> {
        if self.at >= self.nrows {
            return Ok(None);
        }
        let ncols = self.cols.len();
        let mut batch = Batch::with_columns(ncols);
        let mut row_buf: Vec<Datum> = Vec::with_capacity(ncols);
        while self.at < self.nrows && batch.rows() < BATCH_SIZE {
            let r = self.at;
            self.at += 1;
            row_buf.clear();
            for c in &self.cols {
                row_buf.push(c.get(r).cloned().unwrap_or(Datum::Null));
            }
            if let Some(pred) = &self.req.predicate {
                if !pred.eval_filter(&SliceRow(&row_buf)) {
                    continue;
                }
            }
            for (c, d) in row_buf.drain(..).enumerate() {
                batch.push_value(c, d);
            }
            batch.finish_row();
        }
        Ok(if batch.is_empty() { None } else { Some(batch) })
    }
}

/// Row-id based fetch from a heap file (index scan). `row_ids` must be
/// ascending for sequential page access; the full pushed predicate is
/// re-evaluated as a residual (the index conjunct is a superset filter).
pub struct IndexScanSource {
    heap: Arc<HeapFile>,
    nattrs: usize,
    req: ScanRequest,
    row_ids: std::vec::IntoIter<u64>,
}

/// Pack (page, slot) into a row id.
pub fn row_id(page_no: u64, slot: usize) -> u64 {
    (page_no << 16) | slot as u64
}

/// Unpack a row id.
pub fn unpack_row_id(id: u64) -> (u64, usize) {
    (id >> 16, (id & 0xffff) as usize)
}

impl IndexScanSource {
    /// Fetch the given rows (ascending ids) and apply `req`.
    pub fn new(heap: Arc<HeapFile>, nattrs: usize, req: ScanRequest, row_ids: Vec<u64>) -> Self {
        IndexScanSource {
            heap,
            nattrs,
            req,
            row_ids: row_ids.into_iter(),
        }
    }
}

impl ScanSource for IndexScanSource {
    fn next_batch(&mut self) -> EngineResult<Option<Batch>> {
        let ncols = self.req.attrs.len();
        let mut batch = Batch::with_columns(ncols);
        let mut scratch: Vec<Datum> = Vec::with_capacity(ncols);
        for id in self.row_ids.by_ref() {
            let (page_no, slot) = unpack_row_id(id);
            let tuple: Option<Vec<u8>> = self
                .heap
                .with_page(page_no, |p| p.tuple(slot).map(|t| t.to_vec()))?;
            let Some(t) = tuple else { continue };
            scratch.clear();
            let mut r = crate::tuple::TupleReader::new(&t);
            r.project(&self.req.attrs, self.nattrs, &mut scratch);
            if let Some(pred) = &self.req.predicate {
                if !pred.eval_filter(&SliceRow(&scratch)) {
                    continue;
                }
            }
            for (c, d) in scratch.drain(..).enumerate() {
                batch.push_value(c, d);
            }
            batch.finish_row();
            if batch.is_full() {
                break;
            }
        }
        Ok(if batch.is_empty() { None } else { Some(batch) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::encode_row;

    fn make_heap(rows: usize) -> Arc<HeapFile> {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "nodb_scan_{}_{}",
            rows,
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let mut w = HeapFile::create(&p, 4096, 8).unwrap();
        let mut buf = Vec::new();
        for i in 0..rows as i64 {
            buf.clear();
            encode_row(
                &[
                    Datum::Int(i),
                    Datum::Int(i * 2),
                    Datum::from(format!("r{i}")),
                ],
                &mut buf,
            );
            w.append(&buf).unwrap();
        }
        let (heap, _) = w.finish().unwrap();
        Arc::new(heap)
    }

    #[test]
    fn heap_scan_projects_and_counts() {
        let heap = make_heap(3000);
        let req = ScanRequest::project(vec![0, 2]);
        let mut s = HeapScanSource::new(heap, 3, req);
        let mut rows = 0;
        while let Some(b) = s.next_batch().unwrap() {
            assert_eq!(b.ncols(), 2);
            rows += b.rows();
        }
        assert_eq!(rows, 3000);
    }

    #[test]
    fn heap_scan_applies_predicate() {
        use nodb_engine::RExpr;
        use nodb_sqlparse::ast::BinOp;
        let heap = make_heap(100);
        let req = ScanRequest {
            attrs: vec![0, 1],
            predicate: Some(RExpr::Binary {
                op: BinOp::Lt,
                left: Box::new(RExpr::Col(1)),
                right: Box::new(RExpr::Const(Datum::Int(10))),
            }),
            materialize: vec![true, true],
        };
        let mut s = HeapScanSource::new(heap, 3, req);
        let mut rows = 0;
        while let Some(b) = s.next_batch().unwrap() {
            rows += b.rows();
        }
        assert_eq!(rows, 5); // i*2 < 10 → i in 0..5
    }

    #[test]
    fn index_scan_fetches_by_row_id() {
        let heap = make_heap(2000);
        let ids = vec![row_id(0, 0), row_id(0, 5), row_id(1, 0)];
        let req = ScanRequest::project(vec![0]);
        let mut s = IndexScanSource::new(heap, 3, req, ids);
        let b = s.next_batch().unwrap().unwrap();
        assert_eq!(b.rows(), 3);
        assert_eq!(b.value(0, 0), Datum::Int(0));
        assert_eq!(b.value(1, 0), Datum::Int(5));
    }

    #[test]
    fn row_id_round_trip() {
        let id = row_id(1234, 56);
        assert_eq!(unpack_row_id(id), (1234, 56));
    }
}
