//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this local crate
//! provides exactly the API surface the workspace uses: a seedable,
//! deterministic [`rngs::StdRng`] plus the rand-0.9-style
//! [`RngExt::random`] / [`RngExt::random_range`] extension methods.
//!
//! Determinism is the only contract: the same seed always yields the same
//! stream (xoshiro256++ seeded through SplitMix64). Statistical quality is
//! more than sufficient for synthetic data generation and reservoir
//! sampling; this is *not* a cryptographic generator.

use std::ops::{Range, RangeInclusive};

/// Construction of a generator from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The raw 64-bit output interface.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic default generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the 256-bit state, the
            // initialization the xoshiro authors recommend.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl StdRng {
        /// Export the raw 256-bit generator state (for checkpointing a
        /// stream mid-flight; pair with [`StdRng::from_state`]).
        pub fn to_state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator that continues exactly the stream captured
        /// by [`StdRng::to_state`].
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Types producible uniformly from raw bits (the `random::<T>()` family).
pub trait FromRng: Sized {
    /// Draw one uniform value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl FromRng for u64 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRng for u32 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl FromRng for bool {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRng for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable into a value of `T` (the `random_range` family).
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every value is fair.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

/// The user-facing extension methods, blanket-implemented for every
/// generator (mirrors `rand::Rng`).
pub trait RngExt: RngCore {
    /// Uniform value of `T` (`f64` values land in `[0, 1)`).
    #[inline]
    fn random<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Uniform value drawn from `range`.
    #[inline]
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn state_round_trip_resumes_stream() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.to_state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: i64 = r.random_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let u: usize = r.random_range(0usize..7);
            assert!(u < 7);
            let f: f64 = r.random_range(1.0f64..2.0);
            assert!((1.0..2.0).contains(&f));
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn unit_float_covers_interval() {
        let mut r = StdRng::seed_from_u64(3);
        let mean: f64 = (0..10_000).map(|_| r.random::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn modulo_range_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(4);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[r.random_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "counts = {counts:?}");
        }
    }
}
