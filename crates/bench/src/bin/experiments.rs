//! Experiment runner CLI: regenerates every table/figure of the paper.

use std::io::Write;

use nodb_bench::{experiments, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut scale = Scale::Small;
    let mut out_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| Scale::parse(s))
                    .unwrap_or_else(|| usage("bad --scale (small|full)"));
            }
            "--out" => {
                i += 1;
                out_path = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| usage("--out needs a path")),
                );
            }
            "all" => ids = experiments::ALL.iter().map(|s| s.to_string()).collect(),
            other if experiments::ALL.contains(&other) => ids.push(other.to_string()),
            other => usage(&format!("unknown argument {other:?}")),
        }
        i += 1;
    }
    if ids.is_empty() {
        usage("no experiment selected");
    }

    let mut full_output = String::new();
    for id in &ids {
        eprintln!("running {id} ({scale:?}) ...");
        let t0 = std::time::Instant::now();
        let report = experiments::run(id, scale).expect("known id");
        let text = report.render();
        println!("{text}");
        eprintln!("  done in {:.1}s", t0.elapsed().as_secs_f64());
        full_output.push_str(&text);
        full_output.push('\n');
    }
    if let Some(p) = out_path {
        let mut f = std::fs::File::create(&p).expect("create --out file");
        f.write_all(full_output.as_bytes())
            .expect("write --out file");
        eprintln!("wrote {p}");
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: experiments [all | fig2 fig3 seq adapt dataset race updates knobs]* [--scale small|full] [--out FILE]");
    std::process::exit(2);
}
