//! Shared helpers for the integration-test binaries. Each test file is its
//! own crate, so anything both `concurrent_queries.rs` and `server.rs` need
//! lives here (`mod common;`). Not every binary uses every helper.
#![allow(dead_code)]

use nodb_repro::core::NoDb;

/// Assert that two instances' adaptive state for table `t` is identical
/// (coverage, cache contents, statistics, row index). This is the
/// convergence invariant behind every concurrency test: side-effect merges
/// are frontier-based, so any interleaving of the same query set must land
/// exactly where a sequential replay lands.
pub fn assert_same_state(tag: &str, a: &NoDb, b: &NoDb, cols: usize) {
    let (ha, hb) = (a.table_handle("t").unwrap(), b.table_handle("t").unwrap());
    let (ta, tb) = (ha.read(), hb.read());
    assert_eq!(
        ta.map().row_index().len(),
        tb.map().row_index().len(),
        "{tag}: row index size"
    );
    assert_eq!(
        ta.map().row_index().is_complete(),
        tb.map().row_index().is_complete(),
        "{tag}: row index completeness"
    );
    for attr in 0..cols {
        assert_eq!(
            ta.map().coverage(attr),
            tb.map().coverage(attr),
            "{tag}: map coverage c{attr}"
        );
        assert_eq!(
            ta.cache().coverage(attr),
            tb.cache().coverage(attr),
            "{tag}: cache coverage c{attr}"
        );
        for row in 0..ta.cache().coverage(attr) {
            assert_eq!(
                ta.cache().peek(attr, row),
                tb.cache().peek(attr, row),
                "{tag}: cache content c{attr} row {row}"
            );
        }
        assert_eq!(
            ta.stats().observed_upto(attr),
            tb.stats().observed_upto(attr),
            "{tag}: stats frontier c{attr}"
        );
        match (ta.stats().attr(attr), tb.stats().attr(attr)) {
            (None, None) => {}
            (Some(x), Some(y)) => {
                assert_eq!(x.rows_seen(), y.rows_seen(), "{tag}: stats rows c{attr}");
                assert_eq!(
                    x.null_fraction(),
                    y.null_fraction(),
                    "{tag}: stats nulls c{attr}"
                );
                assert_eq!(x.sample(), y.sample(), "{tag}: stats reservoir c{attr}");
            }
            other => panic!("{tag}: stats presence differs for c{attr}: {other:?}"),
        }
    }
}
