//! Per-attribute statistics accumulator.
//!
//! Fed by the scan operator for *requested attributes only* (§3.3: "creates
//! statistics only on requested attributes") and incrementally augmented as
//! queries touch more rows.

use nodb_rawcsv::Datum;

use crate::histogram::EquiDepthHistogram;
use crate::ndv::DistinctCounter;
use crate::sample::{Reservoir, ReservoirState};

/// Default reservoir capacity per attribute.
pub const DEFAULT_SAMPLE_CAPACITY: usize = 1024;

/// Running statistics for one attribute of one raw file.
#[derive(Debug)]
pub struct AttrStats {
    attr: usize,
    /// Values observed (including NULLs).
    rows_seen: u64,
    /// NULLs observed.
    nulls: u64,
    /// Smallest non-null value (total order).
    min: Option<Datum>,
    /// Largest non-null value (total order).
    max: Option<Datum>,
    reservoir: Reservoir,
    ndv: DistinctCounter,
    /// Histogram cache, invalidated when the reservoir changes.
    histogram: Option<(u64, EquiDepthHistogram)>,
}

impl AttrStats {
    /// Fresh accumulator for attribute `attr`. The reservoir seed derives
    /// from the attribute index, keeping runs reproducible.
    pub fn new(attr: usize) -> Self {
        AttrStats {
            attr,
            rows_seen: 0,
            nulls: 0,
            min: None,
            max: None,
            reservoir: Reservoir::new(DEFAULT_SAMPLE_CAPACITY, 0x5eed_0000 + attr as u64),
            ndv: DistinctCounter::default_size(),
            histogram: None,
        }
    }

    /// The attribute index this accumulator describes.
    pub fn attr(&self) -> usize {
        self.attr
    }

    /// Observe one value during a scan.
    pub fn observe(&mut self, d: &Datum) {
        self.rows_seen += 1;
        if d.is_null() {
            self.nulls += 1;
            return;
        }
        match &self.min {
            Some(m) if d.total_cmp(m) != std::cmp::Ordering::Less => {}
            _ => self.min = Some(d.clone()),
        }
        match &self.max {
            Some(m) if d.total_cmp(m) != std::cmp::Ordering::Greater => {}
            _ => self.max = Some(d.clone()),
        }
        self.ndv.add(d);
        self.reservoir.offer(d);
    }

    /// Values observed so far (including NULLs).
    pub fn rows_seen(&self) -> u64 {
        self.rows_seen
    }

    /// Fraction of observed values that were NULL.
    pub fn null_fraction(&self) -> f64 {
        if self.rows_seen == 0 {
            0.0
        } else {
            self.nulls as f64 / self.rows_seen as f64
        }
    }

    /// Estimated number of distinct non-null values.
    pub fn ndv(&self) -> f64 {
        self.ndv.estimate().max(1.0)
    }

    /// Observed minimum.
    pub fn min(&self) -> Option<&Datum> {
        self.min.as_ref()
    }

    /// Observed maximum.
    pub fn max(&self) -> Option<&Datum> {
        self.max.as_ref()
    }

    /// The current reservoir sample (non-null values, unordered).
    pub fn sample(&self) -> &[Datum] {
        self.reservoir.sample()
    }

    /// Equi-depth histogram over the current sample (rebuilt lazily when the
    /// sample has grown since the last build).
    pub fn histogram(&mut self) -> Option<&EquiDepthHistogram> {
        let seen = self.reservoir.seen();
        let stale = match &self.histogram {
            Some((at, _)) => *at != seen,
            None => true,
        };
        if stale {
            self.histogram =
                EquiDepthHistogram::build(self.reservoir.sample(), 64).map(|h| (seen, h));
        }
        self.histogram.as_ref().map(|(_, h)| h)
    }

    /// Reset (file replaced).
    pub fn clear(&mut self) {
        self.rows_seen = 0;
        self.nulls = 0;
        self.min = None;
        self.max = None;
        self.reservoir.clear();
        self.ndv.clear();
        self.histogram = None;
    }

    /// Export the full accumulator state for snapshotting. The histogram
    /// cache is deliberately excluded — it rebuilds lazily from the
    /// reservoir and keying on `seen` makes the rebuild deterministic.
    pub fn export_state(&self) -> AttrStatsState {
        AttrStatsState {
            attr: self.attr,
            rows_seen: self.rows_seen,
            nulls: self.nulls,
            min: self.min.clone(),
            max: self.max.clone(),
            reservoir: self.reservoir.export_state(),
            ndv_words: self.ndv.words().to_vec(),
        }
    }

    /// Rebuild an accumulator from [`Self::export_state`]. Returns `None`
    /// when any component is inconsistent (untrusted sidecar input) —
    /// nulls exceeding rows seen, a malformed reservoir, or an empty NDV
    /// bitmap.
    pub fn from_state(state: AttrStatsState) -> Option<Self> {
        if state.nulls > state.rows_seen {
            return None;
        }
        Some(AttrStats {
            attr: state.attr,
            rows_seen: state.rows_seen,
            nulls: state.nulls,
            min: state.min,
            max: state.max,
            reservoir: Reservoir::from_state(state.reservoir)?,
            ndv: DistinctCounter::from_words(state.ndv_words)?,
            histogram: None,
        })
    }
}

/// Serializable snapshot of an [`AttrStats`] accumulator.
#[derive(Debug, Clone)]
pub struct AttrStatsState {
    /// Attribute index.
    pub attr: usize,
    /// Values observed (including NULLs).
    pub rows_seen: u64,
    /// NULLs observed.
    pub nulls: u64,
    /// Observed minimum.
    pub min: Option<Datum>,
    /// Observed maximum.
    pub max: Option<Datum>,
    /// Full reservoir state (sample + RNG mid-stream).
    pub reservoir: ReservoirState,
    /// NDV linear-counting bitmap words.
    pub ndv_words: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_max_null_tracking() {
        let mut s = AttrStats::new(0);
        s.observe(&Datum::Int(5));
        s.observe(&Datum::Null);
        s.observe(&Datum::Int(-3));
        s.observe(&Datum::Int(9));
        assert_eq!(s.min(), Some(&Datum::Int(-3)));
        assert_eq!(s.max(), Some(&Datum::Int(9)));
        assert_eq!(s.rows_seen(), 4);
        assert!((s.null_fraction() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn ndv_counts_distinct() {
        let mut s = AttrStats::new(1);
        for i in 0..50 {
            s.observe(&Datum::Int(i % 10));
        }
        let e = s.ndv();
        assert!((e - 10.0).abs() < 3.0, "ndv = {e}");
    }

    #[test]
    fn histogram_rebuilds_after_growth() {
        let mut s = AttrStats::new(2);
        for i in 0..100 {
            s.observe(&Datum::Int(i));
        }
        let f1 = s.histogram().unwrap().fraction_le(&Datum::Int(50));
        assert!(f1 > 0.3 && f1 < 0.7);
        for i in 100..1000 {
            s.observe(&Datum::Int(i));
        }
        let f2 = s.histogram().unwrap().fraction_le(&Datum::Int(50));
        assert!(f2 < 0.2, "after growth le(50) = {f2}");
    }

    #[test]
    fn state_round_trip_continues_identically() {
        let mut a = AttrStats::new(5);
        for i in 0..2_000 {
            if i % 13 == 0 {
                a.observe(&Datum::Null);
            } else {
                a.observe(&Datum::Int(i % 97));
            }
        }
        let mut b = AttrStats::from_state(a.export_state()).expect("consistent");
        assert_eq!(a.attr(), b.attr());
        assert_eq!(a.rows_seen(), b.rows_seen());
        assert_eq!(a.null_fraction(), b.null_fraction());
        assert_eq!(a.min(), b.min());
        assert_eq!(a.max(), b.max());
        assert_eq!(a.ndv(), b.ndv());
        assert_eq!(a.sample(), b.sample());
        // Further observations must evolve both identically (RNG state
        // round-tripped mid-stream).
        for i in 0..3_000 {
            let d = Datum::Int(i * 3 + 1);
            a.observe(&d);
            b.observe(&d);
        }
        assert_eq!(a.sample(), b.sample());
        assert_eq!(a.ndv(), b.ndv());
    }

    #[test]
    fn from_state_rejects_inconsistent_counts() {
        let mut a = AttrStats::new(0);
        a.observe(&Datum::Int(1));
        let mut s = a.export_state();
        s.nulls = s.rows_seen + 1;
        assert!(AttrStats::from_state(s).is_none());
        let mut s2 = a.export_state();
        s2.ndv_words = Vec::new();
        assert!(AttrStats::from_state(s2).is_none());
    }

    #[test]
    fn clear_resets_everything() {
        let mut s = AttrStats::new(3);
        s.observe(&Datum::Int(1));
        s.clear();
        assert_eq!(s.rows_seen(), 0);
        assert!(s.min().is_none());
        assert!(s.histogram().is_none());
    }
}
