//! Clean under `no-unwrap`: library code threads `Result`s; unwraps appear
//! only in test code, comments, and strings.

fn parse(s: &str) -> Result<u64, std::num::ParseIntError> {
    s.parse()
}

fn first(v: &[u64]) -> Option<u64> {
    // An old comment: we used to v.first().unwrap() here. panic!("not code")
    v.first().copied()
}

// `unwrap_or` / `unwrap_or_else` / `unwrap_or_default` are handled recovery,
// not panics.
fn defaulted(v: Option<u64>) -> u64 {
    v.unwrap_or(0).max(v.unwrap_or_else(|| 1)).max(v.unwrap_or_default())
}

const MSG: &str = "do not panic!(…) or .unwrap() in library code";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_unwrap_freely() {
        assert_eq!(parse("3").unwrap(), 3);
        first(&[]).ok_or("empty").expect_err("empty slice");
        let _ = MSG;
    }
}
