//! Clean under `unsafe-audit`: every unsafe carries a `// SAFETY:` comment
//! within the five preceding lines (or on the same line).

fn documented(ptr: *const u8) -> u8 {
    // SAFETY: caller guarantees `ptr` is valid for reads (fixture).
    unsafe { *ptr }
}

fn trailing(ptr: *const u8) -> u8 {
    unsafe { *ptr } // SAFETY: same-line comment also counts (fixture)
}

fn a_few_lines_up(mask: &[u64; 16]) -> bool {
    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }
    // SAFETY: the mask is a valid, live buffer and pid 0 is the calling
    // thread; the call only reads the mask (fixture mirroring affinity.rs).
    let ok = unsafe { sched_setaffinity(0, std::mem::size_of_val(mask), mask.as_ptr()) };
    ok == 0
}
