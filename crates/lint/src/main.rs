//! `nodb-lint` CLI.
//!
//! ```text
//! nodb-lint --workspace [--root DIR] [--ratchet FILE] [--write-ratchet]
//! nodb-lint FILE...
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage/I-O error. Every finding is one
//! line, `path:line: [rule] message` — greppable, and `-D`-style by
//! construction (any finding fails the run; there are no warnings).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("nodb-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<bool, String> {
    let mut workspace = false;
    let mut write_ratchet = false;
    let mut root: Option<PathBuf> = None;
    let mut ratchet_path: Option<PathBuf> = None;
    let mut paths: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--write-ratchet" => write_ratchet = true,
            "--root" => root = Some(PathBuf::from(next_value(&mut args, "--root")?)),
            "--ratchet" => ratchet_path = Some(PathBuf::from(next_value(&mut args, "--ratchet")?)),
            "--help" | "-h" => {
                print!("{}", USAGE);
                return Ok(true);
            }
            _ if arg.starts_with("--") => {
                return Err(format!("unknown flag `{arg}`\n{USAGE}"));
            }
            _ => paths.push(PathBuf::from(arg)),
        }
    }

    if !workspace && paths.is_empty() {
        return Err(format!("nothing to lint\n{USAGE}"));
    }
    if workspace && !paths.is_empty() {
        return Err("pass either --workspace or explicit files, not both".to_string());
    }

    if !workspace {
        let refs: Vec<&Path> = paths.iter().map(|p| p.as_path()).collect();
        let findings = nodb_lint::lint_paths(&refs).map_err(|e| e.to_string())?;
        for f in &findings {
            println!("{}", f.render());
        }
        return Ok(report_summary(findings.len(), None));
    }

    let root = match root {
        Some(r) => r,
        None => nodb_lint::walk::find_root(&std::env::current_dir().map_err(|e| e.to_string())?)
            .ok_or("no workspace root found (no Cargo.toml with [workspace] above cwd)")?,
    };
    let ratchet_path = ratchet_path.unwrap_or_else(|| root.join("lint-ratchet.toml"));
    let ratchet = match std::fs::read_to_string(&ratchet_path) {
        Ok(text) => nodb_lint::ratchet::parse(&text)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound && write_ratchet => {
            nodb_lint::ratchet::Ratchet::default()
        }
        Err(e) => {
            return Err(format!(
                "cannot read ratchet {} ({e}); run with --write-ratchet to create it",
                ratchet_path.display()
            ))
        }
    };

    let report = nodb_lint::lint_workspace(&root, &ratchet).map_err(|e| e.to_string())?;

    if write_ratchet {
        let fresh = nodb_lint::ratchet::Ratchet {
            no_unwrap: report.unwrap_counts.clone(),
        };
        std::fs::write(&ratchet_path, nodb_lint::ratchet::render(&fresh))
            .map_err(|e| e.to_string())?;
        eprintln!(
            "nodb-lint: wrote {} ({} files with sites)",
            ratchet_path.display(),
            fresh.no_unwrap.len()
        );
        // Ratchet findings are resolved by the rewrite; re-judge the rest.
        let remaining: Vec<_> = report
            .findings
            .iter()
            .filter(|f| f.rule != nodb_lint::RuleId::NoUnwrap)
            .collect();
        for f in &remaining {
            println!("{}", f.render());
        }
        return Ok(report_summary(remaining.len(), Some(report.files_scanned)));
    }

    for f in &report.findings {
        println!("{}", f.render());
    }
    Ok(report_summary(
        report.findings.len(),
        Some(report.files_scanned),
    ))
}

fn report_summary(findings: usize, files: Option<usize>) -> bool {
    match files {
        Some(n) => eprintln!("nodb-lint: {findings} finding(s) across {n} file(s) scanned"),
        None => eprintln!("nodb-lint: {findings} finding(s)"),
    }
    findings == 0
}

fn next_value(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    args.next().ok_or_else(|| format!("{flag} needs a value"))
}

const USAGE: &str = "\
usage: nodb-lint --workspace [--root DIR] [--ratchet FILE] [--write-ratchet]
       nodb-lint FILE...

Enforces the workspace invariants (see crates/lint/README.md):
  poison-lock       .lock()/.read()/.write() + unwrap must use lock_recover
  cancellation      scan loops in lint:cancellable modules must poll ctx
  no-unwrap         unwrap/expect/panic! in lib code, ratcheted downward
  truncating-cast   narrowing `as` casts need try_into or a cast-ok waiver
  unsafe-audit      every unsafe needs a // SAFETY: comment

Exit codes: 0 clean, 1 findings, 2 usage/I-O error.
";
