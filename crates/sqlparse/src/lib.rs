//! # nodb-sqlparse — SQL front-end
//!
//! A small, dependency-free SQL dialect covering everything the demo's
//! workloads use: Select-Project queries with conjunctive/disjunctive
//! predicates, aggregates, grouping, ordering and limits:
//!
//! ```sql
//! SELECT c3, c7 FROM t WHERE c1 > 100 AND c2 BETWEEN 5 AND 10;
//! SELECT c0, COUNT(*), AVG(c2) FROM t GROUP BY c0 ORDER BY c0 LIMIT 10;
//! SELECT * FROM t WHERE name LIKE 'ali%' OR id IN (1, 2, 3);
//! ```
//!
//! Pipeline: [`lexer`] → [`parser`] → [`ast`]. The parser is a plain
//! recursive-descent over a token slice, with precedence climbing for
//! binary operators. Errors carry byte positions for caret diagnostics.

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;

pub use ast::{AggFunc, BinOp, Expr, Literal, OrderKey, SelectItem, SelectStmt};
pub use error::ParseError;
pub use parser::parse_select;
