//! Integration tests for §3.3: on-the-fly statistics must actually change
//! planning decisions as queries accumulate, and never change results.

use nodb_repro::core::{NoDb, NoDbConfig};
use nodb_repro::prelude::*;

fn tmp_csv(tag: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("nodb_statsplan_{tag}_{}", std::process::id()));
    p
}

/// Build a file where c0 is highly selective for `< 10` (values 0..1000)
/// and c1 is not (constant 5), then check that the optimizer reorders the
/// conjuncts once statistics exist.
#[test]
fn observed_statistics_reorder_conjuncts() {
    let path = tmp_csv("reorder");
    let mut content = String::new();
    for i in 0..2000 {
        content.push_str(&format!("{},5\n", i % 1000));
    }
    std::fs::write(&path, &content).unwrap();

    let schema = Schema::new(vec![
        ColumnDef::new("c0", ColumnType::Int),
        ColumnDef::new("c1", ColumnType::Int),
    ]);
    let mut db = NoDb::new(NoDbConfig::default());
    db.register_csv_with_schema("t", &path, schema, false)
        .unwrap();

    // Written order puts the useless conjunct first. With no statistics,
    // both range conjuncts get the same default, so written order survives.
    let sql = "SELECT c0 FROM t WHERE c1 < 1000000 AND c0 < 10";
    db.query(sql).unwrap();
    let cold_plan = db.admin().last_report().unwrap().plan.clone();

    // Now statistics exist for both attributes: c0 < 10 is ~1%, c1 < 1e6 is
    // ~100%. The selective conjunct must sort first, shrinking the
    // estimated selectivity in the plan.
    db.query(sql).unwrap();
    let warm_plan = db.admin().last_report().unwrap().plan.clone();
    let sel_of = |plan: &str| -> f64 {
        plan.split("est_selectivity=")
            .nth(1)
            .and_then(|s| s.trim().parse::<f64>().ok())
            .unwrap_or(1.0)
    };
    assert!(
        sel_of(&warm_plan) < sel_of(&cold_plan),
        "statistics must sharpen the estimate: cold {cold_plan:?} vs warm {warm_plan:?}"
    );
    assert!(sel_of(&warm_plan) < 0.1, "warm estimate should be ~1%");
    std::fs::remove_file(path).unwrap();
}

/// Statistics sampling stride must not change answers.
#[test]
fn sampling_stride_is_result_transparent() {
    let path = tmp_csv("stride");
    let gen = GeneratorConfig::uniform_ints(4, 3000, 0x57a7);
    gen.generate_file(&path).unwrap();
    let sql = "SELECT COUNT(*), SUM(c2) FROM t WHERE c1 < 300000000 AND c3 > 100000000";

    let mut expect = None;
    for stride in [1u64, 7, 100] {
        let cfg = NoDbConfig {
            stats_sample_every: stride,
            ..NoDbConfig::default()
        };
        let mut db = NoDb::new(cfg);
        db.register_csv_with_schema("t", &path, gen.schema(), false)
            .unwrap();
        let r1 = db.query(sql).unwrap();
        let r2 = db.query(sql).unwrap();
        assert_eq!(r1, r2, "stride {stride} warm rerun");
        match &expect {
            None => expect = Some(r1),
            Some(e) => assert_eq!(&r1, e, "stride {stride} vs stride 1"),
        }
    }
    std::fs::remove_file(path).unwrap();
}

/// Statistics survive appends (they remain a sample of the prefix) and are
/// dropped on replacement — mirrored from update handling.
#[test]
fn statistics_follow_update_lifecycle() {
    let path = tmp_csv("lifecycle");
    let gen = GeneratorConfig::uniform_ints(3, 500, 0x11fe);
    gen.generate_file(&path).unwrap();
    let mut db = NoDb::new(NoDbConfig::default());
    db.register_csv_with_schema("t", &path, gen.schema(), false)
        .unwrap();
    db.query("SELECT c1 FROM t WHERE c1 > 0").unwrap();
    let covered = db.snapshot("t").unwrap().stats_attrs;
    assert_eq!(covered, vec![1]);

    // Append: stats stay.
    gen.append_rows(&path, 100).unwrap();
    db.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(db.snapshot("t").unwrap().stats_attrs, vec![1]);

    // Replace: stats dropped (until the next touch).
    GeneratorConfig::uniform_ints(3, 50, 0x22)
        .generate_file(&path)
        .unwrap();
    db.query("SELECT COUNT(*) FROM t").unwrap();
    assert!(db.snapshot("t").unwrap().stats_attrs.is_empty());
    std::fs::remove_file(path).unwrap();
}
