//! # nodb-rawcsv
//!
//! Raw CSV substrate for the NoDB reproduction.
//!
//! This crate owns everything that touches raw bytes of a CSV file:
//!
//! * [`schema`] — column types and table schemas;
//! * [`datum`] — the runtime value representation shared by the whole stack;
//! * [`tokenizer`] — delimiter scanning, including the paper's *selective
//!   tokenizing* (abort a tuple as soon as the required attributes have been
//!   located) and *resumable* tokenizing from a positional-map anchor;
//! * [`parser`] — *selective parsing*: byte-slice → [`datum::Datum`]
//!   conversion only for the attributes a query plan actually needs;
//! * [`reader`] — block-oriented sequential file scanning with I/O
//!   accounting;
//! * [`generator`] — deterministic synthetic CSV generation with the knobs
//!   the demo exposes (attribute count, attribute width, types, tuple count,
//!   value distributions);
//! * [`infer`] — schema inference from a file sample, so a user can point
//!   the system at a file with zero preparation.
//!
//! The tokenizer handles plain CSV (the paper's workload) on a fast SWAR
//! path and quoted fields on a slower, quote-aware path.

pub mod datum;
pub mod error;
pub mod generator;
pub mod infer;
pub mod parser;
pub mod reader;
pub mod schema;
pub mod tokenizer;

pub use datum::Datum;
pub use error::RawCsvError;
pub use generator::{ColumnGenSpec, GeneratorConfig, ValueDistribution};
pub use reader::{
    is_transient_io, BlockScanner, BlockSource, FaultPlan, FaultyBlocks, IoCounters, IoProfile,
    RawFileMeta, ReadaheadBlocks, RetryBlocks, SyncBlocks,
};
pub use schema::{ColumnDef, ColumnType, Schema};
pub use tokenizer::{FieldSpan, TokenizerConfig, Tokens};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, RawCsvError>;
