//! The per-partition scan worker of the parallel raw scan.
//!
//! One worker owns one [`LineRange`] of the file and everything it needs to
//! process it without synchronization: its own [`RangeScanner`] (with its
//! own read-ahead pipeline when `io_readahead_blocks > 0`), a reusable
//! [`Tokens`] buffer, a partial positional-map [`ChunkBuilder`], partial
//! cache columns ([`TypedColumn`] per requested attribute) and per-phase
//! timing. All shared state is borrowed immutably ([`ScanContext`]); the
//! mutable merge into the table's positional map, cache and statistics
//! happens on the driver thread afterwards (`rawscan`), in partition order,
//! so the post-scan state is identical to a sequential scan.
//!
//! The worker is deliberately a plain function over `Send + Sync` borrows —
//! no `Rc`/`RefCell` — so it can run under `std::thread::scope`.

#![doc = " lint:cancellable — every scan/batch loop in this module must poll the"]
#![doc = " query context (`ctx.check()`) or drive an interrupt-flagged `BlockSource`;"]
#![doc = " enforced by `nodb-lint` (see crates/lint/README.md)."]

use std::path::Path;
use std::time::Duration;

use nodb_engine::batch::{Batch, BATCH_SIZE};
use nodb_engine::{EngineError, EngineResult, ScanRequest};
use nodb_posmap::{AccessPlan, AttrSource, ChunkBuilder, PositionalMap};
use nodb_rawcache::{RawCache, TypedColumn};
use nodb_rawcsv::reader::{LineRange, RangeScanner};
use nodb_rawcsv::tokenizer::{find_byte, TokenizerConfig, Tokens};
use nodb_rawcsv::{parser, ColumnType, Datum, IoCounters, RawCsvError, Schema};

use crate::config::{NoDbConfig, ParseErrorPolicy};
use crate::ctx::{QueryCtx, CHECK_STRIDE};
use crate::metrics::{Breakdown, PhaseClock};
use crate::rawscan::QuarantineSample;

/// Test hook: make the next `run_partition` call panic, to exercise the
/// worker-boundary `catch_unwind` containment without a contrived schema.
#[cfg(test)]
pub(crate) static INJECT_WORKER_PANIC: std::sync::atomic::AtomicBool =
    std::sync::atomic::AtomicBool::new(false);

/// Convert a scanner error into the structured stop error when the query
/// context tripped mid-read: a cancelled refill surfaces as a wrapped "scan
/// interrupted" I/O error, and callers should see `Cancelled` /
/// `DeadlineExceeded` instead. (A real I/O error racing the stop flag is
/// reported as the cancellation — acceptable, since the query was being
/// abandoned either way.)
fn check_io<T>(qctx: &QueryCtx, r: nodb_rawcsv::Result<T>) -> EngineResult<T> {
    r.map_err(|e| {
        if qctx.is_stopped() {
            qctx.stop_error()
        } else {
            e.into()
        }
    })
}

/// Immutable scan-wide state shared by every worker.
///
/// `map`/`plan`/`cache` are populated whenever partition row bases are
/// known up front — *row-partitioned* (warm) mode, or cold byte-partitioned
/// mode after a newline pre-count — since per-row adaptive reads need
/// global row numbers (`cache` additionally requires the cache enabled,
/// `map`/`plan` an access plan that actually resolves something through a
/// chunk). In cold mode without a pre-count all three are `None` and
/// workers resolve everything from raw bytes (see `rawscan` module docs).
pub(crate) struct ScanContext<'a> {
    pub config: NoDbConfig,
    /// Per-query deadline/cancellation state, polled every [`CHECK_STRIDE`]
    /// rows and wired into each scanner's refill path as an interrupt flag.
    pub ctx: &'a QueryCtx,
    pub req: &'a ScanRequest,
    pub tokenizer: TokenizerConfig,
    pub schema: &'a Schema,
    pub path: &'a Path,
    pub map: Option<&'a PositionalMap>,
    pub plan: Option<&'a AccessPlan>,
    pub cache: Option<&'a RawCache>,
    /// Cache coverage per requested position at query start.
    pub cache_cov: &'a [usize],
    /// Buffer one value per row per requested attribute (needed whenever the
    /// cache or statistics will be merged after the scan).
    pub collect_side: bool,
    /// Collect per-row positional-map offsets into a partial chunk builder.
    pub build_chunk: bool,
    /// Record line-start offsets for the shared row index.
    pub collect_offsets: bool,
    /// The source epoch's torn-row fence (`None` when `detect_updates` is
    /// off): workers clamp their partition range to it and treat an EOF
    /// before it as a mid-scan truncation ([`EngineError::SourceChanged`]).
    pub source_len: Option<u64>,
}

/// The mid-scan mutation error, labeled with the backing path.
fn source_changed(ctx: &ScanContext<'_>) -> EngineError {
    EngineError::SourceChanged {
        table: ctx.path.display().to_string(),
    }
}

/// One partition of work.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Partition {
    pub range: LineRange,
    /// Partition 0 of a file with a header skips its first line.
    pub skip_header: bool,
    /// Global index of this partition's first data row, when known
    /// (row-partitioned mode, or cold mode after a newline pre-count);
    /// `None` in cold byte-partitioned mode without a pre-count.
    pub row_base: Option<usize>,
    /// Exact data-row count of the partition, when known (same sources as
    /// `row_base`). Together with `row_base` this enables the
    /// whole-partition cache probe: a partition fully covered by the cache
    /// for every requested attribute is served without opening the file.
    pub rows: Option<usize>,
}

/// Everything a worker hands back for the deterministic merge.
pub(crate) struct PartitionOutput {
    /// Data rows scanned in this partition.
    pub rows: usize,
    /// Line-start byte offsets, one per row (empty unless requested).
    pub line_starts: Vec<u64>,
    /// Per requested attribute: every row's value, in partition row order
    /// (empty unless `collect_side`).
    pub side_cols: Vec<TypedColumn>,
    /// Partial positional-map chunk over this partition's rows.
    pub builder: Option<ChunkBuilder>,
    /// Predicate-filtered output batches, in row order.
    pub batches: Vec<Batch>,
    /// Cache reads served / refused via `RawCache::peek` (workers cannot
    /// take `&mut` to count on the shared metrics; the driver folds these
    /// in at merge so hit/miss telemetry matches a sequential scan).
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub breakdown: Breakdown,
    pub io: IoCounters,
    /// Rows with at least one malformed cell tombstoned under
    /// [`ParseErrorPolicy::Permissive`] (0 under strict — strict aborts).
    pub quarantined: u64,
    /// Capped sample of quarantined rows for telemetry.
    pub quarantine_samples: Vec<QuarantineSample>,
}

/// Scan one partition to completion.
pub(crate) fn run_partition(
    ctx: &ScanContext<'_>,
    part: Partition,
) -> EngineResult<PartitionOutput> {
    #[cfg(test)]
    if INJECT_WORKER_PANIC.load(std::sync::atomic::Ordering::Relaxed) {
        panic!("injected worker panic (test hook)");
    }
    let n = ctx.req.attrs.len();
    let clock = PhaseClock::new(ctx.config.detailed_timing);
    let mut d_io = Duration::ZERO;
    let mut d_tok = Duration::ZERO;
    let mut d_parse = Duration::ZERO;
    let mut d_conv = Duration::ZERO;
    let mut d_nodb = Duration::ZERO;

    // Whole-partition cache probe: with the global row range known (warm
    // slices, or cold slices after a pre-count) and every requested
    // attribute cached for every row of it, the raw file has nothing left
    // to offer — serve the partition straight from the cache, zero I/O.
    // Skipped when the scan collects row offsets or a map chunk (those need
    // the raw line bytes), so the partition-local partials stay identical
    // to what the streaming loop would have produced.
    if let (Some(base), Some(rows), Some(cache)) = (part.row_base, part.rows, ctx.cache) {
        if !ctx.collect_offsets
            && !ctx.build_chunk
            && cache.covers_range(&ctx.req.attrs, base, base + rows)
        {
            return run_cached_partition(ctx, base, rows, cache, &clock);
        }
    }

    // Each partition worker gets its own read-ahead pipeline: with
    // `io_readahead_blocks > 0` a helper thread keeps the next blocks in
    // flight while this worker tokenizes the current one (`BlockSource` in
    // `nodb_rawcsv::reader`); `0` reads synchronously as before.
    // Clamp the partition to the epoch's torn-row fence: bytes past it
    // belong to the next epoch (a torn trailing row, a concurrent append).
    // This also resolves the warm last partition's `u64::MAX` run-to-EOF
    // sentinel to a hard edge, so an appender can never leak new-epoch rows
    // into a warm scan.
    let mut range = part.range;
    if let Some(fence) = ctx.source_len {
        range.end = range.end.min(fence);
    }
    let t = clock.start();
    let mut scanner = RangeScanner::open_with_profile(
        ctx.path,
        ctx.config.io_block_size,
        ctx.config.io_readahead_blocks,
        range,
        0,
        ctx.config.io_profile(),
    )?;
    scanner.set_interrupt(ctx.ctx.stop_flag());
    clock.lap(t, &mut d_io);

    let mut out = PartitionOutput {
        rows: 0,
        line_starts: Vec::new(),
        side_cols: if ctx.collect_side {
            ctx.req
                .attrs
                .iter()
                .map(|&a| TypedColumn::new(ctx.schema.ty(a)))
                .collect()
        } else {
            Vec::new()
        },
        builder: ctx
            .build_chunk
            .then(|| ChunkBuilder::new(ctx.req.attrs.clone())),
        batches: Vec::new(),
        cache_hits: 0,
        cache_misses: 0,
        breakdown: Breakdown::default(),
        io: IoCounters::default(),
        quarantined: 0,
        quarantine_samples: Vec::new(),
    };

    // Per-row reusable buffers (the sequential scan's workhorse pattern).
    let mut tokens = Tokens::new();
    let mut values: Vec<Option<Datum>> = vec![None; n];
    let mut spans: Vec<Option<(u32, u32)>> = vec![None; n];
    let mut offsets_buf: Vec<(usize, u32)> = Vec::with_capacity(n);
    let mut pred_row: Vec<Datum> = Vec::with_capacity(n);
    let mut line_buf: Vec<u8> = Vec::new();
    let mut batch = Batch::with_columns(n);

    // Will any row of this partition read the cache or jump via the map?
    let cache_reads = match (ctx.cache, part.row_base) {
        (Some(_), Some(base)) => ctx.cache_cov.iter().any(|&c| c > base),
        _ => false,
    };
    let map_reads = ctx.map.is_some() && ctx.plan.is_some() && part.row_base.is_some();
    // Resolve the cache columns once per partition; the per-row reads index
    // straight through the handles instead of re-probing the cache's map.
    let cache_cols: Vec<Option<&TypedColumn>> = match (ctx.cache, part.row_base) {
        (Some(cache), Some(_)) if cache_reads => {
            ctx.req.attrs.iter().map(|&a| cache.column(a)).collect()
        }
        _ => vec![None; n],
    };
    let upto = if ctx.config.selective_tokenizing {
        ctx.req.attrs.last().copied().unwrap_or(0)
    } else {
        usize::MAX
    };
    // Fused fast path: when no per-row adaptive reads can occur and the
    // tokenizer is plain, line splitting and tokenizing share one SWAR pass
    // (`find_byte2` — each prefix byte is visited once, not twice).
    let fused = ctx.tokenizer.quote.is_none() && !cache_reads && !map_reads;

    let mut header_pending = part.skip_header;
    let mut local = 0usize;
    loop {
        // Cooperative cancellation: one relaxed load + deadline compare per
        // CHECK_STRIDE rows, bounding stop latency without showing up in
        // per-row profiles.
        if (local as u64).is_multiple_of(CHECK_STRIDE) {
            ctx.ctx.check()?;
        }
        let t = clock.start();
        let line_meta: Option<u64> = if fused {
            match check_io(
                ctx.ctx,
                scanner.next_line_tokenized(ctx.tokenizer.delimiter, upto, &mut tokens),
            )? {
                Some(l) => {
                    line_buf.clear();
                    line_buf.extend_from_slice(l.bytes);
                    Some(l.offset)
                }
                None => None,
            }
        } else {
            match check_io(ctx.ctx, scanner.next_line())? {
                Some(l) => {
                    line_buf.clear();
                    line_buf.extend_from_slice(l.bytes);
                    Some(l.offset)
                }
                None => None,
            }
        };
        // The fused pass does the tokenizing work inside the line fetch, so
        // its time lands in the tokenizing slice; the plain path's fetch is
        // pure I/O + newline discovery, as in the sequential scan.
        clock.lap(t, if fused { &mut d_tok } else { &mut d_io });
        // Mid-scan truncation detection, gated on the fence so legacy mode
        // (`detect_updates` off) stays byte-identical. Both probes are
        // needed: a cut mid-line surfaces a bogus final unterminated line
        // *before* `None` (catch it before parsing garbage); a cut exactly
        // on a newline boundary is only discovered by the empty refill
        // after the last complete line (the `None` arm).
        if ctx.source_len.is_some() && scanner.ended_short() {
            return Err(source_changed(ctx));
        }
        let Some(offset) = line_meta else { break };
        if header_pending {
            header_pending = false;
            continue;
        }
        if ctx.collect_offsets {
            out.line_starts.push(offset);
        }

        let quarantined_attr = resolve_row(
            ctx,
            part.row_base.map(|b| b + local),
            local,
            &line_buf,
            &mut tokens,
            fused,
            &cache_cols,
            &mut values,
            &mut spans,
            (&mut out.cache_hits, &mut out.cache_misses),
            &clock,
            &mut d_tok,
            &mut d_parse,
            &mut d_conv,
        )?;
        if let Some(attr) = quarantined_attr {
            out.quarantined += 1;
            if out.quarantine_samples.len() < QuarantineSample::MAX_SAMPLES {
                out.quarantine_samples.push(QuarantineSample {
                    row: part.row_base.map(|b| b + local).unwrap_or(local) as u64,
                    offset,
                    attr,
                });
            }
        }

        // Side effects into partition-local partials.
        {
            let t = clock.start();
            if ctx.collect_side {
                for (col, v) in out.side_cols.iter_mut().zip(&values) {
                    match v {
                        Some(d) => col.push(d),
                        None => col.push(&Datum::Null),
                    }
                }
            }
            if let Some(b) = &mut out.builder {
                offsets_buf.clear();
                for (&attr, span) in ctx.req.attrs.iter().zip(&spans) {
                    if let Some((s, _)) = span {
                        offsets_buf.push((attr, *s));
                    }
                }
                b.push_row_offsets(&offsets_buf);
            }
            clock.lap(t, &mut d_nodb);
        }

        // Selective tuple formation (the exact code the sequential scan and
        // the cached streamer run).
        crate::rawscan::form_tuple_into(ctx.req, &mut values, &mut pred_row, &mut batch);
        if batch.rows() >= BATCH_SIZE {
            out.batches
                .push(std::mem::replace(&mut batch, Batch::with_columns(n)));
        }
        local += 1;
    }

    if !batch.is_empty() {
        out.batches.push(batch);
    }
    out.rows = local;
    out.io = scanner.take_counters();
    out.breakdown.io = d_io;
    out.breakdown.tokenizing = d_tok;
    out.breakdown.parsing = d_parse;
    out.breakdown.convert = d_conv;
    out.breakdown.nodb = d_nodb;
    Ok(out)
}

/// Serve one fully-cached partition without touching the raw file: every
/// value comes from the cache columns, side columns replay the same values
/// (so a later merge under shrunk coverage re-admits real data, never
/// placeholders), and tuple formation is the shared `form_tuple_into` —
/// or, with `vectorized_exec`, the typed-segment path
/// (`rawscan::cached_segment_batch`): columnar predicate, selection vector,
/// side columns exported as whole typed segments. The output rows are
/// exactly what the streaming loop would have produced — minus the I/O.
fn run_cached_partition(
    ctx: &ScanContext<'_>,
    base: usize,
    rows: usize,
    cache: &RawCache,
    clock: &PhaseClock,
) -> EngineResult<PartitionOutput> {
    let n = ctx.req.attrs.len();
    let mut d_nodb = Duration::ZERO;
    let cols: Vec<&TypedColumn> = ctx
        .req
        .attrs
        .iter()
        .map(|&a| cache.column(a).expect("covers_range probed"))
        .collect();
    let mut out = PartitionOutput {
        rows,
        line_starts: Vec::new(),
        side_cols: Vec::new(),
        builder: None,
        batches: Vec::new(),
        cache_hits: 0,
        cache_misses: 0,
        breakdown: Breakdown::default(),
        io: IoCounters::default(),
        quarantined: 0,
        quarantine_samples: Vec::new(),
    };
    if ctx.config.vectorized_exec {
        if ctx.collect_side {
            let t = clock.start();
            out.side_cols = cols
                .iter()
                .map(|c| c.export_range(base, base + rows))
                .collect();
            clock.lap(t, &mut d_nodb);
        }
        let mut lo = base;
        while lo < base + rows {
            let hi = (base + rows).min(lo + BATCH_SIZE);
            let batch = crate::rawscan::cached_segment_batch(ctx.req, &cols, lo, hi);
            if !batch.is_empty() {
                out.batches.push(batch);
            }
            lo = hi;
        }
        out.cache_hits = (rows * n) as u64;
        out.breakdown.nodb = d_nodb;
        return Ok(out);
    }
    if ctx.collect_side {
        out.side_cols = ctx
            .req
            .attrs
            .iter()
            .map(|&a| TypedColumn::new(ctx.schema.ty(a)))
            .collect();
    }
    let mut values: Vec<Option<Datum>> = vec![None; n];
    let mut pred_row: Vec<Datum> = Vec::with_capacity(n);
    let mut batch = Batch::with_columns(n);
    for row in base..base + rows {
        for (v, col) in values.iter_mut().zip(&cols) {
            *v = col.datum(row);
            debug_assert!(v.is_some(), "covered row {row} missing from cache");
            out.cache_hits += 1;
        }
        {
            let t = clock.start();
            if ctx.collect_side {
                for (col, v) in out.side_cols.iter_mut().zip(&values) {
                    match v {
                        Some(d) => col.push(d),
                        None => col.push(&Datum::Null),
                    }
                }
            }
            clock.lap(t, &mut d_nodb);
        }
        crate::rawscan::form_tuple_into(ctx.req, &mut values, &mut pred_row, &mut batch);
        if batch.rows() >= BATCH_SIZE {
            out.batches
                .push(std::mem::replace(&mut batch, Batch::with_columns(n)));
        }
    }
    if !batch.is_empty() {
        out.batches.push(batch);
    }
    out.breakdown.nodb = d_nodb;
    Ok(out)
}

/// Resolve every requested position of one row: cache reads and exact
/// positional-map jumps (warm mode), then tokenizing for the rest, then
/// selective parsing. Mirrors the sequential scan's `resolve_row` with the
/// shared state behind immutable borrows.
///
/// Returns `Some(attr)` when [`ParseErrorPolicy::Permissive`] tombstoned at
/// least one malformed cell (the first offending attribute, for the
/// telemetry sample); `None` for a clean row.
#[allow(clippy::too_many_arguments)]
fn resolve_row(
    ctx: &ScanContext<'_>,
    global_row: Option<usize>,
    local_row: usize,
    line: &[u8],
    tokens: &mut Tokens,
    fused: bool,
    cache_cols: &[Option<&TypedColumn>],
    values: &mut [Option<Datum>],
    spans: &mut [Option<(u32, u32)>],
    (cache_hits, cache_misses): (&mut u64, &mut u64),
    clock: &PhaseClock,
    d_tok: &mut Duration,
    d_parse: &mut Duration,
    d_conv: &mut Duration,
) -> EngineResult<Option<usize>> {
    let n = ctx.req.attrs.len();
    for i in 0..n {
        values[i] = None;
        spans[i] = None;
    }

    // 1. Cache reads (global rows addressable: warm mode, or cold mode
    // after a pre-count). Workers cannot count on the shared metrics, so
    // hits/misses are tallied here and folded in by the driver — same
    // accounting as sequential `get`.
    if let Some(row) = global_row {
        for (i, v) in values.iter_mut().enumerate() {
            if row < ctx.cache_cov[i] {
                *v = cache_cols[i].and_then(|c| c.datum(row));
                match v {
                    Some(_) => *cache_hits += 1,
                    None => *cache_misses += 1,
                }
            }
        }
    }

    // 2. Exact positional-map jumps for positions the cache missed.
    let mut missing_lo: Option<usize> = None;
    let mut missing_hi: Option<usize> = None;
    for i in 0..n {
        if values[i].is_some() {
            continue;
        }
        if let (Some(plan), Some(map), Some(row)) = (ctx.plan, ctx.map, global_row) {
            if let Some(AttrSource::Exact { chunk }) = plan.source_for(ctx.req.attrs[i]) {
                if let Some(off) = map.offset_in(chunk, ctx.req.attrs[i], row) {
                    let t = clock.start();
                    let start = (off as usize).min(line.len());
                    let end = find_byte(&line[start..], ctx.tokenizer.delimiter)
                        .map(|p| start + p)
                        .unwrap_or(line.len());
                    spans[i] = Some((start as u32, end as u32));
                    clock.lap(t, d_parse);
                    continue;
                }
            }
        }
        missing_lo = missing_lo.or(Some(i));
        missing_hi = Some(i);
    }

    // 3. Tokenize for the positions still missing. On the fused path the
    // spans were already produced during line splitting; otherwise run the
    // sequential scan's selective/resumable tokenizing.
    if let (Some(lo), Some(hi)) = (missing_lo, missing_hi) {
        if !fused {
            let t = clock.start();
            let first_attr = ctx.req.attrs[lo];
            let last_attr = ctx.req.attrs[hi];
            let upto = if ctx.config.selective_tokenizing {
                last_attr
            } else {
                usize::MAX
            };
            // Best anchor: the largest attribute < first_attr already
            // resolved this row, else the plan's anchor chunk.
            let mut anchor: Option<(usize, usize)> = None;
            for i in (0..lo).rev() {
                if let Some((s, _)) = spans[i] {
                    anchor = Some((ctx.req.attrs[i], s as usize));
                    break;
                }
            }
            if anchor.is_none() {
                if let (Some(plan), Some(map), Some(row)) = (ctx.plan, ctx.map, global_row) {
                    if let Some(AttrSource::Anchor { chunk, anchor_attr }) =
                        plan.source_for(first_attr)
                    {
                        if let Some(off) = map.offset_in(chunk, anchor_attr, row) {
                            anchor = Some((anchor_attr, off as usize));
                        }
                    }
                }
            }
            match anchor {
                Some((attr, off)) if ctx.config.selective_tokenizing && off <= line.len() => {
                    ctx.tokenizer.tokenize_from(line, attr, off, upto, tokens);
                }
                _ => {
                    ctx.tokenizer.tokenize_selective(line, upto, tokens);
                }
            }
            clock.lap(t, d_tok);
        }
        for i in lo..=hi {
            if values[i].is_some() || spans[i].is_some() {
                continue;
            }
            if let Some(span) = tokens.get(ctx.req.attrs[i]) {
                spans[i] = Some((span.start, span.end));
            }
        }
    }

    // 4. Selective parsing: convert only what is needed.
    let t = clock.start();
    let err_row = global_row.unwrap_or(local_row) as u64;
    let mut quarantined: Option<usize> = None;
    for i in 0..n {
        if values[i].is_some() {
            continue;
        }
        let attr = ctx.req.attrs[i];
        let ty = ctx.schema.ty(attr);
        let d = match spans[i] {
            Some((s, e)) => {
                let raw = &line[s as usize..e as usize];
                match ctx.tokenizer.quote {
                    // Quoted string fields keep `""` escapes in their spans;
                    // unescape when materializing.
                    Some(q) if ty == ColumnType::Str && raw.contains(&q) => {
                        Datum::Str(parser::unescape_quoted(raw, q).into_boxed_str())
                    }
                    _ => match parser::parse_field(raw, ty, err_row, attr) {
                        Ok(d) => d,
                        // Permissive policy: tombstone the malformed cell
                        // exactly like a short row's absent attribute, so
                        // cache/stats/map stay byte-identical across runs.
                        Err(RawCsvError::ParseField { .. })
                            if ctx.config.parse_errors == ParseErrorPolicy::Permissive =>
                        {
                            quarantined.get_or_insert(attr);
                            Datum::Null
                        }
                        Err(e) => return Err(e.into()),
                    },
                }
            }
            // Short row: attribute absent → NULL.
            None => Datum::Null,
        };
        values[i] = Some(d);
    }
    clock.lap(t, d_conv);
    Ok(quarantined)
}
