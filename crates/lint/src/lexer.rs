//! A minimal hand-rolled Rust lexer — just enough fidelity for invariant
//! linting, with no external parser dependencies (the workspace builds
//! offline; see the shims note in the root `Cargo.toml`).
//!
//! The lexer's one job is to separate *code* from *non-code* so the rules in
//! [`crate::rules`] never fire on the contents of a string literal or a
//! comment (and, conversely, so waiver comments are recognized even when the
//! same bytes appear inside a string in this crate's own source). It
//! understands:
//!
//! - line comments (`//`, `///`, `//!`) and *nested* block comments
//!   (`/* /* */ */`, `/** */`, `/*! */`), emitted as [`Comment`]s;
//! - string, byte-string, C-string, and raw-string literals (`"…"`, `b"…"`,
//!   `c"…"`, `r"…"`, `r#"…"#`, `br##"…"##`) including escapes and embedded
//!   newlines;
//! - char and byte-char literals vs. lifetimes (`'a'` vs. `'a`), and raw
//!   identifiers (`r#type`);
//! - identifiers, numbers, and single-byte punctuation.
//!
//! Multi-character operators are deliberately emitted as single-byte
//! punctuation tokens (`::` is two `:` tokens): no rule needs them joined,
//! and keeping the token model trivial keeps the lexer auditable.

/// What a [`Tok`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `loop`, `unwrap`, …).
    Ident,
    /// `'a` — distinguished from char literals so `'a'` never lexes as two.
    Lifetime,
    /// Numeric literal (suffix included: `0u64`, `0xFF`).
    Number,
    /// Any string-like literal; the quoted content is dropped.
    Str,
    /// Char or byte-char literal.
    Char,
    /// One byte of punctuation.
    Punct,
}

/// One token with the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

/// One comment (text after `//` / between `/* */`), with its start line.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: u32,
    /// `//!` or `/*! … */` — an inner doc comment attaching to the module.
    pub inner: bool,
}

/// The lexed form of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_cont(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

struct Cursor<'a> {
    b: &'a [u8],
    i: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> u8 {
        *self.b.get(self.i + ahead).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.b[self.i];
        self.i += 1;
        if c == b'\n' {
            self.line += 1;
        }
        c
    }

    fn eat_ident(&mut self) -> String {
        let start = self.i;
        while self.i < self.b.len() && is_ident_cont(self.b[self.i]) {
            self.i += 1;
        }
        String::from_utf8_lossy(&self.b[start..self.i]).into_owned()
    }

    /// Consume a quoted string body starting *after* the opening `"`.
    fn eat_str_body(&mut self) {
        while self.i < self.b.len() {
            match self.bump() {
                b'\\' if self.i < self.b.len() => {
                    self.bump();
                }
                b'"' => return,
                _ => {}
            }
        }
    }

    /// Consume a raw-string body: `self.i` sits after `r`/`br`/`cr`, at the
    /// first `#` or `"`. Returns false if this is not a raw string opener
    /// (e.g. a raw identifier `r#type`).
    fn eat_raw_str(&mut self) -> bool {
        let mut hashes = 0usize;
        while self.peek(hashes) == b'#' {
            hashes += 1;
        }
        if self.peek(hashes) != b'"' {
            return false;
        }
        for _ in 0..=hashes {
            self.bump(); // the hashes and the opening quote
        }
        // Scan for `"` followed by `hashes` hashes.
        while self.i < self.b.len() {
            if self.bump() == b'"' {
                let mut k = 0;
                while k < hashes && self.peek(k) == b'#' {
                    k += 1;
                }
                if k == hashes {
                    for _ in 0..hashes {
                        self.bump();
                    }
                    return true;
                }
            }
        }
        true
    }
}

/// Lex one file. Never fails: unknown bytes become punctuation, unterminated
/// literals run to end of file — for linting, graceful degradation beats
/// erroring out on the one file that uses a syntax corner the lexer missed.
pub fn lex(src: &str) -> Lexed {
    let mut c = Cursor {
        b: src.as_bytes(),
        i: 0,
        line: 1,
    };
    let mut out = Lexed::default();

    while c.i < c.b.len() {
        let line = c.line;
        let ch = c.peek(0);

        // Whitespace.
        if ch.is_ascii_whitespace() {
            c.bump();
            continue;
        }

        // Comments.
        if ch == b'/' && c.peek(1) == b'/' {
            c.bump();
            c.bump();
            let inner = c.peek(0) == b'!';
            let start = c.i;
            while c.i < c.b.len() && c.peek(0) != b'\n' {
                c.bump();
            }
            out.comments.push(Comment {
                text: String::from_utf8_lossy(&c.b[start..c.i]).into_owned(),
                line,
                inner,
            });
            continue;
        }
        if ch == b'/' && c.peek(1) == b'*' {
            c.bump();
            c.bump();
            let inner = c.peek(0) == b'!';
            let start = c.i;
            let mut depth = 1usize;
            while c.i < c.b.len() && depth > 0 {
                if c.peek(0) == b'/' && c.peek(1) == b'*' {
                    depth += 1;
                    c.bump();
                    c.bump();
                } else if c.peek(0) == b'*' && c.peek(1) == b'/' {
                    depth -= 1;
                    c.bump();
                    c.bump();
                } else {
                    c.bump();
                }
            }
            let end = c.i.saturating_sub(2).max(start);
            out.comments.push(Comment {
                text: String::from_utf8_lossy(&c.b[start..end]).into_owned(),
                line,
                inner,
            });
            continue;
        }

        // Lifetimes and char literals.
        if ch == b'\'' {
            c.bump();
            if c.peek(0) == b'\\' {
                // Escaped char literal: '\n', '\'', '\u{..}'.
                c.bump();
                c.bump();
                while c.i < c.b.len() && c.peek(0) != b'\'' {
                    c.bump();
                }
                if c.i < c.b.len() {
                    c.bump();
                }
                out.toks.push(Tok {
                    kind: TokKind::Char,
                    text: String::new(),
                    line,
                });
            } else if is_ident_start(c.peek(0)) && c.peek(1) != b'\'' {
                // 'static, 'a — a lifetime (or a loop label).
                let name = c.eat_ident();
                out.toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: name,
                    line,
                });
            } else {
                // 'x' — plain char literal (or a stray quote; consume it).
                c.bump();
                if c.peek(0) == b'\'' {
                    c.bump();
                }
                out.toks.push(Tok {
                    kind: TokKind::Char,
                    text: String::new(),
                    line,
                });
            }
            continue;
        }

        // String-literal prefixes and identifiers.
        if is_ident_start(ch) {
            let mark = c.i;
            let ident = c.eat_ident();
            let next = c.peek(0);
            let is_str_prefix = matches!(ident.as_str(), "r" | "b" | "br" | "c" | "cr");
            if is_str_prefix && (next == b'"' || next == b'#') {
                if next == b'"' {
                    c.bump();
                    if ident == "r" || ident == "br" || ident == "cr" {
                        // r"..." raw with zero hashes: no escapes, scan to ".
                        while c.i < c.b.len() && c.bump() != b'"' {}
                    } else {
                        c.eat_str_body();
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Str,
                        text: String::new(),
                        line,
                    });
                    continue;
                }
                // `r#`: raw string `r#"…"#` or raw identifier `r#type`.
                if c.eat_raw_str() {
                    out.toks.push(Tok {
                        kind: TokKind::Str,
                        text: String::new(),
                        line,
                    });
                    continue;
                }
                // Raw identifier: rewind to after `r`, skip the `#`, lex it.
                c.i = mark + ident.len();
                c.bump(); // '#'
                let name = c.eat_ident();
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: name,
                    line,
                });
                continue;
            }
            if ident == "b" && next == b'\'' {
                // Byte-char literal b'x' / b'\n'.
                c.bump();
                if c.peek(0) == b'\\' {
                    c.bump();
                }
                c.bump();
                if c.peek(0) == b'\'' {
                    c.bump();
                }
                out.toks.push(Tok {
                    kind: TokKind::Char,
                    text: String::new(),
                    line,
                });
                continue;
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text: ident,
                line,
            });
            continue;
        }

        // Plain string literal.
        if ch == b'"' {
            c.bump();
            c.eat_str_body();
            out.toks.push(Tok {
                kind: TokKind::Str,
                text: String::new(),
                line,
            });
            continue;
        }

        // Numbers. Dots are never consumed (so `0..n` and `1.5` both lex as
        // number / puncts / number — no rule cares about float values).
        if ch.is_ascii_digit() {
            let start = c.i;
            while c.i < c.b.len() && (is_ident_cont(c.peek(0))) {
                c.bump();
            }
            out.toks.push(Tok {
                kind: TokKind::Number,
                text: String::from_utf8_lossy(&c.b[start..c.i]).into_owned(),
                line,
            });
            continue;
        }

        // Everything else: one byte of punctuation.
        c.bump();
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: (ch as char).to_string(),
            line,
        });
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_code() {
        let src = r##"
            // a .lock().unwrap() in a comment
            /* and /* nested */ here too: unsafe */
            let s = "unsafe .lock().unwrap()";
            let r = r#"panic!("no")"#;
            real_ident();
        "##;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "s", "let", "r", "real_ident"]);
        let l = lex(src);
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].text.contains("lock"));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        let chars: Vec<_> = l.toks.iter().filter(|t| t.kind == TokKind::Char).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn raw_identifiers_and_byte_strings() {
        let ids = idents("let r#type = b\"bytes\"; br#\"raw\"#; r#match");
        assert!(ids.contains(&"type".to_string()));
        assert!(ids.contains(&"match".to_string()));
        let strs = lex("b\"x\" br#\"y\"# c\"z\" r\"w\"")
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .count();
        assert_eq!(strs, 4);
    }

    #[test]
    fn line_numbers_track_multiline_constructs() {
        let src = "let a = \"two\nlines\";\nb();\n/* c\nd */\ne();";
        let l = lex(src);
        let b = l.toks.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 3);
        let e = l.toks.iter().find(|t| t.text == "e").unwrap();
        assert_eq!(e.line, 6);
    }
}
