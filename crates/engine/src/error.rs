//! Engine error type.

use std::fmt;

use nodb_rawcsv::RawCsvError;
use nodb_sqlparse::ParseError;

/// Errors raised while planning or executing a query.
#[derive(Debug)]
pub enum EngineError {
    /// SQL text failed to parse.
    Parse(ParseError),
    /// Name resolution / semantic analysis failure.
    Planning(String),
    /// Runtime failure inside an operator.
    Execution(String),
    /// Raw-file access failure surfaced by a scan source.
    Csv(RawCsvError),
    /// Referenced table is not registered.
    UnknownTable(String),
    /// The query was cancelled through its `QueryCtx` cancel token. Any
    /// adaptive state completed before the stop is still installed (the
    /// NoDB promise applied to failure paths); only the result is dropped.
    Cancelled,
    /// The query ran past its `QueryCtx` deadline
    /// (`NoDbConfig::query_timeout_ms`). Like [`Self::Cancelled`], partial
    /// adaptive state survives so the retry starts warmer.
    DeadlineExceeded,
    /// The admission queue in front of the shared scan-thread budget is
    /// full: the query was rejected *before* touching any table state, the
    /// serving layer's back-pressure signal. Retrying after a short delay
    /// is safe and is what clients are expected to do.
    Overloaded {
        /// Queries already waiting for scan-thread permits at rejection.
        waiting: usize,
    },
    /// The raw source file was truncated, rewritten, or replaced by an
    /// external writer while (or since) the query's source epoch was
    /// captured, so the bytes on disk no longer match the epoch every
    /// adaptive structure is keyed to. No results derived from the stale
    /// epoch are returned and no partial state from the doomed scan is
    /// merged; the facade reacts by quarantining the table's map / cache /
    /// statistics and retrying once with a cold rescan
    /// (`NoDbConfig::source_change_retries`), so callers normally never
    /// see this variant unless the file keeps churning.
    SourceChanged {
        /// Table whose backing file changed under the scan.
        table: String,
    },
    /// A scan worker panicked. The panic is contained at the worker
    /// boundary (`catch_unwind`), so the table stays usable; the payload
    /// and the partition that blew up travel with the error.
    WorkerPanic {
        /// Partition-slice index the panicking worker was executing.
        partition: usize,
        /// Stringified panic payload (`&str`/`String` payloads verbatim).
        message: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "{e}"),
            EngineError::Planning(m) => write!(f, "planning error: {m}"),
            EngineError::Execution(m) => write!(f, "execution error: {m}"),
            EngineError::Csv(e) => write!(f, "raw data error: {e}"),
            EngineError::UnknownTable(t) => write!(f, "unknown table {t:?}"),
            EngineError::Cancelled => write!(f, "query cancelled"),
            EngineError::DeadlineExceeded => write!(f, "query deadline exceeded"),
            EngineError::Overloaded { waiting } => {
                write!(
                    f,
                    "server overloaded ({waiting} queries queued); retry later"
                )
            }
            EngineError::SourceChanged { table } => {
                write!(
                    f,
                    "source file of table {table:?} changed under the scan; \
                     adaptive state quarantined, retry the query"
                )
            }
            EngineError::WorkerPanic { partition, message } => {
                write!(f, "scan worker panicked (partition {partition}): {message}")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Parse(e) => Some(e),
            EngineError::Csv(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for EngineError {
    fn from(e: ParseError) -> Self {
        EngineError::Parse(e)
    }
}

impl From<RawCsvError> for EngineError {
    fn from(e: RawCsvError) -> Self {
        EngineError::Csv(e)
    }
}

/// Result alias for the engine.
pub type EngineResult<T> = Result<T, EngineError>;
