//! Clean under `poison-lock`: every acquisition routes through the recovery
//! shim, lives in test code, or is not a zero-argument lock acquisition.

use std::io::Read;
use std::sync::{Mutex, MutexGuard, PoisonError};

fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // lint: lock-ok the recovery shim itself
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn routed(m: &Mutex<u32>) -> u32 {
    *lock_recover(m)
}

fn io_read_is_not_a_lock(mut f: std::fs::File, buf: &mut [u8]) -> usize {
    // `.read(&mut buf)` takes an argument — not a lock acquisition. The
    // unwrap itself is the no-unwrap rule's business, not this rule's.
    f.read(buf).unwrap()
}

// A comment mentioning .lock().unwrap() is not code.
const DOC: &str = "calling .lock().unwrap() is forbidden";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_unwrap_locks() {
        let m = Mutex::new(1u32);
        assert_eq!(*m.lock().unwrap(), 1);
    }
}
