//! Budget and combination-indexing policy.
//!
//! Two decisions live here:
//!
//! 1. *Admission/eviction*: the map has a byte budget; installing a new chunk
//!    evicts least-recently-used chunks until it fits (§3.1 "dropped by the
//!    LRU policy").
//! 2. *Combination trigger*: when a query's requested attributes are already
//!    covered but scattered over several chunks, is re-indexing them as one
//!    new combination worth it? The paper's default: "if all requested
//!    attributes for a query belong in different chunks, then the new
//!    combination is indexed."

/// When to index a *new combination* chunk for a query whose attributes are
/// already covered by existing chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CombinationTrigger {
    /// Paper default: index the combination when every requested attribute
    /// lives in a *different* chunk (and more than one attribute is asked).
    AllDifferentChunks,
    /// Index when the requested attributes span at least `k` distinct chunks.
    SpreadAtLeast(usize),
    /// Always re-index the exact combination (aggressive, memory-hungry).
    Always,
    /// Never index new combinations; only uncovered attributes get chunks.
    Never,
}

impl CombinationTrigger {
    /// Decide given `requested` attribute count and the number of distinct
    /// chunks those attributes currently resolve to.
    ///
    /// Only consulted when *all* requested attributes are covered; uncovered
    /// attributes force indexing regardless of the trigger.
    pub fn fires(self, requested: usize, distinct_chunks: usize) -> bool {
        match self {
            CombinationTrigger::AllDifferentChunks => requested > 1 && distinct_chunks == requested,
            CombinationTrigger::SpreadAtLeast(k) => requested > 1 && distinct_chunks >= k,
            CombinationTrigger::Always => true,
            CombinationTrigger::Never => false,
        }
    }
}

/// Positional-map policy knobs (the demo's "specify the amount of storage
/// space which is devoted to internal indexes").
#[derive(Debug, Clone, Copy)]
pub struct MapPolicy {
    /// Byte budget for chunk storage. The shared row index (8 bytes/row) is
    /// reported but exempt: without it no jumping is possible at all.
    pub budget_bytes: usize,
    /// Combination-indexing trigger.
    pub trigger: CombinationTrigger,
}

impl Default for MapPolicy {
    fn default() -> Self {
        MapPolicy {
            budget_bytes: 256 << 20, // 256 MiB: effectively unbounded on demo data
            trigger: CombinationTrigger::AllDifferentChunks,
        }
    }
}

impl MapPolicy {
    /// Policy with a specific budget and the paper-default trigger.
    pub fn with_budget(budget_bytes: usize) -> Self {
        MapPolicy {
            budget_bytes,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_different_fires_only_when_fully_scattered() {
        let t = CombinationTrigger::AllDifferentChunks;
        assert!(t.fires(3, 3));
        assert!(!t.fires(3, 2));
        assert!(!t.fires(1, 1)); // single attribute: nothing to combine
    }

    #[test]
    fn spread_threshold() {
        let t = CombinationTrigger::SpreadAtLeast(2);
        assert!(t.fires(3, 2));
        assert!(!t.fires(3, 1));
        assert!(!t.fires(1, 1));
    }

    #[test]
    fn always_and_never() {
        assert!(CombinationTrigger::Always.fires(1, 1));
        assert!(!CombinationTrigger::Never.fires(10, 10));
    }

    #[test]
    fn default_policy_is_paper_default() {
        let p = MapPolicy::default();
        assert_eq!(p.trigger, CombinationTrigger::AllDifferentChunks);
        assert!(p.budget_bytes > 0);
    }
}
