//! Equi-depth histograms over a sample.
//!
//! Built lazily from the per-attribute reservoir: each bucket holds the same
//! number of sampled values, so `fraction ≤ v` is read off by locating `v`'s
//! bucket. Works over any datum type via the total ordering (numeric in
//! practice; strings order lexicographically, the same semantics as the
//! engine's comparisons).

use nodb_rawcsv::Datum;

/// Equi-depth histogram: `bounds[i]` is the upper bound of bucket `i`;
/// every bucket holds ~`1/bounds.len()` of the distribution.
#[derive(Debug, Clone)]
pub struct EquiDepthHistogram {
    bounds: Vec<Datum>,
    /// Smallest sampled value (lower bound of bucket 0).
    lo: Datum,
}

impl EquiDepthHistogram {
    /// Build from a sample (unordered, non-null values) with at most
    /// `buckets` buckets. Returns `None` for an empty sample.
    pub fn build(sample: &[Datum], buckets: usize) -> Option<Self> {
        if sample.is_empty() {
            return None;
        }
        let mut sorted: Vec<Datum> = sample.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let n = sorted.len();
        let b = buckets.clamp(1, n);
        let mut bounds = Vec::with_capacity(b);
        for i in 1..=b {
            // Upper bound of bucket i-1 = value at the i/b quantile.
            let idx = (i * n).div_ceil(b) - 1;
            bounds.push(sorted[idx.min(n - 1)].clone());
        }
        let lo = sorted[0].clone();
        Some(EquiDepthHistogram { bounds, lo })
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.bounds.len()
    }

    /// Estimated fraction of the distribution that is `<= v`, in `[0, 1]`.
    ///
    /// Uses bucket position plus linear interpolation within the bucket for
    /// numeric values.
    pub fn fraction_le(&self, v: &Datum) -> f64 {
        let b = self.bounds.len() as f64;
        if v.total_cmp(&self.lo) == std::cmp::Ordering::Less {
            return 0.0;
        }
        // Buckets whose upper bound is <= v are fully covered.
        let idx = self
            .bounds
            .partition_point(|ub| ub.total_cmp(v) != std::cmp::Ordering::Greater);
        if idx >= self.bounds.len() {
            return 1.0;
        }
        let full = idx as f64 / b;
        // Interpolate inside bucket `idx` (whose upper bound exceeds v) when
        // numeric; otherwise split the difference.
        let bucket_lo = if idx == 0 {
            &self.lo
        } else {
            &self.bounds[idx - 1]
        };
        let bucket_hi = &self.bounds[idx];
        let frac_in_bucket = match (bucket_lo.as_float(), bucket_hi.as_float(), v.as_float()) {
            (Some(lo), Some(hi), Some(x)) if hi > lo => ((x - lo) / (hi - lo)).clamp(0.0, 1.0),
            _ => 0.5,
        };
        (full + frac_in_bucket / b).clamp(0.0, 1.0)
    }

    /// Estimated fraction strictly inside `[lo, hi]`.
    pub fn fraction_between(&self, lo: &Datum, hi: &Datum) -> f64 {
        (self.fraction_le(hi) - self.fraction_le(lo)).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_sample(n: i64) -> Vec<Datum> {
        (0..n).map(Datum::Int).collect()
    }

    #[test]
    fn empty_sample_builds_nothing() {
        assert!(EquiDepthHistogram::build(&[], 8).is_none());
    }

    #[test]
    fn uniform_fractions_are_linear() {
        let h = EquiDepthHistogram::build(&uniform_sample(1000), 20).unwrap();
        for (v, expect) in [(0i64, 0.0), (250, 0.25), (500, 0.5), (999, 1.0)] {
            let f = h.fraction_le(&Datum::Int(v));
            assert!((f - expect).abs() < 0.06, "le({v}) = {f}, expect ~{expect}");
        }
    }

    #[test]
    fn below_min_is_zero_above_max_is_one() {
        let h = EquiDepthHistogram::build(&uniform_sample(100), 10).unwrap();
        assert_eq!(h.fraction_le(&Datum::Int(-5)), 0.0);
        assert_eq!(h.fraction_le(&Datum::Int(1000)), 1.0);
    }

    #[test]
    fn between_matches_difference() {
        let h = EquiDepthHistogram::build(&uniform_sample(1000), 20).unwrap();
        let f = h.fraction_between(&Datum::Int(200), &Datum::Int(400));
        assert!((f - 0.2).abs() < 0.08, "between = {f}");
    }

    #[test]
    fn skewed_sample_shifts_buckets() {
        // 90% of mass at value 0.
        let mut s: Vec<Datum> = std::iter::repeat_with(|| Datum::Int(0)).take(900).collect();
        s.extend((1..=100).map(Datum::Int));
        let h = EquiDepthHistogram::build(&s, 10).unwrap();
        let f = h.fraction_le(&Datum::Int(0));
        assert!(f >= 0.85, "le(0) = {f}");
    }

    #[test]
    fn string_histogram_orders_lexicographically() {
        let s: Vec<Datum> = ["apple", "banana", "cherry", "date", "fig"]
            .iter()
            .map(|&x| Datum::from(x))
            .collect();
        let h = EquiDepthHistogram::build(&s, 5).unwrap();
        assert!(h.fraction_le(&Datum::from("banana")) < h.fraction_le(&Datum::from("date")));
    }

    #[test]
    fn more_buckets_than_samples_is_clamped() {
        let h = EquiDepthHistogram::build(&uniform_sample(3), 100).unwrap();
        assert!(h.buckets() <= 3);
    }
}
