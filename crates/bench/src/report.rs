//! Text tables for experiment output (the demo panels, printable), plus the
//! machine-readable `BENCH_*.json` records future PRs use to track the
//! performance trajectory.

use std::fmt::Write as _;
use std::path::Path;

/// One benchmark measurement destined for a `BENCH_*.json` trajectory file.
///
/// `scan_threads` is a first-class column so the parallel-scan scaling
/// curve (1..N threads over the same dataset) is directly comparable across
/// PRs; `clients` is the number of concurrent query issuers (1 for
/// single-client microbenchmarks, >1 for the shared-registry multi-client
/// curve in `BENCH_concurrent_queries.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Benchmark name, e.g. `cold_scan`.
    pub name: String,
    /// `NoDbConfig::scan_threads` the measurement ran with (resolved, not 0).
    pub scan_threads: usize,
    /// Concurrent query clients issuing against one shared instance.
    pub clients: usize,
    /// Data rows in the benchmark's input file.
    pub rows: u64,
    /// Mean wall-clock per iteration, milliseconds.
    pub mean_ms: f64,
    /// Fastest iteration, milliseconds.
    pub min_ms: f64,
    /// Mean I/O stall per iteration, milliseconds: summed time the scan
    /// threads spent blocked waiting for bytes (`IoCounters::stall`).
    /// `0.0` for benches that don't track it — the field is optional when
    /// parsing, so pre-stall trajectory files stay readable.
    pub stall_ms: f64,
    /// Execution-mode ablation label (e.g. `vectorized` / `rowwise` for the
    /// warm-path bench). Part of the record's identity: the same bench at
    /// the same threads/rows in two modes is two measurements. Empty for
    /// benches without a mode axis, and optional when parsing (mirroring
    /// the `stall_ms` precedent) so legacy `BENCH_*.json` files stay
    /// readable.
    pub mode: String,
    /// Median per-query latency, milliseconds (nearest-rank over the
    /// individual query latencies of a run, not the per-iteration wall
    /// clock). `0.0` for benches that don't track tail latency; the three
    /// percentile fields are optional when parsing so pre-percentile
    /// trajectory files stay readable, and they are *not* part of
    /// [`bench_key`] — they are measurements, not identity.
    pub p50_ms: f64,
    /// 95th-percentile per-query latency, milliseconds. The serving-layer
    /// tail the gate watches: admission queuing under a shared scan budget
    /// shows up here long before it moves the mean.
    pub p95_ms: f64,
    /// 99th-percentile per-query latency, milliseconds.
    pub p99_ms: f64,
}

impl BenchRecord {
    /// Build a single-client record from raw per-iteration durations.
    pub fn from_samples(
        name: impl Into<String>,
        scan_threads: usize,
        rows: u64,
        samples: &[std::time::Duration],
    ) -> Self {
        Self::from_samples_clients(name, scan_threads, 1, rows, samples)
    }

    /// Build a record with an explicit concurrent-client count.
    pub fn from_samples_clients(
        name: impl Into<String>,
        scan_threads: usize,
        clients: usize,
        rows: u64,
        samples: &[std::time::Duration],
    ) -> Self {
        let ms: Vec<f64> = samples.iter().map(|d| d.as_secs_f64() * 1e3).collect();
        let mean = if ms.is_empty() {
            0.0
        } else {
            ms.iter().sum::<f64>() / ms.len() as f64
        };
        let min = ms.iter().copied().fold(f64::INFINITY, f64::min);
        BenchRecord {
            name: name.into(),
            scan_threads,
            clients,
            rows,
            mean_ms: mean,
            min_ms: if min.is_finite() { min } else { 0.0 },
            stall_ms: 0.0,
            mode: String::new(),
            p50_ms: 0.0,
            p95_ms: 0.0,
            p99_ms: 0.0,
        }
    }

    /// Attach an execution-mode label (ablation column).
    pub fn with_mode(mut self, mode: impl Into<String>) -> Self {
        self.mode = mode.into();
        self
    }

    /// Attach per-query latency percentiles (nearest-rank) computed from
    /// the individual query latencies of a run. Distinct from the
    /// constructor's `samples` (per-*iteration* wall clock): a concurrent
    /// bench has `clients × queries` latencies per iteration, and the tail
    /// of that distribution is what admission control is supposed to keep
    /// bounded.
    pub fn with_percentiles(mut self, latencies: &[std::time::Duration]) -> Self {
        if latencies.is_empty() {
            return self;
        }
        let mut ms: Vec<f64> = latencies.iter().map(|d| d.as_secs_f64() * 1e3).collect();
        ms.sort_by(|a, b| a.total_cmp(b));
        let nearest_rank = |q: f64| -> f64 {
            let rank = (q * ms.len() as f64).ceil() as usize;
            ms[rank.clamp(1, ms.len()) - 1]
        };
        self.p50_ms = nearest_rank(0.50);
        self.p95_ms = nearest_rank(0.95);
        self.p99_ms = nearest_rank(0.99);
        self
    }

    /// Attach a mean I/O stall time (milliseconds) to the record.
    pub fn with_stall(mut self, stall: &[std::time::Duration]) -> Self {
        if !stall.is_empty() {
            self.stall_ms =
                stall.iter().map(|d| d.as_secs_f64() * 1e3).sum::<f64>() / stall.len() as f64;
        }
        self
    }
}

/// Render records as the `BENCH_*.json` document (hand-rolled JSON: the
/// environment has no serde, and the schema is five flat fields).
pub fn bench_records_json(records: &[BenchRecord]) -> String {
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, r) in records.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": {:?}, \"scan_threads\": {}, \"clients\": {}, \"rows\": {}, \
             \"mean_ms\": {:.3}, \"min_ms\": {:.3}, \"stall_ms\": {:.3}",
            r.name, r.scan_threads, r.clients, r.rows, r.mean_ms, r.min_ms, r.stall_ms
        );
        if !r.mode.is_empty() {
            let _ = write!(out, ", \"mode\": {:?}", r.mode);
        }
        if r.p50_ms > 0.0 || r.p95_ms > 0.0 || r.p99_ms > 0.0 {
            let _ = write!(
                out,
                ", \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}",
                r.p50_ms, r.p95_ms, r.p99_ms
            );
        }
        out.push('}');
        out.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Write records to `path` as JSON.
pub fn write_bench_json(path: impl AsRef<Path>, records: &[BenchRecord]) -> std::io::Result<()> {
    std::fs::write(path, bench_records_json(records))
}

/// The identity of one measurement within a `BENCH_*.json` trajectory:
/// records agreeing on all five fields describe the same experiment and are
/// comparable across runs (and across PRs). `mode` is "" for benches
/// without an ablation axis, so pre-mode records keep their identity.
pub fn bench_key(r: &BenchRecord) -> (String, usize, usize, u64, String) {
    (
        r.name.clone(),
        r.scan_threads,
        r.clients,
        r.rows,
        r.mode.clone(),
    )
}

/// Parse a `BENCH_*.json` document produced by [`bench_records_json`].
///
/// Hand-rolled like the writer (no serde in this environment): one record
/// per `{...}` object, five known fields, order-independent. Unknown fields
/// are ignored so older gates can read newer files. Returns `None` when a
/// record is missing a required field — a malformed baseline should fail
/// loudly in the gate, not silently compare nothing.
pub fn parse_bench_json(body: &str) -> Option<Vec<BenchRecord>> {
    let mut records = Vec::new();
    // Skip the envelope's opening brace; every subsequent '{'..'}' span is
    // one record object.
    let inner = &body[body.find('{')? + 1..];
    let mut rest = inner;
    while let Some(open) = rest.find('{') {
        let close = open + rest[open..].find('}')?;
        let obj = &rest[open + 1..close];
        rest = &rest[close + 1..];
        let field = |key: &str| -> Option<&str> {
            let tag = format!("\"{key}\":");
            let at = obj.find(&tag)? + tag.len();
            let val = obj[at..].trim_start();
            let end = val.find([',', '}']).unwrap_or(val.len());
            Some(val[..end].trim())
        };
        let name = field("name")?.trim_matches('"').to_string();
        records.push(BenchRecord {
            name,
            scan_threads: field("scan_threads")?.parse().ok()?,
            clients: field("clients")?.parse().ok()?,
            rows: field("rows")?.parse().ok()?,
            mean_ms: field("mean_ms")?.parse().ok()?,
            min_ms: field("min_ms")?.parse().ok()?,
            // Optional: trajectory files predating stall accounting omit it.
            stall_ms: field("stall_ms")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0.0),
            // Optional: files predating the ablation column omit it.
            mode: field("mode")
                .map(|v| v.trim_matches('"').to_string())
                .unwrap_or_default(),
            // Optional: files predating tail-latency tracking omit them.
            p50_ms: field("p50_ms").and_then(|v| v.parse().ok()).unwrap_or(0.0),
            p95_ms: field("p95_ms").and_then(|v| v.parse().ok()).unwrap_or(0.0),
            p99_ms: field("p99_ms").and_then(|v| v.parse().ok()).unwrap_or(0.0),
        });
    }
    Some(records)
}

/// Merge fresh records into the trajectory file at `path`: records matching
/// an existing [`bench_key`] replace it, new keys append. Benches run at
/// several row counts (full-size locally, reduced in CI), and merging keeps
/// one record per configuration alive in the same file — which is what lets
/// the CI perf gate find an equal-rows baseline to compare against.
pub fn update_bench_json(path: impl AsRef<Path>, fresh: &[BenchRecord]) -> std::io::Result<()> {
    let path = path.as_ref();
    // A missing file starts a fresh trajectory; a *present but unparseable*
    // one fails loudly — silently overwriting it would drop the history
    // this merge exists to preserve.
    let mut merged: Vec<BenchRecord> = match std::fs::read_to_string(path) {
        Ok(body) => parse_bench_json(&body).ok_or_else(|| {
            std::io::Error::other(format!(
                "malformed bench trajectory {}: fix or delete it before merging",
                path.display()
            ))
        })?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    for r in fresh {
        match merged.iter_mut().find(|m| bench_key(m) == bench_key(r)) {
            Some(slot) => *slot = r.clone(),
            None => merged.push(r.clone()),
        }
    }
    write_bench_json(path, &merged)
}

/// One baseline-vs-fresh comparison line of the perf gate.
#[derive(Debug, Clone)]
pub struct GateLine {
    /// Human-readable verdict for the report artifact.
    pub text: String,
    /// The fresh run regressed beyond the threshold.
    pub regressed: bool,
}

/// Outcome of gating one fresh record set against a baseline set.
#[derive(Debug, Default)]
pub struct GateReport {
    /// Per-record verdicts (compared records only).
    pub lines: Vec<GateLine>,
    /// Records compared (equal [`bench_key`] on both sides).
    pub compared: usize,
    /// Fresh records with no equal-key baseline (informational, never
    /// failing: a new bench has no history yet).
    pub skipped: usize,
    /// Comparisons that exceeded the threshold.
    pub regressions: usize,
}

/// Compare fresh records against baselines: a record regresses when its
/// mean latency exceeds the baseline's by more than `threshold` (0.25 =
/// 25% throughput regression at equal rows/threads/clients), or — when
/// both sides track tail latency — when its p95 does. Only records with an
/// equal [`bench_key`] are compared — cross-row-count comparisons would
/// gate noise, not performance; likewise the tail gate only arms when both
/// records carry percentiles, so pre-percentile baselines keep gating on
/// the mean alone.
pub fn gate_bench_records(
    baseline: &[BenchRecord],
    fresh: &[BenchRecord],
    threshold: f64,
) -> GateReport {
    let mut report = GateReport::default();
    for f in fresh {
        let Some(b) = baseline.iter().find(|b| bench_key(b) == bench_key(f)) else {
            report.skipped += 1;
            continue;
        };
        report.compared += 1;
        let ratio = if b.mean_ms > 0.0 {
            f.mean_ms / b.mean_ms
        } else {
            1.0
        };
        let tail_ratio = if b.p95_ms > 0.0 && f.p95_ms > 0.0 {
            Some(f.p95_ms / b.p95_ms)
        } else {
            None
        };
        let mean_regressed = ratio > 1.0 + threshold;
        let tail_regressed = tail_ratio.is_some_and(|r| r > 1.0 + threshold);
        let regressed = mean_regressed || tail_regressed;
        if regressed {
            report.regressions += 1;
        }
        let label = if f.mode.is_empty() {
            f.name.clone()
        } else {
            format!("{} [{}]", f.name, f.mode)
        };
        let tail = match tail_ratio {
            Some(r) => format!(
                "  p95 {:>8.2} -> {:>8.2} ms ({:+.1}%)",
                b.p95_ms,
                f.p95_ms,
                (r - 1.0) * 100.0
            ),
            None => String::new(),
        };
        report.lines.push(GateLine {
            text: format!(
                "{} {:<28} threads={:<2} clients={:<2} rows={:<9} base {:>9.2} ms  fresh {:>9.2} ms  ({:+.1}%){tail}",
                if regressed { "FAIL" } else { "  ok" },
                label,
                f.scan_threads,
                f.clients,
                f.rows,
                b.mean_ms,
                f.mean_ms,
                (ratio - 1.0) * 100.0
            ),
            regressed,
        });
    }
    report
}

/// A simple aligned text table builder.
#[derive(Debug, Default, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row of cells.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        for (i, h) in self.header.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            let _ = write!(out, "{h:<w$}", w = widths[i]);
        }
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            for (i, c) in r.iter().enumerate().take(ncols) {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{c:<w$}", w = widths[i]);
            }
            out.push('\n');
        }
        out
    }
}

/// Format a duration in milliseconds with two decimals.
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Format a duration in seconds with three decimals.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("longer"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(ms(std::time::Duration::from_millis(1500)), "1500.00");
        assert_eq!(secs(std::time::Duration::from_millis(1500)), "1.500");
    }

    #[test]
    fn bench_records_render_as_json() {
        use std::time::Duration;
        let records = vec![
            BenchRecord::from_samples(
                "cold_scan",
                1,
                1_000_000,
                &[Duration::from_millis(100), Duration::from_millis(200)],
            ),
            BenchRecord::from_samples("cold_scan", 4, 1_000_000, &[Duration::from_millis(50)]),
        ];
        assert!((records[0].mean_ms - 150.0).abs() < 1e-9);
        assert!((records[0].min_ms - 100.0).abs() < 1e-9);
        let json = bench_records_json(&records);
        assert!(json.contains("\"scan_threads\": 1"));
        assert!(json.contains("\"scan_threads\": 4"));
        assert!(json.contains("\"clients\": 1"));
        assert!(json.contains("\"mean_ms\": 150.000"));
        assert!(json.contains("\"rows\": 1000000"));
        assert!(json.trim_end().ends_with('}'));

        let multi = BenchRecord::from_samples_clients(
            "warm_shared",
            4,
            8,
            10_000,
            &[Duration::from_millis(9)],
        );
        assert_eq!(multi.clients, 8);
        assert!(bench_records_json(&[multi]).contains("\"clients\": 8"));
    }

    #[test]
    fn bench_json_parses_back() {
        use std::time::Duration;
        let records = vec![
            BenchRecord::from_samples("cold_scan", 1, 200_000, &[Duration::from_millis(100)])
                .with_stall(&[Duration::from_millis(40), Duration::from_millis(60)]),
            BenchRecord::from_samples_clients(
                "warm_shared",
                4,
                8,
                50_000,
                &[Duration::from_millis(9), Duration::from_millis(11)],
            ),
        ];
        let parsed = parse_bench_json(&bench_records_json(&records)).unwrap();
        assert_eq!(parsed.len(), 2);
        for (a, b) in records.iter().zip(&parsed) {
            assert_eq!(bench_key(a), bench_key(b));
            assert!((a.mean_ms - b.mean_ms).abs() < 1e-3);
            assert!((a.min_ms - b.min_ms).abs() < 1e-3);
            assert!((a.stall_ms - b.stall_ms).abs() < 1e-3);
        }
        assert!(
            (parsed[0].stall_ms - 50.0).abs() < 1e-3,
            "stall column survives"
        );
        // Pre-stall trajectory files (no stall_ms field) still parse.
        let legacy = "{\"benchmarks\": [{\"name\": \"old\", \"scan_threads\": 1, \
                      \"clients\": 1, \"rows\": 10, \"mean_ms\": 5.0, \"min_ms\": 4.0}]}";
        let old = parse_bench_json(legacy).unwrap();
        assert_eq!(old.len(), 1);
        assert_eq!(old[0].stall_ms, 0.0, "missing stall defaults to 0");
        assert_eq!(old[0].mode, "", "missing mode defaults to empty");
        // The ablation mode column round-trips and separates record keys.
        let moded = vec![
            BenchRecord::from_samples("warm_filter", 1, 10, &[Duration::from_millis(2)])
                .with_mode("vectorized"),
            BenchRecord::from_samples("warm_filter", 1, 10, &[Duration::from_millis(6)])
                .with_mode("rowwise"),
        ];
        assert_ne!(bench_key(&moded[0]), bench_key(&moded[1]));
        let back = parse_bench_json(&bench_records_json(&moded)).unwrap();
        assert_eq!(back[0].mode, "vectorized");
        assert_eq!(back[1].mode, "rowwise");
        // Tail-latency percentiles: nearest-rank, round-trip, and absent
        // from the JSON (and defaulted on parse) when never attached.
        let lat: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        let tailed =
            BenchRecord::from_samples_clients("tcp_tail", 4, 8, 10, &[Duration::from_millis(7)])
                .with_percentiles(&lat);
        assert!((tailed.p50_ms - 50.0).abs() < 1e-9);
        assert!((tailed.p95_ms - 95.0).abs() < 1e-9);
        assert!((tailed.p99_ms - 99.0).abs() < 1e-9);
        let back = parse_bench_json(&bench_records_json(&[tailed])).unwrap();
        assert!((back[0].p50_ms - 50.0).abs() < 1e-3);
        assert!((back[0].p95_ms - 95.0).abs() < 1e-3);
        assert!((back[0].p99_ms - 99.0).abs() < 1e-3);
        assert!(
            !bench_records_json(&records).contains("p50_ms"),
            "records without percentiles emit no percentile fields"
        );
        assert_eq!(old[0].p95_ms, 0.0, "missing percentiles default to 0");
        assert!(parse_bench_json("{\"benchmarks\": []}\n")
            .unwrap()
            .is_empty());
        assert!(
            parse_bench_json("{\"benchmarks\": [{\"name\": \"x\"}]}").is_none(),
            "missing fields must not parse to a half-record"
        );
    }

    #[test]
    fn update_merges_by_key() {
        use std::time::Duration;
        let mut p = std::env::temp_dir();
        p.push(format!("nodb_bench_merge_{}", std::process::id()));
        let old = vec![
            BenchRecord::from_samples("cold_scan", 1, 1_000_000, &[Duration::from_millis(400)]),
            BenchRecord::from_samples("cold_scan", 1, 200_000, &[Duration::from_millis(80)]),
        ];
        write_bench_json(&p, &old).unwrap();
        // Same key replaces, new key appends; the untouched row count stays.
        let fresh = vec![
            BenchRecord::from_samples("cold_scan", 1, 200_000, &[Duration::from_millis(70)]),
            BenchRecord::from_samples("cold_scan", 4, 200_000, &[Duration::from_millis(30)]),
        ];
        update_bench_json(&p, &fresh).unwrap();
        let merged = parse_bench_json(&std::fs::read_to_string(&p).unwrap()).unwrap();
        assert_eq!(merged.len(), 3);
        let at = |threads: usize, rows: u64| {
            merged
                .iter()
                .find(|r| r.scan_threads == threads && r.rows == rows)
                .unwrap()
                .mean_ms
        };
        assert!(
            (at(1, 1_000_000) - 400.0).abs() < 1e-6,
            "untouched key kept"
        );
        assert!(
            (at(1, 200_000) - 70.0).abs() < 1e-6,
            "matching key replaced"
        );
        assert!((at(4, 200_000) - 30.0).abs() < 1e-6, "new key appended");
        // A present-but-malformed trajectory must fail loudly, not be
        // silently overwritten; a missing file starts fresh.
        std::fs::write(&p, "{\"benchmarks\": [{\"name\": \"broken\"}]}").unwrap();
        assert!(update_bench_json(&p, &fresh).is_err());
        std::fs::remove_file(&p).unwrap();
        update_bench_json(&p, &fresh).unwrap();
        assert_eq!(
            parse_bench_json(&std::fs::read_to_string(&p).unwrap())
                .unwrap()
                .len(),
            2
        );
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn gate_flags_only_true_regressions() {
        use std::time::Duration;
        let base = vec![
            BenchRecord::from_samples("cold_scan", 4, 200_000, &[Duration::from_millis(100)]),
            BenchRecord::from_samples("cold_scan", 8, 200_000, &[Duration::from_millis(90)]),
            BenchRecord::from_samples("cold_scan", 4, 1_000_000, &[Duration::from_millis(500)]),
        ];
        // 4 threads: within threshold. 8 threads: 2x slower. 2 threads: no
        // baseline. The 1M-row baseline must not be compared against the
        // 200k-row fresh records.
        let fresh = vec![
            BenchRecord::from_samples("cold_scan", 4, 200_000, &[Duration::from_millis(120)]),
            BenchRecord::from_samples("cold_scan", 8, 200_000, &[Duration::from_millis(180)]),
            BenchRecord::from_samples("cold_scan", 2, 200_000, &[Duration::from_millis(50)]),
        ];
        let gate = gate_bench_records(&base, &fresh, 0.25);
        assert_eq!(gate.compared, 2);
        assert_eq!(gate.skipped, 1);
        assert_eq!(gate.regressions, 1);
        let fail: Vec<&GateLine> = gate.lines.iter().filter(|l| l.regressed).collect();
        assert_eq!(fail.len(), 1);
        assert!(fail[0].text.contains("threads=8"), "{}", fail[0].text);
        // Equal performance passes.
        let clean = gate_bench_records(&base, &base, 0.25);
        assert_eq!(clean.regressions, 0);
        assert_eq!(clean.compared, 3);
    }

    #[test]
    fn gate_arms_tail_check_only_when_both_sides_track_it() {
        use std::time::Duration;
        let lat = |ms: u64| vec![Duration::from_millis(ms); 20];
        let mk = |mean: u64, p: Option<u64>| {
            let r = BenchRecord::from_samples_clients(
                "warm_shared_cache",
                4,
                8,
                200_000,
                &[Duration::from_millis(mean)],
            );
            match p {
                Some(ms) => r.with_percentiles(&lat(ms)),
                None => r,
            }
        };
        // Same mean, 2x p95: the tail gate fires.
        let gate = gate_bench_records(&[mk(100, Some(10))], &[mk(100, Some(20))], 0.25);
        assert_eq!(gate.regressions, 1, "{:?}", gate.lines);
        assert!(gate.lines[0].text.contains("p95"));
        // Tail within threshold: passes, and the line reports both axes.
        let gate = gate_bench_records(&[mk(100, Some(10))], &[mk(100, Some(11))], 0.25);
        assert_eq!(gate.regressions, 0, "{:?}", gate.lines);
        // Baseline predates percentiles: mean-only gating, no tail column.
        let gate = gate_bench_records(&[mk(100, None)], &[mk(100, Some(500))], 0.25);
        assert_eq!(gate.regressions, 0, "{:?}", gate.lines);
        assert!(!gate.lines[0].text.contains("p95"));
    }

    #[test]
    fn bench_json_round_trips_to_disk() {
        let mut p = std::env::temp_dir();
        p.push(format!("nodb_bench_json_{}", std::process::id()));
        let records = vec![BenchRecord::from_samples(
            "x",
            2,
            10,
            &[std::time::Duration::from_millis(5)],
        )];
        write_bench_json(&p, &records).unwrap();
        let body = std::fs::read_to_string(&p).unwrap();
        assert_eq!(body, bench_records_json(&records));
        std::fs::remove_file(p).unwrap();
    }
}
