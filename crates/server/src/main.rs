//! nodb-server binary: serve registered raw CSV files over TCP.
//!
//! ```text
//! nodb-server --listen 127.0.0.1:7654 --table events=./events.csv
//! nodb-server --smoke            # self-contained CI smoke check
//! ```
//!
//! Flags:
//! * `--listen ADDR`      listen address (default `127.0.0.1:7654`)
//! * `--table NAME=PATH`  register a CSV file (repeatable)
//! * `--budget N`         global scan-thread budget (default 8)
//! * `--queue N`          admission queue bound (default 64)
//! * `--prepared N`       prepared-statement cache capacity (default 64)
//! * `--timeout-ms N`     per-query deadline (default 0 = none)
//! * `--smoke` — start on an ephemeral port with a synthetic table, run
//!   three queries over TCP (one repeated, asserting a prepared-statement
//!   hit), shut down cleanly, exit nonzero on any failure

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use nodb_core::{NoDb, NoDbConfig};
use nodb_server::{NoDbClient, Server, ServerConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("nodb-server: {msg}");
            ExitCode::FAILURE
        }
    }
}

struct Options {
    listen: String,
    tables: Vec<(String, String)>,
    budget: usize,
    queue: usize,
    prepared: usize,
    timeout_ms: u64,
    smoke: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        listen: "127.0.0.1:7654".to_string(),
        tables: Vec::new(),
        budget: 8,
        queue: 64,
        prepared: 64,
        timeout_ms: 0,
        smoke: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--listen" => opts.listen = value("--listen")?,
            "--table" => {
                let spec = value("--table")?;
                let (name, path) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--table wants NAME=PATH, got {spec:?}"))?;
                opts.tables.push((name.to_string(), path.to_string()));
            }
            "--budget" => {
                opts.budget = value("--budget")?
                    .parse()
                    .map_err(|_| "--budget wants an integer".to_string())?
            }
            "--queue" => {
                opts.queue = value("--queue")?
                    .parse()
                    .map_err(|_| "--queue wants an integer".to_string())?
            }
            "--prepared" => {
                opts.prepared = value("--prepared")?
                    .parse()
                    .map_err(|_| "--prepared wants an integer".to_string())?
            }
            "--timeout-ms" => {
                opts.timeout_ms = value("--timeout-ms")?
                    .parse()
                    .map_err(|_| "--timeout-ms wants an integer".to_string())?
            }
            "--smoke" => opts.smoke = true,
            "--help" | "-h" => {
                return Err("usage: nodb-server [--listen ADDR] [--table NAME=PATH]... \
                            [--budget N] [--queue N] [--prepared N] [--timeout-ms N] [--smoke]"
                    .to_string())
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(opts)
}

fn run(args: &[String]) -> Result<(), String> {
    let opts = parse_args(args)?;
    if opts.smoke {
        return smoke();
    }
    if opts.tables.is_empty() {
        return Err("no tables registered; pass at least one --table NAME=PATH".to_string());
    }
    let mut db = NoDb::new(NoDbConfig::default());
    for (name, path) in &opts.tables {
        db.register_csv(name.clone(), path)
            .map_err(|e| format!("registering {name} from {path}: {e}"))?;
        eprintln!("registered table {name} from {path}");
    }
    let server = Server::start(
        Arc::new(db),
        ServerConfig {
            addr: opts.listen.clone(),
            scan_budget: opts.budget,
            admission_queue: opts.queue,
            prepared_statements: opts.prepared,
            query_timeout_ms: opts.timeout_ms,
        },
    )
    .map_err(|e| format!("binding {}: {e}", opts.listen))?;
    eprintln!(
        "nodb-server listening on {} (scan budget {}, queue {})",
        server.local_addr(),
        opts.budget,
        opts.queue
    );

    // Serve until SIGINT/SIGTERM. Signal handling without external crates:
    // a minimal handler flips an AtomicBool the main thread polls.
    let stop = install_stop_flag();
    // Main wait loop — polls the stop flag, so Ctrl-C shuts down cleanly.
    while !stop.load(Ordering::Relaxed) {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    eprintln!("nodb-server: shutting down");
    let stats = server.shutdown();
    eprintln!(
        "nodb-server: served {} queries ({} errors) over {} connections",
        stats.queries_ok, stats.queries_err, stats.connections
    );
    Ok(())
}

/// The CI smoke check: synthesize a table, serve it on an ephemeral port,
/// run three queries over real TCP (the third repeats the first and must
/// be a prepared-statement hit), then shut down cleanly.
fn smoke() -> Result<(), String> {
    let mut path = std::env::temp_dir();
    path.push(format!("nodb_server_smoke_{}.csv", std::process::id()));
    let gen = nodb_rawcsv::GeneratorConfig::uniform_ints(5, 20_000, 42);
    gen.generate_file(&path)
        .map_err(|e| format!("generating smoke data: {e}"))?;
    let cleanup = TempFile(path.clone());

    let mut db = NoDb::new(NoDbConfig::default());
    db.register_csv_with_schema("smoke", &path, gen.schema(), false)
        .map_err(|e| format!("registering smoke table: {e}"))?;
    let server = Server::start(Arc::new(db), ServerConfig::default())
        .map_err(|e| format!("binding ephemeral port: {e}"))?;
    let addr = server.local_addr();
    eprintln!("smoke: serving on {addr}");

    let mut client = NoDbClient::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    if !client.ping().map_err(|e| format!("ping: {e}"))? {
        return Err("ping not OK".to_string());
    }

    let queries = [
        "SELECT COUNT(*) FROM smoke",
        "SELECT c1 FROM smoke WHERE c2 > 500000000",
        "SELECT COUNT(*) FROM smoke", // repeat: must hit the prepared cache
    ];
    for (i, sql) in queries.iter().enumerate() {
        let resp = client.query(sql).map_err(|e| format!("query {i}: {e}"))?;
        if !resp.is_ok() {
            return Err(format!("query {i} failed: {}", resp.status));
        }
        eprintln!("smoke: [{i}] {} -> {}", sql, resp.status);
        if i == 2 && !resp.status.contains("prepared=1") {
            return Err(format!(
                "repeat query was not a prepared-statement hit: {}",
                resp.status
            ));
        }
    }
    let stats = client.command("STATS").map_err(|e| format!("stats: {e}"))?;
    eprintln!("smoke: server stats\n{}", stats.body);
    client.quit().map_err(|e| format!("quit: {e}"))?;

    let final_stats = server.shutdown();
    if final_stats.queries_ok != 3 {
        return Err(format!(
            "expected 3 OK queries, saw {}",
            final_stats.queries_ok
        ));
    }
    eprintln!(
        "smoke: clean shutdown after {} queries",
        final_stats.queries_ok
    );
    drop(cleanup);
    Ok(())
}

struct TempFile(std::path::PathBuf);
impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Dependency-free stop channel: a helper thread drains stdin and flips
/// the flag at EOF (Ctrl-D, or the supervisor closing the pipe). Ctrl-C
/// still terminates the process directly via the default signal behavior —
/// this binary deliberately takes no signal-handling dependency.
fn install_stop_flag() -> Arc<AtomicBool> {
    let stop = Arc::new(AtomicBool::new(false));
    // Portable, dependency-free stop channel: closing stdin (or Ctrl-D)
    // requests shutdown. Ctrl-C still terminates the process directly.
    let flag = Arc::clone(&stop);
    std::thread::spawn(move || {
        use std::io::Read;
        let mut buf = [0u8; 64];
        let mut stdin = std::io::stdin();
        // Drain stdin until EOF, then request shutdown.
        loop {
            match stdin.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
        flag.store(true, Ordering::Relaxed);
    });
    stop
}
