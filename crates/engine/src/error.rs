//! Engine error type.

use std::fmt;

use nodb_rawcsv::RawCsvError;
use nodb_sqlparse::ParseError;

/// Errors raised while planning or executing a query.
#[derive(Debug)]
pub enum EngineError {
    /// SQL text failed to parse.
    Parse(ParseError),
    /// Name resolution / semantic analysis failure.
    Planning(String),
    /// Runtime failure inside an operator.
    Execution(String),
    /// Raw-file access failure surfaced by a scan source.
    Csv(RawCsvError),
    /// Referenced table is not registered.
    UnknownTable(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "{e}"),
            EngineError::Planning(m) => write!(f, "planning error: {m}"),
            EngineError::Execution(m) => write!(f, "execution error: {m}"),
            EngineError::Csv(e) => write!(f, "raw data error: {e}"),
            EngineError::UnknownTable(t) => write!(f, "unknown table {t:?}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Parse(e) => Some(e),
            EngineError::Csv(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for EngineError {
    fn from(e: ParseError) -> Self {
        EngineError::Parse(e)
    }
}

impl From<RawCsvError> for EngineError {
    fn from(e: RawCsvError) -> Self {
        EngineError::Csv(e)
    }
}

/// Result alias for the engine.
pub type EngineResult<T> = Result<T, EngineError>;
