#![doc = " lint:cancellable — source epochs: the fingerprint that binds every
adaptive structure to one version of the raw file.

NoDB does not own its data files: an external writer may append to,
truncate, rewrite, or replace them at any moment, while the positional
map, the column cache, and the statistics all embed byte offsets and
parsed values of *some past version* of the bytes. A [`SourceEpoch`] is
the identity of that version — length, mtime, sampled head and tail
hashes — captured in one `open`/`stat`/two-page read, cheap enough to
re-validate under the short planning lock of every query.

Three guarantees hang off it:

* **Pre-scan validation.** [`SourceEpoch::classify`] compares the live
  file against the epoch the adaptive state was built under. `Appended`
  keeps all prefix state (the existing §4.2 path); `Truncated` /
  `Rewritten` quarantine map, cache, statistics, and memos wholesale and
  force a cold rescan — offsets into a dead epoch are never consulted.
* **Mid-scan detection.** Scanners bounds-check against the epoch
  length: a file that runs out early (`RangeScanner::ended_short`), and a
  post-scan re-classification before any merge, turn a concurrent
  truncation or rewrite into `EngineError::SourceChanged` instead of
  installing poisoned partials or returning mixed-epoch rows.
* **The torn-row fence.** [`SourceEpoch::trusted_len`] is the byte count
  up to and including the *last newline observed at capture*. A
  concurrent appender caught mid-write leaves a trailing unterminated
  row; no scanner ever reads past `trusted_len`, so half-written bytes
  are invisible until their terminator lands — at which point the next
  epoch probe classifies them as a plain append and replays them. The
  corollary (documented in the crate-level error taxonomy): while update
  detection is on, a final line with no trailing newline is not served
  until a newline terminates it — a row exists once it is terminated.
"]

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;

use nodb_rawcsv::reader::{fnv1a, RawFileMeta};
use nodb_rawcsv::{RawCsvError, Result};

/// Bytes of file head covered by the epoch's head hash (matches
/// [`RawFileMeta::probe`]'s default window, so snapshot fingerprints and
/// epochs agree byte-for-byte on the head).
pub const EPOCH_HEAD_LIMIT: u64 = 4096;

/// Bytes of file tail covered by the epoch's tail hash.
pub const EPOCH_TAIL_LIMIT: u64 = 4096;

/// How far the torn-row fence will scan backward looking for the last
/// newline before giving up (and trusting nothing). A CSV whose final line
/// is longer than this is pathological; bounding the scan keeps epoch
/// capture O(pages), not O(file).
const MAX_FENCE_SCAN: u64 = 1 << 20;

/// How many times [`SourceEpoch::capture`] restarts when the file keeps
/// changing under it (stat/read/stat disagree). Each attempt is a few
/// page-sized reads, so a writer would have to mutate continuously at
/// sub-millisecond cadence to exhaust this.
const CAPTURE_ATTEMPTS: u32 = 8;

/// Fingerprint of one version ("epoch") of a raw source file.
///
/// `meta` is byte-compatible with the snapshot sidecar's
/// [`RawFileMeta`] fingerprint — the snapshot format is unchanged; an
/// epoch is that fingerprint plus a tail sample and the torn-row fence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceEpoch {
    /// Length, mtime, and sampled-head hash (the snapshot fingerprint).
    pub meta: RawFileMeta,
    /// Number of tail bytes covered by `tail_hash` (`min(len, 4096)`).
    pub tail_len: u64,
    /// FNV-1a hash of the last `tail_len` bytes. Re-hashing this *region*
    /// later distinguishes a pure append (region unchanged) from a rewrite
    /// that happened to grow the file.
    pub tail_hash: u64,
    /// The torn-row fence: bytes `[0, trusted_len)` end at a newline
    /// observed at capture time and are safe to scan; bytes at or past
    /// `trusted_len` may be half of a row still being written. Equal to
    /// `meta.len` whenever the file ends with a newline (the common case).
    pub trusted_len: u64,
}

/// How the live file relates to a previously captured [`SourceEpoch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochChange {
    /// Same length, mtime, head, and tail: the epoch still describes the
    /// bytes on disk.
    Unchanged,
    /// The file grew and every fingerprinted old byte is intact: rows were
    /// appended. Prefix state stays valid; replay starts at the *old*
    /// trusted length (which re-reads a previously torn tail row now that
    /// its terminator landed).
    Appended {
        /// The old epoch's torn-row fence — the append replay start.
        old_trusted_len: u64,
    },
    /// The file shrank but its head is intact: truncation. All adaptive
    /// state must be quarantined (offsets past the new end are dangling;
    /// cached values past it describe deleted rows).
    Truncated {
        /// Live length observed by the probe.
        new_len: u64,
    },
    /// The head or the fingerprinted tail changed (or same-length content
    /// was touched): the file was rewritten or replaced. All adaptive
    /// state must be quarantined.
    Rewritten,
}

impl EpochChange {
    /// Does this change invalidate state built under the old epoch?
    pub fn invalidates(self) -> bool {
        matches!(self, EpochChange::Truncated { .. } | EpochChange::Rewritten)
    }
}

impl SourceEpoch {
    /// Fingerprint the live file: one `open`, one `stat`, a head read, a
    /// tail read, and (only when the tail does not end in a newline) a
    /// bounded backward scan for the torn-row fence.
    ///
    /// An epoch must be a *self-consistent* snapshot: all reads describing
    /// one version of the file. A writer racing the capture (the file
    /// shrinking between the stat and a read, or the post-read stat
    /// disagreeing with the first) restarts the attempt, up to
    /// [`CAPTURE_ATTEMPTS`] times; only a file mutating continuously
    /// faster than a few page reads makes this fail.
    pub fn capture(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref();
        for _ in 0..CAPTURE_ATTEMPTS {
            if let Some(epoch) = Self::capture_once(path)? {
                return Ok(epoch);
            }
        }
        Err(RawCsvError::io(
            format!("fingerprint {}", path.display()),
            std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "file kept changing during epoch capture",
            ),
        ))
    }

    /// One capture attempt; `Ok(None)` means a concurrent writer changed
    /// the file mid-capture and the caller should start over.
    fn capture_once(path: &Path) -> Result<Option<Self>> {
        let mut file = open(path)?;
        let fsmeta = file
            .metadata()
            .map_err(|e| RawCsvError::io(format!("stat {}", path.display()), e))?;
        let len = fsmeta.len();
        let modified = fsmeta.modified().ok();
        let Some(head) = try_read_at(&mut file, path, 0, len.min(EPOCH_HEAD_LIMIT))? else {
            return Ok(None);
        };
        let meta = RawFileMeta {
            len,
            modified,
            head_len: head.len() as u64,
            head_hash: fnv1a(&head),
        };
        let tail_len = len.min(EPOCH_TAIL_LIMIT);
        let Some(tail) = try_read_at(&mut file, path, len - tail_len, tail_len)? else {
            return Ok(None);
        };
        let Some(trusted_len) = trusted_prefix_len(&mut file, path, len, &tail)? else {
            return Ok(None);
        };
        // The reads above only describe one version if the file is still
        // that version now.
        let after = file
            .metadata()
            .map_err(|e| RawCsvError::io(format!("stat {}", path.display()), e))?;
        if after.len() != len || after.modified().ok() != modified {
            return Ok(None);
        }
        Ok(Some(SourceEpoch {
            meta,
            tail_len,
            tail_hash: fnv1a(&tail),
            trusted_len,
        }))
    }

    /// Re-probe the live file and classify how it relates to this epoch.
    ///
    /// The decision tree (each probe is one `open` + `stat` + at most two
    /// page-sized reads):
    ///
    /// * shrank → head intact ? `Truncated` : `Rewritten`
    /// * head changed → `Rewritten`
    /// * grew → old tail *region* re-hashed: intact ? `Appended` :
    ///   `Rewritten`
    /// * same length → mtime or old tail region changed ? `Rewritten` :
    ///   `Unchanged`
    ///
    /// Like every sampled fingerprint this has a blind spot: a same-length
    /// in-place rewrite that preserves the sampled head and tail *and*
    /// lands within the filesystem's mtime granularity is indistinguishable
    /// from no change. The post-scan re-validation narrows the window to
    /// one mtime tick; a writer that defeats it is deliberately adversarial.
    pub fn classify(&self, path: impl AsRef<Path>) -> Result<EpochChange> {
        let path = path.as_ref();
        let mut file = open(path)?;
        let fsmeta = file
            .metadata()
            .map_err(|e| RawCsvError::io(format!("stat {}", path.display()), e))?;
        let new_len = fsmeta.len();
        // Head comparison needs all `head_len` fingerprinted bytes; a file
        // now shorter than the head window cannot match it. A read coming
        // up short (the file shrank *between* the stat and the read) is
        // itself proof of an active writer: classify as a rewrite rather
        // than failing the probe.
        let head_same = new_len >= self.meta.head_len && {
            match try_read_at(&mut file, path, 0, self.meta.head_len)? {
                Some(head) => fnv1a(&head) == self.meta.head_hash,
                None => return Ok(EpochChange::Rewritten),
            }
        };
        if new_len < self.meta.len {
            return Ok(if head_same {
                EpochChange::Truncated { new_len }
            } else {
                EpochChange::Rewritten
            });
        }
        if !head_same {
            return Ok(EpochChange::Rewritten);
        }
        // Re-hash the *old* tail region of the live file: a pure append
        // leaves those bytes alone; a rewrite that grew (or kept) the
        // length almost surely disturbs them.
        let old_tail_region = match try_read_at(
            &mut file,
            path,
            self.meta.len - self.tail_len,
            self.tail_len,
        )? {
            Some(region) => region,
            None => return Ok(EpochChange::Rewritten),
        };
        let tail_same = fnv1a(&old_tail_region) == self.tail_hash;
        if new_len > self.meta.len {
            return Ok(if tail_same {
                EpochChange::Appended {
                    old_trusted_len: self.trusted_len,
                }
            } else {
                EpochChange::Rewritten
            });
        }
        if !tail_same || fsmeta.modified().ok() != self.meta.modified {
            return Ok(EpochChange::Rewritten);
        }
        Ok(EpochChange::Unchanged)
    }
}

fn open(path: &Path) -> Result<File> {
    File::open(path).map_err(|e| RawCsvError::io(format!("open {}", path.display()), e))
}

/// Read exactly `[offset, offset + len)` of `file`. `Ok(None)` means the
/// file ended before `offset + len` — it shrank since the caller's stat,
/// i.e. a mutation race, not an I/O failure.
fn try_read_at(file: &mut File, path: &Path, offset: u64, len: u64) -> Result<Option<Vec<u8>>> {
    // lint: cast-ok len ≤ EPOCH_HEAD/TAIL_LIMIT (4 KiB), a module constant
    let mut buf = vec![0u8; len as usize];
    if buf.is_empty() {
        return Ok(Some(buf));
    }
    file.seek(SeekFrom::Start(offset))
        .map_err(|e| RawCsvError::io(format!("seek {}", path.display()), e))?;
    let mut filled = 0usize;
    while filled < buf.len() {
        let n = file
            .read(&mut buf[filled..])
            .map_err(|e| RawCsvError::io(format!("read {}", path.display()), e))?;
        if n == 0 {
            return Ok(None);
        }
        filled += n;
    }
    Ok(Some(buf))
}

/// Byte count up to and including the last `\n` of the file, given its last
/// `tail.len()` bytes: the torn-row fence. Scans backward page by page when
/// the tail sample holds no newline, bounded by [`MAX_FENCE_SCAN`]; a file
/// with no newline in its final megabyte trusts nothing (`0`). `Ok(None)`
/// propagates a shrink race from the backward scan's reads.
fn trusted_prefix_len(file: &mut File, path: &Path, len: u64, tail: &[u8]) -> Result<Option<u64>> {
    if len == 0 {
        return Ok(Some(0));
    }
    let tail_start = len - tail.len() as u64;
    if let Some(i) = tail.iter().rposition(|&b| b == b'\n') {
        return Ok(Some(tail_start + i as u64 + 1));
    }
    let mut lo = tail_start;
    let mut scanned = tail.len() as u64;
    while lo > 0 && scanned < MAX_FENCE_SCAN {
        let step = lo.min(EPOCH_TAIL_LIMIT);
        lo -= step;
        let Some(chunk) = try_read_at(file, path, lo, step)? else {
            return Ok(None);
        };
        if let Some(i) = chunk.iter().rposition(|&b| b == b'\n') {
            return Ok(Some(lo + i as u64 + 1));
        }
        scanned += step;
    }
    Ok(Some(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str, content: &[u8]) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "nodb_epoch_{name}_{}_{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::write(&p, content).unwrap();
        p
    }

    #[test]
    fn terminated_file_trusts_its_full_length() {
        let p = tmp("full", b"a,1\nb,2\nc,3\n");
        let e = SourceEpoch::capture(&p).unwrap();
        assert_eq!(e.meta.len, 12);
        assert_eq!(e.trusted_len, 12);
        assert_eq!(e.classify(&p).unwrap(), EpochChange::Unchanged);
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn torn_tail_is_fenced_to_last_newline() {
        let p = tmp("torn", b"a,1\nb,2\nc,"); // appender mid-row
        let e = SourceEpoch::capture(&p).unwrap();
        assert_eq!(e.trusted_len, 8, "fence at the byte after the last \\n");
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn file_with_no_newline_trusts_nothing() {
        let p = tmp("nonl", b"a,1");
        let e = SourceEpoch::capture(&p).unwrap();
        assert_eq!(e.trusted_len, 0);
        let p2 = tmp("empty", b"");
        let e2 = SourceEpoch::capture(&p2).unwrap();
        assert_eq!(e2.trusted_len, 0);
        assert_eq!(e2.meta.len, 0);
        std::fs::remove_file(p).unwrap();
        std::fs::remove_file(p2).unwrap();
    }

    #[test]
    fn fence_scans_back_past_the_tail_window() {
        // Torn tail longer than one tail window: the last newline sits more
        // than EPOCH_TAIL_LIMIT bytes from the end.
        let mut content = b"x,1\ny,2\n".to_vec();
        let fence = content.len() as u64;
        content.extend(std::iter::repeat_n(b'z', 2 * EPOCH_TAIL_LIMIT as usize));
        let p = tmp("deep_torn", &content);
        let e = SourceEpoch::capture(&p).unwrap();
        assert_eq!(e.trusted_len, fence);
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn append_is_classified_with_old_fence_as_replay_start() {
        let p = tmp("append", b"a,1\nb,2\nc,");
        let e = SourceEpoch::capture(&p).unwrap();
        // The appender finishes the torn row and adds another.
        let mut f = std::fs::OpenOptions::new().append(true).open(&p).unwrap();
        use std::io::Write;
        f.write_all(b"3\nd,4\n").unwrap();
        drop(f);
        assert_eq!(
            e.classify(&p).unwrap(),
            EpochChange::Appended { old_trusted_len: 8 },
            "replay must start at the old fence, re-reading the torn row"
        );
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn truncation_and_rewrite_are_told_apart_by_the_head() {
        // Large enough that the truncated half still covers the whole
        // 4 KiB head window — a remnant shorter than the head window
        // cannot match the head hash and classifies as Rewritten instead.
        let content: Vec<u8> = (0..2000)
            .flat_map(|i| format!("row{i},{i}\n").into_bytes())
            .collect();
        assert!(content.len() as u64 / 2 > EPOCH_HEAD_LIMIT);
        let p = tmp("trunc", &content);
        let e = SourceEpoch::capture(&p).unwrap();

        // Truncate: head intact, shorter.
        std::fs::write(&p, &content[..content.len() / 2]).unwrap();
        match e.classify(&p).unwrap() {
            EpochChange::Truncated { new_len } => {
                assert_eq!(new_len, content.len() as u64 / 2)
            }
            other => panic!("expected Truncated, got {other:?}"),
        }

        // Rewrite: same length, different bytes from offset 0.
        let mut rewritten = content.clone();
        for b in rewritten.iter_mut() {
            if *b == b'r' {
                *b = b'R';
            }
        }
        std::fs::write(&p, &rewritten).unwrap();
        assert_eq!(e.classify(&p).unwrap(), EpochChange::Rewritten);
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn grown_file_with_disturbed_old_tail_is_a_rewrite() {
        // > 4 KiB so the head window is a strict prefix and the mutation
        // below is only visible to the tail-region re-hash.
        let content: Vec<u8> = (0..2000)
            .flat_map(|i| format!("k{i},{i}\n").into_bytes())
            .collect();
        assert!(content.len() as u64 > 2 * EPOCH_HEAD_LIMIT);
        let p = tmp("grow_rewrite", &content);
        let e = SourceEpoch::capture(&p).unwrap();
        // Longer file, head kept, but bytes just before the old end
        // changed: not an append.
        let mut other = content.clone();
        let n = other.len();
        other[n - 3] = b'X';
        other.extend_from_slice(b"extra,1\n");
        std::fs::write(&p, &other).unwrap();
        assert_eq!(e.classify(&p).unwrap(), EpochChange::Rewritten);
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn invalidates_partitions_the_enum() {
        assert!(!EpochChange::Unchanged.invalidates());
        assert!(!EpochChange::Appended { old_trusted_len: 0 }.invalidates());
        assert!(EpochChange::Truncated { new_len: 0 }.invalidates());
        assert!(EpochChange::Rewritten.invalidates());
    }
}
