//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this local crate
//! implements the subset of criterion's API the workspace benches use —
//! `criterion_group!`/`criterion_main!`, benchmark groups, `Bencher::iter`
//! and `Bencher::iter_batched`, sample sizes and byte throughput — on a
//! straightforward wall-clock harness.
//!
//! Reporting: one line per benchmark with mean / min / max over the
//! collected samples (each sample batches enough iterations to exceed a
//! minimum measurable duration). No statistics beyond that; the point is
//! honest relative numbers for A/B comparisons like `scan_threads = 1`
//! vs `N`, not confidence intervals.

use std::time::{Duration, Instant};

/// Throughput annotation (printed alongside timings when set).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// How `iter_batched` amortizes setup (ignored by this harness beyond
/// running setup outside the timed section, which is the part that matters).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    min_sample_time: Duration,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            samples: Vec::with_capacity(sample_size),
            sample_size,
            min_sample_time: Duration::from_millis(5),
        }
    }

    /// Measure `routine` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup + calibration: how many iterations reach the minimum
        // measurable sample time?
        let t0 = Instant::now();
        let mut calib = 1u64;
        std::hint::black_box(routine());
        let one = t0.elapsed();
        if one < self.min_sample_time {
            calib = (self.min_sample_time.as_nanos() / one.as_nanos().max(1)) as u64 + 1;
        }
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..calib {
                std::hint::black_box(routine());
            }
            self.samples.push(t.elapsed() / calib as u32);
        }
    }

    /// Measure `routine` with per-sample inputs built by `setup` outside the
    /// timed section.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // Setup cost can dwarf the routine, so batching is per-sample: one
        // setup, one timed run — `sample_size` times.
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t.elapsed());
        }
    }
}

fn report(name: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    let ms = |d: Duration| d.as_secs_f64() * 1e3;
    let mut line = format!(
        "{name:<48} mean {:>10.3} ms  min {:>10.3} ms  max {:>10.3} ms  ({} samples)",
        ms(mean),
        ms(min),
        ms(max),
        samples.len()
    );
    if let Some(Throughput::Bytes(b)) = throughput {
        let gbs = b as f64 / mean.as_secs_f64() / 1e9;
        line.push_str(&format!("  {gbs:.2} GB/s"));
    }
    if let Some(Throughput::Elements(n)) = throughput {
        let me = n as f64 / mean.as_secs_f64() / 1e6;
        line.push_str(&format!("  {me:.2} Melem/s"));
    }
    println!("{line}");
}

/// A named group of benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Set the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(
            &format!("{}/{}", self.name, name.into()),
            &b.samples,
            self.throughput,
        );
        self
    }

    /// End the group (prints nothing; the per-benchmark lines already did).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
        }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(&name.into(), &b.samples, None);
        self
    }
}

/// Declare a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_collects_samples() {
        let mut b = Bencher::new(4);
        let mut n = 0u64;
        b.iter(|| {
            n = n.wrapping_add(1);
            n
        });
        assert_eq!(b.samples.len(), 4);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut b = Bencher::new(3);
        let mut setups = 0;
        b.iter_batched(
            || {
                setups += 1;
                vec![1u8; 16]
            },
            |v| v.len(),
            BatchSize::LargeInput,
        );
        assert_eq!(setups, 3);
        assert_eq!(b.samples.len(), 3);
    }

    #[test]
    fn group_api_shape() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2).throughput(Throughput::Bytes(8));
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
