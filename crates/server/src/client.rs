//! Blocking TCP client for nodb-server — the REPL's network mode, the CI
//! smoke check and the integration tests all speak through this.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{read_frame, write_frame};

/// One response: the status line and the body frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// `OK …` or `ERR …`.
    pub status: String,
    /// Rendered payload (result rows, panel text, …); may be empty.
    pub body: String,
}

impl Response {
    /// True when the status frame starts with `OK`.
    pub fn is_ok(&self) -> bool {
        self.status.starts_with("OK")
    }
}

/// Base backoff before the first overload retry, doubling per attempt —
/// the same bounded-exponential pattern the engine's transient-I/O retry
/// uses (`io_retry_backoff_ms`).
const OVERLOAD_BACKOFF_MS: u64 = 2;

/// A connected nodb-server client. One request in flight at a time
/// (requests and responses strictly alternate on the wire).
pub struct NoDbClient {
    stream: TcpStream,
    /// How many times [`Self::query`] re-sends after an `ERR overloaded`
    /// rejection (`0` = surface the rejection immediately, the default).
    overload_retries: u32,
}

impl NoDbClient {
    /// Connect to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<NoDbClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(NoDbClient {
            stream,
            overload_retries: 0,
        })
    }

    /// Like [`Self::connect`] with a connect timeout (tests / impatient
    /// tooling). Needs a resolved address.
    pub fn connect_timeout(
        addr: &std::net::SocketAddr,
        timeout: Duration,
    ) -> io::Result<NoDbClient> {
        let stream = TcpStream::connect_timeout(addr, timeout)?;
        stream.set_nodelay(true).ok();
        Ok(NoDbClient {
            stream,
            overload_retries: 0,
        })
    }

    /// Opt in to retrying `ERR overloaded` rejections: [`Self::query`]
    /// re-sends up to `attempts` times with bounded exponential backoff
    /// (base [`OVERLOAD_BACKOFF_MS`], doubling per attempt, exponent capped
    /// so the sleep never overflows). The server rejects *before* touching
    /// any table state, so a retried query is side-effect free until
    /// admitted. Off by default — a load generator or batch tool opts in;
    /// an interactive caller usually wants to see the back-pressure.
    pub fn retry_overloaded(mut self, attempts: u32) -> Self {
        self.overload_retries = attempts;
        self
    }

    /// Send one raw command line and read the two-frame response.
    pub fn command(&mut self, line: &str) -> io::Result<Response> {
        write_frame(&mut self.stream, line)?;
        let status = read_frame(&mut self.stream)?.ok_or_else(closed)?;
        let body = read_frame(&mut self.stream)?.ok_or_else(closed)?;
        Ok(Response { status, body })
    }

    /// Run one SQL statement (`QUERY <sql>`). With
    /// [`Self::retry_overloaded`] set, `ERR overloaded` rejections are
    /// retried with exponential backoff; every other response (including
    /// other errors) is returned as-is.
    pub fn query(&mut self, sql: &str) -> io::Result<Response> {
        let line = format!("QUERY {sql}");
        let mut attempt = 0u32;
        loop {
            let resp = self.command(&line)?;
            if attempt < self.overload_retries && resp.status.starts_with("ERR overloaded") {
                attempt += 1;
                let backoff = OVERLOAD_BACKOFF_MS.saturating_mul(1u64 << (attempt - 1).min(6));
                std::thread::sleep(Duration::from_millis(backoff));
                continue;
            }
            return Ok(resp);
        }
    }

    /// Liveness check.
    pub fn ping(&mut self) -> io::Result<bool> {
        Ok(self.command("PING")?.is_ok())
    }

    /// Tell the server this connection is done (the server closes after
    /// acknowledging).
    pub fn quit(mut self) -> io::Result<()> {
        let _ = self.command("QUIT")?;
        Ok(())
    }

    /// The underlying stream (tests use this to simulate abrupt
    /// disconnects via `shutdown`).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Send a request frame WITHOUT reading the response — only useful for
    /// tests that drop the connection mid-query to exercise the server's
    /// disconnect watchdog.
    pub fn send_only(&mut self, line: &str) -> io::Result<()> {
        write_frame(&mut self.stream, line)
    }
}

fn closed() -> io::Error {
    io::Error::new(
        io::ErrorKind::UnexpectedEof,
        "server closed the connection mid-response",
    )
}
