//! The client surface: registering raw files and running queries.
//!
//! [`NoDb`] is what applications (and `nodb-server` connections) hold:
//! `register_*`, `query`/`query_with_ctx`, `snapshot`, `schema`. Everything
//! operational — budgets, update probes, the scan-thread budget, the
//! prepared-statement cache, the last query report — lives behind
//! [`NoDb::admin`] on the [`Admin`](crate::api::admin::Admin) surface, so
//! the type a request handler touches has exactly the methods a request
//! needs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use nodb_engine::{execute_with, plan_select, EngineError, EngineResult, QueryResult, QueueSource};
use nodb_rawcsv::tokenizer::TokenizerConfig;
use nodb_rawcsv::{infer, Schema};
use nodb_sqlparse::parse_select;
use nodb_stats::estimate::NoStats;
use nodb_stats::table::StatsEstimator;

use crate::admission::ScanBudget;
use crate::api::admin::Admin;
use crate::api::prepared::{CachedPlan, PreparedCache};
use crate::config::NoDbConfig;
use crate::ctx::QueryCtx;
use crate::metrics::{QueryReport, SystemSnapshot};
use crate::rawscan::{self, RawScanSource, ScanTelemetry, TelemetryHandle};
use crate::registry::{TableHandle, TableRegistry};
use crate::table::RawTable;

/// How many times a query re-plans after finding its prepared scan stale
/// (file-state generation moved, or a needed cache column was evicted)
/// before falling back to running exclusively under the table's write lock.
const MAX_SHARED_ATTEMPTS: usize = 3;

/// The NoDB system: a set of registered raw files and their adaptive
/// auxiliary structures, queryable with SQL from the first second.
///
/// Queries take `&self` and may run concurrently from many threads; the
/// per-table locking discipline is documented on [`crate::registry`]. The
/// operational knobs live on [`NoDb::admin`] and also take `&self`, so an
/// operator can turn the demo's storage sliders on a live `Arc<NoDb>`
/// while clients keep querying (each query works from a config snapshot
/// taken at its start).
///
/// Two optional serving-layer features are installed through the admin
/// surface and change `query_with_ctx`'s behavior for every caller:
///
/// * a [`ScanBudget`] — queries acquire scan-thread permits from one
///   global semaphore before touching any table lock, so N concurrent
///   queries never run more than the budget's capacity of scan threads in
///   total (and queries past the bounded admission queue fail fast with
///   [`EngineError::Overloaded`]);
/// * a [`PreparedCache`] — repeat SQL strings skip parse+plan; a hit is
///   visible as `QueryReport::prepared_hit` with a zero
///   `Breakdown::planning` slice.
pub struct NoDb {
    pub(crate) config: parking_lot::RwLock<NoDbConfig>,
    pub(crate) tables: TableRegistry,
    pub(crate) last_report: Mutex<Option<QueryReport>>,
    pub(crate) scan_budget: parking_lot::RwLock<Option<Arc<ScanBudget>>>,
    pub(crate) prepared: parking_lot::RwLock<Option<Arc<PreparedCache>>>,
    pub(crate) snapshot_counters: SnapshotCounters,
    /// Lifetime count of source-epoch invalidations (quarantine + cold
    /// rescan after a backing file was truncated/rewritten), across every
    /// query — the instance-level view behind the server's `EPOCH?` verb.
    pub(crate) source_changes: AtomicU64,
}

/// Atomic backing for [`crate::metrics::SnapshotTelemetry`]; incremented
/// from restore (registration) and write-behind (query tail) paths without
/// any lock.
#[derive(Default)]
pub(crate) struct SnapshotCounters {
    pub(crate) saves: AtomicU64,
    pub(crate) save_failures: AtomicU64,
    pub(crate) restores: AtomicU64,
    pub(crate) restores_rejected: AtomicU64,
}

impl SnapshotCounters {
    pub(crate) fn snapshot(&self) -> crate::metrics::SnapshotTelemetry {
        crate::metrics::SnapshotTelemetry {
            saves: self.saves.load(Ordering::Relaxed),
            save_failures: self.save_failures.load(Ordering::Relaxed),
            restores: self.restores.load(Ordering::Relaxed),
            restores_rejected: self.restores_rejected.load(Ordering::Relaxed),
        }
    }
}

impl NoDb {
    /// A new instance with the given configuration. Out-of-range I/O knobs
    /// are clamped here ([`NoDbConfig::validated`]) so every query runs on
    /// sane block/read-ahead settings.
    pub fn new(config: NoDbConfig) -> Self {
        NoDb {
            config: parking_lot::RwLock::new(config.validated()),
            tables: TableRegistry::new(),
            last_report: Mutex::new(None),
            scan_budget: parking_lot::RwLock::new(None),
            prepared: parking_lot::RwLock::new(None),
            snapshot_counters: SnapshotCounters::default(),
            source_changes: AtomicU64::new(0),
        }
    }

    /// The operational/administrative surface: budgets, update probes,
    /// admission control, prepared statements, query reports.
    pub fn admin(&self) -> Admin<'_> {
        Admin { db: self }
    }

    /// Configuration in force (a copy; the live budgets can move under the
    /// interactive knobs).
    pub fn config(&self) -> NoDbConfig {
        *self.config.read()
    }

    /// Register a raw file, sniffing the delimiter (comma, tab, semicolon
    /// or pipe) and inferring the schema from a bounded sample — the only
    /// bytes touched before the first query.
    pub fn register_csv(
        &mut self,
        name: impl Into<String>,
        path: impl AsRef<std::path::Path>,
    ) -> EngineResult<()> {
        let inferred = infer::infer_schema_sniffed(&path, 100)?;
        self.register_csv_with_options(
            name,
            path,
            inferred.schema,
            inferred.has_header,
            inferred.tokenizer,
        )
    }

    /// Register with an explicit tokenizer configuration (delimiter, quote
    /// character). Quoted files keep selective tokenizing, caching and
    /// statistics but bypass the positional map (see `rawscan`).
    pub fn register_csv_with_options(
        &mut self,
        name: impl Into<String>,
        path: impl AsRef<std::path::Path>,
        schema: Schema,
        has_header: bool,
        tokenizer: TokenizerConfig,
    ) -> EngineResult<()> {
        let mut table =
            RawTable::register_with_tokenizer(path, schema, has_header, &self.config(), tokenizer)?;
        self.restore_snapshot_if_enabled(&mut table);
        self.tables.insert(name, table);
        Ok(())
    }

    /// Register a raw CSV file with a known schema.
    pub fn register_csv_with_schema(
        &mut self,
        name: impl Into<String>,
        path: impl AsRef<std::path::Path>,
        schema: Schema,
        has_header: bool,
    ) -> EngineResult<()> {
        let mut table = RawTable::register(path, schema, has_header, &self.config())?;
        self.restore_snapshot_if_enabled(&mut table);
        self.tables.insert(name, table);
        Ok(())
    }

    /// Restore a freshly registered table's sidecar snapshot when the knob
    /// is on. Restore failures of every kind leave the table cold and are
    /// only counted — registration never fails because a *hint* was bad.
    fn restore_snapshot_if_enabled(&self, table: &mut RawTable) {
        let config = self.config();
        if !config.snapshot_persistence {
            return;
        }
        match table.try_restore_snapshot(&config) {
            crate::table::RestoreOutcome::Restored { .. } => {
                self.snapshot_counters
                    .restores
                    .fetch_add(1, Ordering::Relaxed);
            }
            crate::table::RestoreOutcome::Rejected(_) => {
                self.snapshot_counters
                    .restores_rejected
                    .fetch_add(1, Ordering::Relaxed);
            }
            crate::table::RestoreOutcome::NoSidecar => {}
        }
    }

    /// Write-behind: persist `handle`'s adaptive state if it grew since the
    /// last save. Capture happens under a short write lock; the encode and
    /// the fsync'd atomic write run with no lock held, so concurrent
    /// queries stream on undisturbed. Failures are counted and the
    /// signature reset, so the next query retries.
    pub(crate) fn write_snapshot_behind(&self, handle: &TableHandle) {
        let captured = {
            let mut table = handle.write();
            let sig = table.snapshot_signature();
            if sig == table.last_snapshot_sig {
                None
            } else {
                table.last_snapshot_sig = sig;
                Some((table.path().to_path_buf(), table.capture_snapshot()))
            }
        };
        let Some((path, snap)) = captured else { return };
        match nodb_snapshot::save_snapshot(&path, &snap) {
            Ok(_) => {
                self.snapshot_counters.saves.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.snapshot_counters
                    .save_failures
                    .fetch_add(1, Ordering::Relaxed);
                // Retry on the next query that grows state (or the next
                // save attempt of any kind).
                handle.write().last_snapshot_sig = 0;
            }
        }
    }

    /// Execute one SQL query. Everything adaptive happens as a side effect:
    /// update detection, access planning, map/cache/statistics population.
    ///
    /// Takes `&self`: any number of threads may call this concurrently on
    /// one instance. The table's write lock is held only for planning and
    /// the post-scan install; the data scan itself runs under the read lock
    /// (or, for `scan_threads = 1` and the force-full-parse ablation, under
    /// the write lock — the sequential path is kept byte-for-byte).
    pub fn query(&self, sql: &str) -> EngineResult<QueryResult> {
        let ctx = QueryCtx::from_timeout_ms(self.config().query_timeout_ms);
        self.query_with_ctx(sql, &ctx)
    }

    /// Execute one SQL query under a caller-supplied [`QueryCtx`]: a
    /// deadline and/or a [`crate::ctx::CancelToken`] another thread can
    /// trip. The scan polls the context cooperatively (partition workers,
    /// block refills, the newline pre-count, batch loops); a stopped query
    /// fails with [`EngineError::Cancelled`] /
    /// [`EngineError::DeadlineExceeded`] *after* merging whatever
    /// map/cache/statistics partials completed, so the retry starts warmer
    /// than the original (see `rawscan`'s partial-merge docs).
    pub fn query_with_ctx(&self, sql: &str, ctx: &QueryCtx) -> EngineResult<QueryResult> {
        self.query_reported(sql, ctx).map(|(result, _)| result)
    }

    /// Like [`Self::query_with_ctx`], but also returns this query's own
    /// [`QueryReport`]. Under concurrency this is the only race-free way to
    /// read a report: `Admin::last_report` is last-writer-wins across all
    /// in-flight queries, while the report returned here is the one this
    /// call produced. The serving layer uses it to stamp per-response
    /// status (rows, prepared-hit, cache state, latency).
    pub fn query_reported(
        &self,
        sql: &str,
        ctx: &QueryCtx,
    ) -> EngineResult<(QueryResult, QueryReport)> {
        let t0 = Instant::now();
        ctx.check()?;
        let mut config = self.config();

        // Admission first, before any table lock: a query holding the
        // table's write lock while waiting for scan-thread permits could
        // deadlock against admitted queries that need that same lock. The
        // grant rides to the end of the function and releases on every
        // exit path (including errors), and it *clamps* the config's
        // thread fan-out — granted permits are what the scan may spawn.
        let budget = self.scan_budget.read().clone();
        let _grant = match budget.as_ref() {
            Some(b) => {
                let grant = b.acquire(config.effective_scan_threads(), ctx)?;
                config.scan_threads = grant.permits();
                Some(grant)
            }
            None => None,
        };

        // Plan resolution: a prepared-cache entry whose table handle is
        // still the registered one short-circuits parse+plan; validity
        // against file state (generation) is decided below, under the same
        // write lock fresh planning would take.
        let prepared_cache = self.prepared.read().clone();
        let mut planning = Duration::ZERO;
        let mut cached_entry: Option<CachedPlan> = None;
        if let Some(cache) = prepared_cache.as_ref() {
            if let Some(entry) = cache.lookup(sql) {
                let live = self
                    .tables
                    .get(&entry.table)
                    .zip(entry.handle.upgrade())
                    .is_some_and(|(current, seen)| Arc::ptr_eq(&current, &seen));
                if live {
                    cached_entry = Some(entry);
                } else {
                    cache.note_invalidated();
                }
            }
        }
        let (table_name, handle, parsed_stmt) = match &cached_entry {
            Some(entry) => {
                let handle = self
                    .tables
                    .get(&entry.table)
                    .ok_or_else(|| EngineError::UnknownTable(entry.table.clone()))?;
                (entry.table.clone(), handle, None)
            }
            None => {
                let tp = Instant::now();
                let stmt = parse_select(sql)?;
                planning += tp.elapsed();
                let handle = self
                    .tables
                    .get(&stmt.table)
                    .ok_or_else(|| EngineError::UnknownTable(stmt.table.clone()))?;
                (stmt.table.clone(), handle, Some(stmt))
            }
        };
        let telemetry: TelemetryHandle = Arc::new(Mutex::new(ScanTelemetry::default()));

        // Planning bookkeeping under a short write lock: update probe,
        // cached-plan validation or statistics-driven planning, usage
        // counters. The whole plan+scan region lives in one block so the
        // write guard (still held after an exclusive-path scan) is dead
        // before the post-query snapshot write-behind re-locks the table.
        let (planned, prepared_hit, result, engine_elapsed, scan_inside_engine) = {
            let mut guard = handle.write();
            let (planned, prepared_hit) = {
                let table = &mut *guard;
                if config.detect_updates {
                    table.check_updates()?;
                }
                match cached_entry {
                    Some(entry) if entry.generation == table.generation => {
                        if let Some(cache) = prepared_cache.as_ref() {
                            cache.note_hit();
                        }
                        (entry.planned, true)
                    }
                    stale => {
                        if stale.is_some() {
                            // Generation moved (append/replace reconciled by the
                            // probe above): the cached plan is for old file
                            // state, replan exactly as a fresh query would.
                            if let Some(cache) = prepared_cache.as_ref() {
                                cache.note_invalidated();
                            }
                        }
                        let tp = Instant::now();
                        let stmt = match parsed_stmt {
                            Some(stmt) => stmt,
                            None => parse_select(sql)?,
                        };
                        let planned = if config.enable_stats {
                            let est = StatsEstimator::new(&mut table.stats);
                            plan_select(&stmt, &table.schema, &est)?
                        } else {
                            plan_select(&stmt, &table.schema, &NoStats)?
                        };
                        planning += tp.elapsed();
                        if let Some(cache) = prepared_cache.as_ref() {
                            cache.insert(
                                sql,
                                &table_name,
                                &handle,
                                table.generation,
                                planned.clone(),
                            );
                        }
                        (planned, false)
                    }
                }
            };
            {
                let table = &mut *guard;
                for &attr in &planned.scan.attrs {
                    if let Some(slot) = table.attr_access.get_mut(attr) {
                        *slot += 1;
                    }
                }
            }

            let mut attempts = 0usize;
            // Engine (pipeline-above-the-scan) time, measured around the
            // execute call so the report separates scan work from engine work.
            // On the staged paths the split is exact; on the exclusive
            // streaming path the scan runs inside execute, so its phase slices
            // are subtracted back out below.
            let mut engine_elapsed = std::time::Duration::ZERO;
            // True when the scan ran *inside* the engine call (the exclusive
            // streaming path pulls batches from within execute), so the scan's
            // phase slices must be carved back out of the engine measurement.
            let mut scan_inside_engine = false;
            let vectorized = config.vectorized_exec;
            let mut run_engine = |planned: &nodb_engine::PlannedQuery,
                                  source: Box<dyn nodb_engine::ScanSource + '_>|
             -> EngineResult<QueryResult> {
                let t = Instant::now();
                let r = execute_with(planned, source, vectorized);
                engine_elapsed = t.elapsed();
                r
            };
            let mut source_retries = config.source_change_retries;
            let mut source_changes = 0u64;
            let result = 'query: loop {
                // One scan attempt. Every exit of this inner loop leaves the
                // write guard released, so the `SourceChanged` handler below
                // can re-acquire it without self-deadlocking.
                let attempt: EngineResult<QueryResult> = loop {
                    attempts += 1;
                    if let Err(e) = ctx.check() {
                        drop(guard);
                        break Err(e);
                    }
                    let prep = rawscan::prepare_scan(
                        &mut guard,
                        &config,
                        planned.scan.clone(),
                        &telemetry,
                        ctx.clone(),
                    );
                    // A stale prep (concurrent append/replace reconciliation, or a
                    // cache column evicted under budget pressure) sends the query
                    // around the loop; after a few spins it runs exclusively, which
                    // cannot go stale.
                    let exclusive = attempts > MAX_SHARED_ATTEMPTS;
                    if !exclusive && prep.fully_cached {
                        drop(guard);
                        match rawscan::stream_cached_shared(&handle, &config, &prep, &telemetry) {
                            Ok(Some(queue)) => {
                                break run_engine(&planned, Box::new(QueueSource::new(queue)))
                            }
                            Ok(None) => {
                                guard = handle.write();
                                continue;
                            }
                            Err(e) => break Err(e),
                        }
                    }
                    if !exclusive
                        && !prep.fully_cached
                        && prep.threads >= 2
                        && !config.cache_force_full_parse
                    {
                        drop(guard);
                        match rawscan::scan_shared(&handle, &config, &prep, &telemetry) {
                            Ok(Some(queue)) => {
                                break run_engine(&planned, Box::new(QueueSource::new(queue)))
                            }
                            Ok(None) => {
                                guard = handle.write();
                                continue;
                            }
                            Err(e) => break Err(e),
                        }
                    }
                    // Exclusive path: the write lock is held across the whole
                    // scan (and released right after, see above).
                    scan_inside_engine = true;
                    let r = {
                        let source = RawScanSource::from_prep(
                            &mut guard,
                            config,
                            prep,
                            Arc::clone(&telemetry),
                        );
                        run_engine(&planned, Box::new(source))
                    };
                    drop(guard);
                    break r;
                };
                match attempt {
                    Ok(r) => break 'query r,
                    Err(e) => {
                        // Self-healing cold rescan: the backing file was
                        // truncated or rewritten mid-scan. Quarantine the
                        // now epoch-mismatched adaptive state, re-key the
                        // table to the fresh epoch, and retry cold —
                        // bounded by `source_change_retries`, so a file
                        // mutating faster than it can be scanned still
                        // surfaces the error. Besides the guard's own
                        // `SourceChanged`, a *raw-data* error on a file
                        // whose epoch moved since planning is treated the
                        // same way: a rewrite can misalign in-flight reads
                        // into parse errors before any bounds check fires,
                        // and blaming the data would mask the real cause.
                        let heal = source_retries > 0
                            && match &e {
                                EngineError::SourceChanged { .. } => true,
                                EngineError::Csv(_) if config.detect_updates => {
                                    let t = handle.read();
                                    t.epoch()
                                        .classify(t.path())
                                        .map_or(true, |c| c.invalidates())
                                }
                                _ => false,
                            };
                        if heal {
                            source_retries -= 1;
                            source_changes += 1;
                            attempts = 0;
                            guard = handle.write();
                            guard.quarantine()?;
                        } else {
                            if source_changes > 0 {
                                rawscan::lock_recover(&telemetry).source_changed = source_changes;
                                self.source_changes
                                    .fetch_add(source_changes, Ordering::Relaxed);
                            }
                            return Err(e);
                        }
                    }
                }
            };
            if source_changes > 0 {
                rawscan::lock_recover(&telemetry).source_changed = source_changes;
                self.source_changes
                    .fetch_add(source_changes, Ordering::Relaxed);
            }
            (
                planned,
                prepared_hit,
                result,
                engine_elapsed,
                scan_inside_engine,
            )
        };

        let total = t0.elapsed();
        let mut tel = rawscan::lock_recover(&telemetry);
        let mut breakdown = tel.breakdown;
        let scan_time = breakdown.io
            + breakdown.tokenizing
            + breakdown.parsing
            + breakdown.convert
            + breakdown.nodb;
        breakdown.engine = if scan_inside_engine {
            engine_elapsed.saturating_sub(scan_time)
        } else {
            engine_elapsed
        };
        breakdown.planning = planning;
        // Processing = everything not attributed to a scan phase, the
        // engine pipeline or planning (admission/lock waits land here).
        breakdown.processing = total.saturating_sub(scan_time + breakdown.engine + planning);
        let report = QueryReport {
            total,
            breakdown,
            io: tel.io,
            rows_scanned: tel.rows_scanned,
            rows_returned: result.len() as u64,
            cache_hits: tel.cache_hits,
            cache_misses: tel.cache_misses,
            fully_cached: tel.fully_cached,
            prepared_hit,
            installed_chunk: tel.installed_chunk,
            rows_quarantined: tel.rows_quarantined,
            quarantine_samples: std::mem::take(&mut tel.quarantine_samples),
            source_changed: tel.source_changed,
            plan: planned.explain(),
        };
        drop(tel);
        *rawscan::lock_recover(&self.last_report) = Some(report.clone());
        // Write-behind persistence: after the query is fully answered (and
        // its report published), save the table's adaptive state if this
        // query grew it. Never fails the query — save errors are counted
        // in the snapshot telemetry and retried on the next growth.
        if config.snapshot_persistence {
            self.write_snapshot_behind(&handle);
        }
        Ok((result, report))
    }

    /// The Figure 2 monitoring panel for one table.
    pub fn snapshot(&self, table: &str) -> Option<SystemSnapshot> {
        self.tables.get(table).map(|h| h.read().snapshot())
    }

    /// Schema of a registered table.
    pub fn schema(&self, table: &str) -> Option<Schema> {
        self.tables.get(table).map(|h| h.read().schema().clone())
    }

    /// Names of every registered table, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.names()
    }

    /// Shared handle to a registered table (experiment harness / tests).
    /// Lock it (`read`/`write`) to inspect or tweak the adaptive state.
    pub fn table_handle(&self, name: &str) -> Option<TableHandle> {
        self.tables.get(name)
    }

    // ------------------------------------------------------------------
    // Deprecated aliases for methods that moved to the admin surface
    // (`NoDb::admin`). Kept so pre-split callers keep compiling; they
    // forward verbatim.
    // ------------------------------------------------------------------

    /// Report for the most recent query on this instance.
    #[deprecated(note = "moved to the admin surface: use `db.admin().last_report()`")]
    pub fn last_report(&self) -> Option<QueryReport> {
        self.admin().last_report()
    }

    /// Change the positional-map budget for every registered table.
    #[deprecated(note = "moved to the admin surface: use `db.admin().set_map_budget(bytes)`")]
    pub fn set_map_budget(&self, bytes: usize) {
        self.admin().set_map_budget(bytes)
    }

    /// Change the cache budget for every registered table.
    #[deprecated(note = "moved to the admin surface: use `db.admin().set_cache_budget(bytes)`")]
    pub fn set_cache_budget(&self, bytes: usize) {
        self.admin().set_cache_budget(bytes)
    }

    /// Force an update probe on one table.
    #[deprecated(note = "moved to the admin surface: use `db.admin().probe_updates(table)`")]
    pub fn probe_updates(&self, table: &str) -> EngineResult<crate::epoch::EpochChange> {
        self.admin().probe_updates(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodb_rawcsv::{Datum, GeneratorConfig};
    use std::path::PathBuf;

    fn tmp_csv(cols: usize, rows: u64, seed: u64) -> (PathBuf, GeneratorConfig) {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "nodb_facade_{cols}_{rows}_{seed}_{}",
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let cfg = GeneratorConfig::uniform_ints(cols, rows, seed);
        cfg.generate_file(&p).unwrap();
        (p, cfg)
    }

    #[test]
    fn facade_is_send_and_sync() {
        fn assert_shareable<T: Send + Sync>() {}
        assert_shareable::<NoDb>();
        assert_shareable::<TableHandle>();
    }

    #[test]
    fn zero_load_query_and_adaptive_speedup_state() {
        let (p, gen) = tmp_csv(6, 1000, 11);
        let mut db = NoDb::new(NoDbConfig::default());
        db.register_csv_with_schema("t", &p, gen.schema(), false)
            .unwrap();

        let r1 = db
            .query("SELECT c1, c4 FROM t WHERE c2 > 500000000")
            .unwrap();
        let rep1 = db.admin().last_report().unwrap();
        assert_eq!(rep1.rows_scanned, 1000);
        assert!(!rep1.fully_cached);
        assert!(rep1.io.bytes_read > 0);

        let r2 = db
            .query("SELECT c1, c4 FROM t WHERE c2 > 500000000")
            .unwrap();
        let rep2 = db.admin().last_report().unwrap();
        assert_eq!(r1, r2, "adaptive rerun must be identical");
        assert!(rep2.fully_cached, "second run served from cache");
        assert_eq!(rep2.io.bytes_read, 0);
        assert!(rep2.cache_hits > 0, "cached rerun tallies its own hits");
        // The warm query's time splits into scan side (zeroed here: no file
        // access) and the engine pipeline, which the report now separates.
        assert!(
            rep2.breakdown.engine > std::time::Duration::ZERO,
            "engine phase measured"
        );
        assert!(rep2.breakdown.engine <= rep2.total);
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn snapshot_evolves_with_queries() {
        let (p, gen) = tmp_csv(5, 200, 12);
        let mut db = NoDb::new(NoDbConfig::default());
        db.register_csv_with_schema("t", &p, gen.schema(), false)
            .unwrap();
        let s0 = db.snapshot("t").unwrap();
        assert_eq!(s0.map_bytes + s0.cache_bytes, 0);
        db.query("SELECT c0 FROM t").unwrap();
        let s1 = db.snapshot("t").unwrap();
        assert!(s1.map_bytes > 0 || s1.cache_bytes > 0);
        assert_eq!(s1.attr_access_counts[0], (0, 1));
        assert_eq!(s1.row_count, Some(200));
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn schema_inference_path_works_end_to_end() {
        let mut p = std::env::temp_dir();
        p.push(format!("nodb_facade_infer_{}", std::process::id()));
        std::fs::write(&p, "id,name,score\n1,alice,2.5\n2,bob,3.5\n").unwrap();
        let mut db = NoDb::new(NoDbConfig::default());
        db.register_csv("people", &p).unwrap();
        let r = db.query("SELECT name FROM people WHERE score > 3").unwrap();
        assert_eq!(r.rows, vec![vec![Datum::from("bob")]]);
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn aggregates_over_raw_files() {
        let (p, gen) = tmp_csv(3, 500, 13);
        let mut db = NoDb::new(NoDbConfig::default());
        db.register_csv_with_schema("t", &p, gen.schema(), false)
            .unwrap();
        let r = db.query("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r.scalar(), Some(&Datum::Int(500)));
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn append_detected_next_query_sees_new_rows() {
        let (p, gen) = tmp_csv(3, 100, 14);
        let mut db = NoDb::new(NoDbConfig::default());
        db.register_csv_with_schema("t", &p, gen.schema(), false)
            .unwrap();
        assert_eq!(
            db.query("SELECT COUNT(*) FROM t").unwrap().scalar(),
            Some(&Datum::Int(100))
        );
        gen.append_rows(&p, 50).unwrap();
        assert_eq!(
            db.query("SELECT COUNT(*) FROM t").unwrap().scalar(),
            Some(&Datum::Int(150)),
            "appended rows visible to the next query"
        );
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn replacement_detected_and_state_dropped() {
        let (p, gen) = tmp_csv(3, 100, 15);
        let mut db = NoDb::new(NoDbConfig::default());
        db.register_csv_with_schema("t", &p, gen.schema(), false)
            .unwrap();
        db.query("SELECT c0 FROM t").unwrap();
        assert!(db.snapshot("t").unwrap().cache_bytes > 0);
        // Replace with a smaller file of the same shape.
        let gen2 = GeneratorConfig::uniform_ints(3, 10, 99);
        gen2.generate_file(&p).unwrap();
        assert_eq!(
            db.query("SELECT COUNT(*) FROM t").unwrap().scalar(),
            Some(&Datum::Int(10))
        );
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn budget_knobs_apply_immediately() {
        let (p, gen) = tmp_csv(4, 200, 16);
        let mut db = NoDb::new(NoDbConfig::default());
        db.register_csv_with_schema("t", &p, gen.schema(), false)
            .unwrap();
        db.query("SELECT c0, c1 FROM t").unwrap();
        assert!(db.snapshot("t").unwrap().cache_bytes > 0);
        db.admin().set_cache_budget(0);
        db.admin().set_map_budget(0);
        let s = db.snapshot("t").unwrap();
        assert_eq!(s.cache_bytes, 0);
        assert_eq!(s.map_bytes, 0);
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn unknown_table_is_reported() {
        let db = NoDb::new(NoDbConfig::default());
        assert!(matches!(
            db.query("SELECT a FROM missing"),
            Err(EngineError::UnknownTable(_))
        ));
    }

    #[test]
    fn baseline_config_answers_but_learns_nothing() {
        let (p, gen) = tmp_csv(4, 300, 17);
        let mut db = NoDb::new(NoDbConfig::baseline());
        db.register_csv_with_schema("t", &p, gen.schema(), false)
            .unwrap();
        db.query("SELECT c1 FROM t").unwrap();
        db.query("SELECT c1 FROM t").unwrap();
        let rep = db.admin().last_report().unwrap();
        assert!(!rep.fully_cached);
        assert!(rep.io.bytes_read > 0, "baseline re-reads every query");
        let s = db.snapshot("t").unwrap();
        assert_eq!(s.map_bytes + s.cache_bytes, 0);
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn concurrent_queries_share_one_table() {
        let (p, gen) = tmp_csv(5, 400, 18);
        let mut db = NoDb::new(NoDbConfig::default());
        db.register_csv_with_schema("t", &p, gen.schema(), false)
            .unwrap();
        let sql = "SELECT c1, c3 FROM t WHERE c2 < 700000000";
        let expect = db.query(sql).unwrap();

        let db = Arc::new(db);
        let results: Vec<QueryResult> = std::thread::scope(|s| {
            (0..6)
                .map(|_| {
                    let db = Arc::clone(&db);
                    s.spawn(move || db.query(sql).unwrap())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for r in results {
            assert_eq!(r, expect, "concurrent query must match sequential");
        }
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn prepared_cache_hits_skip_parse_and_plan() {
        let (p, gen) = tmp_csv(4, 300, 19);
        let mut db = NoDb::new(NoDbConfig::default());
        db.register_csv_with_schema("t", &p, gen.schema(), false)
            .unwrap();
        db.admin().enable_prepared_statements(8);
        let sql = "SELECT c1 FROM t WHERE c2 > 100";
        let r1 = db.query(sql).unwrap();
        let rep1 = db.admin().last_report().unwrap();
        assert!(!rep1.prepared_hit, "first run plans from scratch");
        let r2 = db.query(sql).unwrap();
        let rep2 = db.admin().last_report().unwrap();
        assert_eq!(r1, r2, "prepared rerun must be identical");
        assert!(rep2.prepared_hit, "second run served from the plan cache");
        assert_eq!(
            rep2.breakdown.planning,
            Duration::ZERO,
            "prepared hit deletes the planning slice"
        );
        assert!(
            rep1.breakdown.planning > Duration::ZERO,
            "cold run records parse+plan time"
        );
        let stats = db.admin().prepared_stats().unwrap();
        assert_eq!(stats.hits, 1);
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn prepared_cache_invalidated_by_append() {
        let (p, gen) = tmp_csv(3, 100, 20);
        let mut db = NoDb::new(NoDbConfig::default());
        db.register_csv_with_schema("t", &p, gen.schema(), false)
            .unwrap();
        db.admin().enable_prepared_statements(8);
        let sql = "SELECT COUNT(*) FROM t";
        assert_eq!(db.query(sql).unwrap().scalar(), Some(&Datum::Int(100)));
        assert_eq!(db.query(sql).unwrap().scalar(), Some(&Datum::Int(100)));
        assert!(db.admin().last_report().unwrap().prepared_hit);
        gen.append_rows(&p, 25).unwrap();
        assert_eq!(
            db.query(sql).unwrap().scalar(),
            Some(&Datum::Int(125)),
            "append visible despite the cached plan"
        );
        let rep = db.admin().last_report().unwrap();
        assert!(
            !rep.prepared_hit,
            "generation bump forces a replan after append"
        );
        let stats = db.admin().prepared_stats().unwrap();
        assert!(stats.invalidations >= 1);
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn scan_budget_clamps_fan_out_and_tracks_peaks() {
        let (p, gen) = tmp_csv(4, 2000, 21);
        let mut db = NoDb::new(NoDbConfig {
            scan_threads: 4,
            ..NoDbConfig::default()
        });
        db.register_csv_with_schema("t", &p, gen.schema(), false)
            .unwrap();
        let budget = Arc::new(crate::admission::ScanBudget::new(2));
        db.admin().install_scan_budget(Arc::clone(&budget));
        let expect = {
            // Reference result from a budget-free instance.
            let mut free = NoDb::new(NoDbConfig::default());
            free.register_csv_with_schema("t", &p, gen.schema(), false)
                .unwrap();
            free.query("SELECT COUNT(*) FROM t").unwrap()
        };
        let db = Arc::new(db);
        std::thread::scope(|s| {
            for _ in 0..6 {
                let db = Arc::clone(&db);
                let expect = expect.clone();
                s.spawn(move || {
                    assert_eq!(db.query("SELECT COUNT(*) FROM t").unwrap(), expect);
                });
            }
        });
        let t = budget.telemetry();
        assert!(
            t.peak_in_flight <= t.capacity,
            "budget never exceeded: {t:?}"
        );
        assert_eq!(t.admitted, 6);
        assert_eq!(t.in_flight, 0, "all grants returned");
        std::fs::remove_file(p).unwrap();
    }
}
