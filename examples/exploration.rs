//! Exploratory analysis (§4.2 Query Adaptation): a scientist skims through
//! different parts of a wide raw file in epochs. Watch the positional map
//! and cache adapt — filling, then evicting stale attributes as the focus
//! shifts — on the text twin of the demo's monitoring panel.
//!
//! ```text
//! cargo run --release --example exploration
//! ```

use nodb_bench::systems::{Contestant, RawContestant};
use nodb_bench::workload::{epoch_workload, scratch_dir, Dataset};
use nodb_core::NoDbConfig;

fn main() {
    let dir = scratch_dir("exploration_example");
    let cols = 30;
    let rows = 50_000u64;
    println!("generating {rows}-row, {cols}-attribute raw file ...");
    let data = Dataset::standard(&dir, cols, rows, 0xE59);

    // Tight budgets so adaptation is visible: roughly 40% of the file's
    // attributes fit in each structure.
    let mut cfg = NoDbConfig::pm_c();
    cfg.cache_budget_bytes = (rows as usize) * 9 * 12;
    cfg.map_budget_bytes = (rows as usize) * 2 * 12;
    let mut sys = RawContestant::new(cfg);
    sys.init(&data.path, &data.schema()).expect("register");

    let wl = epoch_workload("t", cols, 3, 6, 8, 0x2024);
    for (e, queries) in wl.epochs.iter().enumerate() {
        let (lo, hi) = wl.windows[e];
        println!("\n=== epoch {e}: exploring attributes c{lo}..c{hi} ===");
        for (i, q) in queries.iter().enumerate() {
            let (r, d) = sys.run(q).expect("query");
            println!(
                "  q{i} {:>8.2}ms  {} rows   {}",
                d.as_secs_f64() * 1e3,
                r.len(),
                q
            );
        }
        println!("\n--- monitoring panel after epoch {e} ---");
        println!("{}", sys.db.snapshot("t").unwrap().panel());
    }
    println!(
        "Within an epoch, later queries get faster (map + cache warm up); when the epoch\n\
         shifts, the LRU policy evicts stale attributes to make room — exactly the behaviour\n\
         the demo visualizes by shading the queried region of the file."
    );
    std::fs::remove_dir_all(dir).ok();
}
