//! Positional-map microbenchmarks: exact jumps vs anchor-resumed tokenizing
//! vs from-scratch selective tokenizing (the §3.1 access ladder), plus the
//! u16-relative-offset representation's install cost.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use nodb_posmap::{ChunkBuilder, MapPolicy, PositionalMap};
use nodb_rawcsv::tokenizer::{find_byte, TokenizerConfig, Tokens};
use nodb_rawcsv::GeneratorConfig;

fn lines(cols: usize, rows: u64) -> Vec<Vec<u8>> {
    GeneratorConfig::uniform_ints(cols, rows, 7)
        .generate_bytes()
        .split(|&b| b == b'\n')
        .filter(|l| !l.is_empty())
        .map(|l| l.to_vec())
        .collect()
}

fn build_map(lines: &[Vec<u8>], attrs: Vec<usize>) -> PositionalMap {
    let cfg = TokenizerConfig::default();
    let mut t = Tokens::new();
    let mut map = PositionalMap::new(MapPolicy::default());
    let mut b = ChunkBuilder::new(attrs);
    for (row, l) in lines.iter().enumerate() {
        map.row_index_mut().note_row(row, 0);
        cfg.tokenize_into(l, &mut t);
        b.push_row(&t);
    }
    map.install(b);
    map
}

fn bench_access_ladder(c: &mut Criterion) {
    let data = lines(50, 2000);
    let cfg = TokenizerConfig::default();
    let target = 40usize;

    let mut group = c.benchmark_group("posmap_access");

    // Rung 1: exact jump — map stores attr 40 directly.
    {
        let mut map = build_map(&data, vec![target]);
        let plan = map.plan_access(&[target]);
        let chunk = match plan.source_for(target) {
            Some(nodb_posmap::AttrSource::Exact { chunk }) => chunk,
            other => panic!("expected exact coverage, got {other:?}"),
        };
        group.bench_function("exact_jump", |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for (row, l) in data.iter().enumerate() {
                    let start = map.offset_in(chunk, target, row).unwrap() as usize;
                    let end = find_byte(&l[start..], b',')
                        .map(|p| start + p)
                        .unwrap_or(l.len());
                    acc += end - start;
                }
                black_box(acc)
            })
        });
    }

    // Rung 2: anchor resume — map stores attr 35; resume 5 fields.
    {
        let mut map = build_map(&data, vec![35]);
        let plan = map.plan_access(&[target]);
        let (chunk, anchor) = match plan.source_for(target) {
            Some(nodb_posmap::AttrSource::Anchor { chunk, anchor_attr }) => (chunk, anchor_attr),
            other => panic!("expected anchor, got {other:?}"),
        };
        group.bench_function("anchor_resume_5_fields", |b| {
            let mut t = Tokens::new();
            b.iter(|| {
                let mut acc = 0usize;
                for (row, l) in data.iter().enumerate() {
                    let off = map.offset_in(chunk, anchor, row).unwrap() as usize;
                    cfg.tokenize_from(l, anchor, off, target, &mut t);
                    acc += t.get(target).map(|s| s.len()).unwrap_or(0);
                }
                black_box(acc)
            })
        });
    }

    // Rung 3: no map — selective tokenize from the line start.
    group.bench_function("scan_from_start", |b| {
        let mut t = Tokens::new();
        b.iter(|| {
            let mut acc = 0usize;
            for l in &data {
                cfg.tokenize_selective(l, target, &mut t);
                acc += t.get(target).map(|s| s.len()).unwrap_or(0);
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_install(c: &mut Criterion) {
    let data = lines(20, 2000);
    let cfg = TokenizerConfig::default();
    c.bench_function("posmap_populate_and_install_2000x4", |b| {
        b.iter(|| {
            let mut map = PositionalMap::new(MapPolicy::default());
            let mut t = Tokens::new();
            let mut builder = ChunkBuilder::with_capacity(vec![3, 7, 11, 15], data.len());
            for (row, l) in data.iter().enumerate() {
                map.row_index_mut().note_row(row, 0);
                cfg.tokenize_selective(l, 15, &mut t);
                builder.push_row(&t);
            }
            black_box(map.install(builder))
        })
    });
}

criterion_group!(benches, bench_access_ladder, bench_install);
criterion_main!(benches);
