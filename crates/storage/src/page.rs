//! Slotted pages — the on-disk unit of the conventional row stores.
//!
//! Classic layout: a header (`nslots`, `free_offset`), a slot directory
//! growing down from the header, and tuple bytes growing up from the end of
//! the page. Page size is a profile knob (PostgreSQL-like uses 8 KiB,
//! MySQL-like 16 KiB).

/// Page header bytes: nslots (u16) + free_end (u16).
const HEADER: usize = 4;
/// Slot entry bytes: offset (u16) + length (u16).
const SLOT: usize = 4;

/// A fixed-size slotted page.
#[derive(Debug, Clone)]
pub struct Page {
    buf: Vec<u8>,
}

impl Page {
    /// Fresh empty page of `size` bytes.
    pub fn new(size: usize) -> Self {
        assert!((64..=32768).contains(&size), "page size {size}");
        let mut buf = vec![0u8; size];
        write_u16(&mut buf, 0, 0); // nslots
        write_u16(&mut buf, 2, size as u16); // free_end = size
        Page { buf }
    }

    /// Rehydrate a page from raw bytes (disk read).
    pub fn from_bytes(buf: Vec<u8>) -> Self {
        assert!(buf.len() >= 64);
        Page { buf }
    }

    /// Raw bytes (disk write).
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Number of tuples stored.
    pub fn nslots(&self) -> usize {
        read_u16(&self.buf, 0) as usize
    }

    fn free_end(&self) -> usize {
        read_u16(&self.buf, 2) as usize
    }

    /// Bytes still available for one more tuple (including its slot entry).
    pub fn free_space(&self) -> usize {
        let slots_end = HEADER + self.nslots() * SLOT;
        self.free_end().saturating_sub(slots_end)
    }

    /// Try to append a tuple; returns its slot index, or `None` when full.
    pub fn insert(&mut self, tuple: &[u8]) -> Option<usize> {
        if tuple.len() + SLOT > self.free_space() {
            return None;
        }
        let slot = self.nslots();
        let new_end = self.free_end() - tuple.len();
        self.buf[new_end..new_end + tuple.len()].copy_from_slice(tuple);
        let slot_off = HEADER + slot * SLOT;
        write_u16(&mut self.buf, slot_off, new_end as u16);
        write_u16(&mut self.buf, slot_off + 2, tuple.len() as u16);
        write_u16(&mut self.buf, 0, (slot + 1) as u16);
        write_u16(&mut self.buf, 2, new_end as u16);
        Some(slot)
    }

    /// Tuple bytes at `slot`.
    pub fn tuple(&self, slot: usize) -> Option<&[u8]> {
        if slot >= self.nslots() {
            return None;
        }
        let slot_off = HEADER + slot * SLOT;
        let off = read_u16(&self.buf, slot_off) as usize;
        let len = read_u16(&self.buf, slot_off + 2) as usize;
        self.buf.get(off..off + len)
    }

    /// Iterator over all tuples in slot order.
    pub fn tuples(&self) -> impl Iterator<Item = &[u8]> {
        (0..self.nslots()).filter_map(|s| self.tuple(s))
    }
}

fn read_u16(buf: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([buf[at], buf[at + 1]])
}

fn write_u16(buf: &mut [u8], at: usize, v: u16) {
    buf[at..at + 2].copy_from_slice(&v.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_read_back() {
        let mut p = Page::new(256);
        let a = p.insert(b"hello").unwrap();
        let b = p.insert(b"world!").unwrap();
        assert_eq!(p.tuple(a).unwrap(), b"hello");
        assert_eq!(p.tuple(b).unwrap(), b"world!");
        assert_eq!(p.nslots(), 2);
    }

    #[test]
    fn fills_up_and_rejects() {
        let mut p = Page::new(64);
        let mut inserted = 0;
        while p.insert(b"0123456789").is_some() {
            inserted += 1;
        }
        assert!(inserted >= 2);
        assert!(p.insert(b"0123456789").is_none());
        // Existing tuples still intact.
        assert_eq!(p.tuple(0).unwrap(), b"0123456789");
    }

    #[test]
    fn round_trip_through_bytes() {
        let mut p = Page::new(128);
        p.insert(b"abc").unwrap();
        p.insert(b"defg").unwrap();
        let q = Page::from_bytes(p.bytes().to_vec());
        let ts: Vec<&[u8]> = q.tuples().collect();
        assert_eq!(ts, vec![&b"abc"[..], &b"defg"[..]]);
    }

    #[test]
    fn empty_page_iterates_nothing() {
        let p = Page::new(64);
        assert_eq!(p.tuples().count(), 0);
    }
}
