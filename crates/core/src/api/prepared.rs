//! Prepared-statement cache: repeat queries skip parse + plan.
//!
//! Exploration workloads (the paper's target) re-issue the same handful of
//! SQL strings as the analyst drills in, and a serving layer multiplies
//! that repetition across connections. This LRU maps SQL text to its
//! `PlannedQuery` so the facade can jump straight to the scan; the deleted
//! work shows up as `Breakdown::planning == 0` and
//! `QueryReport::prepared_hit == true`.
//!
//! Staleness is handled in two layers:
//!
//! * each entry pins the table it was planned against by **handle
//!   identity** (a `Weak` to the registry's `Arc`) — re-registering a
//!   table under the same name installs a fresh `Arc`, so old entries fail
//!   the `ptr_eq` check and are replanned;
//! * each entry records the table's **file-state generation**; the facade
//!   re-validates it *after* the per-query update probe, under the same
//!   write lock planning would take, so an appended/replaced file replans
//!   exactly when fresh planning would have seen the new state.
//!
//! The cache never returns a plan the caller may use blindly: hits hand
//! back the entry and the facade decides validity under the table lock.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Weak;

use nodb_engine::PlannedQuery;
use parking_lot::Mutex;

use crate::registry::TableHandle;

/// Weak alias matching [`TableHandle`]'s `Arc` payload.
type WeakHandle = Weak<parking_lot::RwLock<crate::table::RawTable>>;

/// Default number of distinct SQL strings kept.
pub const DEFAULT_PREPARED_CAPACITY: usize = 64;

/// One cached plan, as handed to the facade for validation.
#[derive(Clone)]
pub struct CachedPlan {
    /// Table the statement targets (registry key).
    pub table: String,
    /// Identity of the handle the plan was made against.
    pub handle: WeakHandle,
    /// File-state generation at plan time.
    pub generation: u64,
    /// The parse+plan product being reused.
    pub planned: PlannedQuery,
}

/// Lifetime counters (tests assert on these; the server reports them).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PreparedStats {
    /// Lookups that returned a plan which then validated.
    pub hits: u64,
    /// Lookups that found nothing (or a plan that failed validation).
    pub misses: u64,
    /// Entries dropped to make room (LRU order).
    pub evictions: u64,
    /// Cached plans that failed validation (stale generation / replaced
    /// handle) and were replanned. A subset of `misses`.
    pub invalidations: u64,
}

struct Inner {
    map: HashMap<String, CachedPlan>,
    /// Keys from least- to most-recently used.
    order: Vec<String>,
}

/// LRU cache of `SQL text → validated-on-use plan`.
pub struct PreparedCache {
    capacity: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl PreparedCache {
    /// Cache holding at most `capacity` distinct SQL strings.
    pub fn new(capacity: usize) -> Self {
        PreparedCache {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                order: Vec::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// Fetch the cached plan for `sql`, bumping it to most-recently-used.
    /// The caller MUST validate the entry ([`CachedPlan::handle`] /
    /// [`CachedPlan::generation`]) before trusting the plan, then report
    /// the outcome via [`Self::note_hit`] / [`Self::note_invalidated`].
    pub fn lookup(&self, sql: &str) -> Option<CachedPlan> {
        let mut inner = self.inner.lock();
        let found = inner.map.get(sql).cloned();
        if found.is_some() {
            touch(&mut inner.order, sql);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Record that a looked-up plan validated and was used.
    pub fn note_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record that a looked-up plan failed validation (it counts as a miss;
    /// the caller replans and re-inserts).
    pub fn note_invalidated(&self) {
        self.invalidations.fetch_add(1, Ordering::Relaxed);
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Insert (or replace) the plan for `sql`, evicting the least-recently
    /// used entry past capacity.
    pub fn insert(
        &self,
        sql: &str,
        table: &str,
        handle: &TableHandle,
        generation: u64,
        planned: PlannedQuery,
    ) {
        let mut inner = self.inner.lock();
        let entry = CachedPlan {
            table: table.to_string(),
            handle: std::sync::Arc::downgrade(handle),
            generation,
            planned,
        };
        if inner.map.insert(sql.to_string(), entry).is_none() && inner.map.len() > self.capacity {
            if let Some(victim) = inner.order.first().cloned() {
                inner.map.remove(&victim);
                inner.order.remove(0);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        touch(&mut inner.order, sql);
    }

    /// Drop every cached plan (admin surface; also useful in tests).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.order.clear();
    }

    /// Lifetime counters.
    pub fn stats(&self) -> PreparedStats {
        PreparedStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Move `key` to the most-recently-used end of `order`.
fn touch(order: &mut Vec<String>, key: &str) {
    if let Some(pos) = order.iter().position(|k| k == key) {
        let k = order.remove(pos);
        order.push(k);
    } else {
        order.push(key.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::RawTable;
    use crate::NoDbConfig;
    use nodb_rawcsv::GeneratorConfig;
    use nodb_sqlparse::parse_select;
    use nodb_stats::estimate::NoStats;
    use std::sync::Arc;

    fn plan_for(handle: &TableHandle, sql: &str) -> PlannedQuery {
        let stmt = parse_select(sql).unwrap();
        nodb_engine::plan_select(&stmt, &handle.read().schema, &NoStats).unwrap()
    }

    fn test_table() -> (std::path::PathBuf, TableHandle) {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "nodb_prepared_{}_{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let gen = GeneratorConfig::uniform_ints(3, 50, 7);
        gen.generate_file(&p).unwrap();
        let t = RawTable::register(&p, gen.schema(), false, &NoDbConfig::default()).unwrap();
        (p, Arc::new(parking_lot::RwLock::new(t)))
    }

    #[test]
    fn lru_evicts_oldest_and_counts() {
        let (p, h) = test_table();
        let cache = PreparedCache::new(2);
        let plan = plan_for(&h, "SELECT c0 FROM t");
        cache.insert("q1", "t", &h, 0, plan.clone());
        cache.insert("q2", "t", &h, 0, plan.clone());
        assert!(cache.lookup("q1").is_some(), "q1 now most-recently used");
        cache.note_hit();
        cache.insert("q3", "t", &h, 0, plan);
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup("q2").is_none(), "LRU victim was q2");
        assert!(cache.lookup("q1").is_some());
        assert!(cache.lookup("q3").is_some());
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.misses, 1, "only the evicted q2 lookup missed");
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn weak_handle_detects_replacement() {
        let (p, h) = test_table();
        let cache = PreparedCache::new(4);
        cache.insert("q", "t", &h, 0, plan_for(&h, "SELECT c0 FROM t"));
        let entry = cache.lookup("q").unwrap();
        let upgraded = entry.handle.upgrade().unwrap();
        assert!(Arc::ptr_eq(&upgraded, &h), "same registration validates");
        drop(upgraded);
        drop(h); // table dropped from the registry
        let entry = cache.lookup("q").unwrap();
        assert!(entry.handle.upgrade().is_none(), "stale handle detected");
        std::fs::remove_file(p).unwrap();
    }
}
